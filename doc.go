// Package adept is ADePT — an Automatic Deployment Planning Tool for
// hierarchical Network-Enabled-Server middleware on heterogeneous
// platforms, reproducing Caron, Chouhan and Desprez, "Automatic Middleware
// Deployment Planning on Heterogeneous Platforms" (INRIA RR-6566, 2008).
//
// The module root only carries the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper; the implementation
// lives under internal/ and the executables under cmd/ (cmd/adept for
// one-shot planning, cmd/adeptd for the planning-as-a-service daemon,
// cmd/nes and cmd/experiments for the middleware and paper harness):
//
//   - internal/autonomic   — MAPE-K control loop: drift detection and
//     live hierarchy patching over a running deployment
//   - internal/core        — the planning heuristic (Algorithm 1) and the
//     incremental placement evaluator its hot path plans through
//   - internal/model       — the steady-state performance model (Eqs. 1–16)
//   - internal/hierarchy   — deployment trees, diff/patch engine, XML
//   - internal/platform    — heterogeneous platform descriptions
//   - internal/scenario    — declarative platform-family generators
//     (star, bimodal, power-law, clustered, trace-perturbed)
//   - internal/portfolio   — parallel planner race returning the best plan
//   - internal/baseline    — star / balanced / d-ary / exhaustive planners
//   - internal/sim         — discrete-event M(r,s,w) simulator
//   - internal/runtime     — concurrent goroutine middleware (chan/TCP)
//   - internal/deploy      — GoDIET-style XML launcher
//   - internal/service     — planning daemon: registry, plan cache, pool
//   - internal/workload    — DGEMM workloads, demands, load ramps
//   - internal/blas        — DGEMM kernels (naive / blocked / parallel)
//   - internal/linpack     — LU mini-benchmark for node power calibration
//   - internal/calib       — Table 3 parameter measurement
//   - internal/experiments — one driver per paper table/figure
//   - internal/stats       — regression and summary statistics
//
// See README.md for a walkthrough and EXPERIMENTS.md for paper-vs-measured
// results.
package adept
