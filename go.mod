module adept

go 1.24

// No third-party requirements — deliberately, including for cmd/adeptvet:
// the static-analysis suite in internal/analysis implements the loader,
// driver, and `go vet -vettool` protocol on the standard library (go/ast,
// go/types, go/importer) instead of depending on golang.org/x/tools, so
// the whole repository builds offline from a bare toolchain.
