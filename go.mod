module adept

go 1.24
