package adept_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/deploy"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/runtime"
	"adept/internal/sim"
	"adept/internal/stats"
	"adept/internal/workload"
)

// TestEndToEndPlanXMLSimulate runs the full paper pipeline: plan a
// deployment on a heterogeneous platform, serialise it through the GoDIET
// XML hand-off, reload it, and verify the simulator measures the analytic
// model's prediction on the reloaded deployment.
func TestEndToEndPlanXMLSimulate(t *testing.T) {
	plat, err := platform.Generate(platform.GenSpec{
		Name: "e2e", N: 40, Bandwidth: 100, MinPower: 150, MaxPower: 700, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 310}.MFlop(),
	}
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatal(err)
	}

	xml, err := plan.XML()
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := hierarchy.ParseXML(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	if err := reloaded.Validate(hierarchy.Final); err != nil {
		t.Fatalf("reloaded deployment invalid: %v", err)
	}
	if err := reloaded.CheckAgainstPlatform(plat); err != nil {
		t.Fatalf("reloaded deployment inconsistent with platform: %v", err)
	}

	pred := reloaded.Evaluate(req.Costs, plat.Bandwidth, req.Wapp)
	if !stats.WithinTolerance(pred.Rho, plan.Eval.Rho, 1e-9) {
		// Powers pass through decimal text in the XML, so the last ULP may
		// differ; anything beyond that is a real round-trip bug.
		t.Errorf("XML round trip changed predicted ρ: %g vs %g", pred.Rho, plan.Eval.Rho)
	}
	res, err := sim.Plateau(reloaded, req.Costs, plat.Bandwidth, req.Wapp, 3, 10, 512, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("predicted %.2f req/s, simulated %.2f req/s", pred.Rho, res.Throughput)
	if !stats.WithinTolerance(res.Throughput, pred.Rho, 0.15) {
		t.Errorf("simulated %.2f req/s disagrees with model %.2f (>15%%)", res.Throughput, pred.Rho)
	}
}

// TestEndToEndPlanDeployRuntime deploys a planned hierarchy on the live
// goroutine middleware via the XML hand-off and verifies requests complete
// with per-server conservation.
func TestEndToEndPlanDeployRuntime(t *testing.T) {
	plat := platform.Homogeneous("e2e-rt", 8, 400, 100)
	req := core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 150}.MFlop(),
	}
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	xml, err := plan.XML()
	if err != nil {
		t.Fatal(err)
	}
	dep, err := deploy.LaunchXML(strings.NewReader(xml), deploy.Config{
		Metered: true,
		Options: runtime.Options{
			Costs:     req.Costs,
			Bandwidth: plat.Bandwidth,
			Wapp:      req.Wapp,
			TimeScale: 0.002,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	load, err := dep.System.RunClients(context.Background(), 4, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if load.Completed == 0 {
		t.Fatalf("no completions: %+v (errors: %v)", load, dep.System.Errors())
	}
	var sum int64
	for _, n := range dep.System.ServedCounts() {
		sum += n
	}
	if sum != load.Completed {
		t.Errorf("Σ Ni = %d but completed = %d", sum, load.Completed)
	}
	if dep.Meter.TotalMessages() == 0 {
		t.Error("no metered traffic in live deployment")
	}
}

// TestPlannersAgreeOnOrdering cross-checks planner quality on the paper's
// central scenario: on the heterogenised cluster the heuristic must beat
// both intuitive deployments under the analytic model, and the simulator
// must agree with that ordering.
func TestPlannersAgreeOnOrdering(t *testing.T) {
	base := platform.Homogeneous("order", 80, 400, 100)
	plat, err := platform.Heterogenize(base, platform.BackgroundLoad{
		Fraction: 0.6, LoadFactors: []float64{0.25, 0.5, 0.75}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: workload.DGEMM{N: 310}.MFlop()}

	heur, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(h *hierarchy.Hierarchy) float64 {
		res, err := sim.Measure(h, req.Costs, plat.Bandwidth, req.Wapp,
			sim.Config{Clients: 150, Warmup: 6, Window: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	starPlan, err := (&baseline.Star{}).Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if heur.Eval.Rho <= starPlan.Eval.Rho {
		t.Errorf("model: heuristic %.1f should beat star %.1f", heur.Eval.Rho, starPlan.Eval.Rho)
	}
	mHeur, mStar := measure(heur.Hierarchy), measure(starPlan.Hierarchy)
	t.Logf("simulated: heuristic %.1f, star %.1f req/s", mHeur, mStar)
	if mHeur <= mStar {
		t.Errorf("simulator: heuristic %.1f should beat star %.1f", mHeur, mStar)
	}
}
