package adept_test

import (
	"fmt"
	"testing"

	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/sim"
	"adept/internal/workload"
)

// threeClusterGrid builds the canonical heterogeneous-links demo platform:
// a local cluster of modest nodes on the fast LAN, and two remote clusters
// of powerful nodes reached over a slow WAN uplink. A link-blind planner
// drafts the powerful remote nodes as agents — exactly wrong, because
// agent traffic (requests down, replies up, per child) is what saturates a
// slow link, while server traffic is tiny.
func threeClusterGrid() *platform.Platform {
	p := &platform.Platform{Name: "three-cluster", Bandwidth: 100}
	for i := 0; i < 5; i++ {
		p.Nodes = append(p.Nodes, platform.Node{
			Name: fmt.Sprintf("local-%02d", i), Power: 300,
		})
	}
	for c := 1; c <= 2; c++ {
		for i := 0; i < 5; i++ {
			p.Nodes = append(p.Nodes, platform.Node{
				Name: fmt.Sprintf("remote%d-%02d", c, i), Power: 900, LinkBandwidth: 2,
			})
		}
	}
	return p
}

// blindView strips the per-node links: the platform as a bandwidth-unaware
// administrator would describe it.
func blindView(p *platform.Platform) *platform.Platform {
	cp := p.Clone()
	for i := range cp.Nodes {
		cp.Nodes[i].LinkBandwidth = 0
	}
	return cp
}

// withRealLinks re-binds a deployment tree onto the true per-node link
// bandwidths of plat, so a plan computed against the blind view can be
// simulated on the physical network it would actually run on.
func withRealLinks(t *testing.T, h *hierarchy.Hierarchy, plat *platform.Platform) *hierarchy.Hierarchy {
	t.Helper()
	links := make(map[string]float64, len(plat.Nodes))
	for _, n := range plat.Nodes {
		links[n.Name] = n.LinkBandwidth
	}
	out, err := h.WithLinkBandwidths(links)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMultiClusterPlanBeatsUniformModel is the heterogeneous-links
// acceptance demo: on a 3-cluster grid, the link-aware plan must beat the
// plan computed from the uniform-bandwidth model of the same pool — not
// just in the analytic model, but in *simulated* throughput on the same
// clustered network.
func TestMultiClusterPlanBeatsUniformModel(t *testing.T) {
	plat := threeClusterGrid()
	costs := model.DIETDefaults()
	wapp := workload.DGEMM{N: 100}.MFlop()

	aware, err := core.NewHeuristic().Plan(core.Request{Platform: plat, Costs: costs, Wapp: wapp})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := core.NewHeuristic().Plan(core.Request{Platform: blindView(plat), Costs: costs, Wapp: wapp})
	if err != nil {
		t.Fatal(err)
	}

	// The blind plan rides the real network: rebuild it with true links.
	blindReal := withRealLinks(t, blind.Hierarchy, plat)

	cfg := sim.Config{Clients: 40, Warmup: 2, Window: 10}
	awareRes, err := sim.Measure(aware.Hierarchy, costs, plat.Bandwidth, wapp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	blindRes, err := sim.Measure(blindReal, costs, plat.Bandwidth, wapp, cfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("aware: predicted ρ=%.1f, simulated %.1f req/s\n%s", aware.Eval.Rho, awareRes.Throughput, aware.Hierarchy)
	t.Logf("blind: predicted ρ=%.1f (uniform model), simulated %.1f req/s\n%s", blind.Eval.Rho, blindRes.Throughput, blindReal)

	if awareRes.Throughput <= blindRes.Throughput*1.2 {
		t.Errorf("link-aware plan must clearly beat the uniform-model plan on the clustered sim: %.1f vs %.1f req/s",
			awareRes.Throughput, blindRes.Throughput)
	}

	// The honest model agrees: re-evaluating the blind tree with the true
	// links cannot beat the aware plan's prediction.
	blindHonest := blindReal.Evaluate(costs, plat.Bandwidth, wapp)
	if aware.Eval.Rho < blindHonest.Rho {
		t.Errorf("aware predicted ρ %.2f below blind plan's honest ρ %.2f", aware.Eval.Rho, blindHonest.Rho)
	}
}
