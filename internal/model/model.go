// Package model implements the steady-state performance model of §3 of the
// paper (Equations 1–16): per-request communication and computation
// occupation times for agents and servers under the single-port,
// no-internal-parallelism machine model M(r,s,w), and the derived
// scheduling, service, and platform throughputs.
//
// The model's inputs are deliberately primitive (powers in MFlop/s, degrees,
// message sizes in Mbit, bandwidth in Mbit/s) so that both the planner
// (internal/core) and the hierarchy evaluator (internal/hierarchy) can call
// it without import cycles.
//
// One subtlety carried over from the paper: Table 3 reports *different*
// message sizes at the agent level and at the server level (agent-to-agent
// messages carry aggregated responses and larger headers). The equations in
// §3 are written with a single Sreq/Srep; we keep role-specific sizes and
// use the agent sizes in agent terms and the server sizes in server terms,
// which is what the calibration data actually measures.
package model

import (
	"fmt"
	"math"
)

// Costs bundles the middleware cost parameters of Table 3. All W* values
// are MFlop per request; all S* values are Mbit per message.
type Costs struct {
	// AgentWreq is the computation an agent spends processing one incoming
	// request (Wreq in the paper).
	AgentWreq float64
	// AgentWfix is the fixed part of the reply-treatment cost Wrep(d) =
	// Wfix + Wsel·d.
	AgentWfix float64
	// AgentWsel is the per-child part of Wrep(d): the cost of scanning one
	// child's reply during best-server selection.
	AgentWsel float64
	// ServerWpre is the computation a server spends producing a performance
	// prediction during the scheduling phase (Wpre).
	ServerWpre float64

	// AgentSreq and AgentSrep are the request/reply message sizes on
	// agent-level links.
	AgentSreq float64
	AgentSrep float64
	// ServerSreq and ServerSrep are the request/reply message sizes on the
	// server's link to its parent.
	ServerSreq float64
	ServerSrep float64
}

// DIETDefaults returns the parameter values measured for DIET 2.0 on the
// Lyon site of Grid'5000 (Table 3 of the paper).
func DIETDefaults() Costs {
	return Costs{
		AgentWreq:  1.7e-1,
		AgentWfix:  4.0e-3,
		AgentWsel:  5.4e-3,
		ServerWpre: 6.4e-3,
		AgentSreq:  5.3e-3,
		AgentSrep:  5.4e-3,
		ServerSreq: 5.3e-5,
		ServerSrep: 6.4e-5,
	}
}

// Validate checks that all cost parameters are non-negative and that the
// ones the model divides by are positive.
func (c Costs) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"AgentWreq", c.AgentWreq},
		{"AgentWfix", c.AgentWfix},
		{"AgentWsel", c.AgentWsel},
		{"ServerWpre", c.ServerWpre},
		{"AgentSreq", c.AgentSreq},
		{"AgentSrep", c.AgentSrep},
		{"ServerSreq", c.ServerSreq},
		{"ServerSrep", c.ServerSrep},
	}
	for _, ch := range checks {
		if ch.v < 0 || math.IsNaN(ch.v) || math.IsInf(ch.v, 0) {
			return fmt.Errorf("model: cost %s = %g is invalid", ch.name, ch.v)
		}
	}
	return nil
}

// WrepAgent returns the reply-treatment cost Wrep(d) = Wfix + Wsel·d in
// MFlop for an agent with d children.
func (c Costs) WrepAgent(d int) float64 {
	return c.AgentWfix + c.AgentWsel*float64(d)
}

// AgentReceiveTime implements Eq. 1: the seconds an agent with d children
// spends receiving one request from its parent and d replies from its
// children.
func AgentReceiveTime(c Costs, bandwidth float64, d int) float64 {
	return (c.AgentSreq + float64(d)*c.AgentSrep) / bandwidth
}

// AgentSendTime implements Eq. 2: the seconds an agent with d children
// spends forwarding the request to its d children and one reply to its
// parent.
func AgentSendTime(c Costs, bandwidth float64, d int) float64 {
	return (float64(d)*c.AgentSreq + c.AgentSrep) / bandwidth
}

// ServerReceiveTime implements Eq. 3.
func ServerReceiveTime(c Costs, bandwidth float64) float64 {
	return c.ServerSreq / bandwidth
}

// ServerSendTime implements Eq. 4.
func ServerSendTime(c Costs, bandwidth float64) float64 {
	return c.ServerSrep / bandwidth
}

// AgentCompTime implements Eq. 5: the seconds an agent of power w MFlop/s
// with d children spends computing per request.
func AgentCompTime(c Costs, w float64, d int) float64 {
	return (c.AgentWreq + c.WrepAgent(d)) / w
}

// AgentThroughput returns the scheduling throughput (requests/second) an
// agent of power w with d children sustains: the agent term of Eq. 14.
// Under M(r,s,w) the agent serialises its receive, send and compute
// activity, so the sustainable rate is the inverse of the summed
// per-request occupation.
func AgentThroughput(c Costs, bandwidth, w float64, d int) float64 {
	t := AgentCompTime(c, w, d) + AgentReceiveTime(c, bandwidth, d) + AgentSendTime(c, bandwidth, d)
	return 1 / t
}

// ServerPredictionThroughput returns the rate at which a server of power w
// can serve the scheduling phase (prediction plus request/reply messages):
// the server term of Eq. 14.
func ServerPredictionThroughput(c Costs, bandwidth, w float64) float64 {
	t := c.ServerWpre/w + ServerReceiveTime(c, bandwidth) + ServerSendTime(c, bandwidth)
	return 1 / t
}

// ServerCompTime implements Eq. 10: the aggregate seconds-per-request the
// server set needs for the service phase, accounting for the fact that
// *every* server predicts every request (cost Wpre each) while the service
// work Wapp is split across servers proportionally to their power.
//
// wapp is the MFlop cost of one service request; powers are the server
// computing powers. The formula is
//
//	(1 + Σ_s Wpre/Wapp) / (Σ_s w_s/Wapp)
//
// which for a single server reduces to (Wapp+Wpre)/w.
func ServerCompTime(c Costs, wapp float64, powers []float64) float64 {
	if len(powers) == 0 {
		return math.Inf(1)
	}
	num := 1.0
	den := 0.0
	for _, w := range powers {
		num += c.ServerWpre / wapp
		den += w / wapp
	}
	return num / den
}

// ServiceThroughput implements Eq. 15: the completed-service throughput of
// the server set, including the service request/response transfer on the
// selected server's link.
func ServiceThroughput(c Costs, bandwidth, wapp float64, powers []float64) float64 {
	if len(powers) == 0 {
		return 0
	}
	t := ServerReceiveTime(c, bandwidth) + ServerSendTime(c, bandwidth) + ServerCompTime(c, wapp, powers)
	return 1 / t
}

// Agent describes an agent node for evaluation: its power, its number of
// children (agents or servers), and optionally its own link bandwidth
// (zero means "the evaluation's default bandwidth" — the homogeneous-links
// model of the paper).
type Agent struct {
	Power     float64
	Degree    int
	Bandwidth float64
}

// Server describes a server node for the heterogeneous-links evaluation:
// its power and optionally its own link bandwidth (zero = default).
type Server struct {
	Power     float64
	Bandwidth float64
}

// linkOr resolves a per-node bandwidth override against the default.
func linkOr(bw, def float64) float64 {
	if bw > 0 {
		return bw
	}
	return def
}

// SchedulingThroughput implements Eq. 14: the minimum over every agent's
// throughput and every server's prediction throughput. The scheduling phase
// broadcasts each request through the entire hierarchy, so the slowest node
// caps the whole phase. Per-agent Bandwidth overrides are honoured, but
// the []float64 server form cannot carry per-server links — every server
// term is computed at the default bandwidth. For fully heterogeneous
// links use EvaluateLinks, whose Sched field is the per-node Eq. 14.
func SchedulingThroughput(c Costs, bandwidth float64, agents []Agent, serverPowers []float64) float64 {
	min := math.Inf(1)
	for _, a := range agents {
		if t := AgentThroughput(c, linkOr(a.Bandwidth, bandwidth), a.Power, a.Degree); t < min {
			min = t
		}
	}
	for _, w := range serverPowers {
		if t := ServerPredictionThroughput(c, bandwidth, w); t < min {
			min = t
		}
	}
	return min
}

// Bottleneck identifies which phase (and which node kind) limits a
// deployment's throughput.
type Bottleneck int

const (
	// BottleneckNone is returned for degenerate (empty) deployments.
	BottleneckNone Bottleneck = iota
	// BottleneckAgent means an agent's scheduling work caps throughput.
	BottleneckAgent
	// BottleneckServerPrediction means a server's prediction work caps the
	// scheduling phase.
	BottleneckServerPrediction
	// BottleneckService means the aggregate service capacity caps
	// throughput.
	BottleneckService
)

// String implements fmt.Stringer.
func (b Bottleneck) String() string {
	switch b {
	case BottleneckAgent:
		return "agent"
	case BottleneckServerPrediction:
		return "server-prediction"
	case BottleneckService:
		return "service"
	default:
		return "none"
	}
}

// Evaluation is the full model output for one deployment.
type Evaluation struct {
	// Sched is ρ_sched (Eq. 14) in requests/second.
	Sched float64
	// Service is ρ_service (Eq. 15) in requests/second.
	Service float64
	// Rho is the platform throughput ρ = min(Sched, Service) (Eq. 16).
	Rho float64
	// Bottleneck tells which term achieved the minimum.
	Bottleneck Bottleneck
	// LimitingAgent is the index (into the agents slice passed to Evaluate)
	// of the agent achieving the scheduling minimum, or -1.
	LimitingAgent int
	// LimitingServer is the index of the server achieving the prediction
	// minimum, or -1.
	LimitingServer int
}

// Evaluate computes the complete throughput evaluation (Eq. 16) of a
// deployment described by its agent set and server power set, for service
// requests costing wapp MFlop, under homogeneous links of the given
// bandwidth.
func Evaluate(c Costs, bandwidth, wapp float64, agents []Agent, serverPowers []float64) Evaluation {
	servers := make([]Server, len(serverPowers))
	for i, w := range serverPowers {
		servers[i] = Server{Power: w}
	}
	return EvaluateLinks(c, bandwidth, wapp, agents, servers)
}

// EvaluateLinks is Evaluate generalised to heterogeneous links: every agent
// and server may carry its own link bandwidth (zero = the default
// bandwidth). The scheduling phase takes each node's own link into its
// term of Eq. 14; the service phase (Eq. 15) keeps the paper's aggregate
// form but pays the request/response transfer on the *slowest* server
// link — the conservative projection that collapses exactly to Eq. 15
// when links are uniform.
func EvaluateLinks(c Costs, bandwidth, wapp float64, agents []Agent, servers []Server) Evaluation {
	ev := Evaluation{LimitingAgent: -1, LimitingServer: -1}
	if len(servers) == 0 {
		return ev
	}

	sched := math.Inf(1)
	schedKind := BottleneckNone
	for i, a := range agents {
		if t := AgentThroughput(c, linkOr(a.Bandwidth, bandwidth), a.Power, a.Degree); t < sched {
			sched = t
			schedKind = BottleneckAgent
			ev.LimitingAgent = i
		}
	}
	for i, s := range servers {
		if t := ServerPredictionThroughput(c, linkOr(s.Bandwidth, bandwidth), s.Power); t < sched {
			sched = t
			schedKind = BottleneckServerPrediction
			ev.LimitingAgent = -1
			ev.LimitingServer = i
		}
	}
	ev.Sched = sched
	ev.Service = ServiceThroughputLinks(c, bandwidth, wapp, servers)

	if ev.Service < ev.Sched {
		ev.Rho = ev.Service
		ev.Bottleneck = BottleneckService
		ev.LimitingAgent = -1
		ev.LimitingServer = -1
	} else {
		ev.Rho = ev.Sched
		ev.Bottleneck = schedKind
	}
	return ev
}

// ServiceThroughputLinks is ServiceThroughput generalised to per-server
// link bandwidths: the Eq. 10 computation aggregate is unchanged (it is
// pure computation), while the per-request transfer term is charged at the
// minimum server link bandwidth. The accumulation order matches
// ServerCompTime exactly, so uniform inputs produce bit-identical floats.
func ServiceThroughputLinks(c Costs, bandwidth, wapp float64, servers []Server) float64 {
	if len(servers) == 0 {
		return 0
	}
	num := 1.0
	den := 0.0
	minBW := math.Inf(1)
	for _, s := range servers {
		num += c.ServerWpre / wapp
		den += s.Power / wapp
		if bw := linkOr(s.Bandwidth, bandwidth); bw < minBW {
			minBW = bw
		}
	}
	t := ServerReceiveTime(c, minBW) + ServerSendTime(c, minBW) + num/den
	return 1 / t
}

// Throughput is a convenience wrapper returning only ρ from Evaluate.
func Throughput(c Costs, bandwidth, wapp float64, agents []Agent, serverPowers []float64) float64 {
	return Evaluate(c, bandwidth, wapp, agents, serverPowers).Rho
}
