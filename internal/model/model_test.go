package model_test

import (
	"math"
	"testing"
	"testing/quick"

	"adept/internal/model"
)

const bw = 100.0

func TestDIETDefaultsMatchTable3(t *testing.T) {
	c := model.DIETDefaults()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"AgentWreq", c.AgentWreq, 1.7e-1},
		{"AgentWfix", c.AgentWfix, 4.0e-3},
		{"AgentWsel", c.AgentWsel, 5.4e-3},
		{"ServerWpre", c.ServerWpre, 6.4e-3},
		{"AgentSreq", c.AgentSreq, 5.3e-3},
		{"AgentSrep", c.AgentSrep, 5.4e-3},
		{"ServerSreq", c.ServerSreq, 5.3e-5},
		{"ServerSrep", c.ServerSrep, 6.4e-5},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s = %g, want %g (Table 3)", tc.name, tc.got, tc.want)
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestCostsValidateRejectsNaN(t *testing.T) {
	c := model.DIETDefaults()
	c.AgentWreq = math.NaN()
	if err := c.Validate(); err == nil {
		t.Error("expected validation error for NaN cost")
	}
	c = model.DIETDefaults()
	c.ServerWpre = -1
	if err := c.Validate(); err == nil {
		t.Error("expected validation error for negative cost")
	}
}

func TestWrepAgentIsLinearInDegree(t *testing.T) {
	c := model.DIETDefaults()
	for d := 0; d < 50; d++ {
		want := c.AgentWfix + c.AgentWsel*float64(d)
		if got := c.WrepAgent(d); got != want {
			t.Fatalf("WrepAgent(%d) = %g, want %g", d, got, want)
		}
	}
}

func TestCommunicationTimesMatchEquations(t *testing.T) {
	c := model.DIETDefaults()
	d := 5
	// Eq. 1: (Sreq + d·Srep)/B
	want := (c.AgentSreq + float64(d)*c.AgentSrep) / bw
	if got := model.AgentReceiveTime(c, bw, d); got != want {
		t.Errorf("AgentReceiveTime = %g, want %g", got, want)
	}
	// Eq. 2: (d·Sreq + Srep)/B
	want = (float64(d)*c.AgentSreq + c.AgentSrep) / bw
	if got := model.AgentSendTime(c, bw, d); got != want {
		t.Errorf("AgentSendTime = %g, want %g", got, want)
	}
	// Eq. 3 and Eq. 4.
	if got := model.ServerReceiveTime(c, bw); got != c.ServerSreq/bw {
		t.Errorf("ServerReceiveTime = %g", got)
	}
	if got := model.ServerSendTime(c, bw); got != c.ServerSrep/bw {
		t.Errorf("ServerSendTime = %g", got)
	}
}

func TestServerCompTimeSingleServerReducesToSimpleForm(t *testing.T) {
	// Eq. 10 with one server must equal (Wapp + Wpre)/w.
	c := model.DIETDefaults()
	w, wapp := 400.0, 16.0
	want := (wapp + c.ServerWpre) / w
	got := model.ServerCompTime(c, wapp, []float64{w})
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ServerCompTime = %g, want %g", got, want)
	}
}

func TestServerCompTimeEmptyIsInfinite(t *testing.T) {
	if got := model.ServerCompTime(model.DIETDefaults(), 1, nil); !math.IsInf(got, 1) {
		t.Errorf("empty server set comp time = %g, want +Inf", got)
	}
}

func TestHomogeneousServiceThroughputScalesLinearly(t *testing.T) {
	// With Wpre << Wapp, doubling homogeneous servers should roughly double
	// service throughput.
	c := model.DIETDefaults()
	wapp := 16.0
	one := model.ServiceThroughput(c, bw, wapp, []float64{400})
	two := model.ServiceThroughput(c, bw, wapp, []float64{400, 400})
	if ratio := two / one; ratio < 1.95 || ratio > 2.05 {
		t.Errorf("2-server/1-server service ratio = %g, want ≈2", ratio)
	}
}

func TestAgentThroughputDecreasesWithDegree(t *testing.T) {
	c := model.DIETDefaults()
	prev := math.Inf(1)
	for d := 1; d <= 100; d++ {
		cur := model.AgentThroughput(c, bw, 400, d)
		if cur >= prev {
			t.Fatalf("AgentThroughput(%d) = %g >= AgentThroughput(%d) = %g; must be strictly decreasing", d, cur, d-1, prev)
		}
		prev = cur
	}
}

func TestEvaluateBottleneckAttribution(t *testing.T) {
	c := model.DIETDefaults()
	// Tiny requests: agent-limited.
	ev := model.Evaluate(c, bw, 0.002, []model.Agent{{Power: 400, Degree: 2}}, []float64{400, 400})
	if ev.Bottleneck != model.BottleneckAgent {
		t.Errorf("tiny wapp: bottleneck = %v, want agent", ev.Bottleneck)
	}
	if ev.LimitingAgent != 0 {
		t.Errorf("LimitingAgent = %d, want 0", ev.LimitingAgent)
	}
	// Huge requests: service-limited.
	ev = model.Evaluate(c, bw, 2000, []model.Agent{{Power: 400, Degree: 2}}, []float64{400, 400})
	if ev.Bottleneck != model.BottleneckService {
		t.Errorf("huge wapp: bottleneck = %v, want service", ev.Bottleneck)
	}
	if ev.Rho != ev.Service {
		t.Errorf("rho = %g, want service %g", ev.Rho, ev.Service)
	}
	// A pathologically slow server's prediction can cap scheduling.
	ev = model.Evaluate(c, bw, 0.002, []model.Agent{{Power: 1e6, Degree: 2}}, []float64{1e6, 1e-4})
	if ev.Bottleneck != model.BottleneckServerPrediction {
		t.Errorf("slow server: bottleneck = %v, want server-prediction", ev.Bottleneck)
	}
	if ev.LimitingServer != 1 {
		t.Errorf("LimitingServer = %d, want 1", ev.LimitingServer)
	}
}

func TestEvaluateEmptyServers(t *testing.T) {
	ev := model.Evaluate(model.DIETDefaults(), bw, 1, nil, nil)
	if ev.Rho != 0 || ev.Bottleneck != model.BottleneckNone {
		t.Errorf("empty deployment: rho = %g, bottleneck = %v", ev.Rho, ev.Bottleneck)
	}
}

func TestBottleneckString(t *testing.T) {
	cases := map[model.Bottleneck]string{
		model.BottleneckNone:             "none",
		model.BottleneckAgent:            "agent",
		model.BottleneckServerPrediction: "server-prediction",
		model.BottleneckService:          "service",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", b, got, want)
		}
	}
}

// Property: ρ never exceeds either phase's throughput, and both phases are
// positive for sane inputs.
func TestPropertyRhoIsMinOfPhases(t *testing.T) {
	c := model.DIETDefaults()
	f := func(p1, p2, p3 uint16, d uint8, wappSeed uint16) bool {
		w1 := 1 + float64(p1)
		w2 := 1 + float64(p2)
		w3 := 1 + float64(p3)
		deg := 1 + int(d%20)
		wapp := 0.001 + float64(wappSeed)/10
		ev := model.Evaluate(c, bw, wapp, []model.Agent{{Power: w1, Degree: deg}}, []float64{w2, w3})
		return ev.Rho == math.Min(ev.Sched, ev.Service) && ev.Rho > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: model monotonicity — faster nodes never lower throughput.
func TestPropertyFasterNodesNeverHurt(t *testing.T) {
	c := model.DIETDefaults()
	f := func(pw uint16, d uint8, wappSeed uint16, boost uint8) bool {
		w := 10 + float64(pw)
		deg := 1 + int(d%10)
		wapp := 0.01 + float64(wappSeed)/10
		factor := 1 + float64(boost%100)/100
		servers := []float64{w, w / 2}
		base := model.Throughput(c, bw, wapp, []model.Agent{{Power: w, Degree: deg}}, servers)
		faster := model.Throughput(c, bw, wapp, []model.Agent{{Power: w * factor, Degree: deg}},
			[]float64{w * factor, w / 2 * factor})
		return faster >= base-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more bandwidth never lowers throughput.
func TestPropertyMoreBandwidthNeverHurts(t *testing.T) {
	c := model.DIETDefaults()
	f := func(pw uint16, d uint8, wappSeed uint16, extra uint8) bool {
		w := 10 + float64(pw)
		deg := 1 + int(d%10)
		wapp := 0.01 + float64(wappSeed)/10
		b1 := 10.0
		b2 := b1 + 1 + float64(extra)
		agents := []model.Agent{{Power: w, Degree: deg}}
		servers := []float64{w, w * 2}
		return model.Throughput(c, b2, wapp, agents, servers) >=
			model.Throughput(c, b1, wapp, agents, servers)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding a server never lowers service throughput (Eq. 15 is
// monotone in the server set).
func TestPropertyMoreServersNeverLowerServiceThroughput(t *testing.T) {
	c := model.DIETDefaults()
	f := func(pw1, pw2 uint16, wappSeed uint16) bool {
		w1 := 1 + float64(pw1)
		w2 := 1 + float64(pw2)
		wapp := 0.01 + float64(wappSeed)/10
		one := model.ServiceThroughput(c, bw, wapp, []float64{w1})
		two := model.ServiceThroughput(c, bw, wapp, []float64{w1, w2})
		return two >= one-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
