package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"adept/internal/portfolio"
)

// flightGroup coalesces concurrent planning runs by cache key
// (singleflight): the first request for a key becomes the leader and
// starts one planning run; every identical request arriving before it
// completes joins the same flight and shares its result instead of
// burning another pool worker on identical work.
//
// The run executes on a context detached from any single client, bounded
// by the leader's effective timeout — one impatient client dropping its
// connection must not kill a result a dozen others are waiting for. Each
// waiter bounds its own wait with its own request context; when the last
// waiter gives up, the flight is cancelled and retired atomically, so a
// request arriving later starts a fresh run rather than inheriting a
// doomed one.
type flightGroup struct {
	mu        sync.Mutex
	flights   map[CacheKey]*flight
	coalesced atomic.Uint64 // requests that joined an existing flight
}

// flightResult is what a flight resolves to. cached marks a run that was
// answered by a cache entry another flight landed in the meantime — no
// planner executed, and the response must say so.
type flightResult struct {
	entry    *CachedPlan
	variants []portfolio.Result
	cached   bool
	err      error
}

type flight struct {
	key     CacheKey
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{} // closed once result is final
	waiters int
	result  flightResult
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[CacheKey]*flight)}
}

// Coalesced returns the cumulative count of requests that shared another
// request's planning run.
func (g *flightGroup) Coalesced() uint64 { return g.coalesced.Load() }

// Active returns the number of flights currently in the table (planning
// runs in progress that newcomers would join).
func (g *flightGroup) Active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}

// retire removes fl from the table if it still owns its slot — it may
// already have been replaced by a successor flight for the same key.
// Callers hold g.mu.
func (g *flightGroup) retire(fl *flight) {
	if g.flights[fl.key] == fl {
		delete(g.flights, fl.key)
	}
}

// join returns the in-progress flight for key, registering the caller as
// a waiter, or starts a new flight running run(ctx) in its own goroutine.
// leader reports whether this caller started the flight. A flight whose
// context has already been cancelled (its waiters all left) is never
// joined — it is replaced by a fresh run.
func (g *flightGroup) join(key CacheKey, timeout time.Duration,
	run func(ctx context.Context) flightResult) (fl *flight, leader bool) {
	g.mu.Lock()
	if fl := g.flights[key]; fl != nil && fl.ctx.Err() == nil {
		fl.waiters++
		g.mu.Unlock()
		g.coalesced.Add(1)
		return fl, false
	}
	//adeptvet:allow ctxflow deliberate flight detach from the leader's request context; the last waiter out cancels it
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	fl = &flight{key: key, ctx: ctx, cancel: cancel, done: make(chan struct{}), waiters: 1}
	g.flights[key] = fl
	g.mu.Unlock()

	go func() {
		defer cancel()
		res := run(ctx)
		g.mu.Lock()
		g.retire(fl) // later identical requests hit the cache
		fl.result = res
		g.mu.Unlock()
		close(fl.done)
	}()
	return fl, true
}

// wait blocks until the flight completes or ctx fires. A waiter that
// gives up deregisters itself; the last one to leave cancels and retires
// the flight under the group lock — nobody is left to consume the
// result, and no newcomer may join a cancelled run.
func (g *flightGroup) wait(ctx context.Context, fl *flight) flightResult {
	select {
	case <-fl.done:
		return fl.result
	case <-ctx.Done():
		g.mu.Lock()
		fl.waiters--
		if fl.waiters == 0 {
			fl.cancel()
			g.retire(fl)
		}
		g.mu.Unlock()
		return flightResult{err: ctx.Err()}
	}
}
