package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	gort "runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/deploy"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/obs"
	"adept/internal/platform"
	"adept/internal/portfolio"
	"adept/internal/runtime"
	"adept/internal/scenario"
	"adept/internal/slo"
	"adept/internal/workload"
)

// SelectPlanner resolves a planner name to a (stateless, reusable)
// planner instance. The names match cmd/adept's -planner flag.
func SelectPlanner(name string) (core.Planner, error) {
	switch name {
	case "", "heuristic":
		return core.NewHeuristic(), nil
	case "heuristic+swap":
		return &core.SwapRefiner{Inner: core.NewHeuristic()}, nil
	case "star":
		return &baseline.Star{}, nil
	case "balanced":
		return &baseline.Balanced{}, nil
	case "dary":
		return &baseline.OptimalDAry{}, nil
	case "exhaustive":
		return &baseline.Exhaustive{}, nil
	case "portfolio":
		return portfolio.New(), nil
	default:
		return nil, fmt.Errorf("unknown planner %q", name)
	}
}

// PlannerNames lists the names SelectPlanner accepts, for error messages
// and documentation endpoints.
func PlannerNames() []string {
	return []string{"heuristic", "heuristic+swap", "star", "balanced", "dary", "exhaustive", "portfolio"}
}

// Config tunes the daemon.
type Config struct {
	// CacheSize is the plan cache capacity in entries (default 256).
	CacheSize int
	// Workers bounds concurrent planner runs (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds planning jobs waiting for a worker (default 64).
	QueueDepth int
	// PlanTimeout caps a single planning run (default 30s); clients may
	// only shorten it via timeout_ms.
	PlanTimeout time.Duration
	// MaxDeployDuration caps the load window of POST /v1/deploy
	// (default 10s).
	MaxDeployDuration time.Duration
	// Logger receives the daemon's structured logs. nil means discard —
	// embedded uses (tests, benchmarks) pay nothing for logging.
	Logger *slog.Logger
	// JournalCapacity bounds the autonomic event journal ring
	// (default 256).
	JournalCapacity int
	// SLO is the declarative objective and burn-rate alert rule set the
	// embedded SLO engine evaluates (nil means slo.DefaultConfig: 99.5%
	// availability plus a 2s p99 plan-latency objective).
	SLO *slo.Config
	// SampleInterval is the time-series sampling (and SLO evaluation)
	// tick. Zero means one second; negative disables the background
	// sampler entirely — tests then drive SLOTick with explicit
	// timestamps instead of racing a wall clock.
	SampleInterval time.Duration
	// SeriesCapacity bounds each time-series ring (default 600 samples,
	// ten minutes of history at the default tick).
	SeriesCapacity int
	// Registry overrides the platform store (nil = a fresh in-memory
	// Registry). cmd/adeptd injects a preloaded journalled Registry here.
	Registry RegistryStore
	// Cache overrides the plan cache (nil = an in-memory PlanCache of
	// CacheSize entries).
	Cache CacheStore
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.Workers <= 0 {
		c.Workers = gort.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PlanTimeout <= 0 {
		c.PlanTimeout = 30 * time.Second
	}
	if c.MaxDeployDuration <= 0 {
		c.MaxDeployDuration = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.JournalCapacity <= 0 {
		c.JournalCapacity = 256
	}
	if c.SeriesCapacity <= 0 {
		c.SeriesCapacity = 600
	}
	return c
}

// Server is the planning daemon: registry + cache + pool behind an HTTP
// JSON API. Create with New, expose via Handler, release with Close.
type Server struct {
	cfg      Config
	registry RegistryStore
	cache    CacheStore
	pool     *Pool
	flights  *flightGroup
	metrics  *Metrics
	logger   *slog.Logger
	journal  *obs.Journal
	mux      *http.ServeMux

	// Observability plane: the time-series store samples counters,
	// gauges and histogram quantiles on a fixed tick; the SLO engine
	// evaluates burn rates over those series on the same tick.
	store        *obs.Store
	sloEng       *slo.Engine
	ready        atomic.Bool
	sampleCancel context.CancelFunc
	sampleDone   chan struct{}

	autoMu       sync.Mutex
	auto         *autonomicSession
	autoStarting bool

	// cluster is the optional peer layer (EnableCluster); nil means
	// single-node mode and every peer code path short-circuits.
	cluster Cluster

	// classPlans counts fresh planning runs answered by the heuristic's
	// class-collapsed path (cache hits do not re-count).
	classPlans atomic.Uint64
}

// New builds a Server with started workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		var err error
		if cache, err = NewPlanCache(cfg.CacheSize); err != nil {
			return nil, err
		}
	}
	registry := cfg.Registry
	if registry == nil {
		registry = NewRegistry()
	}
	pool, err := NewPool(cfg.Workers, cfg.QueueDepth)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		registry: registry,
		cache:    cache,
		pool:     pool,
		flights:  newFlightGroup(),
		metrics:  NewMetrics(),
		logger:   cfg.Logger,
		journal:  obs.NewJournal(cfg.JournalCapacity),
		mux:      http.NewServeMux(),
	}
	s.registerGauges()
	if err := s.initSLO(); err != nil {
		pool.Close()
		return nil, err
	}
	s.routes()
	s.ready.Store(true)
	s.startSampler()
	return s, nil
}

// initSLO builds the time-series store, wires the daemon's key signals
// into it, and binds every configured objective to its counter sources.
func (s *Server) initSLO() error {
	s.store = obs.NewStore(s.cfg.SeriesCapacity)
	sloCfg := slo.DefaultConfig()
	if s.cfg.SLO != nil {
		sloCfg = *s.cfg.SLO
	}
	eng, err := slo.NewEngine(sloCfg, s.store, s.journal)
	if err != nil {
		return err
	}
	for _, spec := range sloCfg.Objectives {
		if err := s.bindObjective(eng, spec); err != nil {
			return err
		}
	}
	// Operational series beyond the SLO sources: instantaneous load and
	// latency signals the soak harness and dashboards read back over time.
	s.store.Watch("requests_total", func() float64 { r, _ := s.metrics.Totals(); return float64(r) })
	s.store.Watch("errors_total", func() float64 { _, e := s.metrics.Totals(); return float64(e) })
	s.store.Watch("queue_depth", func() float64 { return float64(s.pool.QueueDepth()) })
	s.store.Watch("active_plans", func() float64 { return float64(s.pool.Active()) })
	s.store.Watch("cache_entries", func() float64 { return float64(s.cache.Len()) })
	planLat := s.metrics.EndpointLatency("plan")
	s.store.Watch("plan_latency_p50_ms", func() float64 { return planLat.Quantile(0.50) * 1e3 })
	s.store.Watch("plan_latency_p99_ms", func() float64 { return planLat.Quantile(0.99) * 1e3 })
	s.sloEng = eng
	return nil
}

// bindObjective attaches one objective spec to the daemon's metrics:
// availability reduces to the (requests, errors) counter pair — the
// whole daemon's, or one endpoint's when the spec scopes it — and a
// latency objective to the endpoint histogram's cumulative count at or
// under the (bucket-snapped) threshold.
func (s *Server) bindObjective(eng *slo.Engine, spec slo.ObjectiveSpec) error {
	switch spec.Type {
	case slo.TypeAvailability:
		if ep := spec.Endpoint; ep != "" {
			return eng.Bind(spec.Name,
				func() float64 { r, e := s.metrics.EndpointTotals(ep); return float64(r) - float64(e) },
				func() float64 { r, _ := s.metrics.EndpointTotals(ep); return float64(r) },
				0)
		}
		return eng.Bind(spec.Name,
			func() float64 { r, e := s.metrics.Totals(); return float64(r) - float64(e) },
			func() float64 { r, _ := s.metrics.Totals(); return float64(r) },
			0)
	case slo.TypeLatency:
		ep := spec.Endpoint
		if ep == "" {
			ep = "plan"
		}
		h := s.metrics.EndpointLatency(ep)
		thresh := spec.ThresholdMillis / 1e3
		_, bound := h.CountAtOrBelow(thresh)
		return eng.Bind(spec.Name,
			func() float64 { c, _ := h.CountAtOrBelow(thresh); return float64(c) },
			func() float64 { return float64(h.Count()) },
			bound*1e3)
	}
	return fmt.Errorf("slo: objective %q: unbindable type %q", spec.Name, spec.Type)
}

// startSampler runs the store's wall-clock sampling loop with SLO
// evaluation chained on every tick. Disabled by a negative interval.
func (s *Server) startSampler() {
	interval := s.cfg.SampleInterval
	if interval < 0 {
		return
	}
	if interval == 0 {
		interval = time.Second
	}
	//adeptvet:allow ctxflow daemon-lifetime lifecycle root for the metrics sampler; cancelled in Close
	ctx, cancel := context.WithCancel(context.Background())
	s.sampleCancel = cancel
	s.sampleDone = make(chan struct{})
	go func() {
		defer close(s.sampleDone)
		s.store.Run(ctx, interval, s.sloEng.Evaluate)
	}()
}

// SLOTick samples the time-series store and advances the SLO engine at
// an explicit timestamp — one background sampler tick under the
// caller's clock, for deterministic tests and embedded drivers.
func (s *Server) SLOTick(now time.Time) {
	s.store.Sample(now)
	s.sloEng.Evaluate(now)
}

// SetReady flips the readiness gate served by GET /readyz. adeptd holds
// it false while startup preloading runs.
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// Store exposes the daemon's time-series store.
func (s *Server) Store() *obs.Store { return s.store }

// SLO exposes the daemon's SLO engine.
func (s *Server) SLO() *slo.Engine { return s.sloEng }

// registerGauges bridges the components that keep their own counters
// (cache, pool, flights, registry, journal) into the Prometheus
// registry. Values are read lazily at scrape time; nothing here touches
// the request hot path.
func (s *Server) registerGauges() {
	prom := s.metrics.Prom()
	prom.CounterFunc("adeptd_cache_hits_total", "Plan cache hits.", func() uint64 {
		h, _ := s.cache.Stats()
		return h
	})
	prom.CounterFunc("adeptd_cache_misses_total", "Plan cache misses.", func() uint64 {
		_, m := s.cache.Stats()
		return m
	})
	prom.GaugeFunc("adeptd_cache_entries", "Plans currently cached.", func() float64 {
		return float64(s.cache.Len())
	})
	prom.GaugeFunc("adeptd_cache_shards", "Plan cache shard count.", func() float64 {
		return float64(s.cache.Shards())
	})
	shardEntries := prom.GaugeVec("adeptd_cache_shard_entries", "Plans cached per shard.", "shard")
	prom.OnScrape(func() {
		for i, n := range s.cache.ShardSizes() {
			shardEntries.With(strconv.Itoa(i)).Set(float64(n))
		}
	})
	prom.GaugeFunc("adeptd_workers", "Planning worker count.", func() float64 {
		return float64(s.pool.Workers())
	})
	prom.GaugeFunc("adeptd_active_plans", "Planning jobs executing right now.", func() float64 {
		return float64(s.pool.Active())
	})
	prom.GaugeFunc("adeptd_queue_depth", "Planning jobs waiting for a worker.", func() float64 {
		return float64(s.pool.QueueDepth())
	})
	prom.GaugeFunc("adeptd_queue_capacity", "Configured planning queue bound.", func() float64 {
		return float64(s.pool.QueueCapacity())
	})
	prom.CounterFunc("adeptd_plans_executed_total", "Planning jobs actually run on the pool.", s.pool.Executed)
	prom.CounterFunc("adeptd_class_planned_total", "Fresh plans produced by the class-collapsed planner path.", s.classPlans.Load)
	prom.CounterFunc("adeptd_rejected_total", "Plan submissions shed with 429 by fail-fast admission.", s.pool.Rejected)
	prom.CounterFunc("adeptd_coalesced_total", "Requests that shared another request's planning run.", s.flights.Coalesced)
	prom.GaugeFunc("adeptd_flights_active", "In-progress coalesced planning flights.", func() float64 {
		return float64(s.flights.Active())
	})
	prom.GaugeFunc("adeptd_platforms", "Platforms registered.", func() float64 {
		return float64(s.registry.Len())
	})
	prom.CounterFunc("adeptd_autonomic_events_total", "Autonomic decision events journalled.", s.journal.Total)
	prom.RegisterRuntime()
}

// Logger exposes the daemon's structured logger.
func (s *Server) Logger() *slog.Logger { return s.logger }

// Journal exposes the autonomic event journal.
func (s *Server) Journal() *obs.Journal { return s.journal }

// Registry exposes the platform store (e.g. for startup preloading or
// cluster replication).
func (s *Server) Registry() RegistryStore { return s.registry }

// Cache exposes the plan cache.
func (s *Server) Cache() CacheStore { return s.cache }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the sampler, the worker pool and any running autonomic
// session.
func (s *Server) Close() {
	if s.sampleCancel != nil {
		s.sampleCancel()
		<-s.sampleDone
	}
	s.stopAutonomic()
	s.pool.Close()
}

func (s *Server) routes() {
	s.mux.Handle("POST /v1/plan", s.instrument("plan", s.handlePlan))
	s.mux.Handle("POST /v1/plan/batch", s.instrument("plan_batch", s.handlePlanBatch))
	s.mux.Handle("GET /v1/platforms", s.instrument("platforms_list", s.handlePlatformList))
	s.mux.Handle("GET /v1/platforms/{name}", s.instrument("platforms_get", s.handlePlatformGet))
	s.mux.Handle("PUT /v1/platforms/{name}", s.instrument("platforms_put", s.handlePlatformPut))
	s.mux.Handle("DELETE /v1/platforms/{name}", s.instrument("platforms_delete", s.handlePlatformDelete))
	s.mux.Handle("GET /v1/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.Handle("GET /metrics", s.instrument("metrics_prom", s.handlePromMetrics))
	s.mux.Handle("POST /v1/deploy", s.instrument("deploy", s.handleDeploy))
	s.mux.Handle("POST /v1/autonomic/start", s.instrument("autonomic_start", s.handleAutonomicStart))
	s.mux.Handle("POST /v1/autonomic/stop", s.instrument("autonomic_stop", s.handleAutonomicStop))
	s.mux.Handle("GET /v1/autonomic/status", s.instrument("autonomic_status", s.handleAutonomicStatus))
	s.mux.Handle("GET /v1/autonomic/events", s.instrument("autonomic_events", s.handleAutonomicEvents))
	s.mux.Handle("GET /v1/autonomic/incidents", s.instrument("autonomic_incidents", s.handleAutonomicIncidents))
	s.mux.Handle("POST /v1/autonomic/inject", s.instrument("autonomic_inject", s.handleAutonomicInject))
	s.mux.Handle("GET /v1/slo", s.instrument("slo", s.handleSLO))
	s.mux.Handle("GET /v1/alerts", s.instrument("alerts", s.handleAlerts))
	// Probes stay uninstrumented: a kubelet polling /healthz every few
	// seconds must not count toward the availability SLO or clutter the
	// per-endpoint latency families.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
}

// SLOResponse is the JSON body of GET /v1/slo.
type SLOResponse struct {
	Objectives []slo.ObjectiveStatus `json:"objectives"`
}

// AlertsResponse is the JSON body of GET /v1/alerts.
type AlertsResponse struct {
	Alerts []slo.AlertStatus `json:"alerts"`
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SLOResponse{Objectives: s.sloEng.Objectives()})
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, AlertsResponse{Alerts: s.sloEng.Alerts()})
}

// handleHealthz answers liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReadyzResponse is the JSON body of GET /readyz; each field is one
// readiness condition so a failing probe says which gate is shut.
type ReadyzResponse struct {
	Ready     bool `json:"ready"`
	PoolOpen  bool `json:"pool_open"`
	Preloaded bool `json:"preloaded"`
	Platforms int  `json:"platforms"`
}

// handleReadyz answers readiness: startup preloading has finished and
// the worker pool is accepting jobs. 503 until both hold.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := ReadyzResponse{
		PoolOpen:  !s.pool.Closed(),
		Preloaded: s.ready.Load(),
		Platforms: s.registry.Len(),
	}
	st.Ready = st.PoolOpen && st.Preloaded
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// statusClientClosedRequest is the nginx-convention status for "the
// client dropped the connection before we could answer". It never reaches
// the client (the connection is gone); it exists so metrics and logs can
// tell client impatience apart from genuine server faults.
const statusClientClosedRequest = 499

func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Correlation: honour a caller-supplied X-Request-ID (so a proxy or
		// test harness can stitch its own traces through) or mint one, echo
		// it in the response, and carry it in the context so every layer —
		// coalescer, pool, planner, deploy — logs under the same ID.
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		r = r.WithContext(obs.ContextWithRequestID(r.Context(), reqID))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		//adeptvet:allow nondet request latency measurement; serving-layer telemetry, not planner state
		start := time.Now()
		h(rec, r)
		//adeptvet:allow nondet request latency measurement; serving-layer telemetry, not planner state
		elapsed := time.Since(start)
		// A client cancellation is not a server error: it is recorded as a
		// request (and visible as a 499 in logs) but must not pollute the
		// error-rate the daemon is judged by.
		failed := rec.status >= 400 && rec.status != statusClientClosedRequest
		s.metrics.Observe(endpoint, elapsed, failed)
		level := slog.LevelDebug
		if failed {
			level = slog.LevelWarn
		}
		if s.logger.Enabled(r.Context(), level) {
			s.logger.LogAttrs(r.Context(), level, "request",
				slog.String("endpoint", endpoint),
				slog.String("request_id", reqID),
				slog.Int("status", rec.status),
				slog.Float64("elapsed_ms", float64(elapsed)/float64(time.Millisecond)))
		}
	})
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds is the backoff hint attached to 429 responses. The
// queue drains at planner speed, so one second is enough for a retried
// request to find either a free slot or a freshly cached result.
const retryAfterSeconds = 1

// writePlanError renders a planning failure, attaching the Retry-After
// backoff hint when the pool shed the request.
func writePlanError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds))
	}
	writeError(w, status, "%v", err)
}

// PlanRequest is the JSON body of POST /v1/plan (and each element of a
// batch). Exactly one of Platform (inline), PlatformName (registry
// reference) or Scenario (server-side generation) must be set. The service
// cost comes from Wapp when positive, else from DgemmN (defaulting to the
// paper's 310×310 DGEMM).
type PlanRequest struct {
	Platform     *platform.Platform `json:"platform,omitempty"`
	PlatformName string             `json:"platform_name,omitempty"`
	// Scenario generates the platform server-side from a declarative spec
	// (internal/scenario). Generation is deterministic, so the same spec
	// content-addresses the same cache entry; this is the intended way to
	// plan very large pools (say a million nodes) without shipping every
	// node over JSON.
	Scenario *scenario.Spec `json:"scenario,omitempty"`
	Planner  string         `json:"planner,omitempty"`
	Wapp     float64        `json:"wapp,omitempty"`
	DgemmN   int            `json:"dgemm_n,omitempty"`
	Demand   float64        `json:"demand,omitempty"`
	Costs    *model.Costs   `json:"costs,omitempty"`
	// Portfolio races every stock planner (internal/portfolio) and
	// answers with the best plan plus per-variant stats. Mutually
	// exclusive with Planner (it is a planner selection of its own).
	Portfolio bool `json:"portfolio,omitempty"`
	// TimeoutMillis optionally shortens the server-side planning deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// NoCache forces a fresh planning run (the result still refreshes the
	// cache).
	NoCache bool `json:"no_cache,omitempty"`
	// Trace requests a PlanTrace in the response: per-phase wall times,
	// planner work counters, and (for portfolio runs) per-variant
	// timings. Tracing is off by default and adds no allocations to the
	// cached-hit path; the trace never enters the cache key, so traced
	// and untraced requests share cache entries.
	Trace bool `json:"trace,omitempty"`
}

// PlanResponse is the JSON body answering a plan request.
type PlanResponse struct {
	Planner    string  `json:"planner"`
	Key        string  `json:"key"`
	Cached     bool    `json:"cached"`
	Coalesced  bool    `json:"coalesced,omitempty"`
	Rho        float64 `json:"rho"`
	Sched      float64 `json:"sched"`
	Service    float64 `json:"service"`
	Bottleneck string  `json:"bottleneck"`
	Capped     float64 `json:"capped"`
	NodesUsed  int     `json:"nodes_used"`
	// PoolNodes is the platform pool size the planner drew from.
	PoolNodes int `json:"pool_nodes"`
	// SpecClasses counts the distinct (power, link-bandwidth) equivalence
	// classes the class-collapsed planner bucketed the pool into; present
	// only when ClassPlanned is true.
	SpecClasses int `json:"spec_classes,omitempty"`
	// ClassPlanned reports that the heuristic ran its class-collapsed
	// path: candidate scans walked equivalence classes instead of nodes.
	ClassPlanned bool `json:"class_planned,omitempty"`
	Agents       int  `json:"agents"`
	Servers      int  `json:"servers"`
	Depth        int  `json:"depth"`
	// MinLinkBandwidth and MaxLinkBandwidth report the platform's effective
	// link-bandwidth range (equal on homogeneous-link platforms).
	MinLinkBandwidth float64 `json:"min_link_bandwidth_mbps"`
	MaxLinkBandwidth float64 `json:"max_link_bandwidth_mbps"`
	// Peer is the advertised URL of the cluster peer that actually
	// answered this request, set only when it was forwarded to the
	// content address's ring owner (or served from a retained copy of the
	// owner's answer). Empty in single-node mode and for self-owned keys.
	Peer      string  `json:"peer,omitempty"`
	XML       string  `json:"xml"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Variants reports the portfolio race (portfolio requests only;
	// answers served from the cache omit it — the race never re-ran).
	Variants []portfolio.Result `json:"variants,omitempty"`
	// Trace is the structured timing breakdown, present only when the
	// request set "trace":true. A request coalesced onto a flight that
	// another request leads carries only its own service-side phases —
	// the planner phases belong to the leader's trace.
	Trace *obs.PlanTrace `json:"trace,omitempty"`
}

// resolve turns the wire request into a planner plus core.Request.
func (s *Server) resolve(pr *PlanRequest) (core.Planner, core.Request, error) {
	var req core.Request
	sources := 0
	for _, set := range []bool{pr.Platform != nil, pr.PlatformName != "", pr.Scenario != nil} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return nil, req, errors.New("set exactly one of platform, platform_name or scenario")
	}
	switch {
	case pr.Platform != nil:
		req.Platform = pr.Platform
	case pr.PlatformName != "":
		p, ok := s.registry.Get(pr.PlatformName)
		if !ok {
			return nil, req, fmt.Errorf("platform %q not registered", pr.PlatformName)
		}
		req.Platform = p
	case pr.Scenario != nil:
		p, err := pr.Scenario.Generate()
		if err != nil {
			return nil, req, fmt.Errorf("generate scenario: %v", err)
		}
		req.Platform = p
	default:
		return nil, req, errors.New("missing platform, platform_name or scenario")
	}

	var planner core.Planner
	var err error
	if pr.Portfolio {
		if pr.Planner != "" && pr.Planner != "portfolio" {
			return nil, req, fmt.Errorf("portfolio=true conflicts with planner %q", pr.Planner)
		}
		planner = portfolio.New()
	} else if planner, err = SelectPlanner(pr.Planner); err != nil {
		return nil, req, fmt.Errorf("%v (have %v)", err, PlannerNames())
	}

	if pr.Costs != nil {
		req.Costs = *pr.Costs
	} else {
		req.Costs = model.DIETDefaults()
	}
	switch {
	case pr.Wapp > 0:
		req.Wapp = pr.Wapp
	case pr.DgemmN > 0:
		req.Wapp = workload.DGEMM{N: pr.DgemmN}.MFlop()
	default:
		req.Wapp = workload.DGEMM{N: 310}.MFlop()
	}
	req.Demand = workload.Demand(pr.Demand)
	if err := req.Validate(); err != nil {
		return nil, req, err
	}
	return planner, req, nil
}

// planStatus maps a planning failure to an HTTP status. A planner
// failure is a property of the request (pool too big for the exhaustive
// search, no feasible deployment, …), not a server fault — except when
// the deadline killed it (504), the client walked away (499, log-only),
// the pool shed it (429), or the daemon is shutting down (503).
func planStatus(r *http.Request, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The server-side deadline surfaces as DeadlineExceeded, so a bare
		// Canceled means someone upstream stopped caring — almost always
		// the client dropping the connection. Confirm against the request
		// context; anything else is treated as the deadline.
		if r.Context().Err() != nil {
			return statusClientClosedRequest
		}
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, errRenderPlan):
		// The planner succeeded and the daemon failed to render its
		// output: our fault, not the request's.
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// planResponse renders a rendered cache entry into the wire response.
// plat is the resolved request platform, consulted for the link stats.
func planResponse(entry *CachedPlan, key CacheKey, plat *platform.Platform, start time.Time, cached, coalesced bool, variants []portfolio.Result) *PlanResponse {
	plan := entry.Plan
	minBW, maxBW := plat.LinkRange()
	return &PlanResponse{
		Planner:          plan.Planner,
		Key:              string(key),
		Cached:           cached,
		Coalesced:        coalesced,
		Rho:              plan.Eval.Rho,
		Sched:            plan.Eval.Sched,
		Service:          plan.Eval.Service,
		Bottleneck:       plan.Eval.Bottleneck.String(),
		Capped:           plan.Capped,
		NodesUsed:        plan.NodesUsed,
		PoolNodes:        len(plat.Nodes),
		SpecClasses:      plan.PoolClasses,
		ClassPlanned:     plan.ClassPlanned,
		Agents:           entry.Stats.Agents,
		Servers:          entry.Stats.Servers,
		Depth:            entry.Stats.Depth,
		MinLinkBandwidth: minBW,
		MaxLinkBandwidth: maxBW,
		XML:              entry.XML,
		//adeptvet:allow nondet plan-latency field of the response; reporting only, the plan itself is deterministic
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Variants:  variants,
	}
}

// plan answers one plan request: cache first, then one coalesced planning
// run shared by every concurrent request with the same content address.
// The resolved core.Request is returned alongside the response so callers
// that need the model inputs (the deploy handler) do not resolve — and
// re-hit the registry — a second time.
func (s *Server) plan(r *http.Request, pr *PlanRequest) (*PlanResponse, core.Request, int, error) {
	// tr stays nil unless the request asked for a trace; every recorder
	// method is a no-op on nil, so the default path pays one pointer test
	// per instrumentation point and allocates nothing.
	var tr *obs.TraceRecorder
	if pr.Trace {
		tr = obs.NewTraceRecorder()
	}
	endResolve := tr.Phase("resolve")
	planner, req, err := s.resolve(pr)
	endResolve()
	if err != nil {
		return nil, req, http.StatusBadRequest, err
	}
	key, err := KeyFor(planner.Name(), req)
	if err != nil {
		return nil, req, http.StatusInternalServerError, err
	}

	//adeptvet:allow nondet plan latency measurement; reporting only, the plan itself is deterministic
	start := time.Now()
	if !pr.NoCache {
		// lookup, not Get: the miss is charged in runPlanner, so requests
		// that coalesce onto an existing flight count no miss of their own.
		endLookup := tr.Phase("cache_lookup")
		entry, ok := s.cache.Lookup(key)
		endLookup()
		if ok {
			resp := planResponse(entry, key, req.Platform, start, true, false, nil)
			s.finishTrace(r.Context(), tr, resp)
			return resp, req, http.StatusOK, nil
		}
	}

	// Consistent-hash routing: when a cluster is attached and another peer
	// owns this content address, answer from the owner — its cache holds
	// (or will hold) the one copy of this plan. Requests already forwarded
	// once are always planned here (single-hop loop prevention), and
	// no_cache runs are private by definition. A peer failure inside
	// ForwardPlan reports ok=false and the request degrades to the local
	// planning path below — never to a client-visible error.
	if s.cluster != nil && !pr.NoCache && r.Header.Get(ForwardedHeader) == "" {
		endForward := tr.Phase("forward")
		cresp, ok := s.cluster.ForwardPlan(r.Context(), key, pr)
		endForward()
		if ok {
			// The relayed response keeps the owner's trace when one was
			// requested: the planner phases happened there, not here.
			return cresp, req, http.StatusOK, nil
		}
	}

	timeout := s.cfg.PlanTimeout
	if pr.TimeoutMillis > 0 {
		if t := time.Duration(pr.TimeoutMillis) * time.Millisecond; t < timeout {
			timeout = t
		}
	}

	// runPlanner executes one planning run on the pool, renders the plan
	// and refreshes the cache. It is handed either our own request context
	// (no_cache: a private run) or a flight context detached from any
	// single client (the shared, coalesced run).
	runPlanner := func(ctx context.Context) flightResult {
		// The closure captures tr directly: on the coalesced path ctx is a
		// flight context detached from any request, so the trace must ride
		// the capture, not the context chain. Joiners that requested a
		// trace of their own still get only their service-side phases —
		// the planner phases belong to the flight leader's recorder.
		ctx = obs.ContextWithTrace(ctx, tr)
		if !pr.NoCache {
			// A previous flight may have landed between our cache miss and
			// this run starting; don't replan what is already cached — and
			// record it for what it is, a hit.
			if entry, ok := s.cache.Lookup(key); ok {
				return flightResult{entry: entry, cached: true}
			}
			s.cache.NoteMiss(key)
		}
		var plan *core.Plan
		var variants []portfolio.Result
		var err error
		endPlan := tr.Phase("plan")
		if pf, ok := planner.(*portfolio.Planner); ok {
			// Run the race through the worker pool but keep its
			// per-variant stats for the response.
			plan, err = s.pool.Submit(ctx, func(ctx context.Context) (*core.Plan, error) {
				p, vs, err := pf.PlanWithStats(ctx, req)
				variants = vs
				return p, err
			})
		} else {
			plan, err = s.pool.Plan(ctx, planner, req)
		}
		endPlan()
		if err != nil {
			return flightResult{err: err}
		}
		endRender := tr.Phase("render")
		entry, err := Render(plan)
		endRender()
		if err != nil {
			return flightResult{err: err}
		}
		if plan.ClassPlanned {
			s.classPlans.Add(1)
		}
		s.cache.Put(key, entry)
		return flightResult{entry: entry, variants: variants}
	}

	reqCtx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if pr.NoCache {
		// An explicit fresh run is never shared and never shares: the
		// caller asked for its own planner execution.
		fr := runPlanner(reqCtx)
		if fr.err != nil {
			return nil, req, planStatus(r, fr.err), fr.err
		}
		resp := planResponse(fr.entry, key, req.Platform, start, false, false, fr.variants)
		s.finishTrace(r.Context(), tr, resp)
		return resp, req, http.StatusOK, nil
	}

	// The shared run is bounded by the server-wide cap, not the leader's
	// possibly shortened timeout_ms: one impatient leader must not doom
	// joiners with bigger budgets to a 504. Each waiter's own reqCtx
	// (above) still enforces its personal deadline on the wait.
	fl, leader := s.flights.join(key, s.cfg.PlanTimeout, runPlanner)
	endWait := tr.Phase("flight_wait")
	fr := s.flights.wait(reqCtx, fl)
	endWait()
	if fr.err != nil {
		return nil, req, planStatus(r, fr.err), fr.err
	}
	// A leader whose flight resolved from a freshly landed cache entry is
	// a cache hit; joiners report the coalesced share either way.
	resp := planResponse(fr.entry, key, req.Platform, start, leader && fr.cached, !leader, fr.variants)
	s.finishTrace(r.Context(), tr, resp)
	return resp, req, http.StatusOK, nil
}

// finishTrace snapshots the recorder into the response and attaches the
// trace to a debug log record. No-op when tracing is off (tr nil).
// Reading tr here is safe on the coalesced path: the flight's done
// channel closed before wait returned, ordering the planner goroutine's
// trace writes before this read.
func (s *Server) finishTrace(ctx context.Context, tr *obs.TraceRecorder, resp *PlanResponse) {
	if tr == nil {
		return
	}
	t := tr.Trace()
	t.RequestID = obs.RequestIDFrom(ctx)
	resp.Trace = t
	if s.logger.Enabled(ctx, slog.LevelDebug) {
		s.logger.LogAttrs(ctx, slog.LevelDebug, "plan trace",
			slog.String("request_id", t.RequestID),
			slog.String("planner", resp.Planner),
			slog.Any("trace", t))
	}
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var pr PlanRequest
	if err := decodeBody(r, &pr); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	resp, _, status, err := s.plan(r, &pr)
	if err != nil {
		writePlanError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}

// BatchRequest fans one call out over many plan requests — e.g. the same
// platform across every planner, or one planner across many platforms.
type BatchRequest struct {
	Requests []PlanRequest `json:"requests"`
}

// BatchItem is one element of a batch response: either a plan or an error.
type BatchItem struct {
	Plan  *PlanResponse `json:"plan,omitempty"`
	Error string        `json:"error,omitempty"`
}

// BatchResponse answers POST /v1/plan/batch; Items is index-aligned with
// the request slice, and the counts summarise it so clients (and
// monitoring) need not scan every item to notice failures. A batch whose
// items all failed answers 422 instead of a hollow 200.
type BatchResponse struct {
	Items     []BatchItem `json:"items"`
	Succeeded int         `json:"succeeded"`
	Failed    int         `json:"failed"`
}

// maxBatch bounds one batch call; larger fan-outs should shard client-side.
const maxBatch = 256

func (s *Server) handlePlanBatch(w http.ResponseWriter, r *http.Request) {
	var br BatchRequest
	if err := decodeBody(r, &br); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(br.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(br.Requests) > maxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(br.Requests), maxBatch)
		return
	}
	items := make([]BatchItem, len(br.Requests))
	// The pool's admission control is fail-fast, so a batch must not dump
	// every item into Submit at once — a 256-item batch would shed
	// everything past workers+queue on an otherwise idle daemon. The
	// semaphore trickles items in at worker parallelism; items past it
	// wait here (in the handler, bounded by the batch size), while
	// genuinely concurrent external load still sees 429s per item.
	sem := make(chan struct{}, s.pool.Workers())
	statuses := make([]int, len(br.Requests))
	var wg sync.WaitGroup
	for i := range br.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-r.Context().Done():
				items[i] = BatchItem{Error: r.Context().Err().Error()}
				return
			}
			resp, _, status, err := s.plan(r, &br.Requests[i])
			statuses[i] = status
			if err != nil {
				items[i] = BatchItem{Error: err.Error()}
				return
			}
			items[i] = BatchItem{Plan: resp}
		}(i)
	}
	wg.Wait()
	out := BatchResponse{Items: items}
	for _, item := range items {
		if item.Error != "" {
			out.Failed++
		} else {
			out.Succeeded++
		}
	}
	status := http.StatusOK
	if out.Failed == len(items) {
		// All failed. When every failure was load shedding the batch is
		// retryable overload, not an unprocessable request — answer 429
		// with the same backoff hint as the single-plan path.
		shed := 0
		for _, st := range statuses {
			if st == http.StatusTooManyRequests || st == http.StatusServiceUnavailable {
				shed++
			}
		}
		if shed == len(items) {
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds))
		} else {
			status = http.StatusUnprocessableEntity
		}
	}
	writeJSON(w, status, out)
}

func (s *Server) handlePlatformList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"platforms": s.registry.Names()})
}

func (s *Server) handlePlatformGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	p, version, ok := s.registry.GetVersion(name)
	if !ok {
		writeError(w, http.StatusNotFound, "platform %q not registered", name)
		return
	}
	w.Header().Set("ETag", etagFor(version))
	writeJSON(w, http.StatusOK, p)
}

// etagFor renders a registry version as the strong ETag carried by
// platform responses and compared by If-Match.
func etagFor(version uint64) string {
	return `"` + strconv.FormatUint(version, 10) + `"`
}

// parseIfMatch decodes an If-Match header into PutIfMatch's expectation:
// nil for an absent header (unconditional write), MatchAny for "*", else
// the numeric version with optional quotes. A malformed value is a client
// error, not an unconditional write — silently ignoring it would re-open
// the lost-update hole the header exists to close.
func parseIfMatch(header string) (*uint64, error) {
	header = strings.TrimSpace(header)
	if header == "" {
		return nil, nil
	}
	if header == "*" {
		v := MatchAny
		return &v, nil
	}
	unquoted := strings.TrimPrefix(strings.TrimSuffix(header, `"`), `"`)
	v, err := strconv.ParseUint(unquoted, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("malformed If-Match %q: want a version number, a quoted version, or *", header)
	}
	if v == MatchAny {
		return nil, fmt.Errorf("malformed If-Match %q: version out of range", header)
	}
	return &v, nil
}

func (s *Server) handlePlatformPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	expect, err := parseIfMatch(r.Header.Get("If-Match"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	p, err := platform.ParseJSON(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	version, err := s.registry.PutIfMatch(name, p, expect)
	if err != nil {
		if errors.Is(err, ErrVersionMismatch) {
			// The writer's read is stale: reject it visibly instead of
			// silently dropping the concurrent writer's update.
			writeError(w, http.StatusPreconditionFailed, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.broadcast(RegistryUpdate{Name: name, Version: version, Platform: p})
	w.Header().Set("ETag", etagFor(version))
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "nodes": len(p.Nodes), "version": version})
}

func (s *Server) handlePlatformDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	expect, err := parseIfMatch(r.Header.Get("If-Match"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tombstone, existed, err := s.registry.DeleteIfMatch(name, expect)
	if err != nil {
		if errors.Is(err, ErrVersionMismatch) {
			writeError(w, http.StatusPreconditionFailed, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !existed {
		writeError(w, http.StatusNotFound, "platform %q not registered", name)
		return
	}
	s.broadcast(RegistryUpdate{Name: name, Version: tombstone, Deleted: true})
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name, "version": tombstone})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := s.metrics.Snapshot()
	rep.CacheHits, rep.CacheMisses = s.cache.Stats()
	rep.CacheSize = s.cache.Len()
	rep.CacheShards = s.cache.Shards()
	rep.Platforms = s.registry.Len()
	rep.ActivePlans = s.pool.Active()
	rep.Workers = s.pool.Workers()
	rep.QueueDepth = s.pool.QueueDepth()
	rep.QueueCapacity = s.pool.QueueCapacity()
	rep.PlansExecuted = s.pool.Executed()
	rep.Rejected = s.pool.Rejected()
	rep.Coalesced = s.flights.Coalesced()
	if s.cluster != nil {
		peer := s.cluster.Report()
		rep.Peer = &peer
	}
	writeJSON(w, http.StatusOK, rep)
}

// handlePromMetrics serves GET /metrics: the Prometheus text exposition
// of every registered family (request counters and latency histograms,
// cache/pool/flight gauges, Go runtime stats).
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.Prom().Handler().ServeHTTP(w, r)
}

// AutonomicEventsResponse is the JSON body of GET /v1/autonomic/events.
type AutonomicEventsResponse struct {
	// Events are the retained journal entries, oldest first. Total counts
	// every event ever journalled; a Total larger than the highest Seq
	// retained means the bounded ring evicted older entries.
	Events []obs.Event `json:"events"`
	Total  uint64      `json:"total"`
	// Truncated reports that the bounded ring evicted events between the
	// caller's since cursor and the oldest retained entry: the answer is
	// the oldest events still held, but there is a gap the consumer
	// cannot recover.
	Truncated bool `json:"truncated"`
}

// handleAutonomicEvents serves the MAPE-K decision journal. Pass
// ?since=SEQ to receive only events newer than a previously seen
// sequence number (long-poll style incremental consumption).
func (s *Server) handleAutonomicEvents(w http.ResponseWriter, r *http.Request) {
	var events []obs.Event
	var truncated bool
	if q := r.URL.Query().Get("since"); q != "" {
		seq, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since=%q: %v", q, err)
			return
		}
		events, truncated = s.journal.SinceTruncated(seq)
	} else {
		events = s.journal.Snapshot()
	}
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, AutonomicEventsResponse{Events: events, Total: s.journal.Total(), Truncated: truncated})
}

// DeployRequest is the JSON body of POST /v1/deploy: plan (or reuse a
// cached plan for) a platform, then actually launch the hierarchy on the
// in-process middleware runtime and drive closed-loop clients against it.
type DeployRequest struct {
	PlanRequest
	// Transport selects the middleware wire: "chan" (default) or "tcp".
	Transport string `json:"transport,omitempty"`
	// Clients is the closed-loop client count (default 2).
	Clients int `json:"clients,omitempty"`
	// DurationMillis is the load window (default 500ms, capped by the
	// server's MaxDeployDuration).
	DurationMillis int64 `json:"duration_ms,omitempty"`
}

// DeployResponse reports the live run.
type DeployResponse struct {
	Plan         *PlanResponse    `json:"plan"`
	Transport    string           `json:"transport"`
	Clients      int              `json:"clients"`
	DurationMS   float64          `json:"duration_ms"`
	Completed    int64            `json:"completed"`
	Failed       int64            `json:"failed"`
	Timeouts     int64            `json:"timeouts"`
	Throughput   float64          `json:"throughput_rps"`
	ServedCounts map[string]int64 `json:"served_counts"`
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var dr DeployRequest
	if err := decodeBody(r, &dr); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	resp, req, status, err := s.plan(r, &dr.PlanRequest)
	if err != nil {
		writePlanError(w, status, err)
		return
	}

	var transport deploy.TransportKind
	switch dr.Transport {
	case "", "chan":
		transport = deploy.TransportChan
	case "tcp":
		transport = deploy.TransportTCP
	default:
		writeError(w, http.StatusBadRequest, "unknown transport %q (have chan, tcp)", dr.Transport)
		return
	}
	clients := dr.Clients
	if clients <= 0 {
		clients = 2
	}
	duration := 500 * time.Millisecond
	if dr.DurationMillis > 0 {
		duration = time.Duration(dr.DurationMillis) * time.Millisecond
	}
	if duration > s.cfg.MaxDeployDuration {
		duration = s.cfg.MaxDeployDuration
	}

	// The plan's XML is the hand-off artifact (write_xml), exactly as the
	// CLI pipeline does it: re-parse, launch, load, stop.
	h, err := hierarchy.ParseXML(strings.NewReader(resp.XML))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reparse plan XML: %v", err)
		return
	}
	dep, err := deploy.Launch(h, deploy.Config{
		Transport: transport,
		Options: runtime.Options{
			Costs:     req.Costs,
			Bandwidth: req.Platform.Bandwidth,
			Wapp:      req.Wapp,
			// A workload phrased as a DGEMM dimension runs the real blocked
			// kernel on every service request; a raw Wapp stays
			// protocol-only (no modelled sleeps).
			DgemmN: dr.DgemmN,
		},
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "launch: %v", err)
		return
	}
	defer dep.Stop()
	if s.logger.Enabled(r.Context(), slog.LevelInfo) {
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "deployment launched",
			slog.String("request_id", obs.RequestIDFrom(r.Context())),
			slog.String("transport", string(transport)),
			slog.Int("agents", resp.Agents),
			slog.Int("servers", resp.Servers),
			slog.Int("clients", clients),
			slog.Float64("duration_ms", float64(duration)/float64(time.Millisecond)))
	}

	stats, err := dep.System.RunClients(r.Context(), clients, duration)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "load: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, DeployResponse{
		Plan:         resp,
		Transport:    string(transport),
		Clients:      clients,
		DurationMS:   float64(duration) / float64(time.Millisecond),
		Completed:    stats.Completed,
		Failed:       stats.Failed,
		Timeouts:     stats.Timeouts,
		Throughput:   float64(stats.Completed) / stats.Elapsed.Seconds(),
		ServedCounts: dep.System.ServedCounts(),
	})
}
