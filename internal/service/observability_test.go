package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestPlanTraceRoundTrip requests a portfolio plan with tracing on and
// checks the trace that comes back: service phases recorded, per-variant
// race spans present, and the trace's winner naming the same variant the
// returned plan credits.
func TestPlanTraceRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{
		Platform: testPlatform(12),
		DgemmN:   310,
		Planner:  "portfolio",
		Trace:    true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Trace == nil {
		t.Fatal("trace requested but response carries none")
	}
	if len(pr.Trace.Phases) == 0 {
		t.Fatal("trace has no phases")
	}
	phases := make(map[string]bool)
	for _, p := range pr.Trace.Phases {
		if p.DurationMS < 0 {
			t.Errorf("phase %s has negative duration %g", p.Name, p.DurationMS)
		}
		phases[p.Name] = true
	}
	for _, want := range []string{"resolve", "cache_lookup", "plan", "render", "race"} {
		if !phases[want] {
			t.Errorf("trace is missing phase %q (have %v)", want, pr.Trace.Phases)
		}
	}
	if pr.Trace.Winner == "" {
		t.Fatal("portfolio trace has no winner")
	}
	if want := "portfolio:" + pr.Trace.Winner; pr.Planner != want {
		t.Errorf("plan credited to %q, trace winner implies %q", pr.Planner, want)
	}
	if len(pr.Trace.Variants) == 0 {
		t.Fatal("portfolio trace has no variant spans")
	}
	winners := 0
	for _, v := range pr.Trace.Variants {
		if v.Winner {
			winners++
			if v.Name != pr.Trace.Winner {
				t.Errorf("variant %q flagged winner, trace says %q", v.Name, pr.Trace.Winner)
			}
		}
	}
	if winners != 1 {
		t.Errorf("want exactly one winning variant, got %d", winners)
	}
	if pr.Trace.RequestID == "" {
		t.Error("trace has no request ID")
	}
}

// TestPlanTraceRequestID checks request-ID correlation: the response
// always carries X-Request-ID, a caller-supplied ID is honoured, and the
// trace embeds the same ID.
func TestPlanTraceRequestID(t *testing.T) {
	_, ts := newTestServer(t)

	body, _ := json.Marshal(PlanRequest{Platform: testPlatform(8), DgemmN: 310, Trace: true})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "corr-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "corr-42" {
		t.Errorf("caller-supplied request ID not echoed: got %q", got)
	}
	var pr PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Trace == nil || pr.Trace.RequestID != "corr-42" {
		t.Errorf("trace request ID = %+v, want corr-42", pr.Trace)
	}

	// Without a caller ID the daemon mints one.
	resp2, _ := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: testPlatform(8), DgemmN: 310})
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID minted for anonymous request")
	}
}

// TestPlanTraceOffOmitted checks the default path: no trace in the
// response body at all (omitempty), cached or not.
func TestPlanTraceOffOmitted(t *testing.T) {
	_, ts := newTestServer(t)
	req := PlanRequest{Platform: testPlatform(8), DgemmN: 310}
	for i := 0; i < 2; i++ { // fresh, then cached
		resp, body := postJSON(t, ts.URL+"/v1/plan", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if strings.Contains(string(body), `"trace"`) {
			t.Fatalf("untraced response %d carries a trace: %s", i, body)
		}
	}
}

// TestPlanTraceCacheKeyUnaffected: trace is a response option, not plan
// input — a traced request must hit the cache entry a previous untraced
// request populated (and vice versa).
func TestPlanTraceCacheKeyUnaffected(t *testing.T) {
	_, ts := newTestServer(t)
	plain := PlanRequest{Platform: testPlatform(8), DgemmN: 310}
	traced := plain
	traced.Trace = true

	postJSON(t, ts.URL+"/v1/plan", plain)
	_, body := postJSON(t, ts.URL+"/v1/plan", traced)
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Cached {
		t.Error("traced request missed the cache entry its untraced twin created")
	}
	if pr.Trace == nil {
		t.Error("cached hit dropped the requested trace")
	}
}

// TestPlanTraceOffAllocations guards the zero-overhead claim on the hot
// path: on a cached hit the trace-off request must not allocate more
// than the traced variant — and the traced variant must actually pay for
// its recorder, proving the two paths diverge where they should.
func TestPlanTraceOffAllocations(t *testing.T) {
	srv, ts := newTestServer(t)
	warm := PlanRequest{Platform: testPlatform(8), DgemmN: 310}
	postJSON(t, ts.URL+"/v1/plan", warm) // populate the cache

	run := func(trace bool) float64 {
		pr := warm
		pr.Trace = trace
		return testing.AllocsPerRun(200, func() {
			r := httptest.NewRequest(http.MethodPost, "/v1/plan", nil)
			req := pr
			if _, _, _, err := srv.plan(r, &req); err != nil {
				t.Fatal(err)
			}
		})
	}
	off, on := run(false), run(true)
	if off >= on {
		t.Errorf("cached-hit allocations: trace-off %g >= trace-on %g — tracing is not free to enable or the off path regressed", off, on)
	}
}

// TestMetricsReportErrors exercises the top-level error accounting in
// the JSON report: a planning failure (unknown platform, 404) must show
// up in both the endpoint slice and the new top-level total.
func TestMetricsReportErrors(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: testPlatform(8), DgemmN: 310})
	resp, _ := postJSON(t, ts.URL+"/v1/plan", PlanRequest{PlatformName: "no-such-platform"})
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown platform: status %d, want 4xx", resp.StatusCode)
	}

	var rep Report
	getJSON(t, ts.URL+"/v1/metrics", &rep)
	if rep.Requests < 2 {
		t.Errorf("requests = %d, want >= 2", rep.Requests)
	}
	if rep.Errors == 0 {
		t.Error("top-level errors total missed the failed plan")
	}
	ep, ok := rep.Endpoints["plan"]
	if !ok {
		t.Fatalf("no plan endpoint slice in %+v", rep.Endpoints)
	}
	if ep.Errors == 0 {
		t.Error("plan endpoint slice missed the failed plan")
	}
	if rep.Errors < ep.Errors {
		t.Errorf("top-level errors %d < plan endpoint errors %d", rep.Errors, ep.Errors)
	}
}

// expositionLine matches one Prometheus text-format series line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// TestPromExposition scrapes GET /metrics after real traffic and checks
// the exposition: correct content type, every line well formed, HELP and
// TYPE present for the served families, and the daemon counters visible
// with plausible values.
func TestPromExposition(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: testPlatform(8), DgemmN: 310})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want text/plain; version=0.0.4", ct)
	}

	values := make(map[string]float64)
	helps := make(map[string]bool)
	types := make(map[string]bool)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case text == "":
			t.Errorf("line %d: blank line in exposition", line)
		case strings.HasPrefix(text, "# HELP "):
			helps[strings.Fields(text)[2]] = true
		case strings.HasPrefix(text, "# TYPE "):
			types[strings.Fields(text)[2]] = true
		case strings.HasPrefix(text, "#"):
			t.Errorf("line %d: unknown comment form %q", line, text)
		default:
			if !expositionLine.MatchString(text) {
				t.Errorf("line %d: malformed series line %q", line, text)
				continue
			}
			fields := strings.Fields(text)
			name := fields[0]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			var v float64
			fmt.Sscanf(fields[1], "%g", &v)
			values[name] += v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, fam := range []string{
		"adeptd_requests_total",
		"adeptd_request_duration_seconds",
		"adeptd_plans_executed_total",
		"adeptd_cache_hits_total",
		"adeptd_queue_depth",
		"adeptd_uptime_seconds",
		"go_goroutines",
	} {
		if !helps[fam] {
			t.Errorf("family %s has no HELP line", fam)
		}
		if !types[fam] {
			t.Errorf("family %s has no TYPE line", fam)
		}
	}
	if values["adeptd_plans_executed_total"] < 1 {
		t.Errorf("adeptd_plans_executed_total = %g after a fresh plan, want >= 1", values["adeptd_plans_executed_total"])
	}
	if values["adeptd_requests_total"] < 1 {
		t.Errorf("adeptd_requests_total = %g, want >= 1", values["adeptd_requests_total"])
	}
	if values["go_goroutines"] <= 0 {
		t.Errorf("go_goroutines = %g, want positive", values["go_goroutines"])
	}
}

// TestAutonomicEventsEndpoint runs a bounded sim session and reads the
// MAPE-K decision journal back: detect and patch events must appear, the
// since cursor must page, and a bad cursor must 400.
func TestAutonomicEventsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// Empty journal: valid JSON with a non-null empty list.
	var ev AutonomicEventsResponse
	getJSON(t, ts.URL+"/v1/autonomic/events", &ev)
	if ev.Events == nil || len(ev.Events) != 0 || ev.Total != 0 {
		t.Fatalf("fresh journal: %+v", ev)
	}

	start := AutonomicRequest{
		PlanRequest:  PlanRequest{Platform: autonomicPlatform(), Wapp: 10},
		Backend:      "sim",
		Clients:      12,
		Cycles:       30,
		Scenario:     []ScenarioPhase{{At: 40, Factors: map[string]float64{"s1": 2}}},
		CrashWindows: -1,
	}
	resp, body := postJSON(t, ts.URL+"/v1/autonomic/start", start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d: %s", resp.StatusCode, body)
	}
	var st AutonomicStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/autonomic/status", &st)
		if st.Done || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !st.Done {
		t.Fatalf("sim session did not finish")
	}

	getJSON(t, ts.URL+"/v1/autonomic/events", &ev)
	if len(ev.Events) == 0 {
		t.Fatal("no events journalled by a session that adapted")
	}
	if ev.Total < uint64(len(ev.Events)) {
		t.Errorf("total %d < retained %d", ev.Total, len(ev.Events))
	}
	kinds := make(map[string]int)
	lastSeq := uint64(0)
	for _, e := range ev.Events {
		kinds[e.Kind]++
		if e.Seq <= lastSeq {
			t.Errorf("event seqs not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.At.IsZero() {
			t.Errorf("event %d has no timestamp", e.Seq)
		}
	}
	if kinds["detect"] == 0 {
		t.Errorf("no detect events in %v", kinds)
	}
	if kinds["replan"] == 0 {
		t.Errorf("no replan events in %v", kinds)
	}
	if kinds["patch"] == 0 {
		t.Errorf("no patch events in %v", kinds)
	}

	// The since cursor pages: everything strictly after the mid seq.
	mid := ev.Events[len(ev.Events)/2].Seq
	var page AutonomicEventsResponse
	getJSON(t, fmt.Sprintf("%s/v1/autonomic/events?since=%d", ts.URL, mid), &page)
	for _, e := range page.Events {
		if e.Seq <= mid {
			t.Errorf("since=%d returned seq %d", mid, e.Seq)
		}
	}
	if got, want := len(page.Events), len(ev.Events)-(len(ev.Events)/2+1); got < want {
		t.Errorf("since=%d returned %d events, want >= %d", mid, got, want)
	}

	if r, err := http.Get(ts.URL + "/v1/autonomic/events?since=nope"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("bad since: status %d, want 400", r.StatusCode)
		}
	}

	postJSON(t, ts.URL+"/v1/autonomic/stop", struct{}{})
}
