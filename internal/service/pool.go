package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adept/internal/core"
	"adept/internal/obs"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("service: worker pool closed")

// ErrQueueFull is returned by Submit when every worker is busy and the
// waiting queue is at capacity. The HTTP layer maps it to 429 with a
// Retry-After header: under overload the daemon sheds load immediately
// instead of parking handler goroutines on a queue that cannot drain
// faster than the planners run.
var ErrQueueFull = errors.New("service: planning queue full")

// Pool is a bounded planning worker pool: a fixed set of goroutines
// executes planning jobs so that an arbitrary number of concurrent HTTP
// clients cannot fork an arbitrary number of planner runs. Jobs carry the
// submitter's context; a job cancelled while still queued is abandoned
// before a worker picks it up, and a running planner observes the same
// context through its PlanContext poll points.
//
// Admission is fail-fast: Submit never blocks on a full queue — it
// returns ErrQueueFull so callers can shed load (HTTP 429) instead of
// stacking up goroutines behind the planners.
type Pool struct {
	jobs     chan *poolJob
	quit     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool
	active   atomic.Int64  // jobs currently executing on a worker
	executed atomic.Uint64 // jobs whose fn actually ran
	rejected atomic.Uint64 // submissions refused with ErrQueueFull
	workers  int
}

type poolJob struct {
	ctx      context.Context
	fn       func(context.Context) (*core.Plan, error)
	done     chan poolResult
	enqueued time.Time
}

type poolResult struct {
	plan *core.Plan
	err  error
}

// NewPool starts a pool of the given number of workers with a queue of
// queueDepth waiting jobs. 0 means no queue: Submit is admitted only
// when a worker is parked in its receive at that instant, so a worker
// between jobs counts as busy and an idle pool can spuriously shed —
// give latency-sensitive callers at least a small queue (the daemon
// floors its own at 64).
func NewPool(workers, queueDepth int) (*Pool, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("service: pool needs at least one worker, got %d", workers)
	}
	if queueDepth < 0 {
		return nil, fmt.Errorf("service: negative queue depth %d", queueDepth)
	}
	p := &Pool{
		jobs:    make(chan *poolJob, queueDepth),
		quit:    make(chan struct{}),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p, nil
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case job := <-p.jobs:
			// Shutdown must be deterministic: a job dequeued after Close
			// has fired is rejected, never run — otherwise this select
			// racing against quit would randomly run or drop queued jobs.
			select {
			case <-p.quit:
				job.done <- poolResult{err: ErrPoolClosed}
			default:
				p.run(job)
			}
		}
	}
}

func (p *Pool) run(job *poolJob) {
	// The submitter may have given up while the job sat in the queue.
	if err := job.ctx.Err(); err != nil {
		job.done <- poolResult{err: err}
		return
	}
	// How long the job sat behind busy workers — a no-op unless the
	// submitter's context carries a trace recorder.
	//adeptvet:allow nondet queue-wait latency measurement; trace telemetry, not planner state
	obs.TraceFrom(job.ctx).Span("queue_wait", time.Since(job.enqueued))
	p.active.Add(1)
	p.executed.Add(1)
	plan, err := job.fn(job.ctx)
	p.active.Add(-1)
	job.done <- poolResult{plan: plan, err: err}
}

// Submit enqueues fn and blocks until a worker has run it (or the context
// fires first, whether queued or running — planners poll the same context).
// When all workers are busy and the queue is full it fails immediately
// with ErrQueueFull rather than blocking the caller.
func (p *Pool) Submit(ctx context.Context, fn func(context.Context) (*core.Plan, error)) (*core.Plan, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	//adeptvet:allow nondet enqueue timestamp for the queue-wait span; trace telemetry, not planner state
	job := &poolJob{ctx: ctx, fn: fn, done: make(chan poolResult, 1), enqueued: time.Now()}
	select {
	case p.jobs <- job:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.quit:
		return nil, ErrPoolClosed
	default:
		p.rejected.Add(1)
		return nil, ErrQueueFull
	}
	select {
	case res := <-job.done:
		return res.plan, res.err
	case <-ctx.Done():
		// The job may still be queued behind busy workers; give up now —
		// when a worker eventually dequeues it, run's ctx check discards
		// it, and the buffered done channel absorbs the orphan result.
		return nil, ctx.Err()
	case <-p.quit:
		// Shutdown while queued or running; the done channel is buffered,
		// so a worker mid-job can still complete without leaking.
		return nil, ErrPoolClosed
	}
}

// Plan runs planner.PlanContext(ctx, req) on a pool worker.
func (p *Pool) Plan(ctx context.Context, planner core.Planner, req core.Request) (*core.Plan, error) {
	return p.Submit(ctx, func(ctx context.Context) (*core.Plan, error) {
		return planner.PlanContext(ctx, req)
	})
}

// Active returns the number of jobs currently executing.
func (p *Pool) Active() int { return int(p.active.Load()) }

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth returns the number of jobs waiting for a worker right now.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// QueueCapacity returns the configured queue bound.
func (p *Pool) QueueCapacity() int { return cap(p.jobs) }

// Executed returns the cumulative count of jobs whose function ran.
func (p *Pool) Executed() uint64 { return p.executed.Load() }

// Rejected returns the cumulative count of fail-fast admissions refused
// with ErrQueueFull.
func (p *Pool) Rejected() uint64 { return p.rejected.Load() }

// Closed reports whether Close has been called — the readiness probe's
// "pool accepting work" check.
func (p *Pool) Closed() bool { return p.closed.Load() }

// Close stops the workers. Jobs already handed to a worker finish; jobs
// still queued at shutdown uniformly receive ErrPoolClosed — workers
// re-check quit after every dequeue, and Close drains whatever the
// workers never picked up once they have exited.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.quit)
	p.wg.Wait()
	for {
		select {
		case job := <-p.jobs:
			job.done <- poolResult{err: ErrPoolClosed}
		default:
			return
		}
	}
}
