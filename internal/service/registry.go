// Package service turns the one-shot planning pipeline into a long-running
// planning-as-a-service daemon — the direction the paper's future-work
// section sketches for ADePT and the role played by the long-lived
// deployment services of the related work (Flissi & Merle's deployment
// framework, Dearle et al.'s autonomic middleware).
//
// The subsystem has four parts, each usable on its own:
//
//   - Registry   — named, versioned platform descriptions with CRUD,
//     optimistic concurrency (If-Match), dir loading, and replication
//     hooks (see RegistryStore and ApplyRemote)
//   - PlanCache  — content-addressed plan cache with LRU eviction
//   - Pool       — bounded worker pool running planners under context
//   - Server     — the HTTP JSON API wiring the three together, plus a
//     live-deployment endpoint backed by internal/deploy
//
// cmd/adeptd is the thin binary around Server; examples/service is a
// client walkthrough. internal/cluster lifts the cache's digest sharding
// and the registry's versioning across processes (see the Cluster
// interface).
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"adept/internal/platform"
)

// ErrVersionMismatch reports a conditional write whose expected version no
// longer matches the entry — the caller's read is stale and its update
// must not silently overwrite the concurrent writer's. The HTTP layer
// maps it to 412 Precondition Failed.
var ErrVersionMismatch = errors.New("service: platform version mismatch")

// MatchAny is the expected-version wildcard (If-Match: *): the entry must
// exist, at any version.
const MatchAny = ^uint64(0)

// RegistryStore is the named-platform store the daemon plans against.
// *Registry is the in-memory (optionally journalled) default; the
// interface exists so the store can be decorated or replaced — the
// cluster layer replicates through it via ApplyRemote — while tests and
// single-node deployments keep the zero-config in-memory form.
type RegistryStore interface {
	// Put stores p under name unconditionally (last write wins), bumping
	// the entry's version.
	Put(name string, p *platform.Platform) error
	// PutIfMatch stores p under name with optimistic concurrency: expect
	// nil writes unconditionally, &MatchAny requires the entry to exist,
	// and any other value must equal the entry's current version (0 = "must
	// not exist yet"). It returns the new version, or ErrVersionMismatch.
	PutIfMatch(name string, p *platform.Platform, expect *uint64) (uint64, error)
	// Get returns a clone of the named platform.
	Get(name string) (*platform.Platform, bool)
	// GetVersion is Get plus the entry's current version.
	GetVersion(name string) (*platform.Platform, uint64, bool)
	// Delete removes the named platform unconditionally.
	Delete(name string) bool
	// DeleteIfMatch removes the named platform under the same expect
	// semantics as PutIfMatch, returning the tombstone version (the
	// deletion is itself a versioned event replication must order).
	DeleteIfMatch(name string, expect *uint64) (uint64, bool, error)
	// ApplyRemote folds a peer-originated update in: applied iff
	// u.Version is strictly newer than everything seen for u.Name, so
	// replays and out-of-order deliveries are harmless.
	ApplyRemote(u RegistryUpdate) (bool, error)
	// Names returns the registered names in sorted order.
	Names() []string
	// Len returns the number of registered platforms.
	Len() int
}

// regEntry pairs a stored platform with its monotonic version.
type regEntry struct {
	p       *platform.Platform
	version uint64
}

// Registry is a concurrency-safe store of named, versioned platform
// descriptions. Plan requests may reference a registered platform by name
// instead of inlining the full node list, so clients describe their pool
// once and plan against it many times.
//
// Every entry carries a monotonic version: each Put bumps it, each Delete
// records a tombstone version, and conditional writes (PutIfMatch /
// DeleteIfMatch) reject stale writers with ErrVersionMismatch instead of
// silently dropping their predecessor's update. Versions survive
// delete/re-create (the counter never rewinds for a name), which is what
// lets replicated peers order updates by version alone.
//
// With PersistTo enabled, every write journals the platform to disk
// (atomic temp-file rename) plus a version sidecar, and every delete
// removes the journal, so a daemon restart pointed at the same directory
// keeps its registered platforms — and deleted entries stay deleted.
type Registry struct {
	mu        sync.RWMutex
	platforms map[string]*regEntry
	// versions records the highest version ever seen per name, including
	// tombstones of deleted entries — guarded by mu with the map.
	versions map[string]uint64
	// persistMu serialises all writers (and their journal I/O), pinning
	// version check-then-act sequences and disk ordering against the map
	// updates without ever holding the read-path lock across disk writes:
	// a slow disk must not stall /v1/plan lookups in Get.
	persistMu  sync.Mutex
	persistDir string // guarded by persistMu
}

// NewRegistry returns an empty, non-persisting registry.
func NewRegistry() *Registry {
	return &Registry{
		platforms: make(map[string]*regEntry),
		versions:  make(map[string]uint64),
	}
}

// versionsSidecar is the file (inside the persist dir) recording the
// per-name version counters, tombstones included. It deliberately does
// not end in .json so LoadDir never mistakes it for a platform journal.
const versionsSidecar = ".adept-versions"

// PersistTo enables journaling: subsequent Puts write <name>.json into dir
// via a same-directory temp file renamed into place (atomic on POSIX), and
// Deletes remove the file. The directory is created if missing. Platforms
// already registered are not re-journalled; pair with LoadDir at startup.
func (r *Registry) PersistTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: persist dir: %w", err)
	}
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	r.persistDir = dir
	return nil
}

// validName rejects names that cannot double as file basenames: the
// registry journals entries as <name>.json, so a name must not escape the
// persist directory or collide with the journal's temp files.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("service: empty platform name")
	}
	if name == "." || name == ".." || strings.ContainsAny(name, `/\`) || strings.HasPrefix(name, ".") {
		return fmt.Errorf("service: invalid platform name %q", name)
	}
	return nil
}

// Put validates p and stores it under name, replacing any previous entry
// and bumping its version (unconditional last-write-wins; use PutIfMatch
// to reject stale writers). The registry keeps its own clone so later
// caller mutations cannot leak in.
func (r *Registry) Put(name string, p *platform.Platform) error {
	_, err := r.PutIfMatch(name, p, nil)
	return err
}

// PutIfMatch stores p under name with optimistic concurrency control.
// expect nil writes unconditionally; &MatchAny requires any existing
// entry; any other value must equal the entry's current version, with 0
// meaning "must not exist yet". A stale expectation returns
// ErrVersionMismatch — the caller's read-modify-write lost a race and
// must re-read, not overwrite. The new version is returned.
func (r *Registry) PutIfMatch(name string, p *platform.Platform, expect *uint64) (uint64, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	if p == nil {
		return 0, fmt.Errorf("service: nil platform %q", name)
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	clone := p.Clone()
	// persistMu serialises every writer, so the version comparison below
	// and the write that follows are one atomic step with respect to any
	// concurrent PutIfMatch/DeleteIfMatch on the same name.
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	r.mu.RLock()
	current := uint64(0)
	if e := r.platforms[name]; e != nil {
		current = e.version
	}
	next := r.versions[name] + 1
	r.mu.RUnlock()
	if err := checkMatch(name, current, expect); err != nil {
		return 0, err
	}
	if r.persistDir != "" {
		if err := persistPlatform(r.persistDir, name, p); err != nil {
			return 0, err
		}
	}
	r.mu.Lock()
	r.platforms[name] = &regEntry{p: clone, version: next}
	r.versions[name] = next
	r.mu.Unlock()
	r.persistVersionsLocked()
	return next, nil
}

// checkMatch compares an entry's current version against the caller's
// expectation (PutIfMatch semantics). current is 0 when the entry does
// not exist.
func checkMatch(name string, current uint64, expect *uint64) error {
	if expect == nil {
		return nil
	}
	switch {
	case *expect == MatchAny:
		if current == 0 {
			return fmt.Errorf("%w: %q does not exist (If-Match: *)", ErrVersionMismatch, name)
		}
	case *expect != current:
		return fmt.Errorf("%w: %q is at version %d, not %d", ErrVersionMismatch, name, current, *expect)
	}
	return nil
}

// persistPlatform journals p as dir/name.json: marshal, write to a
// same-directory temp file, fsync-free atomic rename. A crash mid-write
// leaves only a temp file the next LoadDir ignores, never a torn journal.
func persistPlatform(dir, name string, p *platform.Platform) error {
	data, err := p.MarshalIndent()
	if err != nil {
		return fmt.Errorf("service: persist %q: %w", name, err)
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: persist %q: %w", name, err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: persist %q: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name+".json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: persist %q: %w", name, err)
	}
	return nil
}

// persistVersionsLocked journals the version counters (tombstones
// included) into the sidecar file. Callers hold persistMu. Best-effort:
// the sidecar is an optimisation for cross-restart version continuity,
// not a correctness requirement for the in-memory store.
func (r *Registry) persistVersionsLocked() {
	if r.persistDir == "" {
		return
	}
	r.mu.RLock()
	// json.Marshal emits map keys in sorted order, so the sidecar bytes
	// are deterministic for equal contents.
	data, err := json.Marshal(r.versions)
	r.mu.RUnlock()
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(r.persistDir, versionsSidecar+".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(r.persistDir, versionsSidecar)); err != nil {
		os.Remove(tmp.Name())
	}
}

// Get returns a clone of the named platform, or false when absent.
func (r *Registry) Get(name string) (*platform.Platform, bool) {
	p, _, ok := r.GetVersion(name)
	return p, ok
}

// GetVersion returns a clone of the named platform plus its current
// version (the ETag conditional writes compare against), or false when
// absent.
func (r *Registry) GetVersion(name string) (*platform.Platform, uint64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.platforms[name]
	if !ok {
		return nil, 0, false
	}
	return e.p.Clone(), e.version, true
}

// Delete removes the named platform (and its journal file, when
// persisting), reporting whether it existed.
func (r *Registry) Delete(name string) bool {
	_, ok, _ := r.DeleteIfMatch(name, nil)
	return ok
}

// DeleteIfMatch removes the named platform under PutIfMatch's expect
// semantics and returns the tombstone version — the deletion is itself a
// versioned event, so replicated peers can order it against concurrent
// puts. The journal file is always removed alongside the entry: every
// name in the map passed validName on the way in (LoadDir and Put agree
// on validation), so there is no such thing as an entry whose journal
// cannot be deleted — the asymmetry that used to resurrect entries on
// restart.
func (r *Registry) DeleteIfMatch(name string, expect *uint64) (uint64, bool, error) {
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	r.mu.Lock()
	e, ok := r.platforms[name]
	current := uint64(0)
	if ok {
		current = e.version
	}
	if err := checkMatch(name, current, expect); err != nil {
		r.mu.Unlock()
		return 0, ok, err
	}
	if !ok {
		r.mu.Unlock()
		return 0, false, nil
	}
	delete(r.platforms, name)
	tombstone := r.versions[name] + 1
	r.versions[name] = tombstone
	r.mu.Unlock()
	if r.persistDir != "" {
		_ = os.Remove(filepath.Join(r.persistDir, name+".json"))
	}
	r.persistVersionsLocked()
	return tombstone, true, nil
}

// ApplyRemote folds a replication update from a peer into the store. It
// applies iff u.Version is strictly newer than the highest version seen
// locally for u.Name — duplicate deliveries, replays after webhook
// retries, and out-of-order arrivals are all no-ops, so convergence needs
// no coordination beyond the version itself. Local writes through
// Put/Delete keep their own monotonic counters above anything applied
// here, because both paths share the versions map.
func (r *Registry) ApplyRemote(u RegistryUpdate) (bool, error) {
	if err := validName(u.Name); err != nil {
		return false, err
	}
	if u.Version == 0 {
		return false, fmt.Errorf("service: remote update for %q carries no version", u.Name)
	}
	var clone *platform.Platform
	if !u.Deleted {
		if u.Platform == nil {
			return false, fmt.Errorf("service: remote update for %q carries no platform", u.Name)
		}
		if err := u.Platform.Validate(); err != nil {
			return false, err
		}
		clone = u.Platform.Clone()
	}
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	r.mu.Lock()
	if u.Version <= r.versions[u.Name] {
		r.mu.Unlock()
		return false, nil
	}
	r.versions[u.Name] = u.Version
	if u.Deleted {
		delete(r.platforms, u.Name)
	} else {
		r.platforms[u.Name] = &regEntry{p: clone, version: u.Version}
	}
	r.mu.Unlock()
	if r.persistDir != "" {
		if u.Deleted {
			_ = os.Remove(filepath.Join(r.persistDir, u.Name+".json"))
		} else if err := persistPlatform(r.persistDir, u.Name, u.Platform); err != nil {
			return true, err
		}
	}
	r.persistVersionsLocked()
	return true, nil
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.platforms))
	for name := range r.platforms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered platforms.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.platforms)
}

// LoadDir registers every *.json platform description in dir under its
// file basename (sans extension). It returns the names registered; a file
// that fails to parse or validate — or whose basename would not be a
// valid registry name — aborts the load with an error naming it, so the
// set of loadable journals and the set of deletable entries are exactly
// the same set: nothing can be loaded that Delete could not later remove.
// Entry versions are restored from the version sidecar when present
// (tombstoned names whose journal reappeared resume above their tombstone,
// never below), defaulting to 1 for journals from before versioning.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: load platforms: %w", err)
	}
	versions := loadVersions(dir)
	// Fold the whole sidecar into the version map up front, tombstones
	// included: a deleted name has no journal file to loop over below,
	// but its version line must still resume above the tombstone when
	// the name is re-created after the restart.
	r.persistMu.Lock()
	r.mu.Lock()
	for name, v := range versions {
		if v > r.versions[name] {
			r.versions[name] = v
		}
	}
	r.mu.Unlock()
	r.persistMu.Unlock()
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		// Reject at load, with the same validator Delete relies on: a
		// journal that sneaked in under a non-conforming filename must
		// fail loudly here, not become an undeletable registry entry.
		if err := validName(name); err != nil {
			return nil, fmt.Errorf("service: load %s: %w", e.Name(), err)
		}
		p, err := platform.LoadJSON(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("service: load %s: %w", e.Name(), err)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("service: load %s: %w", e.Name(), err)
		}
		version := versions[name]
		if version == 0 {
			version = 1
		}
		r.persistMu.Lock()
		r.mu.Lock()
		r.platforms[name] = &regEntry{p: p.Clone(), version: version}
		if version > r.versions[name] {
			r.versions[name] = version
		}
		r.mu.Unlock()
		r.persistMu.Unlock()
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loadVersions reads the version sidecar, tolerating its absence (dirs
// journalled before versioning) and corruption (versions restart at 1).
func loadVersions(dir string) map[string]uint64 {
	data, err := os.ReadFile(filepath.Join(dir, versionsSidecar))
	if err != nil {
		return nil
	}
	var versions map[string]uint64
	if err := json.Unmarshal(data, &versions); err != nil {
		return nil
	}
	return versions
}
