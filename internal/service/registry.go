// Package service turns the one-shot planning pipeline into a long-running
// planning-as-a-service daemon — the direction the paper's future-work
// section sketches for ADePT and the role played by the long-lived
// deployment services of the related work (Flissi & Merle's deployment
// framework, Dearle et al.'s autonomic middleware).
//
// The subsystem has four parts, each usable on its own:
//
//   - Registry   — named platform descriptions with CRUD and dir loading
//   - PlanCache  — content-addressed plan cache with LRU eviction
//   - Pool       — bounded worker pool running planners under context
//   - Server     — the HTTP JSON API wiring the three together, plus a
//     live-deployment endpoint backed by internal/deploy
//
// cmd/adeptd is the thin binary around Server; examples/service is a
// client walkthrough.
package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"adept/internal/platform"
)

// Registry is a concurrency-safe store of named platform descriptions.
// Plan requests may reference a registered platform by name instead of
// inlining the full node list, so clients describe their pool once and
// plan against it many times.
type Registry struct {
	mu        sync.RWMutex
	platforms map[string]*platform.Platform
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{platforms: make(map[string]*platform.Platform)}
}

// Put validates p and stores it under name, replacing any previous entry.
// The registry keeps its own clone so later caller mutations cannot leak in.
func (r *Registry) Put(name string, p *platform.Platform) error {
	if name == "" {
		return fmt.Errorf("service: empty platform name")
	}
	if p == nil {
		return fmt.Errorf("service: nil platform %q", name)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.platforms[name] = p.Clone()
	return nil
}

// Get returns a clone of the named platform, or false when absent.
func (r *Registry) Get(name string) (*platform.Platform, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.platforms[name]
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// Delete removes the named platform, reporting whether it existed.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.platforms[name]
	delete(r.platforms, name)
	return ok
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.platforms))
	for name := range r.platforms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered platforms.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.platforms)
}

// LoadDir registers every *.json platform description in dir under its
// file basename (sans extension). It returns the names registered; a file
// that fails to parse or validate aborts the load with an error naming it.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: load platforms: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		p, err := platform.LoadJSON(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("service: load %s: %w", e.Name(), err)
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		if err := r.Put(name, p); err != nil {
			return nil, fmt.Errorf("service: register %s: %w", e.Name(), err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
