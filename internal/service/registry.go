// Package service turns the one-shot planning pipeline into a long-running
// planning-as-a-service daemon — the direction the paper's future-work
// section sketches for ADePT and the role played by the long-lived
// deployment services of the related work (Flissi & Merle's deployment
// framework, Dearle et al.'s autonomic middleware).
//
// The subsystem has four parts, each usable on its own:
//
//   - Registry   — named platform descriptions with CRUD and dir loading
//   - PlanCache  — content-addressed plan cache with LRU eviction
//   - Pool       — bounded worker pool running planners under context
//   - Server     — the HTTP JSON API wiring the three together, plus a
//     live-deployment endpoint backed by internal/deploy
//
// cmd/adeptd is the thin binary around Server; examples/service is a
// client walkthrough.
package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"adept/internal/platform"
)

// Registry is a concurrency-safe store of named platform descriptions.
// Plan requests may reference a registered platform by name instead of
// inlining the full node list, so clients describe their pool once and
// plan against it many times. With PersistTo enabled, every Put journals
// the platform to disk (atomic temp-file rename) and every Delete removes
// it, so a daemon restart pointed at the same directory keeps its
// registered platforms.
type Registry struct {
	mu        sync.RWMutex
	platforms map[string]*platform.Platform
	// persistMu serialises journal I/O and pins its ordering against the
	// map updates, without ever holding the read-path lock across disk
	// writes: a slow disk must not stall /v1/plan lookups in Get.
	persistMu  sync.Mutex
	persistDir string // guarded by persistMu
}

// NewRegistry returns an empty, non-persisting registry.
func NewRegistry() *Registry {
	return &Registry{platforms: make(map[string]*platform.Platform)}
}

// PersistTo enables journaling: subsequent Puts write <name>.json into dir
// via a same-directory temp file renamed into place (atomic on POSIX), and
// Deletes remove the file. The directory is created if missing. Platforms
// already registered are not re-journalled; pair with LoadDir at startup.
func (r *Registry) PersistTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: persist dir: %w", err)
	}
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	r.persistDir = dir
	return nil
}

// validName rejects names that cannot double as file basenames: the
// registry journals entries as <name>.json, so a name must not escape the
// persist directory or collide with the journal's temp files.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("service: empty platform name")
	}
	if name == "." || name == ".." || strings.ContainsAny(name, `/\`) || strings.HasPrefix(name, ".") {
		return fmt.Errorf("service: invalid platform name %q", name)
	}
	return nil
}

// Put validates p and stores it under name, replacing any previous entry.
// The registry keeps its own clone so later caller mutations cannot leak in.
func (r *Registry) Put(name string, p *platform.Platform) error {
	if err := validName(name); err != nil {
		return err
	}
	if p == nil {
		return fmt.Errorf("service: nil platform %q", name)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	clone := p.Clone()
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	if r.persistDir != "" {
		if err := persistPlatform(r.persistDir, name, p); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.platforms[name] = clone
	r.mu.Unlock()
	return nil
}

// persistPlatform journals p as dir/name.json: marshal, write to a
// same-directory temp file, fsync-free atomic rename. A crash mid-write
// leaves only a temp file the next LoadDir ignores, never a torn journal.
func persistPlatform(dir, name string, p *platform.Platform) error {
	data, err := p.MarshalIndent()
	if err != nil {
		return fmt.Errorf("service: persist %q: %w", name, err)
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: persist %q: %w", name, err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: persist %q: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name+".json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: persist %q: %w", name, err)
	}
	return nil
}

// Get returns a clone of the named platform, or false when absent.
func (r *Registry) Get(name string) (*platform.Platform, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.platforms[name]
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// Delete removes the named platform (and its journal file, when
// persisting), reporting whether it existed.
func (r *Registry) Delete(name string) bool {
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	r.mu.Lock()
	_, ok := r.platforms[name]
	delete(r.platforms, name)
	r.mu.Unlock()
	if ok && r.persistDir != "" && validName(name) == nil {
		_ = os.Remove(filepath.Join(r.persistDir, name+".json"))
	}
	return ok
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.platforms))
	for name := range r.platforms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered platforms.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.platforms)
}

// LoadDir registers every *.json platform description in dir under its
// file basename (sans extension). It returns the names registered; a file
// that fails to parse or validate aborts the load with an error naming it.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: load platforms: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		p, err := platform.LoadJSON(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("service: load %s: %w", e.Name(), err)
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		if err := r.Put(name, p); err != nil {
			return nil, fmt.Errorf("service: register %s: %w", e.Name(), err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
