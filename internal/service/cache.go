package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

// cacheKeyInput is the canonical form hashed into a cache key. JSON
// marshalling of a struct emits fields in declaration order, so the
// encoding — and therefore the digest — is deterministic for equal
// inputs. Every field that changes the planning outcome is present:
// the planner, the full platform (names, powers, order, bandwidth),
// the Table 3 costs, the application cost, and the demand cap.
type cacheKeyInput struct {
	Planner  string             `json:"planner"`
	Platform *platform.Platform `json:"platform"`
	Costs    model.Costs        `json:"costs"`
	Wapp     float64            `json:"wapp"`
	Demand   workload.Demand    `json:"demand"`
}

// CacheKey is the content address of a plan request: a hex SHA-256 digest.
type CacheKey string

// KeyFor computes the content address of (planner, request).
func KeyFor(planner string, req core.Request) (CacheKey, error) {
	data, err := json.Marshal(cacheKeyInput{
		Planner:  planner,
		Platform: req.Platform,
		Costs:    req.Costs,
		Wapp:     req.Wapp,
		Demand:   req.Demand,
	})
	if err != nil {
		return "", fmt.Errorf("service: cache key: %w", err)
	}
	sum := sha256.Sum256(data)
	return CacheKey(hex.EncodeToString(sum[:])), nil
}

// CachedPlan is the immutable rendered form of a plan as stored in the
// cache: the plan itself (a private clone, to be treated as read-only),
// plus the deployment XML and hierarchy stats precomputed once at Render
// time. Hot cache hits are answered entirely from this struct, so
// concurrent readers never touch a shared mutable *core.Plan — the
// pre-sharding cache handed the same pointer to every caller, and the
// handlers then ran XML marshalling and stats walks on it from many
// goroutines at once.
type CachedPlan struct {
	Plan  *core.Plan
	XML   string
	Stats hierarchy.Stats
}

// errRenderPlan marks a failure to render a successfully planned
// deployment — a daemon-side fault the HTTP layer maps to 500, never a
// property of the client's request.
var errRenderPlan = errors.New("service: render plan")

// Render clones plan and precomputes its XML and hierarchy stats,
// producing the immutable entry the cache stores. The clone isolates the
// cache from any later mutation of the caller's plan.
func Render(plan *core.Plan) (*CachedPlan, error) {
	xml, err := plan.XML()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errRenderPlan, err)
	}
	stats := plan.Hierarchy.ComputeStats()
	cp := *plan
	cp.Hierarchy = plan.Hierarchy.Clone()
	return &CachedPlan{Plan: &cp, XML: xml, Stats: stats}, nil
}

// CacheStore is the content-addressed plan cache behind the daemon.
// *PlanCache is the in-memory lock-striped default; the interface exists
// so the store can be decorated or replaced (tiered, persistent, …)
// while single-node deployments and tests keep the zero-config in-memory
// form. Entries are immutable once stored — content addresses never go
// stale — which is also what lets the cluster layer shard them across
// processes by digest.
type CacheStore interface {
	// Get returns the cached rendered plan, charging a hit or a miss.
	Get(key CacheKey) (*CachedPlan, bool)
	// Lookup is Get without the miss accounting (see PlanCache.Lookup).
	Lookup(key CacheKey) (*CachedPlan, bool)
	// NoteMiss charges one miss against key.
	NoteMiss(key CacheKey)
	// Put stores the rendered plan under key.
	Put(key CacheKey, plan *CachedPlan)
	// Contains reports presence without touching recency or counters.
	Contains(key CacheKey) bool
	// Keys snapshots the cached content addresses (any order).
	Keys() []CacheKey
	Len() int
	Shards() int
	ShardSizes() []int
	Stats() (hits, misses uint64)
}

// defaultCacheShards is the segment count of the sharded cache. Sixteen
// stripes keep lock hold times independent across the digest space at any
// worker count the daemon realistically runs with.
const defaultCacheShards = 16

// PlanCache is a content-addressed, LRU-evicting plan cache. Identical
// requests (same platform, costs, Wapp, demand, planner) hash to the same
// key and are answered without re-planning; any change to any input
// produces a different key and therefore a miss.
//
// The cache is sharded into power-of-two lock-striped segments selected
// by the leading byte of the digest, so concurrent hot hits on different
// keys do not serialise on one mutex. Capacity is split evenly across
// shards and eviction is LRU per shard — with SHA-256 keys the shards
// fill uniformly, so the global behaviour approximates a single LRU.
type PlanCache struct {
	shards []cacheShard
	mask   uint32
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[CacheKey]*list.Element
	order    *list.List // front = most recently used
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key  CacheKey
	plan *CachedPlan
}

// minShardCapacity floors the entries per shard: a small cache split into
// single-entry stripes would thrash whenever two hot digests collide on a
// shard, so the shard count shrinks before per-shard capacity does.
const minShardCapacity = 8

// NewPlanCache builds a cache holding at most capacity plans across the
// default shard count (reduced for small capacities so every shard keeps
// a useful LRU depth); capacity must be positive.
func NewPlanCache(capacity int) (*PlanCache, error) {
	shards := defaultCacheShards
	for shards > 1 && capacity/shards < minShardCapacity {
		shards /= 2
	}
	return newPlanCacheShards(capacity, shards)
}

// newPlanCacheShards builds a cache with an explicit shard count (rounded
// down to a power of two, and never above capacity so every shard holds
// at least one entry). Tests use a single shard for deterministic global
// LRU order.
func newPlanCacheShards(capacity, shards int) (*PlanCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("service: cache capacity must be positive, got %d", capacity)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("service: cache shard count must be positive, got %d", shards)
	}
	for shards > capacity {
		shards /= 2
	}
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	c := &PlanCache{shards: make([]cacheShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		per := capacity / n
		if i < capacity%n {
			per++
		}
		c.shards[i] = cacheShard{
			capacity: per,
			entries:  make(map[CacheKey]*list.Element, per),
			order:    list.New(),
		}
	}
	return c, nil
}

// shard selects the segment for key: the digest's leading byte for hex
// keys (uniform by construction for SHA-256 addresses), an FNV hash
// otherwise.
func (c *PlanCache) shard(key CacheKey) *cacheShard {
	if len(key) >= 2 {
		if b, err := hex.DecodeString(string(key[:2])); err == nil {
			return &c.shards[uint32(b[0])&c.mask]
		}
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &c.shards[h.Sum32()&c.mask]
}

// Get returns the cached rendered plan for key, recording a hit or miss
// and refreshing the entry's recency on a hit. The returned entry is
// shared between callers and must be treated as read-only.
func (c *PlanCache) Get(key CacheKey) (*CachedPlan, bool) {
	entry, ok := c.Lookup(key)
	if !ok {
		c.NoteMiss(key)
	}
	return entry, ok
}

// Lookup is Get without the miss accounting: a hit is recorded (and
// recency refreshed), an absence is reported silently. The serving layer
// uses it so that a thundering herd coalescing onto one flight charges
// one miss — attributed where the planning run happens — rather than N.
func (c *PlanCache) Lookup(key CacheKey) (*CachedPlan, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// NoteMiss charges one miss against key's shard.
func (c *PlanCache) NoteMiss(key CacheKey) {
	s := c.shard(key)
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

// peek reports the cached entry without touching recency or the hit/miss
// counters — the coalescing layer uses it to close the miss-to-flight
// window without double-counting stats.
func (c *PlanCache) peek(key CacheKey) (*CachedPlan, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).plan, true
}

// Put stores the rendered plan under key, evicting the least recently
// used entry of the key's shard when that shard is at capacity. Storing
// an existing key refreshes its value and recency.
func (c *PlanCache) Put(key CacheKey, plan *CachedPlan) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).plan = plan
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, plan: plan})
}

// Contains reports whether key is cached without touching recency or the
// hit/miss counters.
func (c *PlanCache) Contains(key CacheKey) bool {
	_, ok := c.peek(key)
	return ok
}

// Len returns the number of cached plans across all shards.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Shards returns the shard count.
func (c *PlanCache) Shards() int { return len(c.shards) }

// Keys returns the content addresses currently cached, in shard order
// (arbitrary within a shard). The cluster status endpoint uses it to
// report how many locally cached keys each ring peer owns.
func (c *PlanCache) Keys() []CacheKey {
	keys := make([]CacheKey, 0, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			keys = append(keys, k)
		}
		s.mu.Unlock()
	}
	return keys
}

// ShardSizes returns the entry count per shard, indexed by shard. The
// metrics exposition uses it to make uneven shard fill visible.
func (c *PlanCache) ShardSizes() []int {
	sizes := make([]int, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		sizes[i] = s.order.Len()
		s.mu.Unlock()
	}
	return sizes
}

// Stats returns the cumulative hit and miss counts summed over shards.
func (c *PlanCache) Stats() (hits, misses uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}
