package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

// cacheKeyInput is the canonical form hashed into a cache key. JSON
// marshalling of a struct emits fields in declaration order, so the
// encoding — and therefore the digest — is deterministic for equal
// inputs. Every field that changes the planning outcome is present:
// the planner, the full platform (names, powers, order, bandwidth),
// the Table 3 costs, the application cost, and the demand cap.
type cacheKeyInput struct {
	Planner  string             `json:"planner"`
	Platform *platform.Platform `json:"platform"`
	Costs    model.Costs        `json:"costs"`
	Wapp     float64            `json:"wapp"`
	Demand   workload.Demand    `json:"demand"`
}

// CacheKey is the content address of a plan request: a hex SHA-256 digest.
type CacheKey string

// KeyFor computes the content address of (planner, request).
func KeyFor(planner string, req core.Request) (CacheKey, error) {
	data, err := json.Marshal(cacheKeyInput{
		Planner:  planner,
		Platform: req.Platform,
		Costs:    req.Costs,
		Wapp:     req.Wapp,
		Demand:   req.Demand,
	})
	if err != nil {
		return "", fmt.Errorf("service: cache key: %w", err)
	}
	sum := sha256.Sum256(data)
	return CacheKey(hex.EncodeToString(sum[:])), nil
}

// PlanCache is a content-addressed, LRU-evicting plan cache. Identical
// requests (same platform, costs, Wapp, demand, planner) hash to the same
// key and are answered without re-planning; any change to any input
// produces a different key and therefore a miss. Cached plans are shared
// between callers and must be treated as read-only.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[CacheKey]*list.Element
	order    *list.List // front = most recently used
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key  CacheKey
	plan *core.Plan
}

// NewPlanCache builds a cache holding at most capacity plans; capacity
// must be positive.
func NewPlanCache(capacity int) (*PlanCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("service: cache capacity must be positive, got %d", capacity)
	}
	return &PlanCache{
		capacity: capacity,
		entries:  make(map[CacheKey]*list.Element, capacity),
		order:    list.New(),
	}, nil
}

// Get returns the cached plan for key, recording a hit or miss and
// refreshing the entry's recency on a hit.
func (c *PlanCache) Get(key CacheKey) (*core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// Put stores plan under key, evicting the least recently used entry when
// the cache is at capacity. Storing an existing key refreshes its value
// and recency.
func (c *PlanCache) Put(key CacheKey, plan *core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).plan = plan
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, plan: plan})
}

// Contains reports whether key is cached without touching recency or the
// hit/miss counters.
func (c *PlanCache) Contains(key CacheKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *PlanCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
