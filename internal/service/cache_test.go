package service

import (
	"testing"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

func testRequest(t *testing.T, seed int64) core.Request {
	t.Helper()
	plat, err := platform.Generate(platform.GenSpec{
		Name: "cache-test", N: 12, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 310}.MFlop(),
	}
}

func TestKeyForDeterministic(t *testing.T) {
	req := testRequest(t, 1)
	k1, err := KeyFor("heuristic", req)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyFor("heuristic", req)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("identical requests hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a hex sha256", k1)
	}
}

func TestKeyForSensitivity(t *testing.T) {
	base := testRequest(t, 1)
	baseKey, err := KeyFor("heuristic", base)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func() (string, core.Request){
		"changed Wapp": func() (string, core.Request) {
			r := base
			r.Wapp = workload.DGEMM{N: 311}.MFlop()
			return "heuristic", r
		},
		"changed demand": func() (string, core.Request) {
			r := base
			r.Demand = 50
			return "heuristic", r
		},
		"changed planner": func() (string, core.Request) {
			return "star", base
		},
		"changed costs": func() (string, core.Request) {
			r := base
			r.Costs.AgentWreq *= 2
			return "heuristic", r
		},
		"changed platform": func() (string, core.Request) {
			r := base
			r.Platform = r.Platform.Clone()
			r.Platform.Nodes[0].Power += 1
			return "heuristic", r
		},
	}
	for name, mutate := range cases {
		planner, req := mutate()
		k, err := KeyFor(planner, req)
		if err != nil {
			t.Fatal(err)
		}
		if k == baseKey {
			t.Errorf("%s: key unchanged", name)
		}
	}
}

func TestCacheHitOnIdenticalRequest(t *testing.T) {
	cache, err := NewPlanCache(4)
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, 2)
	key, err := KeyFor("heuristic", req)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := cache.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, plan)

	// An identical request re-hashes to the same key and hits.
	key2, err := KeyFor("heuristic", testRequest(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get(key2)
	if !ok {
		t.Fatal("identical request missed")
	}
	if got != plan {
		t.Error("hit returned a different plan")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestCacheMissOnChangedWapp(t *testing.T) {
	cache, err := NewPlanCache(4)
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, 3)
	key, err := KeyFor("heuristic", req)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, plan)

	changed := req
	changed.Wapp = workload.DGEMM{N: 500}.MFlop()
	changedKey, err := KeyFor("heuristic", changed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(changedKey); ok {
		t.Error("changed-Wapp request hit the cache")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cache, err := NewPlanCache(2)
	if err != nil {
		t.Fatal(err)
	}
	plan := &core.Plan{Planner: "stub"}
	cache.Put("a", plan)
	cache.Put("b", plan)
	// Touch "a" so "b" becomes least recently used.
	if _, ok := cache.Get("a"); !ok {
		t.Fatal("a missing")
	}
	cache.Put("c", plan) // evicts "b"

	if cache.Len() != 2 {
		t.Errorf("len = %d, want 2", cache.Len())
	}
	if !cache.Contains("a") {
		t.Error("recently used entry evicted")
	}
	if cache.Contains("b") {
		t.Error("LRU entry survived eviction")
	}
	if !cache.Contains("c") {
		t.Error("new entry missing")
	}
}

func TestCacheRejectsBadCapacity(t *testing.T) {
	if _, err := NewPlanCache(0); err == nil {
		t.Error("capacity 0 accepted")
	}
}
