package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

func testRequest(t *testing.T, seed int64) core.Request {
	t.Helper()
	plat, err := platform.Generate(platform.GenSpec{
		Name: "cache-test", N: 12, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 310}.MFlop(),
	}
}

func TestKeyForDeterministic(t *testing.T) {
	req := testRequest(t, 1)
	k1, err := KeyFor("heuristic", req)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyFor("heuristic", req)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("identical requests hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a hex sha256", k1)
	}
}

func TestKeyForSensitivity(t *testing.T) {
	base := testRequest(t, 1)
	baseKey, err := KeyFor("heuristic", base)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func() (string, core.Request){
		"changed Wapp": func() (string, core.Request) {
			r := base
			r.Wapp = workload.DGEMM{N: 311}.MFlop()
			return "heuristic", r
		},
		"changed demand": func() (string, core.Request) {
			r := base
			r.Demand = 50
			return "heuristic", r
		},
		"changed planner": func() (string, core.Request) {
			return "star", base
		},
		"changed costs": func() (string, core.Request) {
			r := base
			r.Costs.AgentWreq *= 2
			return "heuristic", r
		},
		"changed platform": func() (string, core.Request) {
			r := base
			r.Platform = r.Platform.Clone()
			r.Platform.Nodes[0].Power += 1
			return "heuristic", r
		},
	}
	for name, mutate := range cases {
		planner, req := mutate()
		k, err := KeyFor(planner, req)
		if err != nil {
			t.Fatal(err)
		}
		if k == baseKey {
			t.Errorf("%s: key unchanged", name)
		}
	}
}

func mustRender(t *testing.T, plan *core.Plan) *CachedPlan {
	t.Helper()
	entry, err := Render(plan)
	if err != nil {
		t.Fatal(err)
	}
	return entry
}

func TestCacheHitOnIdenticalRequest(t *testing.T) {
	cache, err := NewPlanCache(4)
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, 2)
	key, err := KeyFor("heuristic", req)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := cache.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, mustRender(t, plan))

	// An identical request re-hashes to the same key and hits.
	key2, err := KeyFor("heuristic", testRequest(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get(key2)
	if !ok {
		t.Fatal("identical request missed")
	}
	if got.Plan.Eval.Rho != plan.Eval.Rho {
		t.Errorf("hit rho %g != planned rho %g", got.Plan.Eval.Rho, plan.Eval.Rho)
	}
	wantXML, err := plan.XML()
	if err != nil {
		t.Fatal(err)
	}
	if got.XML != wantXML {
		t.Error("pre-rendered XML differs from plan.XML()")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// The cached entry must be isolated from the plan the planner handed
// over: mutating the original hierarchy after Put cannot corrupt what
// other goroutines read back.
func TestCacheEntryIsolatedFromCallerPlan(t *testing.T) {
	cache, err := NewPlanCache(4)
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, 5)
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	key, err := KeyFor("heuristic", req)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, mustRender(t, plan))

	agents := plan.Hierarchy.ComputeStats().Agents
	// Vandalise the caller's copy.
	if err := plan.Hierarchy.SetBacking(plan.Hierarchy.Root(), "vandal", 1); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get(key)
	if !ok {
		t.Fatal("entry missing")
	}
	if got.Stats.Agents != agents {
		t.Errorf("cached stats mutated: agents %d, want %d", got.Stats.Agents, agents)
	}
	for _, n := range got.Plan.Hierarchy.Nodes() {
		if n.Name == "vandal" {
			t.Fatal("caller mutation leaked into cached hierarchy")
		}
	}
}

func TestCacheMissOnChangedWapp(t *testing.T) {
	cache, err := NewPlanCache(4)
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, 3)
	key, err := KeyFor("heuristic", req)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, mustRender(t, plan))

	changed := req
	changed.Wapp = workload.DGEMM{N: 500}.MFlop()
	changedKey, err := KeyFor("heuristic", changed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(changedKey); ok {
		t.Error("changed-Wapp request hit the cache")
	}
}

// stubEntry builds a minimal rendered entry for cache-mechanics tests
// that never look inside the plan.
func stubEntry() *CachedPlan {
	return &CachedPlan{Plan: &core.Plan{Planner: "stub"}}
}

// A single-shard cache behaves as one global LRU: the classic recency/
// eviction contract, deterministic because every key shares the stripe.
func TestCacheLRUEvictionSingleShard(t *testing.T) {
	cache, err := newPlanCacheShards(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put("a", stubEntry())
	cache.Put("b", stubEntry())
	// Touch "a" so "b" becomes least recently used.
	if _, ok := cache.Get("a"); !ok {
		t.Fatal("a missing")
	}
	cache.Put("c", stubEntry()) // evicts "b"

	if cache.Len() != 2 {
		t.Errorf("len = %d, want 2", cache.Len())
	}
	if !cache.Contains("a") {
		t.Error("recently used entry evicted")
	}
	if cache.Contains("b") {
		t.Error("LRU entry survived eviction")
	}
	if !cache.Contains("c") {
		t.Error("new entry missing")
	}
}

// shardKey fabricates a hex key routed to the given shard index.
func shardKey(t *testing.T, c *PlanCache, shard, n int) CacheKey {
	t.Helper()
	key := CacheKey(fmt.Sprintf("%02x%06d", shard, n))
	if got := c.shard(key); got != &c.shards[shard&int(c.mask)] {
		t.Fatalf("key %q not routed to shard %d", key, shard)
	}
	return key
}

// Eviction and recency are per shard: filling one stripe past its slice
// of the capacity evicts only within that stripe and respects LRU order
// there, while other stripes are untouched.
func TestCacheShardEvictionAndRecency(t *testing.T) {
	cache, err := newPlanCacheShards(16, 4) // 4 shards x 4 entries
	if err != nil {
		t.Fatal(err)
	}
	if cache.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", cache.Shards())
	}

	// Park one resident in shard 1; it must survive shard 0 churn.
	resident := shardKey(t, cache, 1, 0)
	cache.Put(resident, stubEntry())

	keys := make([]CacheKey, 5)
	for i := range keys {
		keys[i] = shardKey(t, cache, 0, i)
	}
	for _, k := range keys[:4] {
		cache.Put(k, stubEntry())
	}
	// Refresh keys[0] so keys[1] is shard 0's LRU victim.
	if _, ok := cache.Get(keys[0]); !ok {
		t.Fatal("keys[0] missing")
	}
	cache.Put(keys[4], stubEntry())

	if cache.Contains(keys[1]) {
		t.Error("shard-LRU victim survived")
	}
	for _, k := range []CacheKey{keys[0], keys[2], keys[3], keys[4]} {
		if !cache.Contains(k) {
			t.Errorf("key %s evicted, want resident", k)
		}
	}
	if !cache.Contains(resident) {
		t.Error("churn in shard 0 evicted shard 1's resident")
	}
	if cache.Len() != 5 {
		t.Errorf("len = %d, want 5", cache.Len())
	}
}

// The shard count rounds down to a power of two and never exceeds the
// capacity, so every stripe holds at least one entry; total occupancy
// never exceeds the configured capacity under uniform keys.
func TestCacheShardSizing(t *testing.T) {
	cases := []struct {
		capacity, shards, want int
	}{
		{256, 16, 16},
		{10, 16, 8},
		{1, 16, 1},
		{3, 4, 2},
		{7, 7, 4},
	}
	for _, tc := range cases {
		c, err := newPlanCacheShards(tc.capacity, tc.shards)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Shards(); got != tc.want {
			t.Errorf("cap %d shards %d: got %d shards, want %d", tc.capacity, tc.shards, got, tc.want)
		}
		total := 0
		for i := range c.shards {
			if c.shards[i].capacity < 1 {
				t.Errorf("cap %d shards %d: shard %d has capacity %d", tc.capacity, tc.shards, i, c.shards[i].capacity)
			}
			total += c.shards[i].capacity
		}
		if total != tc.capacity {
			t.Errorf("cap %d shards %d: shard capacities sum to %d", tc.capacity, tc.shards, total)
		}
	}
}

// Under a flood of distinct SHA-256-style keys the cache stays within its
// global capacity.
func TestCacheBoundedUnderUniformKeys(t *testing.T) {
	cache, err := NewPlanCache(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		cache.Put(CacheKey(hex.EncodeToString(sum[:])), stubEntry())
	}
	if n := cache.Len(); n > 64 {
		t.Errorf("len = %d, exceeds capacity 64", n)
	}
}

// NewPlanCache keeps a floor of entries per shard: small caches shrink
// the shard count rather than degenerate into single-entry stripes that
// thrash on digest collisions.
func TestCacheDefaultShardSizingFloorsPerShardCapacity(t *testing.T) {
	cases := []struct{ capacity, wantShards int }{
		{256, 16},
		{128, 16},
		{64, 8},
		{16, 2},
		{8, 1},
		{1, 1},
	}
	for _, tc := range cases {
		c, err := NewPlanCache(tc.capacity)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Shards(); got != tc.wantShards {
			t.Errorf("capacity %d: %d shards, want %d", tc.capacity, got, tc.wantShards)
		}
		for i := range c.shards {
			if tc.capacity >= minShardCapacity && c.shards[i].capacity < minShardCapacity {
				t.Errorf("capacity %d: shard %d holds only %d entries", tc.capacity, i, c.shards[i].capacity)
			}
		}
	}
}

func TestCacheRejectsBadCapacity(t *testing.T) {
	if _, err := NewPlanCache(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := newPlanCacheShards(4, 0); err == nil {
		t.Error("shard count 0 accepted")
	}
}
