package service

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"adept/internal/obs"
	"adept/internal/slo"
)

// newSLOTestServer builds a server whose background sampler is
// disabled (SampleInterval < 0) so tests drive SLOTick with explicit
// timestamps and the burn-rate windows are deterministic.
func newSLOTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 16
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	cfg.SampleInterval = -1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func TestHealthAndReadyProbes(t *testing.T) {
	srv, ts := newSLOTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}

	var rz ReadyzResponse
	if r := getJSON(t, ts.URL+"/readyz", &rz); r.StatusCode != http.StatusOK {
		t.Fatalf("readyz while ready: %d, want 200", r.StatusCode)
	}
	if !rz.Ready || !rz.PoolOpen {
		t.Fatalf("readyz body: %+v", rz)
	}

	// Startup gating: SetReady(false) must flip /readyz to 503 while
	// /healthz (liveness) stays 200.
	srv.SetReady(false)
	if r := getJSON(t, ts.URL+"/readyz", &rz); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while not ready: %d, want 503", r.StatusCode)
	}
	if rz.Ready {
		t.Fatalf("readyz body should report ready=false: %+v", rz)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while not ready: %d, want 200", resp.StatusCode)
	}
	srv.SetReady(true)
	if r := getJSON(t, ts.URL+"/readyz", &rz); r.StatusCode != http.StatusOK {
		t.Fatalf("readyz after re-ready: %d, want 200", r.StatusCode)
	}
}

// Probes are deliberately uninstrumented: a kubelet hammering /healthz
// must not dilute the availability SLO's request counters.
func TestProbesDoNotCountTowardSLO(t *testing.T) {
	srv, ts := newSLOTestServer(t, Config{})

	before := availabilityTotal(t, srv)
	for range 5 {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		resp, err = http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if after := availabilityTotal(t, srv); after != before {
		t.Errorf("probe traffic moved the availability total: %v -> %v", before, after)
	}
}

// availabilityTotal reads the availability objective's total counter
// straight from the engine (no HTTP round trip, which would itself
// count).
func availabilityTotal(t *testing.T, srv *Server) float64 {
	t.Helper()
	for _, o := range srv.SLO().Objectives() {
		if o.Type == slo.TypeAvailability {
			return o.Total
		}
	}
	t.Fatal("no availability objective bound")
	return 0
}

func TestSLOEndpointCountersAgree(t *testing.T) {
	_, ts := newSLOTestServer(t, Config{})

	// Real traffic: successful plans plus guaranteed 404s.
	for range 3 {
		resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: testPlatform(10), DgemmN: 310})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan: %d: %s", resp.StatusCode, body)
		}
	}
	for range 2 {
		resp, err := http.Get(ts.URL + "/v1/platforms/no-such-platform")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("expected 404, got %d", resp.StatusCode)
		}
	}

	var sr SLOResponse
	if r := getJSON(t, ts.URL+"/v1/slo", &sr); r.StatusCode != http.StatusOK {
		t.Fatalf("slo: %d", r.StatusCode)
	}
	if len(sr.Objectives) == 0 {
		t.Fatal("no objectives in /v1/slo")
	}

	byName := make(map[string]slo.ObjectiveStatus, len(sr.Objectives))
	for _, o := range sr.Objectives {
		if !o.Bound {
			t.Errorf("objective %q not bound", o.Name)
		}
		byName[o.Name] = o
	}

	avail, ok := byName["availability"]
	if !ok {
		t.Fatal("default config lost its availability objective")
	}
	if avail.Total < 5 {
		t.Errorf("availability total %v, want >= 5 (3 plans + 2 errors)", avail.Total)
	}
	if got := avail.Total - avail.Good; got != 2 {
		t.Errorf("availability errors = %v, want exactly the 2 injected 404s", got)
	}
	// The reported derived numbers must be arithmetic over good/total,
	// not an independent estimate.
	if want := avail.Good / avail.Total; math.Abs(avail.Compliance-want) > 1e-9 {
		t.Errorf("compliance %v != good/total %v", avail.Compliance, want)
	}
	if want := 1 - avail.Target; math.Abs(avail.ErrorBudget-want) > 1e-9 {
		t.Errorf("error budget %v != 1-target %v", avail.ErrorBudget, want)
	}
	if want := (1 - avail.Compliance) / (1 - avail.Target); math.Abs(avail.BudgetConsumed-want) > 1e-9 {
		t.Errorf("budget consumed %v, want %v", avail.BudgetConsumed, want)
	}
	if want := 1 - avail.BudgetConsumed; math.Abs(avail.BudgetRemaining-want) > 1e-9 {
		t.Errorf("budget remaining %v, want %v", avail.BudgetRemaining, want)
	}

	lat, ok := byName["plan-latency"]
	if !ok {
		t.Fatal("default config lost its plan-latency objective")
	}
	if lat.ThresholdMillis <= 0 {
		t.Errorf("latency objective has no effective threshold: %+v", lat)
	}
	if lat.Total < 3 {
		t.Errorf("latency total %v, want >= 3 plan requests", lat.Total)
	}
	if lat.Good > lat.Total {
		t.Errorf("latency good %v exceeds total %v", lat.Good, lat.Total)
	}
}

func TestAlertLifecycleOverHTTP(t *testing.T) {
	cfg := &slo.Config{Objectives: []slo.ObjectiveSpec{{
		Name:   "availability",
		Type:   slo.TypeAvailability,
		Target: 0.5,
		Alerts: []slo.AlertRule{
			{Severity: "page", Burn: 1, ShortSeconds: 5, LongSeconds: 10},
			{Severity: "ticket", Burn: 1, ShortSeconds: 5, LongSeconds: 10, ForSeconds: 5},
		},
	}}}
	srv, ts := newSLOTestServer(t, Config{SLO: cfg})

	base := time.Now()
	srv.SLOTick(base)

	errorBurst := func(n int) {
		t.Helper()
		for range n {
			resp, err := http.Get(ts.URL + "/v1/platforms/no-such-platform")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}

	// Window 1: pure errors. burn = 1/(1-0.5) = 2 over both windows,
	// so the zero-hold page fires immediately and the ticket goes
	// pending.
	errorBurst(4)
	srv.SLOTick(base.Add(5 * time.Second))
	assertAlertStates(t, ts, map[string]string{
		"availability/page":   slo.StateFiring,
		"availability/ticket": slo.StatePending,
	})

	// Window 2: errors persist, the ticket's 5s hold elapses.
	errorBurst(4)
	srv.SLOTick(base.Add(10 * time.Second))
	assertAlertStates(t, ts, map[string]string{
		"availability/page":   slo.StateFiring,
		"availability/ticket": slo.StateFiring,
	})

	// Recovery: only successful traffic, evaluated far enough out that
	// the trailing windows no longer reach the error samples.
	for range 4 {
		resp, err := http.Get(ts.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	srv.SLOTick(base.Add(40 * time.Second))
	alerts := assertAlertStates(t, ts, map[string]string{
		"availability/page":   slo.StateResolved,
		"availability/ticket": slo.StateResolved,
	})

	for _, a := range alerts {
		if a.FiredCount != 1 {
			t.Errorf("%s fired %d times, want 1", a.Name, a.FiredCount)
		}
		var path []string
		for _, tr := range a.Transitions {
			path = append(path, tr.To)
		}
		want := []string{slo.StatePending, slo.StateFiring, slo.StateResolved}
		if fmt.Sprint(path) != fmt.Sprint(want) {
			t.Errorf("%s transition path %v, want %v", a.Name, path, want)
		}
	}

	// Every transition must have been journalled as an "alert" event.
	var ev AutonomicEventsResponse
	getJSON(t, ts.URL+"/v1/autonomic/events", &ev)
	alertEvents := 0
	for _, e := range ev.Events {
		if e.Kind == "alert" {
			alertEvents++
		}
	}
	if alertEvents != 6 {
		t.Errorf("journalled %d alert events, want 6 (3 per rule)", alertEvents)
	}
}

// assertAlertStates fetches /v1/alerts and checks each named rule's
// state, returning the full response for further inspection.
func assertAlertStates(t *testing.T, ts *httptest.Server, want map[string]string) []slo.AlertStatus {
	t.Helper()
	var ar AlertsResponse
	if r := getJSON(t, ts.URL+"/v1/alerts", &ar); r.StatusCode != http.StatusOK {
		t.Fatalf("alerts: %d", r.StatusCode)
	}
	got := make(map[string]string, len(ar.Alerts))
	for _, a := range ar.Alerts {
		got[a.Name] = a.State
	}
	for name, state := range want {
		if got[name] != state {
			t.Errorf("alert %s state %q, want %q (all: %v)", name, got[name], state, got)
		}
	}
	return ar.Alerts
}

func TestIncidentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	if r := getJSON(t, ts.URL+"/v1/autonomic/incidents", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("incidents without session: %d, want 404", r.StatusCode)
	}

	start := AutonomicRequest{
		PlanRequest:  PlanRequest{Platform: autonomicPlatform(), Wapp: 10},
		Backend:      "sim",
		Clients:      12,
		Cycles:       30,
		Scenario:     []ScenarioPhase{{At: 40, Factors: map[string]float64{"s1": 2}}},
		CrashWindows: -1,
	}
	resp, body := postJSON(t, ts.URL+"/v1/autonomic/start", start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d: %s", resp.StatusCode, body)
	}
	var st AutonomicStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/autonomic/status", &st)
		if st.Done || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !st.Done {
		t.Fatal("sim session did not finish")
	}

	var ir IncidentsResponse
	if r := getJSON(t, ts.URL+"/v1/autonomic/incidents", &ir); r.StatusCode != http.StatusOK {
		t.Fatalf("incidents: %d", r.StatusCode)
	}
	if len(ir.Incidents) == 0 {
		t.Fatal("a session that adapted recorded no incidents")
	}
	resolved := 0
	for _, inc := range ir.Incidents {
		if inc.ID == 0 {
			t.Errorf("incident without id: %+v", inc)
		}
		if len(inc.Reasons) == 0 {
			t.Errorf("incident %d has no reasons", inc.ID)
		}
		if inc.DetectedAt.IsZero() {
			t.Errorf("incident %d has no detection timestamp", inc.ID)
		}
		if inc.Resolved {
			resolved++
			if inc.RecoveredAt.IsZero() {
				t.Errorf("resolved incident %d has no recovery timestamp", inc.ID)
			}
			if inc.MTTRSeconds < 0 {
				t.Errorf("incident %d negative MTTR %v", inc.ID, inc.MTTRSeconds)
			}
			if inc.RecoveredAt.Before(inc.DetectedAt) {
				t.Errorf("incident %d recovered before detected", inc.ID)
			}
		}
	}
	if ir.Summary.Resolved != resolved {
		t.Errorf("summary resolved %d, counted %d", ir.Summary.Resolved, resolved)
	}
	if ir.Summary.Open != len(ir.Incidents)-resolved {
		t.Errorf("summary open %d, counted %d", ir.Summary.Open, len(ir.Incidents)-resolved)
	}
}

func TestEventsSinceTruncated(t *testing.T) {
	srv, ts := newSLOTestServer(t, Config{JournalCapacity: 4})

	for i := 1; i <= 8; i++ {
		srv.Journal().Append("test", fmt.Sprintf("event %d", i), nil)
	}
	// Capacity 4 of 8 appended: seqs 5..8 retained, 1..4 evicted.

	fetch := func(since uint64) AutonomicEventsResponse {
		t.Helper()
		var ev AutonomicEventsResponse
		r := getJSON(t, ts.URL+fmt.Sprintf("/v1/autonomic/events?since=%d", since), &ev)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("events?since=%d: %d", since, r.StatusCode)
		}
		return ev
	}

	// Stale cursor: the ring wrapped past it, so the client must see
	// the truncation marker along with the oldest retained events.
	ev := fetch(1)
	if !ev.Truncated {
		t.Error("since=1 with seqs 2..4 evicted: truncated not set")
	}
	if len(ev.Events) != 4 || ev.Events[0].Seq != 5 {
		t.Fatalf("since=1: got %d events starting at %d, want 4 starting at 5", len(ev.Events), firstSeq(ev.Events))
	}

	// Cursor exactly at the eviction edge: nothing was missed.
	ev = fetch(4)
	if ev.Truncated {
		t.Error("since=4: no gap before seq 5, truncated should be false")
	}
	if len(ev.Events) != 4 {
		t.Errorf("since=4: %d events, want 4", len(ev.Events))
	}

	// Recent cursor: a normal incremental poll.
	ev = fetch(6)
	if ev.Truncated || len(ev.Events) != 2 || ev.Events[0].Seq != 7 {
		t.Errorf("since=6: truncated=%v events=%d first=%d, want false/2/7", ev.Truncated, len(ev.Events), firstSeq(ev.Events))
	}

	// Fully caught up.
	ev = fetch(8)
	if ev.Truncated || len(ev.Events) != 0 {
		t.Errorf("since=8: truncated=%v events=%d, want false/0", ev.Truncated, len(ev.Events))
	}
	if ev.Total != 8 {
		t.Errorf("total %d, want 8", ev.Total)
	}

	// The unfiltered snapshot never reports truncation (there is no
	// cursor to have fallen behind).
	var snap AutonomicEventsResponse
	getJSON(t, ts.URL+"/v1/autonomic/events", &snap)
	if snap.Truncated {
		t.Error("snapshot without ?since= reports truncated")
	}
}

func firstSeq(events []obs.Event) uint64 {
	if len(events) == 0 {
		return 0
	}
	return events[0].Seq
}
