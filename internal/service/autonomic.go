package service

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"

	"adept/internal/autonomic"
	"adept/internal/core"
	"adept/internal/deploy"
	"adept/internal/hierarchy"
	"adept/internal/runtime"
	"adept/internal/sim"
)

// This file surfaces the autonomic MAPE-K loop (internal/autonomic)
// through the daemon:
//
//	POST /v1/autonomic/start   plan, deploy, and start the control loop
//	POST /v1/autonomic/stop    stop the loop (and the live system)
//	GET  /v1/autonomic/status  adaptation history, patches, throughput
//	POST /v1/autonomic/inject  inject background load on a live server
//
// One session runs at a time: the loop owns its deployed system, and a
// second concurrent deployment of the same platform would fight over
// nothing real.

// ScenarioPhase is one step of a simulated drift scenario.
type ScenarioPhase struct {
	// At is the simulated time in seconds.
	At float64 `json:"at"`
	// Factors maps server names to background-load slowdown factors.
	Factors map[string]float64 `json:"factors,omitempty"`
	// AddClients starts extra closed-loop clients at At.
	AddClients int `json:"add_clients,omitempty"`
	// RemoveClients retires that many closed-loop clients at At.
	RemoveClients int `json:"remove_clients,omitempty"`
	// Crash marks the named servers crashed at At: they keep answering
	// scheduling from stale estimates but every service request times out
	// and fails until a Restore.
	Crash []string `json:"crash,omitempty"`
	// Restore revives the named servers at At.
	Restore []string `json:"restore,omitempty"`
}

// AutonomicRequest is the JSON body of POST /v1/autonomic/start. The
// embedded PlanRequest produces the initial deployment; the rest tunes
// the loop.
type AutonomicRequest struct {
	PlanRequest
	// Backend selects "live" (goroutine middleware, real-time windows;
	// default) or "sim" (deterministic discrete-event simulation).
	Backend string `json:"backend,omitempty"`
	// Transport selects the live middleware wire: "chan" (default), "tcp".
	Transport string `json:"transport,omitempty"`
	// Clients is the closed-loop client count (default 4).
	Clients int `json:"clients,omitempty"`
	// WindowMillis is the live measurement window (default 500ms).
	WindowMillis int64 `json:"window_ms,omitempty"`
	// WindowSeconds is the sim measurement window (default 10s simulated).
	WindowSeconds float64 `json:"window_s,omitempty"`
	// TimeScale converts modelled virtual seconds to live wall-clock
	// (default 0.002).
	TimeScale float64 `json:"time_scale,omitempty"`
	// Cycles bounds the loop (default: unbounded live, 50 sim).
	Cycles int `json:"cycles,omitempty"`
	// Scenario pre-schedules drift for the sim backend.
	Scenario []ScenarioPhase `json:"scenario,omitempty"`

	// Loop tuning; zero means the autonomic package default.
	DriftTolerance float64 `json:"drift_tolerance,omitempty"`
	SagTolerance   float64 `json:"sag_tolerance,omitempty"`
	Hysteresis     int     `json:"hysteresis,omitempty"`
	CrashWindows   int     `json:"crash_windows,omitempty"`
	Cooldown       int     `json:"cooldown,omitempty"`
	MinGain        float64 `json:"min_gain,omitempty"`
}

// AutonomicStatus is the JSON body of GET /v1/autonomic/status.
type AutonomicStatus struct {
	Backend string           `json:"backend"`
	Done    bool             `json:"done"`
	RunErr  string           `json:"run_error,omitempty"`
	Status  autonomic.Status `json:"status"`
}

// autonomicSession is the daemon's one running control loop.
type autonomicSession struct {
	backend string
	ctrl    *autonomic.Controller
	cancel  context.CancelFunc
	done    chan struct{}
	live    *autonomic.LiveTarget // nil for the sim backend

	mu     sync.Mutex
	runErr error
}

func (a *autonomicSession) finished() bool {
	select {
	case <-a.done:
		return true
	default:
		return false
	}
}

func (a *autonomicSession) error() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.runErr != nil {
		return a.runErr.Error()
	}
	return ""
}

// stop cancels the loop, waits for it, and tears the live system down.
func (a *autonomicSession) stop() {
	a.cancel()
	select {
	case <-a.done:
	case <-time.After(10 * time.Second):
	}
	if a.live != nil {
		a.live.System().Stop()
	}
}

func (s *Server) handleAutonomicStart(w http.ResponseWriter, r *http.Request) {
	var ar AutonomicRequest
	if err := decodeBody(r, &ar); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	// Reserve the session slot without holding the lock across the
	// (potentially slow) planning and deployment below, so /status, /stop
	// and /inject stay responsive.
	s.autoMu.Lock()
	if s.autoStarting {
		s.autoMu.Unlock()
		writeError(w, http.StatusConflict, "an autonomic session is already starting")
		return
	}
	if s.auto != nil {
		if !s.auto.finished() {
			s.autoMu.Unlock()
			writeError(w, http.StatusConflict, "an autonomic session is already running; stop it first")
			return
		}
		// The loop ended on its own (bounded cycles); its live system is
		// still deployed — reap it before taking the slot.
		old := s.auto
		s.auto = nil
		s.autoMu.Unlock()
		old.stop()
		s.autoMu.Lock()
	}
	s.autoStarting = true
	s.autoMu.Unlock()
	defer func() {
		s.autoMu.Lock()
		s.autoStarting = false
		s.autoMu.Unlock()
	}()

	resp, req, status, err := s.plan(r, &ar.PlanRequest)
	if err != nil {
		writePlanError(w, status, err)
		return
	}
	h, err := hierarchy.ParseXML(strings.NewReader(resp.XML))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reparse plan XML: %v", err)
		return
	}
	// An explicit planner name pins the replan step; otherwise the control
	// loop's default (the portfolio race) is used.
	var planner core.Planner
	if ar.Planner != "" {
		var err error
		if planner, err = SelectPlanner(ar.Planner); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	clients := ar.Clients
	if clients <= 0 {
		clients = 4
	}
	maxCycles := ar.Cycles

	cfg := autonomic.Config{
		Planner:        planner,
		Platform:       req.Platform,
		Costs:          req.Costs,
		Wapp:           req.Wapp,
		Demand:         req.Demand,
		DriftTolerance: ar.DriftTolerance,
		SagTolerance:   ar.SagTolerance,
		Hysteresis:     ar.Hysteresis,
		CrashWindows:   ar.CrashWindows,
		Cooldown:       ar.Cooldown,
		MinGain:        ar.MinGain,
		Journal:        s.journal,
		Logger:         s.logger,
	}

	var target autonomic.Target
	var live *autonomic.LiveTarget
	backend := ar.Backend
	switch backend {
	case "", "live":
		backend = "live"
		var kind deploy.TransportKind
		switch ar.Transport {
		case "", "chan":
			kind = deploy.TransportChan
		case "tcp":
			kind = deploy.TransportTCP
		default:
			writeError(w, http.StatusBadRequest, "unknown transport %q (have chan, tcp)", ar.Transport)
			return
		}
		timeScale := ar.TimeScale
		if timeScale <= 0 {
			timeScale = 0.002
		}
		window := 500 * time.Millisecond
		if ar.WindowMillis > 0 {
			window = time.Duration(ar.WindowMillis) * time.Millisecond
		}
		opts := runtime.Options{
			Costs:        req.Costs,
			Bandwidth:    req.Platform.Bandwidth,
			Wapp:         req.Wapp,
			TimeScale:    timeScale,
			ReplyTimeout: 2 * window,
		}
		newTransport := func() runtime.Transport {
			if kind == deploy.TransportTCP {
				return runtime.NewTCPTransport()
			}
			return runtime.NewChanTransport()
		}
		sys, err := runtime.Deploy(h, newTransport(), opts)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "launch: %v", err)
			return
		}
		live = autonomic.NewLiveTarget(sys, opts, clients, window, newTransport)
		target = live
	case "sim":
		if maxCycles <= 0 {
			maxCycles = 50
		}
		window := ar.WindowSeconds
		if window <= 0 {
			window = 10
		}
		scenario := make([]sim.LoadPhase, 0, len(ar.Scenario))
		for _, ph := range ar.Scenario {
			scenario = append(scenario, sim.LoadPhase{
				At:            ph.At,
				Factors:       ph.Factors,
				AddClients:    ph.AddClients,
				RemoveClients: ph.RemoveClients,
				Crash:         ph.Crash,
				Restore:       ph.Restore,
			})
		}
		managed, err := sim.NewManaged(h, req.Costs, req.Platform.Bandwidth, req.Wapp, clients, scenario)
		if err != nil {
			writeError(w, http.StatusBadRequest, "simulate: %v", err)
			return
		}
		target = &autonomic.SimTarget{Managed: managed, Window: window}
	default:
		writeError(w, http.StatusBadRequest, "unknown backend %q (have live, sim)", ar.Backend)
		return
	}
	if maxCycles > 10000 {
		maxCycles = 10000
	}
	cfg.MaxCycles = maxCycles

	ctrl, err := autonomic.New(cfg, target, h)
	if err != nil {
		if live != nil {
			live.System().Stop()
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	//adeptvet:allow ctxflow session-lifetime lifecycle root; the MAPE-K loop outlives the HTTP request that started it
	ctx, cancel := context.WithCancel(context.Background())
	sess := &autonomicSession{backend: backend, ctrl: ctrl, cancel: cancel, done: make(chan struct{}), live: live}
	go func() {
		defer close(sess.done)
		if err := ctrl.Run(ctx); err != nil && ctx.Err() == nil {
			sess.mu.Lock()
			sess.runErr = err
			sess.mu.Unlock()
		}
	}()
	s.autoMu.Lock()
	s.auto = sess
	s.autoMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"backend": backend,
		"clients": clients,
		"cycles":  maxCycles,
		"plan":    resp,
	})
}

func (s *Server) handleAutonomicStop(w http.ResponseWriter, r *http.Request) {
	s.autoMu.Lock()
	sess := s.auto
	s.auto = nil
	s.autoMu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "no autonomic session")
		return
	}
	sess.stop()
	writeJSON(w, http.StatusOK, AutonomicStatus{
		Backend: sess.backend,
		Done:    true,
		RunErr:  sess.error(),
		Status:  sess.ctrl.Status(),
	})
}

func (s *Server) handleAutonomicStatus(w http.ResponseWriter, r *http.Request) {
	s.autoMu.Lock()
	sess := s.auto
	s.autoMu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "no autonomic session")
		return
	}
	writeJSON(w, http.StatusOK, AutonomicStatus{
		Backend: sess.backend,
		Done:    sess.finished(),
		RunErr:  sess.error(),
		Status:  sess.ctrl.Status(),
	})
}

// IncidentsResponse is the JSON body of GET /v1/autonomic/incidents:
// the session's correlated incident records plus MTTR percentiles over
// the resolved ones.
type IncidentsResponse struct {
	Incidents []autonomic.Incident  `json:"incidents"`
	Summary   autonomic.MTTRSummary `json:"summary"`
}

// handleAutonomicIncidents serves the running (or finished but not yet
// stopped) session's incident log.
func (s *Server) handleAutonomicIncidents(w http.ResponseWriter, r *http.Request) {
	s.autoMu.Lock()
	sess := s.auto
	s.autoMu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "no autonomic session")
		return
	}
	in := sess.ctrl.Incidents()
	if in == nil {
		in = []autonomic.Incident{}
	}
	writeJSON(w, http.StatusOK, IncidentsResponse{Incidents: in, Summary: autonomic.SummarizeMTTR(in)})
}

// InjectRequest is the JSON body of POST /v1/autonomic/inject: live drift
// injection (the §5.3 background load, flipped on at runtime).
type InjectRequest struct {
	Server string  `json:"server"`
	Factor float64 `json:"factor"`
}

func (s *Server) handleAutonomicInject(w http.ResponseWriter, r *http.Request) {
	var ir InjectRequest
	if err := decodeBody(r, &ir); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	s.autoMu.Lock()
	sess := s.auto
	s.autoMu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "no autonomic session")
		return
	}
	if sess.live == nil {
		writeError(w, http.StatusBadRequest, "drift injection needs the live backend; sim sessions pre-schedule it via scenario")
		return
	}
	if err := sess.live.System().SetBackgroundLoad(ir.Server, ir.Factor); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"server": ir.Server, "factor": ir.Factor})
}

// stopAutonomic tears down any running session (daemon shutdown path).
func (s *Server) stopAutonomic() {
	s.autoMu.Lock()
	sess := s.auto
	s.auto = nil
	s.autoMu.Unlock()
	if sess != nil {
		sess.stop()
	}
}
