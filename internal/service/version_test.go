package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentPutSingleWinner is the lost-update regression test: N
// writers read version 1 and race PutIfMatch(expect=1). Exactly one may
// win; every other writer must be told its read went stale — before
// conditional writes existed, all N "succeeded" and N-1 updates were
// silently destroyed.
func TestConcurrentPutSingleWinner(t *testing.T) {
	reg := NewRegistry()
	plat := testPlatform(4)
	if err := reg.Put("lyon", plat); err != nil {
		t.Fatal(err)
	}

	const writers = 16
	expect := uint64(1)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		wins      int
		stale     int
		otherErrs []error
	)
	start := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := reg.PutIfMatch("lyon", testPlatform(5), &expect)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				wins++
			case errors.Is(err, ErrVersionMismatch):
				stale++
			default:
				otherErrs = append(otherErrs, err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if len(otherErrs) > 0 {
		t.Fatalf("unexpected errors: %v", otherErrs)
	}
	if wins != 1 || stale != writers-1 {
		t.Fatalf("wins=%d stale=%d, want 1 winner and %d stale writers", wins, stale, writers-1)
	}
	if _, v, ok := reg.GetVersion("lyon"); !ok || v != 2 {
		t.Fatalf("final version = %d (ok=%v), want 2", v, ok)
	}
}

// TestPutIfMatchSemantics pins the expect contract: nil always writes, 0
// means must-not-exist, MatchAny means must-exist, and versions never
// rewind across delete/re-create.
func TestPutIfMatchSemantics(t *testing.T) {
	reg := NewRegistry()
	plat := testPlatform(4)

	zero := uint64(0)
	if _, err := reg.PutIfMatch("p", plat, &zero); err != nil {
		t.Fatalf("create with expect=0: %v", err)
	}
	if _, err := reg.PutIfMatch("p", plat, &zero); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("re-create with expect=0: err=%v, want ErrVersionMismatch", err)
	}
	any := MatchAny
	if v, err := reg.PutIfMatch("p", plat, &any); err != nil || v != 2 {
		t.Fatalf("If-Match:* update: v=%d err=%v, want 2,nil", v, err)
	}
	if _, err := reg.PutIfMatch("absent", plat, &any); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("If-Match:* on absent: err=%v, want ErrVersionMismatch", err)
	}

	tomb, existed, err := reg.DeleteIfMatch("p", nil)
	if err != nil || !existed || tomb != 3 {
		t.Fatalf("delete: tomb=%d existed=%v err=%v, want 3,true,nil", tomb, existed, err)
	}
	// Re-creation resumes above the tombstone: replicas ordering by
	// version must see the re-created entry as newer than the delete.
	if v, err := reg.PutIfMatch("p", plat, &zero); err != nil || v != 4 {
		t.Fatalf("re-create after delete: v=%d err=%v, want 4,nil", v, err)
	}

	stale := uint64(1)
	if _, _, err := reg.DeleteIfMatch("p", &stale); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale delete: err=%v, want ErrVersionMismatch", err)
	}
}

// TestApplyRemoteOrdering pins the replication contract: strictly-newer
// versions apply; stale, duplicate, and out-of-order deliveries are
// dropped without error; tombstones shadow older puts.
func TestApplyRemoteOrdering(t *testing.T) {
	reg := NewRegistry()
	plat := testPlatform(4)

	if applied, err := reg.ApplyRemote(RegistryUpdate{Name: "p", Version: 3, Platform: plat}); err != nil || !applied {
		t.Fatalf("fresh update: applied=%v err=%v", applied, err)
	}
	// Duplicate redelivery (webhook retry) is a no-op.
	if applied, _ := reg.ApplyRemote(RegistryUpdate{Name: "p", Version: 3, Platform: plat}); applied {
		t.Fatal("duplicate delivery applied twice")
	}
	// An older concurrent write arriving late is dropped.
	if applied, _ := reg.ApplyRemote(RegistryUpdate{Name: "p", Version: 2, Platform: testPlatform(5)}); applied {
		t.Fatal("stale delivery applied")
	}
	if _, v, ok := reg.GetVersion("p"); !ok || v != 3 {
		t.Fatalf("version = %d (ok=%v), want 3", v, ok)
	}
	// A newer tombstone deletes; the put it raced (version 4 < 5) must
	// not resurrect the entry afterwards.
	if applied, err := reg.ApplyRemote(RegistryUpdate{Name: "p", Version: 5, Deleted: true}); err != nil || !applied {
		t.Fatalf("tombstone: applied=%v err=%v", applied, err)
	}
	if applied, _ := reg.ApplyRemote(RegistryUpdate{Name: "p", Version: 4, Platform: plat}); applied {
		t.Fatal("pre-tombstone put resurrected the deleted entry")
	}
	if _, ok := reg.Get("p"); ok {
		t.Fatal("entry present after tombstone")
	}
	// Local writes resume above everything replicated.
	if v, err := reg.PutIfMatch("p", plat, nil); err != nil || v != 6 {
		t.Fatalf("local write after remote tombstone: v=%d err=%v, want 6,nil", v, err)
	}
}

// TestDeleteThenRestartNoResurrection is the journal-symmetry regression
// test: a deleted platform must stay deleted across a restart. The old
// code could leave the journal file behind while removing the map entry,
// so the next LoadDir resurrected the platform.
func TestDeleteThenRestartNoResurrection(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	if err := reg.PersistTo(dir); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("lyon", testPlatform(4)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("nice", testPlatform(3)); err != nil {
		t.Fatal(err)
	}
	if !reg.Delete("lyon") {
		t.Fatal("delete failed")
	}

	// "Restart": a fresh registry pointed at the same journal dir.
	reg2 := NewRegistry()
	names, err := reg2.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "nice" {
		t.Fatalf("recovered names = %v, want [nice] — deleted platform resurrected", names)
	}
	if _, ok := reg2.Get("lyon"); ok {
		t.Fatal("deleted platform resurrected after restart")
	}
	// The tombstone version survives the restart too: re-creating the
	// name continues the version line instead of restarting at 1, so
	// replicas never confuse the new entry with the deleted one.
	if v, err := reg2.PutIfMatch("lyon", testPlatform(4), nil); err != nil || v <= 2 {
		t.Fatalf("re-create after restart: v=%d err=%v, want version above the tombstone", v, err)
	}
}

// TestLoadDirRejectsInvalidBasenames proves load-side validation matches
// Delete's: a journal whose basename could never be deleted (or re-
// journalled) fails the load loudly instead of becoming a stuck entry.
func TestLoadDirRejectsInvalidBasenames(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	if err := reg.PersistTo(dir); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("good", testPlatform(3)); err != nil {
		t.Fatal(err)
	}
	// A dot-prefixed basename passes the *.json suffix check but fails
	// validName — exactly the kind of file Delete could never remove by
	// name.
	if err := os.WriteFile(filepath.Join(dir, ".sneaky.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry().LoadDir(dir); err == nil {
		t.Fatal("LoadDir accepted a journal with an invalid basename")
	}
}

// TestPlatformETagFlow drives optimistic concurrency over HTTP: ETags on
// GET/PUT, 412 on stale If-Match, wildcard and must-not-exist forms, and
// the version field in responses.
func TestPlatformETagFlow(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	url := ts.URL + "/v1/platforms/lyon"
	platJSON, err := json.Marshal(testPlatform(4))
	if err != nil {
		t.Fatal(err)
	}

	do := func(method, ifMatch string, body []byte) (*http.Response, []byte) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatal(err)
		}
		if ifMatch != "" {
			req.Header.Set("If-Match", ifMatch)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	// Create with If-Match: "0" (must not exist yet).
	resp, body := do(http.MethodPut, `"0"`, platJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("ETag"); got != `"1"` {
		t.Fatalf("create ETag = %q, want %q", got, `"1"`)
	}

	// GET surfaces the same ETag.
	resp, _ = do(http.MethodGet, "", nil)
	if got := resp.Header.Get("ETag"); got != `"1"` {
		t.Fatalf("get ETag = %q, want %q", got, `"1"`)
	}

	// Conditional update against the current version succeeds and bumps.
	resp, body = do(http.MethodPut, `"1"`, platJSON)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != `"2"` {
		t.Fatalf("conditional update: status %d ETag %q: %s", resp.StatusCode, resp.Header.Get("ETag"), body)
	}
	var putOut struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(body, &putOut); err != nil || putOut.Version != 2 {
		t.Fatalf("put body version = %d (%v): %s", putOut.Version, err, body)
	}

	// Replaying the same If-Match is the lost-update case: 412, and the
	// stale writer's body must not have been applied.
	resp, body = do(http.MethodPut, `"1"`, platJSON)
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale update: status %d, want 412: %s", resp.StatusCode, body)
	}

	// Wildcard matches any existing version.
	resp, _ = do(http.MethodPut, "*", platJSON)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != `"3"` {
		t.Fatalf("wildcard update: status %d ETag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}

	// Malformed If-Match is a client error, not a silent unconditional
	// write.
	resp, body = do(http.MethodPut, "banana", platJSON)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed If-Match: status %d, want 400: %s", resp.StatusCode, body)
	}

	// Conditional delete: stale version rejected, current accepted.
	resp, body = do(http.MethodDelete, `"1"`, nil)
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale delete: status %d, want 412: %s", resp.StatusCode, body)
	}
	resp, body = do(http.MethodDelete, `"3"`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, body)
	}
	var delOut struct {
		Deleted string `json:"deleted"`
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(body, &delOut); err != nil || delOut.Version != 4 {
		t.Fatalf("delete body = %s (err %v), want tombstone version 4", body, err)
	}
	resp, _ = do(http.MethodGet, "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentPutHTTPRace is the end-to-end form of the lost-update
// fix: many clients GET the ETag, then race conditional PUTs against it.
// Exactly one 200; every other client gets 412.
func TestConcurrentPutHTTPRace(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	url := ts.URL + "/v1/platforms/raced"
	platJSON, err := json.Marshal(testPlatform(4))
	if err != nil {
		t.Fatal(err)
	}

	put := func(ifMatch string) int {
		req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(platJSON))
		if err != nil {
			t.Error(err)
			return 0
		}
		if ifMatch != "" {
			req.Header.Set("If-Match", ifMatch)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Error(err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put(""); code != http.StatusOK {
		t.Fatalf("seed put: status %d", code)
	}

	const clients = 8
	var wg sync.WaitGroup
	codes := make([]int, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			codes[i] = put(`"1"`) // every client read ETag "1"
		}(i)
	}
	close(start)
	wg.Wait()

	ok, stale := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusPreconditionFailed:
			stale++
		default:
			t.Fatalf("unexpected status %d in %v", c, codes)
		}
	}
	if ok != 1 || stale != clients-1 {
		t.Fatalf("codes %v: want exactly one 200 and %d 412s", codes, clients-1)
	}
}

// TestParseIfMatch pins the header grammar.
func TestParseIfMatch(t *testing.T) {
	cases := []struct {
		in      string
		want    *uint64
		wantErr bool
	}{
		{in: "", want: nil},
		{in: "*", want: ptr(MatchAny)},
		{in: `"7"`, want: ptr(uint64(7))},
		{in: "7", want: ptr(uint64(7))},
		{in: `"0"`, want: ptr(uint64(0))},
		{in: "banana", wantErr: true},
		{in: `""`, wantErr: true},
		{in: `"-1"`, wantErr: true},
		{in: fmt.Sprintf("%d", MatchAny), wantErr: true},
	}
	for _, c := range cases {
		got, err := parseIfMatch(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseIfMatch(%q): no error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseIfMatch(%q): %v", c.in, err)
			continue
		}
		switch {
		case c.want == nil && got != nil:
			t.Errorf("parseIfMatch(%q) = %d, want nil", c.in, *got)
		case c.want != nil && (got == nil || *got != *c.want):
			t.Errorf("parseIfMatch(%q) = %v, want %d", c.in, got, *c.want)
		}
	}
}

func ptr(v uint64) *uint64 { return &v }

// TestVersionsSidecarSkippedByLoadDir guards the sidecar naming contract:
// the version file lives in the journal dir but must never be parsed as
// a platform.
func TestVersionsSidecarSkippedByLoadDir(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	if err := reg.PersistTo(dir); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("p", testPlatform(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, versionsSidecar)); err != nil {
		t.Fatalf("sidecar missing after journalled put: %v", err)
	}
	names, err := NewRegistry().LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "p" {
		t.Fatalf("names = %v, want [p]", names)
	}
}
