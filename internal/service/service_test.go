package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/scenario"
	"adept/internal/workload"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{CacheSize: 16, Workers: 4, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func testPlatform(n int) *platform.Platform {
	p, err := platform.Generate(platform.GenSpec{
		Name: "svc-test", N: n, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	return p
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{
		Platform: testPlatform(20),
		DgemmN:   310,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Planner != "heuristic" {
		t.Errorf("planner = %q, want heuristic", pr.Planner)
	}
	if pr.Rho <= 0 {
		t.Errorf("rho = %g, want positive", pr.Rho)
	}
	if pr.Cached {
		t.Error("first request reported as cached")
	}
	if pr.XML == "" {
		t.Error("missing deployment XML")
	}
	if pr.Agents+pr.Servers != pr.NodesUsed {
		t.Errorf("agents %d + servers %d != nodes_used %d", pr.Agents, pr.Servers, pr.NodesUsed)
	}
}

func TestPlanCachedOnRepeat(t *testing.T) {
	_, ts := newTestServer(t)
	req := PlanRequest{Platform: testPlatform(20), DgemmN: 310}

	_, body1 := postJSON(t, ts.URL+"/v1/plan", req)
	var first PlanResponse
	if err := json.Unmarshal(body1, &first); err != nil {
		t.Fatal(err)
	}
	_, body2 := postJSON(t, ts.URL+"/v1/plan", req)
	var second PlanResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request cached")
	}
	if !second.Cached {
		t.Error("repeat request not cached")
	}
	if first.Key != second.Key {
		t.Errorf("keys differ: %s vs %s", first.Key, second.Key)
	}
	if first.Rho != second.Rho {
		t.Errorf("rho differs: %g vs %g", first.Rho, second.Rho)
	}

	// The hit is visible in /v1/metrics.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", rep.CacheHits)
	}
	if rep.CacheMisses < 1 {
		t.Errorf("cache_misses = %d, want >= 1", rep.CacheMisses)
	}
	if ep, ok := rep.Endpoints["plan"]; !ok || ep.Requests != 2 {
		t.Errorf("plan endpoint metrics = %+v, want 2 requests", ep)
	}
}

// TestPlanConcurrent exercises the acceptance criterion: many clients
// planning in parallel against the bounded pool, all receiving the same
// correct answer.
func TestPlanConcurrent(t *testing.T) {
	_, ts := newTestServer(t)
	const clients = 16
	req := PlanRequest{Platform: testPlatform(30), DgemmN: 310}

	var wg sync.WaitGroup
	rhos := make([]float64, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var pr PlanResponse
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				errs[i] = err
				return
			}
			rhos[i] = pr.Rho
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if rhos[i] != rhos[0] {
			t.Errorf("client %d rho %g != client 0 rho %g", i, rhos[i], rhos[0])
		}
	}
}

func TestPlanErrors(t *testing.T) {
	_, ts := newTestServer(t)

	cases := []struct {
		name string
		body any
		want int
	}{
		{"no platform", PlanRequest{DgemmN: 310}, http.StatusBadRequest},
		{"both platforms", PlanRequest{Platform: testPlatform(5), PlatformName: "x"}, http.StatusBadRequest},
		{"unknown planner", PlanRequest{Platform: testPlatform(5), Planner: "quantum"}, http.StatusBadRequest},
		{"unregistered name", PlanRequest{PlatformName: "nope"}, http.StatusBadRequest},
		{"one node", PlanRequest{Platform: platform.Homogeneous("tiny", 1, 100, 100)}, http.StatusBadRequest},
		{"garbage json", "{not json", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var resp *http.Response
		if s, ok := tc.body.(string); ok {
			var err error
			resp, err = http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader([]byte(s)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		} else {
			resp, _ = postJSON(t, ts.URL+"/v1/plan", tc.body)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestPlatformCRUD(t *testing.T) {
	_, ts := newTestServer(t)
	client := &http.Client{}
	plat := testPlatform(8)
	data, err := plat.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	// PUT registers.
	put, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/platforms/lyon", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}

	// GET returns it.
	resp, err = http.Get(ts.URL + "/v1/platforms/lyon")
	if err != nil {
		t.Fatal(err)
	}
	var got platform.Platform
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(plat.Nodes) {
		t.Errorf("GET returned %d nodes, want %d", len(got.Nodes), len(plat.Nodes))
	}

	// List includes it.
	resp, err = http.Get(ts.URL + "/v1/platforms")
	if err != nil {
		t.Fatal(err)
	}
	var list map[string][]string
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if names := list["platforms"]; len(names) != 1 || names[0] != "lyon" {
		t.Errorf("list = %v, want [lyon]", names)
	}

	// Planning by registry name works.
	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{PlatformName: "lyon", DgemmN: 310})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan by name: status %d: %s", resp.StatusCode, body)
	}

	// DELETE removes it; a second DELETE 404s.
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/platforms/lyon", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("DELETE status %d", resp.StatusCode)
	}
	resp, err = client.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE status %d, want 404", resp.StatusCode)
	}

	// GET of a missing platform 404s.
	resp, err = http.Get(ts.URL + "/v1/platforms/lyon")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after delete status %d, want 404", resp.StatusCode)
	}

	// PUT of an invalid platform is rejected.
	put, err = http.NewRequest(http.MethodPut, ts.URL+"/v1/platforms/bad", bytes.NewReader([]byte(`{"name":"bad","bandwidth_mbps":-1,"nodes":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid PUT status %d, want 400", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	plat := testPlatform(15)
	br := BatchRequest{Requests: []PlanRequest{
		{Platform: plat, Planner: "heuristic", DgemmN: 310},
		{Platform: plat, Planner: "star", DgemmN: 310},
		{Platform: plat, Planner: "balanced", DgemmN: 310},
		{Platform: plat, Planner: "bogus", DgemmN: 310}, // per-item error
	}}
	resp, body := postJSON(t, ts.URL+"/v1/plan/batch", br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(out.Items))
	}
	wantPlanner := []string{"heuristic", "star", "balanced"}
	for i, want := range wantPlanner {
		item := out.Items[i]
		if item.Error != "" || item.Plan == nil {
			t.Fatalf("item %d: error %q", i, item.Error)
		}
		if item.Plan.Planner != want {
			t.Errorf("item %d planner = %q, want %q", i, item.Plan.Planner, want)
		}
		if item.Plan.Rho <= 0 {
			t.Errorf("item %d rho = %g", i, item.Plan.Rho)
		}
	}
	if out.Items[3].Error == "" {
		t.Error("bogus planner item did not error")
	}
	if out.Succeeded != 3 || out.Failed != 1 {
		t.Errorf("succeeded/failed = %d/%d, want 3/1", out.Succeeded, out.Failed)
	}
	// The heuristic beats or matches the naive baselines on this pool.
	if out.Items[0].Plan.Capped < out.Items[2].Plan.Capped {
		t.Errorf("heuristic (%g) worse than balanced (%g)",
			out.Items[0].Plan.Capped, out.Items[2].Plan.Capped)
	}

	// An empty batch is rejected.
	resp, _ = postJSON(t, ts.URL+"/v1/plan/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status %d, want 400", resp.StatusCode)
	}
}

func TestDeployEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	dr := DeployRequest{
		PlanRequest: PlanRequest{
			Platform: platform.Homogeneous("live", 6, 400, 100),
			Wapp:     5.0,
		},
		Clients:        3,
		DurationMillis: 300,
	}
	resp, body := postJSON(t, ts.URL+"/v1/deploy", dr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out DeployResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Completed <= 0 {
		t.Errorf("completed = %d, want positive", out.Completed)
	}
	if out.Failed != 0 {
		t.Errorf("failed = %d", out.Failed)
	}
	if out.Plan == nil || out.Plan.Rho <= 0 {
		t.Error("missing plan in deploy response")
	}
	if len(out.ServedCounts) == 0 {
		t.Error("no served counts")
	}
}

func TestRegistryLoadDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"alpha", "beta"} {
		if err := testPlatform(6).SaveJSON(dir + "/" + name + ".json"); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	names, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("names = %v, want [alpha beta]", names)
	}
	if _, ok := reg.Get("alpha"); !ok {
		t.Error("alpha not registered")
	}
}

// blockPoolWorker parks one worker of pool inside a job until the
// returned release function is called, and only returns once the job is
// actually executing.
func blockPoolWorker(t *testing.T, pool *Pool) (release func()) {
	t.Helper()
	started := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		// With queueDepth 0 admission requires a worker already parked in
		// its receive; retry ErrQueueFull while the workers spin up.
		for {
			_, err := pool.Submit(context.Background(), func(context.Context) (*core.Plan, error) {
				close(started)
				<-stop
				return nil, nil
			})
			if !errors.Is(err, ErrQueueFull) {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker never reached a worker")
	}
	var once sync.Once
	return func() { once.Do(func() { close(stop) }) }
}

// With no queue, a saturated pool sheds the submission immediately with
// ErrQueueFull instead of blocking the caller — the admission-control
// contract behind the daemon's 429s.
func TestPoolFailFastWhenSaturated(t *testing.T) {
	pool, err := NewPool(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	release := blockPoolWorker(t, pool)
	defer release()
	before := pool.Rejected() // the blocker may have retried through rejections

	start := time.Now()
	_, err = pool.Submit(context.Background(), func(context.Context) (*core.Plan, error) {
		t.Error("shed job ran")
		return nil, nil
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("fail-fast submit blocked %v", waited)
	}
	if got := pool.Rejected(); got != before+1 {
		t.Errorf("rejected = %d, want %d", got, before+1)
	}
}

// A job that made it into a buffered queue must still unblock its
// submitter promptly when the context fires, not wait for a worker.
func TestPoolCancellationWhileQueued(t *testing.T) {
	pool, err := NewPool(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	release := blockPoolWorker(t, pool)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = pool.Submit(ctx, func(context.Context) (*core.Plan, error) {
		return nil, nil // queued behind the blocker; must never matter
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("queued submit blocked %v past its deadline", waited)
	}
}

// TestPlanCoalescesThunderingHerd is the tentpole acceptance test: N
// concurrent identical cold-cache requests execute exactly one planner
// run. Everyone gets the same answer; all but the flight leader report
// either coalesced (joined the in-flight run) or cached (arrived after it
// landed).
func TestPlanCoalescesThunderingHerd(t *testing.T) {
	srv, ts := newTestServer(t)
	data, err := json.Marshal(PlanRequest{Platform: testPlatform(600), DgemmN: 310})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 12
	start := make(chan struct{})
	prs := make([]PlanResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&prs[i])
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := srv.pool.Executed(); got != 1 {
		t.Errorf("planner ran %d times for %d identical requests, want exactly 1", got, clients)
	}
	leaders, coalesced, cached := 0, 0, 0
	for i := range prs {
		if prs[i].Rho != prs[0].Rho {
			t.Errorf("client %d rho %g != client 0 rho %g", i, prs[i].Rho, prs[0].Rho)
		}
		switch {
		case prs[i].Cached:
			cached++
		case prs[i].Coalesced:
			coalesced++
		default:
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders (uncached, uncoalesced responses), want 1", leaders)
	}
	if coalesced+cached != clients-1 {
		t.Errorf("coalesced %d + cached %d != %d joiners", coalesced, cached, clients-1)
	}

	// The sharing is visible in /v1/metrics.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.PlansExecuted != 1 {
		t.Errorf("metrics plans_executed = %d, want 1", rep.PlansExecuted)
	}
	if int(rep.Coalesced) != coalesced {
		t.Errorf("metrics coalesced = %d, responses said %d", rep.Coalesced, coalesced)
	}
	// Misses are charged where planning happens: the herd is one miss,
	// not N — joiners and late cache hits count no miss of their own.
	if rep.CacheMisses != 1 {
		t.Errorf("metrics cache_misses = %d, want 1 for a coalesced herd", rep.CacheMisses)
	}
}

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPlanBackpressure429 saturates a one-worker, one-slot daemon and
// verifies the admission control path: the excess request is shed
// immediately with 429 + Retry-After instead of parking its handler
// goroutine, and the rejection is visible in /v1/metrics.
func TestPlanBackpressure429(t *testing.T) {
	srv, err := New(Config{CacheSize: 16, Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	release := blockPoolWorker(t, srv.pool)
	defer release()

	// Fill the single queue slot with a distinct-key request; it parks
	// behind the blocked worker until release.
	queuedDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: testPlatform(10), DgemmN: 310})
		queuedDone <- resp.StatusCode
	}()
	waitUntil(t, "queue slot to fill", func() bool { return srv.pool.QueueDepth() == 1 })

	// A further distinct-key request has nowhere to go: shed, not parked.
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: testPlatform(11), DgemmN: 310})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("shed request took %v, want fail-fast", waited)
	}

	release()
	if status := <-queuedDone; status != http.StatusOK {
		t.Errorf("queued request finished with %d, want 200", status)
	}

	respM, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer respM.Body.Close()
	var rep Report
	if err := json.NewDecoder(respM.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Rejected < 1 {
		t.Errorf("metrics rejected = %d, want >= 1", rep.Rejected)
	}
	if rep.QueueCapacity != 1 {
		t.Errorf("metrics queue_capacity = %d, want 1", rep.QueueCapacity)
	}
}

// TestPoolCloseDrainsDeterministically pins the shutdown contract: jobs
// still queued when Close fires are uniformly answered with ErrPoolClosed
// and never run — the old worker select raced quit against the job queue
// and randomly did either. Run with -race.
func TestPoolCloseDrainsDeterministically(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		pool, err := NewPool(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		release := blockPoolWorker(t, pool)

		var ran atomic.Int64
		const queued = 8
		errs := make(chan error, queued)
		for i := 0; i < queued; i++ {
			go func() {
				_, err := pool.Submit(context.Background(), func(context.Context) (*core.Plan, error) {
					ran.Add(1)
					return nil, nil
				})
				errs <- err
			}()
		}
		waitUntil(t, "jobs to queue", func() bool { return pool.QueueDepth() == queued })

		closed := make(chan struct{})
		go func() {
			pool.Close()
			close(closed)
		}()
		// Release the blocker only once shutdown has been signalled, so the
		// queued jobs are dequeued strictly after quit closed.
		waitUntil(t, "quit to close", func() bool {
			select {
			case <-pool.quit:
				return true
			default:
				return false
			}
		})
		release()
		<-closed

		for i := 0; i < queued; i++ {
			if err := <-errs; !errors.Is(err, ErrPoolClosed) {
				t.Fatalf("iter %d: queued job got %v, want ErrPoolClosed", iter, err)
			}
		}
		if n := ran.Load(); n != 0 {
			t.Fatalf("iter %d: %d queued job(s) ran during shutdown", iter, n)
		}
	}
}

// A dropped client is a 499 (log-only), not a 504 server error; the
// server-side deadline stays a 504. The two used to be conflated.
func TestPlanClientCancelVsDeadline(t *testing.T) {
	srv, err := New(Config{CacheSize: 16, Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	release := blockPoolWorker(t, srv.pool)
	defer release()

	// Client walks away while its job is queued behind the blocker.
	ctx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequest(http.MethodPost, "/v1/plan", nil).WithContext(ctx)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, _, status, err := srv.plan(r, &PlanRequest{Platform: testPlatform(10), DgemmN: 310})
	if status != statusClientClosedRequest {
		t.Errorf("client cancel: status %d, want %d", status, statusClientClosedRequest)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("client cancel: err = %v, want context.Canceled", err)
	}

	// Server-side deadline on a still-interested client: 504.
	r2 := httptest.NewRequest(http.MethodPost, "/v1/plan", nil)
	_, _, status, err = srv.plan(r2, &PlanRequest{Platform: testPlatform(12), DgemmN: 310, TimeoutMillis: 30})
	if status != http.StatusGatewayTimeout {
		t.Errorf("deadline: status %d, want 504", status)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// A leader with a tiny timeout_ms must not doom joiners with bigger
// budgets: the shared flight runs under the server-wide cap, the leader
// alone gets its 504, and the joiner still receives the plan.
func TestShortLeaderTimeoutDoesNotPoisonJoiner(t *testing.T) {
	srv, err := New(Config{CacheSize: 16, Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	release := blockPoolWorker(t, srv.pool)
	defer release()

	plat := testPlatform(14)
	leaderDone := make(chan int, 1)
	go func() {
		r := httptest.NewRequest(http.MethodPost, "/v1/plan", nil)
		_, _, status, _ := srv.plan(r, &PlanRequest{Platform: plat, DgemmN: 310, TimeoutMillis: 50})
		leaderDone <- status
	}()
	waitUntil(t, "flight to register", func() bool {
		srv.flights.mu.Lock()
		defer srv.flights.mu.Unlock()
		return len(srv.flights.flights) == 1
	})

	joinerDone := make(chan *PlanResponse, 1)
	go func() {
		r := httptest.NewRequest(http.MethodPost, "/v1/plan", nil)
		resp, _, _, err := srv.plan(r, &PlanRequest{Platform: plat, DgemmN: 310})
		if err != nil {
			t.Errorf("joiner: %v", err)
			joinerDone <- nil
			return
		}
		joinerDone <- resp
	}()

	if status := <-leaderDone; status != http.StatusGatewayTimeout {
		t.Errorf("leader status %d, want 504", status)
	}
	release() // worker picks up the still-alive flight job
	if resp := <-joinerDone; resp != nil {
		if !resp.Coalesced {
			t.Error("joiner not marked coalesced")
		}
		if resp.Rho <= 0 {
			t.Errorf("joiner rho = %g", resp.Rho)
		}
	}
}

// A batch whose every item failed must not masquerade as a success.
func TestBatchAllFailed(t *testing.T) {
	_, ts := newTestServer(t)
	br := BatchRequest{Requests: []PlanRequest{
		{Platform: testPlatform(5), Planner: "bogus", DgemmN: 310},
		{PlatformName: "never-registered", DgemmN: 310},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/plan/batch", br)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 2 || out.Succeeded != 0 {
		t.Errorf("failed/succeeded = %d/%d, want 2/0", out.Failed, out.Succeeded)
	}
}

// A batch that failed purely from load shedding is retryable overload:
// 429 with Retry-After, not a terminal 422.
func TestBatchAllShedIs429(t *testing.T) {
	srv, err := New(Config{CacheSize: 16, Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	release := blockPoolWorker(t, srv.pool)
	defer release()

	// Park a distinct-key request in the single queue slot so every batch
	// item is shed rather than queued.
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: testPlatform(30), DgemmN: 310})
	}()
	waitUntil(t, "queue slot to fill", func() bool { return srv.pool.QueueDepth() == 1 })
	defer func() {
		release()
		<-queuedDone
	}()

	br := BatchRequest{Requests: []PlanRequest{
		{Platform: testPlatform(8), DgemmN: 310},
		{Platform: testPlatform(9), DgemmN: 310},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/plan/batch", br)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 2 || out.Succeeded != 0 {
		t.Errorf("failed/succeeded = %d/%d, want 2/0", out.Failed, out.Succeeded)
	}
}

// TestRegistryPersistence covers the journal: Put writes through to the
// directory, a fresh registry recovers the platforms after a "restart",
// Delete removes the file, and path-escaping names are rejected.
func TestRegistryPersistence(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	if err := reg.PersistTo(dir); err != nil {
		t.Fatal(err)
	}
	plat := testPlatform(6)
	if err := reg.Put("lyon", plat); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "lyon.json")); err != nil {
		t.Fatalf("journal file missing: %v", err)
	}

	// A daemon restart pointed at the same dir recovers the platform.
	reg2 := NewRegistry()
	names, err := reg2.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "lyon" {
		t.Fatalf("recovered names = %v, want [lyon]", names)
	}
	got, ok := reg2.Get("lyon")
	if !ok || len(got.Nodes) != len(plat.Nodes) {
		t.Errorf("recovered platform has %d nodes, want %d", len(got.Nodes), len(plat.Nodes))
	}

	if !reg.Delete("lyon") {
		t.Fatal("delete failed")
	}
	if _, err := os.Stat(filepath.Join(dir, "lyon.json")); !os.IsNotExist(err) {
		t.Errorf("journal file survived delete: %v", err)
	}

	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, ".hidden"} {
		if err := reg.Put(bad, plat); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	// Nothing escaped the directory: only the version sidecar (which
	// must survive the delete — it carries the tombstone) may remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != versionsSidecar {
			t.Errorf("stray journal file: %v", e.Name())
		}
	}
}

// TestPlannerContextCancellation proves the PlanContext plumbing reaches
// the planners' inner loops: an already-cancelled context aborts each
// planner.
func TestPlannerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := core.Request{
		Platform: testPlatform(20),
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 310}.MFlop(),
	}

	for _, name := range PlannerNames() {
		planner, err := SelectPlanner(name)
		if err != nil {
			t.Fatal(err)
		}
		if name == "exhaustive" {
			// The exhaustive planner rejects 20 nodes before looking at the
			// context; give it a pool it accepts but cannot finish fast.
			small, _ := platform.Generate(platform.GenSpec{
				Name: "small", N: 8, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 7,
			})
			r := req
			r.Platform = small
			if _, err := planner.PlanContext(ctx, r); !errors.Is(err, context.Canceled) {
				t.Errorf("%s: err = %v, want context.Canceled", name, err)
			}
			continue
		}
		if _, err := planner.PlanContext(ctx, req); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestPlanPortfolioOption exercises portfolio=true end to end: the race
// runs through the worker pool, the response carries per-variant stats
// with exactly one winner, the returned throughput dominates the plain
// heuristic's, and a cached repeat omits the stats (the race never
// re-ran). A conflicting explicit planner is rejected.
func TestPlanPortfolioOption(t *testing.T) {
	_, ts := newTestServer(t)
	plat := testPlatform(20)

	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: plat, DgemmN: 310, Portfolio: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Variants) == 0 {
		t.Fatal("portfolio response carries no variant stats")
	}
	winners := 0
	for _, v := range pr.Variants {
		if v.Winner {
			winners++
			if want := "portfolio:" + v.Variant; pr.Planner != want {
				t.Errorf("planner %q, want %q", pr.Planner, want)
			}
		}
	}
	if winners != 1 {
		t.Errorf("%d winners in stats, want 1", winners)
	}

	respH, bodyH := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: plat, DgemmN: 310})
	if respH.StatusCode != http.StatusOK {
		t.Fatalf("heuristic status %d: %s", respH.StatusCode, bodyH)
	}
	var hr PlanResponse
	if err := json.Unmarshal(bodyH, &hr); err != nil {
		t.Fatal(err)
	}
	if pr.Capped < hr.Capped {
		t.Errorf("portfolio capped %.4f below heuristic %.4f", pr.Capped, hr.Capped)
	}

	// Cached repeat: same key, no fresh race, so no variant stats.
	resp2, body2 := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: plat, DgemmN: 310, Portfolio: true})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, body2)
	}
	var pr2 PlanResponse
	if err := json.Unmarshal(body2, &pr2); err != nil {
		t.Fatal(err)
	}
	if !pr2.Cached {
		t.Error("repeat portfolio request not served from cache")
	}
	if len(pr2.Variants) != 0 {
		t.Error("cached response repeats variant stats")
	}

	respBad, bodyBad := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: plat, DgemmN: 310, Portfolio: true, Planner: "star"})
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("conflicting planner accepted: status %d: %s", respBad.StatusCode, bodyBad)
	}
}

// TestPlanHeterogeneousLinks covers the extended wire schema end to end:
// a multi-cluster platform registered through PUT /v1/platforms, planned
// via platform_name, with the response reporting the link-bandwidth range
// and the plan's XML carrying per-node bandwidth attributes.
func TestPlanHeterogeneousLinks(t *testing.T) {
	_, ts := newTestServer(t)
	grid, err := platform.Generate(platform.GenSpec{
		Name: "grid", N: 12, Bandwidth: 100, MinPower: 200, MaxPower: 900, Seed: 7,
		Clusters: 3, IntraBandwidth: 100, InterBandwidth: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Register through the wire: the extended schema must survive the
	// JSON round trip.
	data, err := grid.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	putReq, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/platforms/grid", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("PUT platform status %d", putResp.StatusCode)
	}

	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{PlatformName: "grid", DgemmN: 310})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.MinLinkBandwidth != 5 || pr.MaxLinkBandwidth != 100 {
		t.Errorf("link range [%g, %g], want [5, 100]", pr.MinLinkBandwidth, pr.MaxLinkBandwidth)
	}
	if !bytes.Contains([]byte(pr.XML), []byte(`bandwidth="5"`)) {
		t.Errorf("plan XML missing per-node bandwidth attributes:\n%s", pr.XML)
	}

	// A uniform platform reports a degenerate range and clean XML.
	uresp, ubody := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: testPlatform(12), DgemmN: 310})
	if uresp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", uresp.StatusCode, ubody)
	}
	var upr PlanResponse
	if err := json.Unmarshal(ubody, &upr); err != nil {
		t.Fatal(err)
	}
	if upr.MinLinkBandwidth != 100 || upr.MaxLinkBandwidth != 100 {
		t.Errorf("uniform link range [%g, %g], want [100, 100]", upr.MinLinkBandwidth, upr.MaxLinkBandwidth)
	}
	if bytes.Contains([]byte(upr.XML), []byte("bandwidth=")) {
		t.Errorf("uniform plan XML leaks bandwidth attributes:\n%s", upr.XML)
	}
}

// TestPlanScenario covers the server-side generation request path: a
// declarative spec plans without shipping nodes over the wire, a large
// quantised pool engages the class-collapsed planner (reported on the
// wire and counted by the daemon), and the spec content-addresses the
// cache exactly like the platform it expands to.
func TestPlanScenario(t *testing.T) {
	srv, ts := newTestServer(t)
	spec := &scenario.Spec{Family: scenario.ClusterGrid, N: 5000, Seed: 11, PowerLevels: 8}
	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Scenario: spec, DgemmN: 310})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.PoolNodes != 5000 {
		t.Errorf("pool_nodes = %d, want 5000", pr.PoolNodes)
	}
	if !pr.ClassPlanned {
		t.Error("quantised 5000-node pool did not report class_planned")
	}
	if pr.SpecClasses < 2 || pr.SpecClasses > 64 {
		t.Errorf("spec_classes = %d, want a small positive class count", pr.SpecClasses)
	}
	if pr.Rho <= 0 {
		t.Errorf("rho = %g, want > 0", pr.Rho)
	}
	if got := srv.classPlans.Load(); got != 1 {
		t.Errorf("classPlans = %d after one fresh class plan, want 1", got)
	}

	// The same spec is the same content address: a hit, with the plan's
	// class provenance preserved through the cache, and no re-count.
	resp2, body2 := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Scenario: spec, DgemmN: 310})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	var pr2 PlanResponse
	if err := json.Unmarshal(body2, &pr2); err != nil {
		t.Fatal(err)
	}
	if !pr2.Cached {
		t.Error("identical scenario request missed the cache")
	}
	if !pr2.ClassPlanned || pr2.SpecClasses != pr.SpecClasses {
		t.Errorf("cached response lost class provenance: class_planned=%v spec_classes=%d", pr2.ClassPlanned, pr2.SpecClasses)
	}
	if got := srv.classPlans.Load(); got != 1 {
		t.Errorf("classPlans = %d after a cache hit, want still 1", got)
	}

	// A small continuous pool plans fine but stays on the node path.
	respSmall, bodySmall := postJSON(t, ts.URL+"/v1/plan", PlanRequest{
		Scenario: &scenario.Spec{Family: scenario.PowerLaw, N: 24, Seed: 3}, DgemmN: 310,
	})
	if respSmall.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", respSmall.StatusCode, bodySmall)
	}
	var prSmall PlanResponse
	if err := json.Unmarshal(bodySmall, &prSmall); err != nil {
		t.Fatal(err)
	}
	if prSmall.PoolNodes != 24 || prSmall.ClassPlanned || prSmall.SpecClasses != 0 {
		t.Errorf("small pool reported pool_nodes=%d class_planned=%v spec_classes=%d, want 24/false/0",
			prSmall.PoolNodes, prSmall.ClassPlanned, prSmall.SpecClasses)
	}

	// Scenario is a platform source of its own: combining it with an
	// inline platform (or a registry name) is a client error.
	respBad, _ := postJSON(t, ts.URL+"/v1/plan", PlanRequest{
		Scenario: spec, Platform: testPlatform(8), DgemmN: 310,
	})
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("scenario+platform accepted: status %d", respBad.StatusCode)
	}
	respBad2, _ := postJSON(t, ts.URL+"/v1/plan", PlanRequest{
		Scenario: spec, PlatformName: "nope", DgemmN: 310,
	})
	if respBad2.StatusCode != http.StatusBadRequest {
		t.Errorf("scenario+platform_name accepted: status %d", respBad2.StatusCode)
	}

	// A bad spec surfaces as a 400, not a planner failure.
	respErr, _ := postJSON(t, ts.URL+"/v1/plan", PlanRequest{
		Scenario: &scenario.Spec{Family: "no-such-family", N: 10}, DgemmN: 310,
	})
	if respErr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scenario family: status %d, want 400", respErr.StatusCode)
	}
}
