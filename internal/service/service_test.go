package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{CacheSize: 16, Workers: 4, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func testPlatform(n int) *platform.Platform {
	p, err := platform.Generate(platform.GenSpec{
		Name: "svc-test", N: n, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	return p
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{
		Platform: testPlatform(20),
		DgemmN:   310,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Planner != "heuristic" {
		t.Errorf("planner = %q, want heuristic", pr.Planner)
	}
	if pr.Rho <= 0 {
		t.Errorf("rho = %g, want positive", pr.Rho)
	}
	if pr.Cached {
		t.Error("first request reported as cached")
	}
	if pr.XML == "" {
		t.Error("missing deployment XML")
	}
	if pr.Agents+pr.Servers != pr.NodesUsed {
		t.Errorf("agents %d + servers %d != nodes_used %d", pr.Agents, pr.Servers, pr.NodesUsed)
	}
}

func TestPlanCachedOnRepeat(t *testing.T) {
	_, ts := newTestServer(t)
	req := PlanRequest{Platform: testPlatform(20), DgemmN: 310}

	_, body1 := postJSON(t, ts.URL+"/v1/plan", req)
	var first PlanResponse
	if err := json.Unmarshal(body1, &first); err != nil {
		t.Fatal(err)
	}
	_, body2 := postJSON(t, ts.URL+"/v1/plan", req)
	var second PlanResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request cached")
	}
	if !second.Cached {
		t.Error("repeat request not cached")
	}
	if first.Key != second.Key {
		t.Errorf("keys differ: %s vs %s", first.Key, second.Key)
	}
	if first.Rho != second.Rho {
		t.Errorf("rho differs: %g vs %g", first.Rho, second.Rho)
	}

	// The hit is visible in /v1/metrics.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", rep.CacheHits)
	}
	if rep.CacheMisses < 1 {
		t.Errorf("cache_misses = %d, want >= 1", rep.CacheMisses)
	}
	if ep, ok := rep.Endpoints["plan"]; !ok || ep.Requests != 2 {
		t.Errorf("plan endpoint metrics = %+v, want 2 requests", ep)
	}
}

// TestPlanConcurrent exercises the acceptance criterion: many clients
// planning in parallel against the bounded pool, all receiving the same
// correct answer.
func TestPlanConcurrent(t *testing.T) {
	_, ts := newTestServer(t)
	const clients = 16
	req := PlanRequest{Platform: testPlatform(30), DgemmN: 310}

	var wg sync.WaitGroup
	rhos := make([]float64, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var pr PlanResponse
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				errs[i] = err
				return
			}
			rhos[i] = pr.Rho
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if rhos[i] != rhos[0] {
			t.Errorf("client %d rho %g != client 0 rho %g", i, rhos[i], rhos[0])
		}
	}
}

func TestPlanErrors(t *testing.T) {
	_, ts := newTestServer(t)

	cases := []struct {
		name string
		body any
		want int
	}{
		{"no platform", PlanRequest{DgemmN: 310}, http.StatusBadRequest},
		{"both platforms", PlanRequest{Platform: testPlatform(5), PlatformName: "x"}, http.StatusBadRequest},
		{"unknown planner", PlanRequest{Platform: testPlatform(5), Planner: "quantum"}, http.StatusBadRequest},
		{"unregistered name", PlanRequest{PlatformName: "nope"}, http.StatusBadRequest},
		{"one node", PlanRequest{Platform: platform.Homogeneous("tiny", 1, 100, 100)}, http.StatusBadRequest},
		{"garbage json", "{not json", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var resp *http.Response
		if s, ok := tc.body.(string); ok {
			var err error
			resp, err = http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader([]byte(s)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		} else {
			resp, _ = postJSON(t, ts.URL+"/v1/plan", tc.body)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestPlatformCRUD(t *testing.T) {
	_, ts := newTestServer(t)
	client := &http.Client{}
	plat := testPlatform(8)
	data, err := plat.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	// PUT registers.
	put, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/platforms/lyon", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}

	// GET returns it.
	resp, err = http.Get(ts.URL + "/v1/platforms/lyon")
	if err != nil {
		t.Fatal(err)
	}
	var got platform.Platform
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(plat.Nodes) {
		t.Errorf("GET returned %d nodes, want %d", len(got.Nodes), len(plat.Nodes))
	}

	// List includes it.
	resp, err = http.Get(ts.URL + "/v1/platforms")
	if err != nil {
		t.Fatal(err)
	}
	var list map[string][]string
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if names := list["platforms"]; len(names) != 1 || names[0] != "lyon" {
		t.Errorf("list = %v, want [lyon]", names)
	}

	// Planning by registry name works.
	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{PlatformName: "lyon", DgemmN: 310})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan by name: status %d: %s", resp.StatusCode, body)
	}

	// DELETE removes it; a second DELETE 404s.
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/platforms/lyon", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("DELETE status %d", resp.StatusCode)
	}
	resp, err = client.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE status %d, want 404", resp.StatusCode)
	}

	// GET of a missing platform 404s.
	resp, err = http.Get(ts.URL + "/v1/platforms/lyon")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after delete status %d, want 404", resp.StatusCode)
	}

	// PUT of an invalid platform is rejected.
	put, err = http.NewRequest(http.MethodPut, ts.URL+"/v1/platforms/bad", bytes.NewReader([]byte(`{"name":"bad","bandwidth_mbps":-1,"nodes":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid PUT status %d, want 400", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	plat := testPlatform(15)
	br := BatchRequest{Requests: []PlanRequest{
		{Platform: plat, Planner: "heuristic", DgemmN: 310},
		{Platform: plat, Planner: "star", DgemmN: 310},
		{Platform: plat, Planner: "balanced", DgemmN: 310},
		{Platform: plat, Planner: "bogus", DgemmN: 310}, // per-item error
	}}
	resp, body := postJSON(t, ts.URL+"/v1/plan/batch", br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(out.Items))
	}
	wantPlanner := []string{"heuristic", "star", "balanced"}
	for i, want := range wantPlanner {
		item := out.Items[i]
		if item.Error != "" || item.Plan == nil {
			t.Fatalf("item %d: error %q", i, item.Error)
		}
		if item.Plan.Planner != want {
			t.Errorf("item %d planner = %q, want %q", i, item.Plan.Planner, want)
		}
		if item.Plan.Rho <= 0 {
			t.Errorf("item %d rho = %g", i, item.Plan.Rho)
		}
	}
	if out.Items[3].Error == "" {
		t.Error("bogus planner item did not error")
	}
	// The heuristic beats or matches the naive baselines on this pool.
	if out.Items[0].Plan.Capped < out.Items[2].Plan.Capped {
		t.Errorf("heuristic (%g) worse than balanced (%g)",
			out.Items[0].Plan.Capped, out.Items[2].Plan.Capped)
	}

	// An empty batch is rejected.
	resp, _ = postJSON(t, ts.URL+"/v1/plan/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status %d, want 400", resp.StatusCode)
	}
}

func TestDeployEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	dr := DeployRequest{
		PlanRequest: PlanRequest{
			Platform: platform.Homogeneous("live", 6, 400, 100),
			Wapp:     5.0,
		},
		Clients:        3,
		DurationMillis: 300,
	}
	resp, body := postJSON(t, ts.URL+"/v1/deploy", dr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out DeployResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Completed <= 0 {
		t.Errorf("completed = %d, want positive", out.Completed)
	}
	if out.Failed != 0 {
		t.Errorf("failed = %d", out.Failed)
	}
	if out.Plan == nil || out.Plan.Rho <= 0 {
		t.Error("missing plan in deploy response")
	}
	if len(out.ServedCounts) == 0 {
		t.Error("no served counts")
	}
}

func TestRegistryLoadDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"alpha", "beta"} {
		if err := testPlatform(6).SaveJSON(dir + "/" + name + ".json"); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	names, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("names = %v, want [alpha beta]", names)
	}
	if _, ok := reg.Get("alpha"); !ok {
		t.Error("alpha not registered")
	}
}

func TestPoolCancellation(t *testing.T) {
	pool, err := NewPool(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Occupy the lone worker so the next submit sits in the queue.
	release := make(chan struct{})
	go func() {
		_, _ = pool.Submit(context.Background(), func(context.Context) (*core.Plan, error) {
			<-release
			return nil, nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the blocker reach the worker

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = pool.Submit(ctx, func(context.Context) (*core.Plan, error) {
		t.Error("cancelled job ran")
		return nil, nil
	})
	close(release)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

// A job that made it into a buffered queue must still unblock its
// submitter promptly when the context fires, not wait for a worker.
func TestPoolCancellationWhileQueued(t *testing.T) {
	pool, err := NewPool(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	release := make(chan struct{})
	go func() {
		_, _ = pool.Submit(context.Background(), func(context.Context) (*core.Plan, error) {
			<-release
			return nil, nil
		})
	}()
	defer close(release)
	time.Sleep(20 * time.Millisecond) // blocker occupies the lone worker

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = pool.Submit(ctx, func(context.Context) (*core.Plan, error) {
		return nil, nil // queued behind the blocker; must never matter
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("queued submit blocked %v past its deadline", waited)
	}
}

// TestPlannerContextCancellation proves the PlanContext plumbing reaches
// the planners' inner loops: an already-cancelled context aborts each
// planner.
func TestPlannerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := core.Request{
		Platform: testPlatform(20),
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 310}.MFlop(),
	}

	for _, name := range PlannerNames() {
		planner, err := SelectPlanner(name)
		if err != nil {
			t.Fatal(err)
		}
		if name == "exhaustive" {
			// The exhaustive planner rejects 20 nodes before looking at the
			// context; give it a pool it accepts but cannot finish fast.
			small, _ := platform.Generate(platform.GenSpec{
				Name: "small", N: 8, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 7,
			})
			r := req
			r.Platform = small
			if _, err := planner.PlanContext(ctx, r); !errors.Is(err, context.Canceled) {
				t.Errorf("%s: err = %v, want context.Canceled", name, err)
			}
			continue
		}
		if _, err := planner.PlanContext(ctx, req); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestPlanPortfolioOption exercises portfolio=true end to end: the race
// runs through the worker pool, the response carries per-variant stats
// with exactly one winner, the returned throughput dominates the plain
// heuristic's, and a cached repeat omits the stats (the race never
// re-ran). A conflicting explicit planner is rejected.
func TestPlanPortfolioOption(t *testing.T) {
	_, ts := newTestServer(t)
	plat := testPlatform(20)

	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: plat, DgemmN: 310, Portfolio: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Variants) == 0 {
		t.Fatal("portfolio response carries no variant stats")
	}
	winners := 0
	for _, v := range pr.Variants {
		if v.Winner {
			winners++
			if want := "portfolio:" + v.Variant; pr.Planner != want {
				t.Errorf("planner %q, want %q", pr.Planner, want)
			}
		}
	}
	if winners != 1 {
		t.Errorf("%d winners in stats, want 1", winners)
	}

	respH, bodyH := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: plat, DgemmN: 310})
	if respH.StatusCode != http.StatusOK {
		t.Fatalf("heuristic status %d: %s", respH.StatusCode, bodyH)
	}
	var hr PlanResponse
	if err := json.Unmarshal(bodyH, &hr); err != nil {
		t.Fatal(err)
	}
	if pr.Capped < hr.Capped {
		t.Errorf("portfolio capped %.4f below heuristic %.4f", pr.Capped, hr.Capped)
	}

	// Cached repeat: same key, no fresh race, so no variant stats.
	resp2, body2 := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: plat, DgemmN: 310, Portfolio: true})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, body2)
	}
	var pr2 PlanResponse
	if err := json.Unmarshal(body2, &pr2); err != nil {
		t.Fatal(err)
	}
	if !pr2.Cached {
		t.Error("repeat portfolio request not served from cache")
	}
	if len(pr2.Variants) != 0 {
		t.Error("cached response repeats variant stats")
	}

	respBad, bodyBad := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Platform: plat, DgemmN: 310, Portfolio: true, Planner: "star"})
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("conflicting planner accepted: status %d: %s", respBad.StatusCode, bodyBad)
	}
}
