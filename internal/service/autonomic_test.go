package service

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"adept/internal/platform"
)

// autonomicPlatform is a small fixed pool with a clearly most-powerful
// server to drift.
func autonomicPlatform() *platform.Platform {
	return &platform.Platform{
		Name:      "auto-svc",
		Bandwidth: 100,
		Nodes: []platform.Node{
			{Name: "n0", Power: 400},
			{Name: "s1", Power: 200},
			{Name: "s2", Power: 150},
			{Name: "s3", Power: 150},
			{Name: "s4", Power: 100},
		},
	}
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestAutonomicSimSession drives the full daemon surface: start a
// sim-backed session with a scheduled 2x drift on the strongest server,
// let the loop run its cycles, and read the adaptation history back from
// the status endpoint.
func TestAutonomicSimSession(t *testing.T) {
	_, ts := newTestServer(t)

	start := AutonomicRequest{
		PlanRequest: PlanRequest{Platform: autonomicPlatform(), Wapp: 10},
		Backend:     "sim",
		Clients:     12,
		Cycles:      30,
		Scenario:    []ScenarioPhase{{At: 40, Factors: map[string]float64{"s1": 2}}},
		// Starved-but-alive servers are expected here; crash detection off.
		CrashWindows: -1,
	}
	resp, body := postJSON(t, ts.URL+"/v1/autonomic/start", start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d: %s", resp.StatusCode, body)
	}

	// A second session must be refused while the first runs (or report the
	// first one done — the sim loop is fast).
	resp2, _ := postJSON(t, ts.URL+"/v1/autonomic/start", start)
	if resp2.StatusCode != http.StatusConflict && resp2.StatusCode != http.StatusOK {
		t.Fatalf("concurrent start: unexpected status %d", resp2.StatusCode)
	}

	// The sim loop finishes its 30 cycles almost immediately.
	var st AutonomicStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		r := getJSON(t, ts.URL+"/v1/autonomic/status", &st)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status: %d", r.StatusCode)
		}
		if st.Done || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !st.Done {
		t.Fatalf("sim session did not finish: %+v", st)
	}
	if st.RunErr != "" {
		t.Fatalf("control loop error: %s", st.RunErr)
	}
	if len(st.Status.Adaptations) == 0 {
		t.Fatalf("no adaptations reported: %+v", st.Status)
	}
	if st.Status.PatchOpsApplied == 0 || st.Status.PatchOpsApplied >= st.Status.Elements {
		t.Errorf("patch ops %d not in (0, %d)", st.Status.PatchOpsApplied, st.Status.Elements)
	}
	if st.Status.FullRedeploys != 0 {
		t.Errorf("sim session fell back to redeploys: %+v", st.Status)
	}

	// Stop returns the final status and frees the slot.
	respStop, stopBody := postJSON(t, ts.URL+"/v1/autonomic/stop", struct{}{})
	if respStop.StatusCode != http.StatusOK {
		t.Fatalf("stop: %d: %s", respStop.StatusCode, stopBody)
	}
	if r := getJSON(t, ts.URL+"/v1/autonomic/status", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("status after stop: %d, want 404", r.StatusCode)
	}
}

// TestAutonomicLiveSessionInject starts a live-backend session, injects
// drift through the API, and stops it again.
func TestAutonomicLiveSessionInject(t *testing.T) {
	_, ts := newTestServer(t)

	start := AutonomicRequest{
		PlanRequest:  PlanRequest{Platform: autonomicPlatform(), Wapp: 10},
		Backend:      "live",
		Clients:      4,
		WindowMillis: 200,
		CrashWindows: -1,
	}
	resp, body := postJSON(t, ts.URL+"/v1/autonomic/start", start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d: %s", resp.StatusCode, body)
	}
	var started struct {
		Backend string `json:"backend"`
	}
	if err := json.Unmarshal(body, &started); err != nil || started.Backend != "live" {
		t.Fatalf("start response: %s (%v)", body, err)
	}

	respInj, injBody := postJSON(t, ts.URL+"/v1/autonomic/inject", InjectRequest{Server: "s1", Factor: 2})
	if respInj.StatusCode != http.StatusOK {
		t.Fatalf("inject: %d: %s", respInj.StatusCode, injBody)
	}
	if respInj, _ := postJSON(t, ts.URL+"/v1/autonomic/inject", InjectRequest{Server: "ghost", Factor: 2}); respInj.StatusCode != http.StatusBadRequest {
		t.Errorf("inject unknown server: %d, want 400", respInj.StatusCode)
	}

	var st AutonomicStatus
	getJSON(t, ts.URL+"/v1/autonomic/status", &st)
	if st.Backend != "live" || st.Done {
		t.Fatalf("unexpected live status: %+v", st)
	}

	respStop, stopBody := postJSON(t, ts.URL+"/v1/autonomic/stop", struct{}{})
	if respStop.StatusCode != http.StatusOK {
		t.Fatalf("stop: %d: %s", respStop.StatusCode, stopBody)
	}
}

func TestAutonomicErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if r, _ := postJSON(t, ts.URL+"/v1/autonomic/stop", struct{}{}); r.StatusCode != http.StatusNotFound {
		t.Errorf("stop without session: %d, want 404", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/v1/autonomic/status", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("status without session: %d, want 404", r.StatusCode)
	}
	if r, _ := postJSON(t, ts.URL+"/v1/autonomic/inject", InjectRequest{Server: "x", Factor: 2}); r.StatusCode != http.StatusNotFound {
		t.Errorf("inject without session: %d, want 404", r.StatusCode)
	}
	bad := AutonomicRequest{
		PlanRequest: PlanRequest{Platform: autonomicPlatform(), Wapp: 10},
		Backend:     "quantum",
	}
	if r, _ := postJSON(t, ts.URL+"/v1/autonomic/start", bad); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown backend: %d, want 400", r.StatusCode)
	}
	if r, _ := postJSON(t, ts.URL+"/v1/autonomic/start", AutonomicRequest{Backend: "sim"}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("missing platform: %d, want 400", r.StatusCode)
	}
}
