package service

import (
	"context"
	"net/http"

	"adept/internal/platform"
)

// ForwardedHeader marks a /v1/plan request as already forwarded once by a
// peer (its value is the forwarding peer's advertised URL). A request
// carrying it is always planned where it lands — consistent-hash routing
// is single-hop by construction, so divergent ring views between peers
// can never bounce a request around the cluster.
const ForwardedHeader = "X-Adept-Forwarded"

// RegistryUpdate is one versioned registry mutation, as fanned out to
// peers by push-invalidation webhooks and folded in by
// RegistryStore.ApplyRemote. Version orders updates for a name across the
// whole cluster; Deleted marks a tombstone (Platform nil); Origin is the
// advertised URL of the peer the write landed on, so receivers can drop
// their own echoes.
type RegistryUpdate struct {
	Name     string             `json:"name"`
	Version  uint64             `json:"version"`
	Deleted  bool               `json:"deleted,omitempty"`
	Platform *platform.Platform `json:"platform,omitempty"`
	Origin   string             `json:"origin,omitempty"`
}

// PeerReport is the cluster-layer counter block surfaced in both metrics
// endpoints (adeptd_peer_* families on GET /metrics, the "peer" object on
// GET /v1/metrics).
type PeerReport struct {
	// Peers is the ring membership size, this node included.
	Peers int `json:"peers"`
	// Forwards counts plan requests answered by forwarding to the key's
	// owning peer.
	Forwards uint64 `json:"forwards"`
	// Fallbacks counts plan requests that should have been forwarded but
	// were planned locally because the owner was unreachable, unhealthy,
	// or answered with an error.
	Fallbacks uint64 `json:"fallbacks"`
	// RemoteCacheHits counts plan requests answered from the local copy of
	// a previously forwarded response (content addresses are immutable, so
	// the copy can never go stale).
	RemoteCacheHits uint64 `json:"remote_cache_hits"`
	// InvalidationsSent counts registry update webhooks successfully
	// delivered to peers; InvalidationsApplied counts received webhooks
	// that were newer than local state and changed it.
	InvalidationsSent    uint64 `json:"invalidations_sent"`
	InvalidationsApplied uint64 `json:"invalidations_applied"`
	// PeerErrors counts failed peer HTTP exchanges (forwards and webhook
	// deliveries, retries included).
	PeerErrors uint64 `json:"peer_errors"`
}

// Cluster is the seam between the single-process daemon and the peer
// layer (internal/cluster implements it). The Server calls it only when
// one was attached via EnableCluster; a nil cluster is single-node mode,
// with zero network traffic and byte-identical behaviour to the
// pre-cluster daemon.
type Cluster interface {
	// ForwardPlan tries to answer the request on the peer owning key's
	// slice of the consistent-hash ring. ok=false means the caller should
	// plan locally: the key is self-owned, or the owner could not answer
	// (peer failure degrades to local planning, never to a client-visible
	// error).
	ForwardPlan(ctx context.Context, key CacheKey, pr *PlanRequest) (resp *PlanResponse, ok bool)
	// Broadcast fans a local registry mutation out to every peer
	// asynchronously (delivery retries with backoff; stale versions are
	// discarded by the receiver, so redelivery is harmless).
	Broadcast(u RegistryUpdate)
	// Report snapshots the peer counters for the metrics endpoints.
	Report() PeerReport
	// StatusHandler serves GET /v1/cluster: ring membership, per-peer
	// health, and key ownership counts.
	StatusHandler() http.Handler
	// InvalidateHandler serves POST /v1/cluster/invalidate: the
	// HMAC-verified webhook receiver feeding ApplyRemote.
	InvalidateHandler() http.Handler
}

// EnableCluster attaches the peer layer: /v1/plan requests whose content
// address another peer owns are forwarded there, registry writes
// broadcast invalidations, the cluster endpoints are mounted (and
// instrumented like every other endpoint), and the adeptd_peer_* counter
// families join the Prometheus registry. Call before serving traffic.
func (s *Server) EnableCluster(c Cluster) {
	s.cluster = c
	s.mux.Handle("GET /v1/cluster", s.instrument("cluster_status", func(w http.ResponseWriter, r *http.Request) {
		c.StatusHandler().ServeHTTP(w, r)
	}))
	s.mux.Handle("POST /v1/cluster/invalidate", s.instrument("cluster_invalidate", func(w http.ResponseWriter, r *http.Request) {
		c.InvalidateHandler().ServeHTTP(w, r)
	}))
	prom := s.metrics.Prom()
	prom.GaugeFunc("adeptd_peers", "Peers in the cluster ring, this node included.", func() float64 {
		return float64(c.Report().Peers)
	})
	prom.CounterFunc("adeptd_peer_forwards_total", "Plan requests answered by the key's owning peer.", func() uint64 {
		return c.Report().Forwards
	})
	prom.CounterFunc("adeptd_peer_fallbacks_total", "Plan requests planned locally because the owning peer was unavailable.", func() uint64 {
		return c.Report().Fallbacks
	})
	prom.CounterFunc("adeptd_peer_remote_cache_hits_total", "Plan requests answered from locally retained forwarded responses.", func() uint64 {
		return c.Report().RemoteCacheHits
	})
	prom.CounterFunc("adeptd_peer_invalidations_sent_total", "Registry invalidation webhooks delivered to peers.", func() uint64 {
		return c.Report().InvalidationsSent
	})
	prom.CounterFunc("adeptd_peer_invalidations_applied_total", "Peer registry invalidations applied over local state.", func() uint64 {
		return c.Report().InvalidationsApplied
	})
	prom.CounterFunc("adeptd_peer_errors_total", "Failed peer HTTP exchanges (forwards and webhook deliveries).", func() uint64 {
		return c.Report().PeerErrors
	})
}

// broadcast fans a registry mutation out when a cluster is attached.
func (s *Server) broadcast(u RegistryUpdate) {
	if s.cluster != nil {
		s.cluster.Broadcast(u)
	}
}
