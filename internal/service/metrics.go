package service

import (
	"sync"
	"time"

	"adept/internal/stats"
)

// latencyWindow bounds the per-endpoint latency sample reservoir. A ring
// of recent samples keeps percentile reporting O(window) and makes the
// metrics reflect current behaviour rather than the daemon's whole life.
const latencyWindow = 2048

// Metrics aggregates the daemon's request counters and latency
// percentiles. All methods are safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]uint64 // per-endpoint request counts
	errors   map[string]uint64 // per-endpoint non-2xx counts
	latency  map[string]*ring  // per-endpoint latency samples (seconds)
	started  time.Time
}

type ring struct {
	samples []float64
	next    int
}

func (r *ring) add(v float64) {
	if len(r.samples) < latencyWindow {
		r.samples = append(r.samples, v)
		return
	}
	r.samples[r.next] = v
	r.next = (r.next + 1) % latencyWindow
}

// NewMetrics returns zeroed metrics with the uptime clock started.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]uint64),
		errors:   make(map[string]uint64),
		latency:  make(map[string]*ring),
		started:  time.Now(),
	}
}

// Observe records one request against endpoint with its service latency
// and whether it failed (non-2xx status).
func (m *Metrics) Observe(endpoint string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[endpoint]++
	if failed {
		m.errors[endpoint]++
	}
	r, ok := m.latency[endpoint]
	if !ok {
		r = &ring{}
		m.latency[endpoint] = r
	}
	r.add(d.Seconds())
}

// EndpointMetrics is the per-endpoint slice of a metrics report.
type EndpointMetrics struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// Report is the JSON body served by GET /v1/metrics.
type Report struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      uint64  `json:"requests"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheSize     int     `json:"cache_size"`
	CacheShards   int     `json:"cache_shards"`
	Platforms     int     `json:"platforms"`
	ActivePlans   int     `json:"active_plans"`
	Workers       int     `json:"workers"`
	// QueueDepth is the instantaneous count of planning jobs waiting for
	// a worker; QueueCapacity is the -queue bound. Rejected counts
	// fail-fast 429 admissions, Coalesced counts requests that shared
	// another request's planning run, and PlansExecuted counts actual
	// planner executions on the pool.
	QueueDepth    int                        `json:"queue_depth"`
	QueueCapacity int                        `json:"queue_capacity"`
	Rejected      uint64                     `json:"rejected"`
	Coalesced     uint64                     `json:"coalesced"`
	PlansExecuted uint64                     `json:"plans_executed"`
	Endpoints     map[string]EndpointMetrics `json:"endpoints"`
}

// Snapshot renders the counters into a Report; cache/registry/pool gauges
// are filled in by the caller.
func (m *Metrics) Snapshot() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := Report{
		UptimeSeconds: time.Since(m.started).Seconds(),
		Endpoints:     make(map[string]EndpointMetrics, len(m.requests)),
	}
	for ep, count := range m.requests {
		em := EndpointMetrics{Requests: count, Errors: m.errors[ep]}
		if r := m.latency[ep]; r != nil && len(r.samples) > 0 {
			em.P50Millis = stats.Percentile(r.samples, 50) * 1e3
			em.P99Millis = stats.Percentile(r.samples, 99) * 1e3
		}
		rep.Requests += count
		rep.Endpoints[ep] = em
	}
	return rep
}
