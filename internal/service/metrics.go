package service

import (
	"runtime"
	"runtime/debug"
	"time"

	"adept/internal/obs"
)

// Metrics aggregates the daemon's request counters and latency
// distributions on top of internal/obs primitives: one counter pair and
// one log-bucketed histogram per endpoint, all registered in a
// Prometheus registry that GET /metrics exposes directly. The JSON
// report served by GET /v1/metrics is derived from the same histograms,
// so the two endpoints can never disagree. All methods are safe for
// concurrent use; the Observe hot path is three atomic operations.
type Metrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec
	errors   *obs.CounterVec
	latency  *obs.HistogramVec
	started  time.Time
}

// NewMetrics returns zeroed metrics with the uptime clock started and a
// fresh Prometheus registry holding the request families.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:      reg,
		requests: reg.CounterVec("adeptd_requests_total", "HTTP requests served, by endpoint.", "endpoint"),
		errors:   reg.CounterVec("adeptd_request_errors_total", "HTTP requests answered with a server-attributable error status (>= 400, excluding 499 client disconnects), by endpoint.", "endpoint"),
		latency:  reg.HistogramVec("adeptd_request_duration_seconds", "HTTP request service latency, by endpoint.", obs.LatencyBuckets(), "endpoint"),
		//adeptvet:allow nondet uptime epoch; serving-layer telemetry, not planner state
		started: time.Now(),
	}
	reg.GaugeFunc("adeptd_uptime_seconds", "Seconds since the daemon started.", func() float64 {
		//adeptvet:allow nondet uptime gauge; serving-layer telemetry, not planner state
		return time.Since(m.started).Seconds()
	})
	v, rev, gover := buildIdent()
	reg.GaugeVec("adeptd_build_info", "Build metadata; the value is fixed at 1, the information is in the labels.",
		"version", "revision", "goversion").With(v, rev, gover).Set(1)
	return m
}

// buildIdent resolves the binary's version identifiers from the embedded
// build info: module version, VCS revision (short), and Go toolchain.
func buildIdent() (version, revision, goVersion string) {
	version, revision, goVersion = "unknown", "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return
}

// BuildMeta is the build-identity block of the JSON metrics report,
// mirroring the adeptd_build_info gauge labels.
type BuildMeta struct {
	Version   string `json:"version"`
	Revision  string `json:"revision"`
	GoVersion string `json:"goversion"`
}

// Totals returns the cumulative request and error counts summed across
// endpoints — the (total, bad) pair availability SLOs bind to.
func (m *Metrics) Totals() (requests, errors uint64) {
	m.requests.Do(func(_ []string, c *obs.Counter) { requests += c.Value() })
	m.errors.Do(func(_ []string, c *obs.Counter) { errors += c.Value() })
	return
}

// EndpointTotals returns one endpoint's cumulative (requests, errors)
// pair — what an endpoint-scoped availability SLO binds to.
func (m *Metrics) EndpointTotals(endpoint string) (requests, errors uint64) {
	return m.requests.With(endpoint).Value(), m.errors.With(endpoint).Value()
}

// EndpointLatency returns the latency histogram of one endpoint
// (created on first use) — what latency SLOs bind to.
func (m *Metrics) EndpointLatency(endpoint string) *obs.Histogram {
	return m.latency.With(endpoint)
}

// Prom exposes the Prometheus registry so the server can add gauges for
// components that keep their own counters (cache, pool, flights) and
// serve the text exposition.
func (m *Metrics) Prom() *obs.Registry { return m.reg }

// Observe records one request against endpoint with its service latency
// and whether it failed (status >= 400, excluding client disconnects).
func (m *Metrics) Observe(endpoint string, d time.Duration, failed bool) {
	m.requests.With(endpoint).Inc()
	if failed {
		m.errors.With(endpoint).Inc()
	}
	m.latency.With(endpoint).Observe(d.Seconds())
}

// EndpointMetrics is the per-endpoint slice of a metrics report.
// Percentiles are estimated from the cumulative latency histogram by
// linear interpolation within the containing bucket.
type EndpointMetrics struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// Report is the JSON body served by GET /v1/metrics.
type Report struct {
	UptimeSeconds float64   `json:"uptime_seconds"`
	Build         BuildMeta `json:"build"`
	Requests      uint64    `json:"requests"`
	// Errors totals server-attributable request failures (status >= 400)
	// across endpoints. Client disconnects (499) are never counted.
	// Requests shed by the admission queue answer 429 and so are part of
	// this total as plan-endpoint errors, in addition to being counted
	// separately under Rejected.
	Errors      uint64 `json:"errors"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheSize   int    `json:"cache_size"`
	CacheShards int    `json:"cache_shards"`
	Platforms   int    `json:"platforms"`
	ActivePlans int    `json:"active_plans"`
	Workers     int    `json:"workers"`
	// QueueDepth is the instantaneous count of planning jobs waiting for
	// a worker; QueueCapacity is the -queue bound. Rejected counts
	// fail-fast 429 admissions (these also surface as plan-endpoint
	// errors — see Errors), Coalesced counts requests that shared
	// another request's planning run, and PlansExecuted counts actual
	// planner executions on the pool.
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Rejected      uint64 `json:"rejected"`
	Coalesced     uint64 `json:"coalesced"`
	PlansExecuted uint64 `json:"plans_executed"`
	// Peer carries the cluster-layer counters (forwards, fallbacks,
	// invalidations, peer errors) and is present only when the daemon
	// runs clustered — the same numbers GET /metrics exposes as the
	// adeptd_peer_* families.
	Peer      *PeerReport                `json:"peer,omitempty"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// Snapshot renders the counters into a Report; cache/registry/pool gauges
// are filled in by the caller.
func (m *Metrics) Snapshot() Report {
	v, rev, gover := buildIdent()
	rep := Report{
		//adeptvet:allow nondet uptime report; serving-layer telemetry, not planner state
		UptimeSeconds: time.Since(m.started).Seconds(),
		Build:         BuildMeta{Version: v, Revision: rev, GoVersion: gover},
		Endpoints:     make(map[string]EndpointMetrics),
	}
	errs := make(map[string]uint64)
	m.errors.Do(func(values []string, c *obs.Counter) {
		errs[values[0]] = c.Value()
	})
	m.requests.Do(func(values []string, c *obs.Counter) {
		ep := values[0]
		em := EndpointMetrics{Requests: c.Value(), Errors: errs[ep]}
		if h := m.latency.With(ep); h.Count() > 0 {
			em.P50Millis = h.Quantile(0.50) * 1e3
			em.P99Millis = h.Quantile(0.99) * 1e3
		}
		rep.Requests += em.Requests
		rep.Errors += em.Errors
		rep.Endpoints[ep] = em
	})
	return rep
}
