// Package workload models the applications and client loads of the paper's
// evaluation. All experiments use DGEMM (dense matrix multiply, level-3
// BLAS): the service cost of one request on an n×n problem is 2n³ flops.
// Clients are closed-loop: each runs one request at a time in a continual
// loop, and load is ramped by adding one client per second until throughput
// stops improving (§5.1).
package workload

import (
	"fmt"
)

// DGEMM describes a square matrix-multiplication service.
type DGEMM struct {
	// N is the matrix dimension.
	N int
}

// Flops returns the flop count of one C = A·B multiplication: 2n³
// (n³ multiplications and n³ additions).
func (d DGEMM) Flops() float64 {
	n := float64(d.N)
	return 2 * n * n * n
}

// MFlop returns the service cost Wapp in MFlop, the unit used by the
// performance model and Table 3.
func (d DGEMM) MFlop() float64 {
	return d.Flops() / 1e6
}

// String implements fmt.Stringer.
func (d DGEMM) String() string {
	return fmt.Sprintf("DGEMM %dx%d", d.N, d.N)
}

// ServiceDataMbit returns the volume of problem data (two input matrices
// and one result, float64 entries) in Mbit. The scheduling-phase message
// sizes of Table 3 do NOT include this payload — DIET clients ship data
// directly to the selected server — but the runtime uses it to size service
// messages.
func (d DGEMM) ServiceDataMbit() float64 {
	elems := 3 * d.N * d.N
	bits := float64(elems) * 64
	return bits / 1e6
}

// Demand expresses the client demand the planner must satisfy, in
// requests/second. The heuristic stops growing the hierarchy once the
// demand is met (min_ser_cv in Algorithm 1). Zero or negative means
// "unbounded": build for maximum throughput.
type Demand float64

// Unbounded is the no-demand-cap value.
const Unbounded Demand = 0

// Bounded reports whether the demand caps planning.
func (d Demand) Bounded() bool { return d > 0 }

// Cap returns min(rho, demand) for a bounded demand, rho otherwise.
func (d Demand) Cap(rho float64) float64 {
	if d.Bounded() && float64(d) < rho {
		return float64(d)
	}
	return rho
}

// Ramp describes the §5.1 load-introduction protocol: start with zero
// clients, add one client every Interval seconds up to MaxClients, then hold
// for HoldSeconds to measure the sustained plateau.
type Ramp struct {
	MaxClients  int
	Interval    float64 // seconds between client arrivals
	HoldSeconds float64 // plateau measurement window after the last arrival
}

// DefaultRamp mirrors the paper: one client per second, ten-minute hold.
// Simulated time is cheap, so experiments keep the full hold window.
func DefaultRamp(maxClients int) Ramp {
	return Ramp{MaxClients: maxClients, Interval: 1, HoldSeconds: 600}
}

// Validate checks the ramp parameters.
func (r Ramp) Validate() error {
	if r.MaxClients <= 0 {
		return fmt.Errorf("workload: ramp needs at least one client, got %d", r.MaxClients)
	}
	if r.Interval < 0 {
		return fmt.Errorf("workload: negative ramp interval %g", r.Interval)
	}
	if r.HoldSeconds <= 0 {
		return fmt.Errorf("workload: non-positive hold window %g", r.HoldSeconds)
	}
	return nil
}

// ArrivalTime returns the simulation time at which client i (0-based)
// starts submitting requests.
func (r Ramp) ArrivalTime(i int) float64 {
	return float64(i) * r.Interval
}

// EndTime returns the total duration of the ramp experiment.
func (r Ramp) EndTime() float64 {
	return r.ArrivalTime(r.MaxClients-1) + r.HoldSeconds
}
