package workload_test

import (
	"math"
	"testing"

	"adept/internal/workload"
)

func TestDGEMMFlops(t *testing.T) {
	cases := []struct {
		n    int
		want float64 // MFlop = 2n³/1e6
	}{
		{10, 0.002},
		{100, 2},
		{200, 16},
		{310, 59.582},
		{1000, 2000},
	}
	for _, tc := range cases {
		d := workload.DGEMM{N: tc.n}
		if got := d.MFlop(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("DGEMM %d: MFlop = %g, want %g", tc.n, got, tc.want)
		}
		if got := d.Flops(); got != tc.want*1e6 {
			t.Errorf("DGEMM %d: Flops = %g", tc.n, got)
		}
	}
}

func TestDGEMMServiceData(t *testing.T) {
	// 3 matrices × n² × 64 bits.
	d := workload.DGEMM{N: 100}
	want := 3.0 * 100 * 100 * 64 / 1e6
	if got := d.ServiceDataMbit(); math.Abs(got-want) > 1e-9 {
		t.Errorf("ServiceDataMbit = %g, want %g", got, want)
	}
}

func TestDGEMMString(t *testing.T) {
	if got := (workload.DGEMM{N: 310}).String(); got != "DGEMM 310x310" {
		t.Errorf("String = %q", got)
	}
}

func TestDemand(t *testing.T) {
	if workload.Unbounded.Bounded() {
		t.Error("Unbounded reports bounded")
	}
	d := workload.Demand(100)
	if !d.Bounded() {
		t.Error("100 req/s not bounded")
	}
	if got := d.Cap(250); got != 100 {
		t.Errorf("Cap(250) = %g, want 100", got)
	}
	if got := d.Cap(50); got != 50 {
		t.Errorf("Cap(50) = %g, want 50", got)
	}
	if got := workload.Unbounded.Cap(50); got != 50 {
		t.Errorf("Unbounded.Cap(50) = %g", got)
	}
}

func TestRamp(t *testing.T) {
	r := workload.DefaultRamp(10)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.ArrivalTime(0); got != 0 {
		t.Errorf("ArrivalTime(0) = %g", got)
	}
	if got := r.ArrivalTime(9); got != 9 {
		t.Errorf("ArrivalTime(9) = %g", got)
	}
	if got := r.EndTime(); got != 609 {
		t.Errorf("EndTime = %g, want 609 (9s ramp + 600s hold)", got)
	}
}

func TestRampValidate(t *testing.T) {
	bad := []workload.Ramp{
		{MaxClients: 0, Interval: 1, HoldSeconds: 1},
		{MaxClients: 1, Interval: -1, HoldSeconds: 1},
		{MaxClients: 1, Interval: 1, HoldSeconds: 0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad ramp %d accepted", i)
		}
	}
}
