package workload

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Component is one application of a workload mixture.
type Component struct {
	// App is the application (its DGEMM size defines the cost).
	App DGEMM
	// Fraction is the share of client requests targeting this application.
	Fraction float64
}

// Mixture models a platform serving several applications at once — the
// paper's future-work item "a modelization to deploy several middlewares
// and/or applications on grid" (§6). Under steady state with load shares
// f_a, the expected service cost per request is the fraction-weighted mean
// of the per-application costs, which is the Wapp the §3 model and the
// planner consume.
type Mixture struct {
	Components []Component
}

// NewMixture builds a mixture and validates that fractions are positive
// and sum to 1 (within floating-point tolerance).
func NewMixture(components ...Component) (Mixture, error) {
	if len(components) == 0 {
		return Mixture{}, errors.New("workload: empty mixture")
	}
	sum := 0.0
	for i, c := range components {
		if c.Fraction <= 0 || math.IsNaN(c.Fraction) {
			return Mixture{}, fmt.Errorf("workload: component %d has invalid fraction %g", i, c.Fraction)
		}
		if c.App.N <= 0 {
			return Mixture{}, fmt.Errorf("workload: component %d has invalid DGEMM size %d", i, c.App.N)
		}
		sum += c.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return Mixture{}, fmt.Errorf("workload: fractions sum to %g, want 1", sum)
	}
	return Mixture{Components: append([]Component(nil), components...)}, nil
}

// EffectiveMFlop returns the expected per-request service cost in MFlop:
// Σ f_a · Wapp_a.
func (m Mixture) EffectiveMFlop() float64 {
	sum := 0.0
	for _, c := range m.Components {
		sum += c.Fraction * c.App.MFlop()
	}
	return sum
}

// Costs returns the per-component service costs in MFlop, component order.
func (m Mixture) Costs() []float64 {
	out := make([]float64, len(m.Components))
	for i, c := range m.Components {
		out[i] = c.App.MFlop()
	}
	return out
}

// Fractions returns the per-component request shares, component order.
func (m Mixture) Fractions() []float64 {
	out := make([]float64, len(m.Components))
	for i, c := range m.Components {
		out[i] = c.Fraction
	}
	return out
}

// String implements fmt.Stringer.
func (m Mixture) String() string {
	parts := make([]string, len(m.Components))
	for i, c := range m.Components {
		parts[i] = fmt.Sprintf("%.0f%% %s", 100*c.Fraction, c.App)
	}
	return "mixture{" + strings.Join(parts, ", ") + "}"
}
