package workload_test

import (
	"math"
	"strings"
	"testing"

	"adept/internal/workload"
)

func TestMixtureEffectiveCost(t *testing.T) {
	m, err := workload.NewMixture(
		workload.Component{App: workload.DGEMM{N: 100}, Fraction: 0.75}, // 2 MFlop
		workload.Component{App: workload.DGEMM{N: 200}, Fraction: 0.25}, // 16 MFlop
	)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.75*2 + 0.25*16
	if got := m.EffectiveMFlop(); math.Abs(got-want) > 1e-12 {
		t.Errorf("EffectiveMFlop = %g, want %g", got, want)
	}
	if got := m.Costs(); len(got) != 2 || got[0] != 2 || got[1] != 16 {
		t.Errorf("Costs = %v", got)
	}
	if got := m.Fractions(); len(got) != 2 || got[0] != 0.75 {
		t.Errorf("Fractions = %v", got)
	}
	if s := m.String(); !strings.Contains(s, "75% DGEMM 100x100") {
		t.Errorf("String = %q", s)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := workload.NewMixture(); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := workload.NewMixture(
		workload.Component{App: workload.DGEMM{N: 100}, Fraction: 0.5},
	); err == nil {
		t.Error("fractions not summing to 1 accepted")
	}
	if _, err := workload.NewMixture(
		workload.Component{App: workload.DGEMM{N: 100}, Fraction: -0.5},
		workload.Component{App: workload.DGEMM{N: 100}, Fraction: 1.5},
	); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := workload.NewMixture(
		workload.Component{App: workload.DGEMM{N: 0}, Fraction: 1},
	); err == nil {
		t.Error("zero-size app accepted")
	}
}
