package forecast_test

import (
	"math"
	"testing"
	"testing/quick"

	"adept/internal/forecast"
)

func TestMeanEstimator(t *testing.T) {
	m := forecast.NewMean()
	if _, ok := m.Predict(); ok {
		t.Error("empty estimator predicted")
	}
	for _, v := range []float64{1, 2, 3} {
		m.Observe(v)
	}
	p, ok := m.Predict()
	if !ok || p != 2 {
		t.Errorf("Predict = %g, %v; want 2, true", p, ok)
	}
	m.Observe(-1)         // ignored
	m.Observe(math.NaN()) // ignored
	if p, _ := m.Predict(); p != 2 {
		t.Errorf("invalid observations changed prediction to %g", p)
	}
}

func TestEWMATracksDrift(t *testing.T) {
	e, err := forecast.NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := forecast.NewMean()
	// A level shift: 1.0 for 20 samples, then 4.0 for 20 samples (the
	// §5.3 background-load scenario).
	for i := 0; i < 20; i++ {
		e.Observe(1)
		m.Observe(1)
	}
	for i := 0; i < 20; i++ {
		e.Observe(4)
		m.Observe(4)
	}
	pe, _ := e.Predict()
	pm, _ := m.Predict()
	if math.Abs(pe-4) > 0.01 {
		t.Errorf("EWMA after shift = %g, want ≈4", pe)
	}
	if math.Abs(pm-2.5) > 0.01 {
		t.Errorf("mean after shift = %g, want 2.5", pm)
	}
	if math.Abs(pe-4) >= math.Abs(pm-4) {
		t.Error("EWMA should track the shift better than the mean")
	}
}

func TestEWMARejectsBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.1, math.NaN()} {
		if _, err := forecast.NewEWMA(a); err == nil {
			t.Errorf("alpha %g accepted", a)
		}
	}
}

func TestSizeModelExtrapolatesDGEMM(t *testing.T) {
	s := forecast.NewSizeModel()
	// Perfect flop-rate world: time = n³ / rate.
	rate := 400e6
	for _, n := range []int{50, 100, 150, 200} {
		s.ObserveSize(forecast.DGEMMFeature(n), 2*forecast.DGEMMFeature(n)/rate)
	}
	pred, err := s.PredictSize(forecast.DGEMMFeature(310))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * forecast.DGEMMFeature(310) / rate
	if math.Abs(pred-want)/want > 0.001 {
		t.Errorf("predicted %g for n=310, want %g", pred, want)
	}
}

func TestSizeModelErrors(t *testing.T) {
	s := forecast.NewSizeModel()
	if _, err := s.PredictSize(1); err == nil {
		t.Error("empty model predicted")
	}
	s.ObserveSize(8, 1)
	s.ObserveSize(8, 1.2)
	if _, err := s.PredictSize(27); err == nil {
		t.Error("single-size model predicted")
	}
}

func TestSizeModelClampsNegative(t *testing.T) {
	s := forecast.NewSizeModel()
	s.ObserveSize(1, 10)
	s.ObserveSize(2, 1)
	// Steeply negative slope: extrapolation below zero clamps to 0.
	pred, err := s.PredictSize(100)
	if err != nil {
		t.Fatal(err)
	}
	if pred != 0 {
		t.Errorf("negative extrapolation = %g, want clamp to 0", pred)
	}
}

func TestWindowTrimsOutlier(t *testing.T) {
	w, err := forecast.NewWindow(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 1, 1, 1, 50} { // one GC pause
		w.Observe(v)
	}
	p, ok := w.Predict()
	if !ok || p != 1 {
		t.Errorf("trimmed prediction = %g, want 1", p)
	}
}

func TestWindowWrapAround(t *testing.T) {
	w, err := forecast.NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{9, 9, 9, 2, 2, 2} {
		w.Observe(v)
	}
	if p, _ := w.Predict(); p != 2 {
		t.Errorf("window should have forgotten old samples, got %g", p)
	}
}

func TestWindowRejectsBadSize(t *testing.T) {
	if _, err := forecast.NewWindow(0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestMAPE(t *testing.T) {
	got, err := forecast.MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %g, want 0.1", got)
	}
	if _, err := forecast.MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := forecast.MAPE([]float64{1}, []float64{0}); err == nil {
		t.Error("zero actual accepted")
	}
}

func TestReplayOneStepAhead(t *testing.T) {
	trace := []float64{1, 1, 1, 4, 4, 4}
	e, _ := forecast.NewEWMA(0.9)
	preds, covered := forecast.Replay(e, trace)
	if len(preds) != len(trace) {
		t.Fatalf("%d predictions for %d samples", len(preds), len(trace))
	}
	if covered != len(trace)-1 {
		t.Errorf("covered = %d, want %d (first sample is cold start)", covered, len(trace)-1)
	}
	mape, err := forecast.MAPE(preds, trace)
	if err != nil {
		t.Fatal(err)
	}
	if mape > 0.6 {
		t.Errorf("EWMA MAPE = %g on a step trace, too high", mape)
	}
}

// Property: the mean estimator's prediction equals the arithmetic mean of
// the valid observations.
func TestPropertyMeanMatchesArithmetic(t *testing.T) {
	f := func(xs []float64) bool {
		m := forecast.NewMean()
		var sum float64
		var n int
		for _, x := range xs {
			m.Observe(x)
			if x >= 0 && !math.IsNaN(x) {
				sum += x
				n++
			}
		}
		p, ok := m.Predict()
		if n == 0 {
			return !ok
		}
		want := sum / float64(n)
		return ok && (math.Abs(p-want) <= 1e-9*math.Max(1, math.Abs(want)) ||
			math.IsInf(want, 0) && math.IsInf(p, 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EWMA prediction stays within the [min, max] envelope of the
// observations.
func TestPropertyEWMABounded(t *testing.T) {
	f := func(xs []float64, aSeed uint8) bool {
		alpha := 0.01 + float64(aSeed%99)/100
		e, err := forecast.NewEWMA(alpha)
		if err != nil {
			return false
		}
		min, max := math.Inf(1), math.Inf(-1)
		any := false
		for _, x := range xs {
			e.Observe(x)
			if x >= 0 && !math.IsNaN(x) {
				any = true
				if x < min {
					min = x
				}
				if x > max {
					max = x
				}
			}
		}
		p, ok := e.Predict()
		if !any {
			return !ok
		}
		return ok && p >= min-1e-9 && p <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
