// Package forecast implements execution-time forecasting for server
// performance prediction — the paper's future-work item "we should study
// another approach with statistical mathematical function to forecast the
// execution time" (§6). The paper's model assumes a known Wapp; these
// estimators learn it from observed executions, the way DIET's FAST/CoRI
// subsystem forecasts service times.
//
// Three estimator families are provided:
//
//   - Mean: running arithmetic mean — the baseline.
//   - EWMA: exponentially weighted moving average, tracking drift (e.g. a
//     background job stealing cycles, as in the §5.3 heterogenisation).
//   - SizeModel: least-squares regression of time against a problem-size
//     feature (n³ for DGEMM), predicting unseen problem sizes.
//
// All estimators are safe for concurrent use.
package forecast

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Estimator predicts the execution time of the next request.
type Estimator interface {
	// Observe records one completed execution.
	Observe(seconds float64)
	// Predict returns the forecast execution time in seconds, and false
	// when no forecast is available yet.
	Predict() (float64, bool)
	// Name identifies the estimator in reports.
	Name() string
}

// Mean is the running-average estimator.
type Mean struct {
	mu    sync.Mutex
	sum   float64
	count int
}

// NewMean returns an empty running-average estimator.
func NewMean() *Mean { return &Mean{} }

// Name implements Estimator.
func (*Mean) Name() string { return "mean" }

// Observe implements Estimator.
func (m *Mean) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sum += seconds
	m.count++
}

// Predict implements Estimator.
func (m *Mean) Predict() (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		return 0, false
	}
	return m.sum / float64(m.count), true
}

// EWMA is the exponentially-weighted moving-average estimator.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA estimator with smoothing factor alpha in (0, 1];
// larger alpha weighs recent observations more.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("forecast: alpha %g out of (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Name implements Estimator.
func (*EWMA) Name() string { return "ewma" }

// Observe implements Estimator.
func (e *EWMA) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.seen {
		e.value = seconds
		e.seen = true
		return
	}
	e.value = e.alpha*seconds + (1-e.alpha)*e.value
}

// Predict implements Estimator.
func (e *EWMA) Predict() (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value, e.seen
}

// SizeModel regresses execution time against a problem-size feature, so a
// server that has executed DGEMM at n = 100 and n = 200 can forecast
// n = 310 without ever having run it. The feature for DGEMM is n³ (the
// flop count dominates), but any monotone feature works.
type SizeModel struct {
	mu sync.Mutex
	// accumulated sums for incremental least squares
	n, sx, sy, sxx, sxy float64
}

// NewSizeModel returns an empty size-regression estimator.
func NewSizeModel() *SizeModel { return &SizeModel{} }

// Name identifies the estimator.
func (*SizeModel) Name() string { return "size-model" }

// ObserveSize records one execution of `seconds` at the given size feature.
func (s *SizeModel) ObserveSize(feature, seconds float64) {
	if seconds < 0 || feature < 0 || math.IsNaN(feature) || math.IsNaN(seconds) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.sx += feature
	s.sy += seconds
	s.sxx += feature * feature
	s.sxy += feature * seconds
}

// PredictSize forecasts the execution time at the given size feature.
// It needs at least two observations with distinct features.
func (s *SizeModel) PredictSize(feature float64) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < 2 {
		return 0, errors.New("forecast: size model needs at least two observations")
	}
	det := s.n*s.sxx - s.sx*s.sx
	if det == 0 {
		return 0, errors.New("forecast: size model needs two distinct problem sizes")
	}
	slope := (s.n*s.sxy - s.sx*s.sy) / det
	intercept := (s.sy - slope*s.sx) / s.n
	pred := intercept + slope*feature
	if pred < 0 {
		pred = 0
	}
	return pred, nil
}

// DGEMMFeature returns the regression feature for an n×n DGEMM: n³.
func DGEMMFeature(n int) float64 {
	fn := float64(n)
	return fn * fn * fn
}

// Window keeps the last k observations and predicts with a trimmed mean,
// robust to the occasional outlier (GC pause, co-scheduled job).
type Window struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

// NewWindow returns a sliding-window estimator over k observations, k >= 1.
func NewWindow(k int) (*Window, error) {
	if k < 1 {
		return nil, fmt.Errorf("forecast: window size %d < 1", k)
	}
	return &Window{buf: make([]float64, k)}, nil
}

// Name implements Estimator.
func (*Window) Name() string { return "window" }

// Observe implements Estimator.
func (w *Window) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.next] = seconds
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// Predict implements Estimator: the mean of the window with the single
// largest observation discarded once the window holds 3+ samples.
func (w *Window) Predict() (float64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	if n == 0 {
		return 0, false
	}
	sum, max := 0.0, math.Inf(-1)
	for _, v := range w.buf[:n] {
		sum += v
		if v > max {
			max = v
		}
	}
	if n >= 3 {
		return (sum - max) / float64(n-1), true
	}
	return sum / float64(n), true
}

// Error metrics for comparing estimators on a trace.

// MAPE returns the mean absolute percentage error of predictions against
// actuals; the slices must have equal nonzero length and positive actuals.
func MAPE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) || len(predicted) == 0 {
		return 0, errors.New("forecast: MAPE needs equal-length nonempty slices")
	}
	sum := 0.0
	for i := range predicted {
		if actual[i] <= 0 {
			return 0, fmt.Errorf("forecast: non-positive actual %g at %d", actual[i], i)
		}
		sum += math.Abs(predicted[i]-actual[i]) / actual[i]
	}
	return sum / float64(len(predicted)), nil
}

// Replay feeds a trace through an estimator one step ahead and returns the
// predictions made before each observation (the honest evaluation order).
func Replay(e Estimator, trace []float64) (predictions []float64, covered int) {
	predictions = make([]float64, 0, len(trace))
	for _, v := range trace {
		if p, ok := e.Predict(); ok {
			predictions = append(predictions, p)
			covered++
		} else {
			predictions = append(predictions, v) // cold start: no penalty
		}
		e.Observe(v)
	}
	return predictions, covered
}
