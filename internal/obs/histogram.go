package obs

import (
	"fmt"
	"sort"
)

// Histogram is a fixed-bucket histogram with log-spaced (or caller
// provided) upper bounds. Observe is lock-free: a binary search over the
// bounds plus three atomic adds. Snapshots taken concurrently with
// observations are not a consistent cut — individual counters are
// monotone, which is all Prometheus semantics require.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	counts []Counter // len(bounds)+1; last is the +Inf overflow bucket
	sum    atomicFloat
	count  Counter
}

func checkBuckets(bounds []float64) {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %g <= %g", i, bounds[i], bounds[i-1]))
		}
	}
}

func newHistogram(bounds []float64) *Histogram {
	checkBuckets(bounds)
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]Counter, len(bounds)+1),
	}
}

// ExpBuckets returns n strictly increasing bucket upper bounds starting
// at start and multiplying by factor: the log-spaced ladder latency
// distributions want.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%g, %g, %d) invalid", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the daemon's default request-latency ladder:
// doubling buckets from 100µs to ~52s (21 bounds). A cached plan hit
// lands in the first few buckets, a fresh 5k-node portfolio race in the
// middle, and the 30s plan-timeout ceiling stays under the last bound.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 20) }

// Observe records one value. Values land in the first bucket whose
// upper bound is >= v (Prometheus le semantics: bounds are inclusive).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Inc()
	h.count.Inc()
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Value() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Value()
	}
	return out
}

// CountAtOrBelow returns the cumulative number of observations <= the
// smallest bucket bound that is >= v (Prometheus le semantics), plus
// that effective bound. SLO latency objectives use it to count "fast
// enough" requests: thresholds snap to the bucket ladder, so callers
// should read the returned bound as the threshold actually enforced.
func (h *Histogram) CountAtOrBelow(v float64) (count uint64, bound float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i == len(h.bounds) {
		// Threshold above the largest finite bound: every observation
		// qualifies, including the +Inf overflow bucket.
		return h.Count(), h.bounds[len(h.bounds)-1]
	}
	var cum uint64
	for j := 0; j <= i; j++ {
		cum += h.counts[j].Value()
	}
	return cum, h.bounds[i]
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts
// with linear interpolation inside the containing bucket — the standard
// histogram_quantile estimate. The first bucket interpolates from zero;
// an overflow-bucket hit reports the largest finite bound (there is no
// upper edge to interpolate towards). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(counts)-1 {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}
