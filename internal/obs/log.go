package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"sync/atomic"
)

// NewLogger builds a slog.Logger writing to w in the given format
// ("json" or "text") at the given level. All three binaries share this
// so `-log-format` means the same thing everywhere.
func NewLogger(format string, w io.Writer, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want json or text)", format)
	}
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NopLogger returns a logger that discards everything — the default for
// embedded use (tests, benchmarks) where no Logger is configured.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// requestIDPrefix is a per-process random prefix so IDs from different
// daemon instances (or restarts) never collide in aggregated logs.
var requestIDPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req"
	}
	return hex.EncodeToString(b[:])
}()

var requestIDCounter atomic.Uint64

// NewRequestID returns a process-unique request ID: an 8-hex-char
// process prefix plus a monotone counter.
func NewRequestID() string {
	return requestIDPrefix + "-" + strconv.FormatUint(requestIDCounter.Add(1), 10)
}

type requestIDCtxKey struct{}

// ContextWithRequestID attaches a request ID to ctx.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDCtxKey{}, id)
}

// RequestIDFrom returns the request ID attached to ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDCtxKey{}).(string)
	return id
}
