package obs

import (
	"context"
	"testing"
	"time"
)

func ts(sec int) time.Time {
	return time.Unix(1_700_000_000+int64(sec), 0).UTC()
}

func TestSeriesRingEviction(t *testing.T) {
	s := NewSeries(4)
	if _, ok := s.Latest(); ok {
		t.Fatalf("empty series reported a latest sample")
	}
	for i := 0; i < 6; i++ {
		s.Add(ts(i), float64(i*10))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("Points len = %d, want 4", len(pts))
	}
	// Oldest two (0, 1) evicted; retained are 2..5 oldest first.
	for i, p := range pts {
		want := float64((i + 2) * 10)
		if p.V != want || !p.T.Equal(ts(i+2)) {
			t.Fatalf("point %d = (%v, %g), want (%v, %g)", i, p.T, p.V, ts(i+2), want)
		}
	}
	last, ok := s.Latest()
	if !ok || last.V != 50 {
		t.Fatalf("Latest = (%v, %v), want value 50", last, ok)
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries(8)
	for i := 0; i < 4; i++ {
		s.Add(ts(i*10), float64(i))
	}
	if _, ok := s.At(ts(-1)); ok {
		t.Fatalf("At before first sample should report no data")
	}
	p, ok := s.At(ts(15))
	if !ok || p.V != 1 {
		t.Fatalf("At(15s) = (%v, %v), want value 1 (sample at 10s)", p, ok)
	}
	p, ok = s.At(ts(30))
	if !ok || p.V != 3 {
		t.Fatalf("At(30s) exact hit = (%v, %v), want value 3", p, ok)
	}
	p, ok = s.At(ts(999))
	if !ok || p.V != 3 {
		t.Fatalf("At past end = (%v, %v), want newest value 3", p, ok)
	}
}

func TestSeriesDelta(t *testing.T) {
	s := NewSeries(16)
	if _, _, ok := s.Delta(time.Minute); ok {
		t.Fatalf("Delta on empty series should not be ok")
	}
	s.Add(ts(0), 100)
	if _, _, ok := s.Delta(time.Minute); ok {
		t.Fatalf("Delta with one sample should not be ok")
	}
	for i := 1; i <= 10; i++ {
		s.Add(ts(i), 100+float64(i)*5) // +5 per second
	}
	// Full window available: exactly 4 seconds back.
	d, span, ok := s.Delta(4 * time.Second)
	if !ok || d != 20 || span != 4*time.Second {
		t.Fatalf("Delta(4s) = (%g, %v, %v), want (20, 4s, true)", d, span, ok)
	}
	// Window longer than retained history: anchored at oldest, span says so.
	d, span, ok = s.Delta(time.Hour)
	if !ok || d != 50 || span != 10*time.Second {
		t.Fatalf("Delta(1h) = (%g, %v, %v), want (50, 10s, true)", d, span, ok)
	}
}

func TestStoreSampleAndWatch(t *testing.T) {
	st := NewStore(8)
	var c Counter
	g := &Gauge{}
	g.Set(7)
	h := newHistogram([]float64{1, 2, 4})
	st.WatchCounter("reqs", &c)
	st.WatchGauge("depth", g)
	st.WatchQuantile("p50", h, 0.5)

	c.Add(3)
	h.Observe(1.5)
	st.Sample(ts(0))
	c.Add(2)
	st.Sample(ts(1))

	names := st.Names()
	if len(names) != 3 || names[0] != "reqs" || names[1] != "depth" || names[2] != "p50" {
		t.Fatalf("Names = %v", names)
	}
	sr, ok := st.Get("reqs")
	if !ok {
		t.Fatalf("Get(reqs) missing")
	}
	pts := sr.Points()
	if len(pts) != 2 || pts[0].V != 3 || pts[1].V != 5 {
		t.Fatalf("reqs points = %v, want values 3 then 5", pts)
	}
	snap := st.Snapshot()
	if len(snap) != 3 || len(snap["depth"]) != 2 || snap["depth"][1].V != 7 {
		t.Fatalf("Snapshot = %v", snap)
	}

	// Re-watching a name swaps the source but keeps the series history.
	st.Watch("reqs", func() float64 { return 1000 })
	st.Sample(ts(2))
	pts = sr.Points()
	if len(pts) != 3 || pts[2].V != 1000 {
		t.Fatalf("after re-watch, reqs points = %v", pts)
	}
	if len(st.Names()) != 3 {
		t.Fatalf("re-watch grew the source list: %v", st.Names())
	}
}

func TestStoreRunTicks(t *testing.T) {
	st := NewStore(64)
	var c Counter
	st.WatchCounter("c", &c)
	ctx, cancel := context.WithCancel(context.Background())
	ticks := make(chan time.Time, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		st.Run(ctx, 5*time.Millisecond, func(now time.Time) { ticks <- now })
	}()
	// First sample is immediate; wait for a few more, then stop.
	for i := 0; i < 3; i++ {
		select {
		case <-ticks:
		case <-time.After(2 * time.Second):
			t.Fatalf("tick %d never arrived", i)
		}
	}
	cancel()
	<-done
	s, _ := st.Get("c")
	if s.Len() < 3 {
		t.Fatalf("series got %d samples, want >= 3", s.Len())
	}
}

func TestHistogramCountAtOrBelow(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 3.5, 9, 100} {
		h.Observe(v)
	}
	cases := []struct {
		v     float64
		count uint64
		bound float64
	}{
		{0.5, 1, 1}, // snaps up to bound 1
		{1, 1, 1},   // exact bound
		{2, 2, 2},   // 0.5, 1.5
		{3, 4, 4},   // snaps to 4: 0.5, 1.5, 3, 3.5
		{8, 4, 8},   // nothing between 4 and 8
		{50, 6, 8},  // above ladder: everything counts, bound pegged at 8
	}
	for _, c := range cases {
		got, bound := h.CountAtOrBelow(c.v)
		if got != c.count || bound != c.bound {
			t.Fatalf("CountAtOrBelow(%g) = (%d, %g), want (%d, %g)", c.v, got, bound, c.count, c.bound)
		}
	}
}

func TestJournalSinceTruncated(t *testing.T) {
	j := NewJournal(4)
	if ev, tr := j.SinceTruncated(0); ev != nil || tr {
		t.Fatalf("empty journal: got (%v, %v)", ev, tr)
	}
	for i := 1; i <= 6; i++ {
		j.Append("k", "m", nil)
	}
	// Ring holds seqs 3..6; seqs 1-2 were evicted.

	// Fresh cursor (0) with evictions: oldest retained + truncated.
	ev, tr := j.SinceTruncated(0)
	if len(ev) != 4 || ev[0].Seq != 3 || !tr {
		t.Fatalf("Since(0) = %d events from seq %d, truncated=%v; want 4 from 3, true", len(ev), ev[0].Seq, tr)
	}
	// Cursor just below the retained window: still truncated (seq 2 lost).
	ev, tr = j.SinceTruncated(1)
	if len(ev) != 4 || !tr {
		t.Fatalf("Since(1): %d events, truncated=%v; want 4, true", len(ev), tr)
	}
	// Cursor exactly at the edge: seq 3 onward, nothing missed.
	ev, tr = j.SinceTruncated(2)
	if len(ev) != 4 || tr {
		t.Fatalf("Since(2): %d events, truncated=%v; want 4, false", len(ev), tr)
	}
	// Mid-window cursor.
	ev, tr = j.SinceTruncated(4)
	if len(ev) != 2 || ev[0].Seq != 5 || tr {
		t.Fatalf("Since(4): %v truncated=%v; want seqs 5,6 false", ev, tr)
	}
	// Cursor at or past the newest: empty, not truncated.
	for _, cur := range []uint64{6, 99} {
		if ev, tr := j.SinceTruncated(cur); ev != nil || tr {
			t.Fatalf("Since(%d) = (%v, %v), want (nil, false)", cur, ev, tr)
		}
	}
}
