// Package obs is the daemon's observability spine: hand-rolled,
// dependency-free metric primitives (counters, gauges, log-bucketed
// histograms) behind a Registry that renders the Prometheus text
// exposition format, plus plan traces (trace.go), structured-logging
// helpers with per-request correlation IDs (log.go), and a bounded
// event journal for autonomic decisions (journal.go).
//
// Everything here is stdlib-only by design: the repo bakes in no
// third-party dependencies, and the subset of the Prometheus data model
// the daemon needs — monotone counters, instantaneous gauges, fixed
// log-spaced histogram buckets, one label dimension or none — fits in a
// few hundred lines whose hot paths are single atomic operations.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use; Inc/Add are single atomic adds.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that may go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat is a float64 supporting concurrent additions (CAS loop).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// labelSep joins label values into a child key; 0xff never occurs in the
// daemon's label values (endpoint names, shard indexes).
const labelSep = "\xff"

// vecChild pairs a child metric with the label values that select it, so
// exposition and JSON snapshots can iterate without re-splitting keys.
type vecChild[M any] struct {
	values []string
	metric M
}

// vec is the shared one-or-more-label child table behind CounterVec,
// GaugeVec and HistogramVec.
type vec[M any] struct {
	mu       sync.RWMutex
	labels   []string
	children map[string]*vecChild[M]
	make     func() M
}

func newVec[M any](labels []string, mk func() M) *vec[M] {
	return &vec[M]{labels: labels, children: make(map[string]*vecChild[M]), make: mk}
}

func (v *vec[M]) with(values ...string) M {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels %v", len(values), len(v.labels), v.labels))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c.metric
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.metric
	}
	c = &vecChild[M]{values: append([]string(nil), values...), metric: v.make()}
	v.children[key] = c
	return c.metric
}

// do visits every child in sorted label-value order (stable exposition).
func (v *vec[M]) do(f func(values []string, m M)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		c := v.children[k]
		v.mu.RUnlock()
		if c != nil {
			f(c.values, c.metric)
		}
	}
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	vec *vec[*Counter]
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.vec.with(values...) }

// Do visits every child counter in sorted label order.
func (v *CounterVec) Do(f func(values []string, c *Counter)) { v.vec.do(f) }

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct {
	vec *vec[*Gauge]
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.vec.with(values...) }

// Do visits every child gauge in sorted label order.
func (v *GaugeVec) Do(f func(values []string, g *Gauge)) { v.vec.do(f) }

// HistogramVec is a family of histograms partitioned by label values;
// every child shares the vec's bucket boundaries.
type HistogramVec struct {
	vec *vec[*Histogram]
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.vec.with(values...) }

// Do visits every child histogram in sorted label order.
func (v *HistogramVec) Do(f func(values []string, h *Histogram)) { v.vec.do(f) }

// Registry holds named metric families and renders them as the
// Prometheus text exposition (prom.go). Registration happens at
// construction time and panics on programmer error (duplicate or
// malformed names), exactly like the upstream client library.
type Registry struct {
	mu         sync.Mutex
	families   map[string]collector
	onScrape   []func()
	hasRuntime bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]collector)}
}

// register adds a family, panicking on duplicates or invalid names.
func (r *Registry) register(name string, c collector) {
	if err := checkMetricName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", name))
	}
	r.families[name] = c
}

// OnScrape registers a callback invoked at the start of every exposition
// render, before any family is written. Use it to refresh gauges whose
// values are cheaper to compute in bulk (e.g. per-shard cache sizes)
// than to wrap in one closure each.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, f)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, &counterFamily{name: name, help: help, get: c.Value})
	return c
}

// CounterFunc registers a counter family whose value is read from fn at
// exposition time — the bridge for components that already keep their
// own atomic counters (pool executed/rejected, coalesced flights).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, &counterFamily{name: name, help: help, get: fn})
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	checkLabels(labels)
	v := &CounterVec{vec: newVec(labels, func() *Counter { return &Counter{} })}
	r.register(name, &counterVecFamily{name: name, help: help, labels: labels, v: v})
	return v
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, &gaugeFamily{name: name, help: help, get: g.Value})
	return g
}

// GaugeFunc registers a gauge family whose value is read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeFamily{name: name, help: help, get: fn})
}

// GaugeVec registers and returns a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	checkLabels(labels)
	v := &GaugeVec{vec: newVec(labels, func() *Gauge { return &Gauge{} })}
	r.register(name, &gaugeVecFamily{name: name, help: help, labels: labels, v: v})
	return v
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (strictly increasing, +Inf implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, &histogramFamily{name: name, help: help, one: h})
	return h
}

// HistogramVec registers and returns a labelled histogram family; every
// child shares the bucket boundaries.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	checkLabels(labels)
	checkBuckets(buckets)
	bounds := append([]float64(nil), buckets...)
	v := &HistogramVec{vec: newVec(labels, func() *Histogram { return newHistogram(bounds) })}
	r.register(name, &histogramFamily{name: name, help: help, labels: labels, v: v})
	return v
}

// RegisterRuntime adds the Go runtime gauge families (goroutines, heap,
// GC counters) to the registry. Idempotent.
func (r *Registry) RegisterRuntime() {
	r.mu.Lock()
	if r.hasRuntime {
		r.mu.Unlock()
		return
	}
	r.hasRuntime = true
	r.mu.Unlock()
	r.register("go_runtime", runtimeCollector{})
}

// Handler returns an http.Handler serving the registry's Prometheus
// text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", expositionContentType)
		_ = r.WriteText(w)
	})
}

// checkMetricName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, ch := range name {
		ok := ch == '_' || ch == ':' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
			(i > 0 && ch >= '0' && ch <= '9')
		if !ok {
			return fmt.Errorf("obs: invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabels enforces the label-name charset [a-zA-Z_][a-zA-Z0-9_]*
// and that at least one label is present (a zero-label vec is a scalar —
// use the scalar constructor).
func checkLabels(labels []string) {
	if len(labels) == 0 {
		panic("obs: vec families need at least one label")
	}
	for _, l := range labels {
		if l == "" {
			panic("obs: empty label name")
		}
		for i, ch := range l {
			ok := ch == '_' ||
				(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
				(i > 0 && ch >= '0' && ch <= '9')
			if !ok {
				panic(fmt.Sprintf("obs: invalid label name %q", l))
			}
		}
	}
}
