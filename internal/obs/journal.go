package obs

import (
	"sync"
	"time"
)

// Event is one autonomic decision recorded in the journal: a detection
// (drift, sag, crash), a replan outcome, a patch application, or a
// cycle error, with free-form string fields for the details.
type Event struct {
	Seq    uint64            `json:"seq"`
	At     time.Time         `json:"at"`
	Kind   string            `json:"kind"`
	Msg    string            `json:"msg"`
	Fields map[string]string `json:"fields,omitempty"`
}

// Journal is a bounded ring of Events. Appends evict the oldest entry
// once capacity is reached; sequence numbers are monotone for the life
// of the journal so clients can poll with Since without missing or
// re-reading events (absent overflow).
type Journal struct {
	mu    sync.Mutex
	buf   []Event
	next  int // ring write index
	n     int // entries currently held
	seq   uint64
	total uint64
}

// NewJournal returns a journal holding at most capacity events
// (minimum 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Append records an event and returns its sequence number. The fields
// map is stored as given; callers must not mutate it afterwards.
func (j *Journal) Append(kind, msg string, fields map[string]string) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	j.total++
	j.buf[j.next] = Event{Seq: j.seq, At: time.Now().UTC(), Kind: kind, Msg: msg, Fields: fields}
	j.next = (j.next + 1) % len(j.buf)
	if j.n < len(j.buf) {
		j.n++
	}
	return j.seq
}

// Snapshot returns the retained events, oldest first.
func (j *Journal) Snapshot() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	start := j.next - j.n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	return out
}

// Since returns retained events with Seq > seq, oldest first. Polling
// clients pass the last Seq they saw; a gap between that and the first
// returned event means the ring overflowed in between.
func (j *Journal) Since(seq uint64) []Event {
	events, _ := j.SinceTruncated(seq)
	return events
}

// SinceTruncated returns retained events with Seq > seq, oldest first,
// plus whether the ring evicted events the caller has not seen: a
// client that polls with a stale cursor gets the oldest retained
// events and truncated=true instead of an error or a silent gap.
// Sequence numbers are dense (Append allocates them 1, 2, 3, …), so
// eviction is exactly "the oldest retained Seq skipped past seq+1".
func (j *Journal) SinceTruncated(seq uint64) (events []Event, truncated bool) {
	all := j.Snapshot()
	if len(all) == 0 {
		return nil, false
	}
	truncated = all[0].Seq > seq+1
	for i, e := range all {
		if e.Seq > seq {
			return all[i:], truncated
		}
	}
	// Everything retained was already seen; nothing was missed either
	// (the caller's cursor is at or past the newest event).
	return nil, false
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Total returns the number of events ever appended (retained or
// evicted).
func (j *Journal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}
