package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// This file is the time axis of the observability spine: a Series is a
// bounded ring of (timestamp, value) samples, and a Store samples a set
// of named sources — registry counters, gauges, histogram quantiles —
// on a caller-driven tick. Everything above point-in-time scraping (SLO
// burn rates over multi-minute windows, soak-test timelines, alert
// evaluation) reads these rings instead of re-deriving history from
// Prometheus, which the repo deliberately does not depend on.

// Point is one sample of a series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Series is a bounded ring of samples in non-decreasing time order.
// Appends evict the oldest sample once capacity is reached. All methods
// are safe for concurrent use; the expected shape is one writer (the
// Store's sampling tick) and any number of readers (SLO evaluation,
// HTTP snapshots).
type Series struct {
	mu   sync.Mutex
	buf  []Point
	next int // ring write index
	n    int // samples currently held
}

// NewSeries returns a series holding at most capacity samples
// (minimum 2: a delta needs two points).
func NewSeries(capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{buf: make([]Point, capacity)}
}

// Add appends one sample. Out-of-order timestamps are accepted but make
// window queries meaningless; the Store never produces them.
func (s *Series) Add(t time.Time, v float64) {
	s.mu.Lock()
	s.buf[s.next] = Point{T: t, V: v}
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Latest returns the most recent sample, if any.
func (s *Series) Latest() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Point{}, false
	}
	i := s.next - 1
	if i < 0 {
		i += len(s.buf)
	}
	return s.buf[i], true
}

// Points returns the retained samples, oldest first.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

// At returns the newest sample with T <= t, if any — the value the
// series believed at time t.
func (s *Series) At(t time.Time) (Point, bool) {
	pts := s.Points()
	// First index with T > t; the answer sits just before it.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T.After(t) })
	if i == 0 {
		return Point{}, false
	}
	return pts[i-1], true
}

// Delta returns the value change over the trailing window ending at the
// latest sample: latest.V minus the value at latest.T-window. When the
// ring does not reach back that far the oldest retained sample anchors
// the delta instead, and span reports the actual interval covered —
// callers that need a full window can check span against it. ok is
// false with fewer than two samples.
func (s *Series) Delta(window time.Duration) (delta float64, span time.Duration, ok bool) {
	pts := s.Points()
	if len(pts) < 2 {
		return 0, 0, false
	}
	last := pts[len(pts)-1]
	cut := last.T.Add(-window)
	// Newest sample at or before the window start; fall back to the
	// oldest retained sample when the ring is too short.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T.After(cut) })
	anchor := pts[0]
	if i > 0 {
		anchor = pts[i-1]
	}
	if !last.T.After(anchor.T) {
		return 0, 0, false
	}
	return last.V - anchor.V, last.T.Sub(anchor.T), true
}

// source is one sampled input of a Store.
type source struct {
	name   string
	fn     func() float64
	series *Series
}

// Store samples named sources into per-source Series rings on a fixed
// tick. The tick is caller-driven (Sample with an explicit timestamp)
// so deterministic consumers — the soak harness running on simulated
// time, unit tests — control the clock; Run wraps Sample in a wall
// clock ticker for the daemon.
type Store struct {
	mu       sync.RWMutex
	capacity int
	sources  []source
	byName   map[string]*Series
}

// NewStore returns an empty store whose series each hold capacity
// samples (minimum 2).
func NewStore(capacity int) *Store {
	if capacity < 2 {
		capacity = 2
	}
	return &Store{capacity: capacity, byName: make(map[string]*Series)}
}

// Watch registers a sampled source under name and returns its series.
// Re-registering a name replaces the source function but keeps the
// series (restarted components keep their history). fn is called on
// every Sample tick and must be safe for concurrent use.
func (st *Store) Watch(name string, fn func() float64) *Series {
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok := st.byName[name]; ok {
		for i := range st.sources {
			if st.sources[i].name == name {
				st.sources[i].fn = fn
			}
		}
		return s
	}
	s := NewSeries(st.capacity)
	st.sources = append(st.sources, source{name: name, fn: fn, series: s})
	st.byName[name] = s
	return s
}

// WatchCounter samples a counter's cumulative value.
func (st *Store) WatchCounter(name string, c *Counter) *Series {
	return st.Watch(name, func() float64 { return float64(c.Value()) })
}

// WatchGauge samples a gauge's instantaneous value.
func (st *Store) WatchGauge(name string, g *Gauge) *Series {
	return st.Watch(name, g.Value)
}

// WatchQuantile samples a histogram's interpolated q-quantile.
func (st *Store) WatchQuantile(name string, h *Histogram, q float64) *Series {
	return st.Watch(name, func() float64 { return h.Quantile(q) })
}

// Get returns the series registered under name.
func (st *Store) Get(name string) (*Series, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.byName[name]
	return s, ok
}

// Names returns the registered source names in registration order.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, len(st.sources))
	for i, src := range st.sources {
		out[i] = src.name
	}
	return out
}

// Sample reads every source once and appends the values at timestamp t.
// One tick is a plain loop of source reads — no allocation beyond what
// the sources themselves do — so a 1s tick over a few dozen series is
// noise next to a single planning run (BenchmarkObsStoreSample gates
// this).
func (st *Store) Sample(t time.Time) {
	st.mu.RLock()
	srcs := st.sources
	st.mu.RUnlock()
	for _, src := range srcs {
		src.series.Add(t, src.fn())
	}
}

// Run samples on a wall-clock ticker until ctx is cancelled. The first
// sample lands immediately so downstream windows have an anchor point
// as early as possible.
func (st *Store) Run(ctx context.Context, every time.Duration, onTick func(time.Time)) {
	if every <= 0 {
		every = time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	now := time.Now()
	st.Sample(now)
	if onTick != nil {
		onTick(now)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			st.Sample(now)
			if onTick != nil {
				onTick(now)
			}
		}
	}
}

// Snapshot returns every series' retained points, keyed by source name.
func (st *Store) Snapshot() map[string][]Point {
	st.mu.RLock()
	srcs := st.sources
	st.mu.RUnlock()
	out := make(map[string][]Point, len(srcs))
	for _, src := range srcs {
		out[src.name] = src.series.Points()
	}
	return out
}
