package obs

import (
	"bufio"
	"io"
	gort "runtime"
	"sort"
	"strconv"
	"strings"
)

// expositionContentType is the Prometheus text format 0.0.4 media type.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// collector renders one or more complete metric families (HELP/TYPE
// header plus series lines) into the exposition.
type collector interface {
	expose(w *bufio.Writer)
}

// WriteText renders every registered family, sorted by family name, as
// the Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	callbacks := append([]func(){}, r.onScrape...)
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	cols := make([]collector, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		cols = append(cols, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range callbacks {
		f()
	}
	bw := bufio.NewWriter(w)
	for _, c := range cols {
		c.expose(bw)
	}
	return bw.Flush()
}

func writeHeader(w *bufio.Writer, name, help, typ string) {
	w.WriteString("# HELP ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(help))
	w.WriteByte('\n')
	w.WriteString("# TYPE ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(typ)
	w.WriteByte('\n')
}

// writeSeries emits one sample line: name{labels} value. extra holds a
// trailing label (the histogram "le") appended after the vec labels.
func writeSeries(w *bufio.Writer, name string, labels, values []string, extraLabel, extraValue, value string) {
	w.WriteString(name)
	if len(labels) > 0 || extraLabel != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if extraLabel != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraLabel)
			w.WriteString(`="`)
			w.WriteString(extraValue)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

type counterFamily struct {
	name, help string
	get        func() uint64
}

func (f *counterFamily) expose(w *bufio.Writer) {
	writeHeader(w, f.name, f.help, "counter")
	writeSeries(w, f.name, nil, nil, "", "", formatUint(f.get()))
}

type counterVecFamily struct {
	name, help string
	labels     []string
	v          *CounterVec
}

func (f *counterVecFamily) expose(w *bufio.Writer) {
	writeHeader(w, f.name, f.help, "counter")
	f.v.Do(func(values []string, c *Counter) {
		writeSeries(w, f.name, f.labels, values, "", "", formatUint(c.Value()))
	})
}

type gaugeFamily struct {
	name, help string
	get        func() float64
}

func (f *gaugeFamily) expose(w *bufio.Writer) {
	writeHeader(w, f.name, f.help, "gauge")
	writeSeries(w, f.name, nil, nil, "", "", formatFloat(f.get()))
}

type gaugeVecFamily struct {
	name, help string
	labels     []string
	v          *GaugeVec
}

func (f *gaugeVecFamily) expose(w *bufio.Writer) {
	writeHeader(w, f.name, f.help, "gauge")
	f.v.Do(func(values []string, g *Gauge) {
		writeSeries(w, f.name, f.labels, values, "", "", formatFloat(g.Value()))
	})
}

type histogramFamily struct {
	name, help string
	labels     []string // nil for the scalar form
	one        *Histogram
	v          *HistogramVec
}

func (f *histogramFamily) expose(w *bufio.Writer) {
	writeHeader(w, f.name, f.help, "histogram")
	if f.one != nil {
		f.exposeOne(w, nil, f.one)
		return
	}
	f.v.Do(func(values []string, h *Histogram) {
		f.exposeOne(w, values, h)
	})
}

func (f *histogramFamily) exposeOne(w *bufio.Writer, values []string, h *Histogram) {
	counts := h.BucketCounts()
	bounds := h.bounds
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		writeSeries(w, f.name+"_bucket", f.labels, values, "le", le, formatUint(cum))
	}
	writeSeries(w, f.name+"_sum", f.labels, values, "", "", formatFloat(h.Sum()))
	writeSeries(w, f.name+"_count", f.labels, values, "", "", formatUint(cum))
}

// runtimeCollector exposes the Go runtime gauge families. One
// ReadMemStats call per scrape covers all of them; the brief
// stop-the-world it implies is a per-scrape cost, not a per-request one.
type runtimeCollector struct{}

func (runtimeCollector) expose(w *bufio.Writer) {
	var ms gort.MemStats
	gort.ReadMemStats(&ms)
	writeHeader(w, "go_goroutines", "Number of goroutines that currently exist.", "gauge")
	writeSeries(w, "go_goroutines", nil, nil, "", "", formatUint(uint64(gort.NumGoroutine())))
	writeHeader(w, "go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", "gauge")
	writeSeries(w, "go_memstats_heap_alloc_bytes", nil, nil, "", "", formatUint(ms.HeapAlloc))
	writeHeader(w, "go_memstats_sys_bytes", "Bytes of memory obtained from the OS.", "gauge")
	writeSeries(w, "go_memstats_sys_bytes", nil, nil, "", "", formatUint(ms.Sys))
	writeHeader(w, "go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", "counter")
	writeSeries(w, "go_memstats_alloc_bytes_total", nil, nil, "", "", formatUint(ms.TotalAlloc))
	writeHeader(w, "go_gc_cycles_total", "Number of completed GC cycles.", "counter")
	writeSeries(w, "go_gc_cycles_total", nil, nil, "", "", formatUint(uint64(ms.NumGC)))
	writeHeader(w, "go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	writeSeries(w, "go_gc_pause_seconds_total", nil, nil, "", "", formatFloat(float64(ms.PauseTotalNs)/1e9))
}
