package obs

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// PhaseSpan is one timed phase of a plan's lifecycle.
type PhaseSpan struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// VariantSpan summarises one portfolio variant's run inside a trace.
type VariantSpan struct {
	Name      string  `json:"name"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Winner    bool    `json:"winner"`
	Skipped   bool    `json:"skipped,omitempty"`
	Err       string  `json:"err,omitempty"`
}

// PlanTrace is the structured record of where one plan request spent its
// time: service phases (cache lookup, flight wait, render), planner
// phases (sort, growth, snapshot scan, replay), work counters
// (candidate scans, evaluator ops, refinement moves), string attributes
// (snapshot winner kind), and — for portfolio runs — per-variant
// timings plus the winning variant.
type PlanTrace struct {
	RequestID string            `json:"request_id,omitempty"`
	Phases    []PhaseSpan       `json:"phases"`
	Counters  map[string]int64  `json:"counters,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	Variants  []VariantSpan     `json:"variants,omitempty"`
	Winner    string            `json:"winner,omitempty"`
}

// LogValue renders the trace compactly for slog attachment: phase
// durations and the winner, without the full counter map.
func (t *PlanTrace) LogValue() slog.Value {
	if t == nil {
		return slog.Value{}
	}
	attrs := make([]slog.Attr, 0, len(t.Phases)+1)
	for _, p := range t.Phases {
		attrs = append(attrs, slog.Float64(p.Name+"_ms", p.DurationMS))
	}
	if t.Winner != "" {
		attrs = append(attrs, slog.String("winner", t.Winner))
	}
	return slog.GroupValue(attrs...)
}

// TraceRecorder accumulates a PlanTrace. All methods are nil-receiver
// safe and do nothing on a nil recorder, so instrumented code paths can
// call unconditionally: with tracing off (the default) the recorder in
// context is nil and every call is a pointer test.
//
// A mutex guards the maps and slices: the recorder crosses goroutines
// when a coalesced flight runs the plan on a detached context, and the
// pool worker records the queue-wait span from its own goroutine. The
// handler only reads the trace after the flight's done channel closes,
// which orders all writes before the read.
type TraceRecorder struct {
	mu       sync.Mutex
	phases   []PhaseSpan
	counters map[string]int64
	attrs    map[string]string
	variants []VariantSpan
	winner   string
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder { return &TraceRecorder{} }

// noopEnd is returned by Phase on a nil recorder, so the trace-off path
// allocates no closure.
var noopEnd = func() {}

// Phase starts a named phase and returns the function that ends it,
// recording the elapsed wall time. Typical use:
//
//	defer tr.Phase("grow")()
func (r *TraceRecorder) Phase(name string) func() {
	if r == nil {
		return noopEnd
	}
	start := time.Now()
	return func() { r.Span(name, time.Since(start)) }
}

// Span records an already-measured phase duration.
func (r *TraceRecorder) Span(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.phases = append(r.phases, PhaseSpan{Name: name, DurationMS: float64(d) / float64(time.Millisecond)})
	r.mu.Unlock()
}

// Count adds n to a named work counter.
func (r *TraceRecorder) Count(name string, n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.counters == nil {
		r.counters = make(map[string]int64, 8)
	}
	r.counters[name] += n
	r.mu.Unlock()
}

// Set records a string attribute (e.g. which snapshot kind won).
func (r *TraceRecorder) Set(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.attrs == nil {
		r.attrs = make(map[string]string, 4)
	}
	r.attrs[key] = value
	r.mu.Unlock()
}

// Variant appends one portfolio variant summary.
func (r *TraceRecorder) Variant(v VariantSpan) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.variants = append(r.variants, v)
	r.mu.Unlock()
}

// SetWinner records the winning portfolio variant's name.
func (r *TraceRecorder) SetWinner(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.winner = name
	for i := range r.variants {
		r.variants[i].Winner = r.variants[i].Name == name
	}
	r.mu.Unlock()
}

// Trace snapshots the accumulated state into a PlanTrace. Variants are
// sorted by name for stable output (they finish in race order).
func (r *TraceRecorder) Trace() *PlanTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &PlanTrace{
		Phases:   append([]PhaseSpan(nil), r.phases...),
		Variants: append([]VariantSpan(nil), r.variants...),
		Winner:   r.winner,
	}
	if len(r.counters) > 0 {
		t.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			t.Counters[k] = v
		}
	}
	if len(r.attrs) > 0 {
		t.Attrs = make(map[string]string, len(r.attrs))
		for k, v := range r.attrs {
			t.Attrs[k] = v
		}
	}
	sort.Slice(t.Variants, func(i, j int) bool { return t.Variants[i].Name < t.Variants[j].Name })
	return t
}

type traceCtxKey struct{}

// ContextWithTrace attaches a recorder to ctx. Instrumented layers
// retrieve it with TraceFrom; a nil recorder is fine and makes every
// downstream trace call a no-op.
func ContextWithTrace(ctx context.Context, r *TraceRecorder) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, r)
}

// TraceFrom returns the recorder attached to ctx, or nil.
func TraceFrom(ctx context.Context) *TraceRecorder {
	r, _ := ctx.Value(traceCtxKey{}).(*TraceRecorder)
	return r
}

// DetachTrace masks any recorder attached to ctx. Portfolio variants
// run under a detached context so their inner planner phases don't
// interleave into the request's recorder — the portfolio records
// per-variant summaries itself.
func DetachTrace(ctx context.Context) context.Context {
	if TraceFrom(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, (*TraceRecorder)(nil))
}
