package obs

import (
	"bufio"
	"fmt"
	"log/slog"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %g, want -1", got)
	}
}

func TestExpBucketsGolden(t *testing.T) {
	got := ExpBuckets(100e-6, 2, 5)
	want := []float64{100e-6, 200e-6, 400e-6, 800e-6, 1600e-6}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	lb := LatencyBuckets()
	if len(lb) != 20 {
		t.Fatalf("LatencyBuckets len = %d, want 20", len(lb))
	}
	if lb[0] != 100e-6 {
		t.Fatalf("first latency bucket = %g, want 1e-4", lb[0])
	}
	// Doubling 19 times from 100µs ends at ~52.4s.
	if top := lb[19]; math.Abs(top-100e-6*math.Pow(2, 19)) > 1e-9 {
		t.Fatalf("last latency bucket = %g", top)
	}
}

// TestHistogramBucketBoundaries is the golden boundary test: Prometheus
// le semantics are inclusive, so an observation exactly on a bound
// lands in that bound's bucket, and one epsilon above falls through to
// the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(1)        // exactly on first bound -> bucket 0
	h.Observe(1.000001) // just above -> bucket 1
	h.Observe(2)        // exactly on second bound -> bucket 1
	h.Observe(4)        // exactly on last bound -> bucket 2
	h.Observe(4.5)      // above all bounds -> +Inf bucket
	h.Observe(0)        // below everything -> bucket 0
	want := []uint64{2, 2, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-12.500001) > 1e-9 {
		t.Fatalf("sum = %g, want 12.500001", sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40})
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
	for i := 0; i < 100; i++ {
		h.Observe(5) // all in first bucket
	}
	// Median of a bucket spanning (0,10] interpolates to 5.
	if q := h.Quantile(0.5); math.Abs(q-5) > 1e-9 {
		t.Fatalf("q50 = %g, want 5", q)
	}
	h2 := newHistogram([]float64{10, 20, 40})
	h2.Observe(100) // overflow bucket only
	if q := h2.Quantile(0.5); q != 40 {
		t.Fatalf("overflow quantile = %g, want 40 (largest finite bound)", q)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while a
// reader snapshots — run under -race in CI, and asserts no observation
// is lost.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(ExpBuckets(1, 2, 10))
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.BucketCounts()
				_ = h.Quantile(0.99)
				_ = h.Sum()
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(seed int) {
			defer ww.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64((seed*perWorker+i)%1000) / 3)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	var sum uint64
	for _, c := range h.BucketCounts() {
		sum += c
	}
	if sum != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*perWorker)
	}
}

func TestVecChildrenAndPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_requests_total", "requests", "endpoint")
	cv.With("plan").Add(3)
	cv.With("metrics").Inc()
	cv.With("plan").Inc()
	if got := cv.With("plan").Value(); got != 4 {
		t.Fatalf("plan counter = %d, want 4", got)
	}
	var visited []string
	cv.Do(func(values []string, c *Counter) {
		visited = append(visited, values[0]+"="+strconv.FormatUint(c.Value(), 10))
	})
	if strings.Join(visited, ",") != "metrics=1,plan=4" {
		t.Fatalf("Do order = %v, want sorted [metrics=1 plan=4]", visited)
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dup", func() { r.Counter("test_requests_total", "dup") })
	mustPanic("bad name", func() { r.Counter("bad-name", "x") })
	mustPanic("bad label", func() { r.CounterVec("test_ok_total", "x", "bad-label") })
	mustPanic("label arity", func() { cv.With("a", "b") })
	mustPanic("bad buckets", func() { r.Histogram("test_h", "x", []float64{2, 1}) })
}

// parseExposition is a strict line-level parser of the Prometheus text
// format used by the handler test: it checks HELP/TYPE pairs precede
// their series, every series line matches the sample grammar, histogram
// buckets are cumulative-monotone, and _count equals the +Inf bucket.
func parseExposition(t *testing.T, body string) map[string]string {
	t.Helper()
	types := map[string]string{}
	var curFamily string
	helpSeen := map[string]bool{}
	seriesSeen := map[string]bool{}
	var lastBucket struct {
		series string
		le     float64
		cum    uint64
	}
	infCount := map[string]uint64{}
	countVal := map[string]uint64{}

	sc := bufio.NewScanner(strings.NewReader(body))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[0] == "" {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			helpSeen[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", lineNo, typ)
			}
			if !helpSeen[name] {
				t.Fatalf("line %d: TYPE %s before HELP", lineNo, name)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			types[name] = typ
			curFamily = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", lineNo, line)
		}
		// Sample line: name or name{labels} then space then value.
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("line %d: no value separator: %q", lineNo, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		name := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels: %q", lineNo, line)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if curFamily == "" || (name != curFamily && base != curFamily && !strings.HasPrefix(name, curFamily)) {
			// Allow the runtime collector's multiple families under one
			// registry entry: each still emits its own HELP/TYPE first.
			if !helpSeen[name] && !helpSeen[base] {
				t.Fatalf("line %d: series %q before its HELP/TYPE", lineNo, name)
			}
		}
		if seriesSeen[series] {
			t.Fatalf("line %d: duplicate series %q", lineNo, series)
		}
		seriesSeen[series] = true

		if strings.HasSuffix(name, "_bucket") {
			leStr := ""
			var otherLabels []string
			for _, kv := range strings.Split(labels, ",") {
				if strings.HasPrefix(kv, `le="`) {
					leStr = strings.TrimSuffix(strings.TrimPrefix(kv, `le="`), `"`)
				} else {
					otherLabels = append(otherLabels, kv)
				}
			}
			if leStr == "" {
				t.Fatalf("line %d: bucket without le: %q", lineNo, line)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					t.Fatalf("line %d: bad le %q", lineNo, leStr)
				}
			}
			// Identify the bucket series by name plus its non-le labels,
			// so two label sets under one family don't cross-check.
			baseSeries := strings.TrimSuffix(name, "_bucket") + "{" + strings.Join(otherLabels, ",") + "}"
			if lastBucket.series == baseSeries {
				if le <= lastBucket.le {
					t.Fatalf("line %d: le not increasing (%g after %g)", lineNo, le, lastBucket.le)
				}
				if uint64(val) < lastBucket.cum {
					t.Fatalf("line %d: bucket counts not cumulative (%v < %d)", lineNo, val, lastBucket.cum)
				}
			}
			lastBucket.series, lastBucket.le, lastBucket.cum = baseSeries, le, uint64(val)
			if math.IsInf(le, 1) {
				infCount[baseSeries] = uint64(val)
			}
		}
		if strings.HasSuffix(name, "_count") {
			countVal[strings.TrimSuffix(name, "_count")+"{"+labels+"}"] = uint64(val)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	for series, inf := range infCount {
		if c, ok := countVal[series]; ok && c != inf {
			t.Fatalf("%s: _count %d != +Inf bucket %d", series, c, inf)
		}
	}
	return types
}

func TestHandlerExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("adeptd_test_requests_total", "Total requests.")
	reqs.Add(7)
	r.GaugeFunc("adeptd_test_queue_depth", "Queue depth.", func() float64 { return 3 })
	hv := r.HistogramVec("adeptd_test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, "endpoint")
	hv.With("plan").Observe(0.0005)
	hv.With("plan").Observe(0.05)
	hv.With("plan").Observe(5)
	hv.With(`we"ird`).Observe(0.002) // label escaping survives round trip
	gv := r.GaugeVec("adeptd_test_shard_entries", "Shard sizes.", "shard")
	gv.With("0").Set(2)
	gv.With("1").Set(5)
	r.RegisterRuntime()
	scraped := false
	r.OnScrape(func() { scraped = true })

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !scraped {
		t.Fatal("OnScrape callback not invoked")
	}
	if ct := rec.Header().Get("Content-Type"); ct != expositionContentType {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	types := parseExposition(t, body)
	if types["adeptd_test_requests_total"] != "counter" {
		t.Fatalf("requests_total type = %q", types["adeptd_test_requests_total"])
	}
	if types["adeptd_test_latency_seconds"] != "histogram" {
		t.Fatalf("latency type = %q", types["adeptd_test_latency_seconds"])
	}
	if !strings.Contains(body, "adeptd_test_requests_total 7\n") {
		t.Fatalf("missing counter sample in:\n%s", body)
	}
	if !strings.Contains(body, `adeptd_test_latency_seconds_bucket{endpoint="plan",le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket in:\n%s", body)
	}
	if !strings.Contains(body, `endpoint="we\"ird"`) {
		t.Fatalf("label escaping missing in:\n%s", body)
	}
	if !strings.Contains(body, "go_goroutines") {
		t.Fatal("runtime gauges missing")
	}

	// Monotone counters: a second scrape after more observations never
	// shows a smaller value.
	reqs.Add(5)
	hv.With("plan").Observe(0.2)
	rec2 := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec2, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec2.Body.String(), "adeptd_test_requests_total 12\n") {
		t.Fatal("counter not monotone across scrapes")
	}
	parseExposition(t, rec2.Body.String())
}

func TestTraceRecorder(t *testing.T) {
	var nilRec *TraceRecorder
	// Nil-receiver safety: all of these must be no-ops, not panics.
	nilRec.Phase("x")()
	nilRec.Span("x", time.Millisecond)
	nilRec.Count("ops", 1)
	nilRec.Set("k", "v")
	nilRec.Variant(VariantSpan{Name: "v"})
	nilRec.SetWinner("v")
	if nilRec.Trace() != nil {
		t.Fatal("nil recorder Trace() should be nil")
	}

	tr := NewTraceRecorder()
	end := tr.Phase("grow")
	time.Sleep(time.Millisecond)
	end()
	tr.Span("render", 2*time.Millisecond)
	tr.Count("evaluator_ops", 10)
	tr.Count("evaluator_ops", 5)
	tr.Set("snapshot_win", "grown")
	tr.Variant(VariantSpan{Name: "star", ElapsedMS: 1})
	tr.Variant(VariantSpan{Name: "heuristic", ElapsedMS: 3})
	tr.SetWinner("heuristic")
	got := tr.Trace()
	if len(got.Phases) != 2 || got.Phases[0].Name != "grow" || got.Phases[0].DurationMS <= 0 {
		t.Fatalf("phases = %+v", got.Phases)
	}
	if got.Counters["evaluator_ops"] != 15 {
		t.Fatalf("counters = %v", got.Counters)
	}
	if got.Attrs["snapshot_win"] != "grown" {
		t.Fatalf("attrs = %v", got.Attrs)
	}
	if got.Winner != "heuristic" {
		t.Fatalf("winner = %q", got.Winner)
	}
	// Variants sorted by name; winner flag set on the right one.
	if got.Variants[0].Name != "heuristic" || !got.Variants[0].Winner || got.Variants[1].Winner {
		t.Fatalf("variants = %+v", got.Variants)
	}
}

func TestTraceContext(t *testing.T) {
	ctx := t.Context()
	if TraceFrom(ctx) != nil {
		t.Fatal("empty ctx should have nil recorder")
	}
	tr := NewTraceRecorder()
	ctx = ContextWithTrace(ctx, tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("recorder not retrieved")
	}
	detached := DetachTrace(ctx)
	if TraceFrom(detached) != nil {
		t.Fatal("DetachTrace should mask the recorder")
	}
	// Detaching an untraced ctx is the identity.
	base := t.Context()
	if DetachTrace(base) != base {
		t.Fatal("DetachTrace on untraced ctx should return it unchanged")
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("request IDs not unique: %q", a)
	}
	if !strings.Contains(a, "-") {
		t.Fatalf("request ID missing prefix separator: %q", a)
	}
	ctx := ContextWithRequestID(t.Context(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Fatalf("RequestIDFrom = %q, want %q", got, a)
	}
	if RequestIDFrom(t.Context()) != "" {
		t.Fatal("empty ctx should have empty request ID")
	}
}

func TestLoggerConstructors(t *testing.T) {
	var sb strings.Builder
	lg, err := NewLogger("json", &sb, ParseLevelMust("info"))
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", "v")
	if !strings.Contains(sb.String(), `"msg":"hello"`) {
		t.Fatalf("json log output: %q", sb.String())
	}
	sb.Reset()
	lg, err = NewLogger("text", &sb, ParseLevelMust("warn"))
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	if strings.Contains(sb.String(), "dropped") || !strings.Contains(sb.String(), "kept") {
		t.Fatalf("level filtering wrong: %q", sb.String())
	}
	if _, err := NewLogger("xml", &sb, 0); err == nil {
		t.Fatal("expected error for unknown format")
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("expected error for unknown level")
	}
	NopLogger().Info("discarded")
}

// ParseLevelMust is a test helper.
func ParseLevelMust(s string) slog.Level {
	lv, err := ParseLevel(s)
	if err != nil {
		panic(err)
	}
	return lv
}

func TestJournal(t *testing.T) {
	j := NewJournal(3)
	if j.Len() != 0 || j.Total() != 0 {
		t.Fatal("new journal not empty")
	}
	for i := 1; i <= 5; i++ {
		seq := j.Append("detect", fmt.Sprintf("event %d", i), map[string]string{"i": strconv.Itoa(i)})
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if j.Len() != 3 {
		t.Fatalf("len = %d, want 3", j.Len())
	}
	if j.Total() != 5 {
		t.Fatalf("total = %d, want 5", j.Total())
	}
	snap := j.Snapshot()
	if len(snap) != 3 || snap[0].Seq != 3 || snap[2].Seq != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Fields["i"] != "3" {
		t.Fatalf("fields = %v", snap[0].Fields)
	}
	since := j.Since(4)
	if len(since) != 1 || since[0].Seq != 5 {
		t.Fatalf("since(4) = %+v", since)
	}
	if j.Since(5) != nil {
		t.Fatal("since(latest) should be empty")
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Append("k", "m", nil)
				_ = j.Snapshot()
			}
		}()
	}
	wg.Wait()
	if j.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", j.Total())
	}
	snap := j.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs: %d after %d", snap[i].Seq, snap[i-1].Seq)
		}
	}
}
