package hierarchy_test

import (
	"strings"
	"testing"
	"testing/quick"

	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
)

// buildSample constructs the canonical test tree:
//
//	root ── a1 ── s1, s2
//	     └─ s3
func buildSample(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("sample")
	root, err := h.AddRoot("root", 500)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := h.AddAgent(root, "a1", 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"s1", "s2"} {
		if _, err := h.AddServer(a1, name, 300); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.AddServer(root, "s3", 200); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildAndStats(t *testing.T) {
	h := buildSample(t)
	if err := h.Validate(hierarchy.Final); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	s := h.ComputeStats()
	if s.Nodes != 5 || s.Agents != 2 || s.Servers != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.Depth != 3 {
		t.Errorf("depth = %d, want 3", s.Depth)
	}
	if s.MinDegree != 2 || s.MaxDegree != 2 {
		t.Errorf("degrees = [%d, %d], want [2, 2]", s.MinDegree, s.MaxDegree)
	}
}

func TestAddErrors(t *testing.T) {
	h := hierarchy.New("x")
	if _, err := h.AddAgent(0, "a", 1); err == nil {
		t.Error("AddAgent with no root should fail")
	}
	root, _ := h.AddRoot("root", 100)
	if _, err := h.AddRoot("root2", 100); err == nil {
		t.Error("second root should fail")
	}
	if _, err := h.AddServer(root, "", 100); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := h.AddServer(root, "s", 0); err == nil {
		t.Error("zero power should fail")
	}
	sid, _ := h.AddServer(root, "s", 100)
	if _, err := h.AddServer(sid, "s2", 100); err == nil {
		t.Error("server as parent should fail")
	}
	if _, err := h.AddServer(99, "s3", 100); err == nil {
		t.Error("out-of-range parent should fail")
	}
}

func TestValidateCatchesShapeViolations(t *testing.T) {
	// A non-root agent with one child violates the paper's invariant.
	h := hierarchy.New("bad")
	root, _ := h.AddRoot("root", 100)
	a1, _ := h.AddAgent(root, "a1", 100)
	if _, err := h.AddServer(a1, "s1", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddServer(root, "s2", 100); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(hierarchy.Structural); err != nil {
		t.Errorf("structurally fine tree rejected: %v", err)
	}
	if err := h.Validate(hierarchy.Final); err == nil {
		t.Error("one-child non-root agent accepted by Final validation")
	}
}

func TestValidateCatchesDuplicateNames(t *testing.T) {
	h := hierarchy.New("dup")
	root, _ := h.AddRoot("n", 100)
	if _, err := h.AddServer(root, "n", 100); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(hierarchy.Structural); err == nil {
		t.Error("duplicate physical node accepted")
	}
}

func TestPromoteAndDemote(t *testing.T) {
	h := hierarchy.New("pd")
	root, _ := h.AddRoot("root", 100)
	sid, _ := h.AddServer(root, "s", 100)
	if err := h.PromoteToAgent(sid); err != nil {
		t.Fatal(err)
	}
	if n := h.MustNode(sid); n.Role != hierarchy.RoleAgent {
		t.Error("promotion did not change role")
	}
	if err := h.PromoteToAgent(sid); err == nil {
		t.Error("double promotion accepted")
	}
	if err := h.DemoteToServer(sid); err != nil {
		t.Fatal(err)
	}
	if n := h.MustNode(sid); n.Role != hierarchy.RoleServer {
		t.Error("demotion did not change role")
	}
	if err := h.DemoteToServer(root); err == nil {
		t.Error("demoting the root accepted")
	}
}

func TestRemoveLeaf(t *testing.T) {
	h := hierarchy.New("rm")
	root, _ := h.AddRoot("root", 100)
	s1, _ := h.AddServer(root, "s1", 100)
	s2, _ := h.AddServer(root, "s2", 100)
	if err := h.RemoveLeaf(s1); err == nil {
		t.Error("removing a non-last node accepted")
	}
	if err := h.RemoveLeaf(s2); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Errorf("len = %d after removal, want 2", h.Len())
	}
	if h.Degree(root) != 1 {
		t.Errorf("root degree = %d, want 1", h.Degree(root))
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := buildSample(t)
	cp := h.Clone()
	if _, err := cp.AddServer(cp.Root(), "extra", 100); err != nil {
		t.Fatal(err)
	}
	if h.Len() == cp.Len() {
		t.Error("clone shares state with original")
	}
}

func TestAdjacencyMatrixRoundTrip(t *testing.T) {
	h := buildSample(t)
	m := h.AdjacencyMatrix()
	nodes := h.Nodes()
	names := make([]string, len(nodes))
	powers := make([]float64, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
		powers[i] = n.Power
	}
	back, err := hierarchy.FromAdjacencyMatrix("sample", names, powers, m)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() {
		t.Fatalf("round trip: %d nodes, want %d", back.Len(), h.Len())
	}
	if err := back.Validate(hierarchy.Final); err != nil {
		t.Errorf("round-tripped tree invalid: %v", err)
	}
	if got, want := back.ComputeStats(), h.ComputeStats(); got != want {
		t.Errorf("round trip stats %+v, want %+v", got, want)
	}
}

func TestFromAdjacencyMatrixRejectsCycles(t *testing.T) {
	m := [][]bool{{false, true}, {true, false}}
	if _, err := hierarchy.FromAdjacencyMatrix("cycle", []string{"a", "b"}, []float64{1, 1}, m); err == nil {
		t.Error("cycle accepted")
	}
}

func TestFormatMatrix(t *testing.T) {
	h := hierarchy.New("fm")
	root, _ := h.AddRoot("r", 1)
	if _, err := h.AddServer(root, "s", 1); err != nil {
		t.Fatal(err)
	}
	got := hierarchy.FormatMatrix(h.AdjacencyMatrix())
	if got != "01\n00\n" {
		t.Errorf("FormatMatrix = %q", got)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	h := buildSample(t)
	var sb strings.Builder
	if err := h.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	xml := sb.String()
	for _, frag := range []string{`<deployment name="sample">`, `<agent name="root"`, `<server name="s1"`} {
		if !strings.Contains(xml, frag) {
			t.Errorf("XML missing %q:\n%s", frag, xml)
		}
	}
	back, err := hierarchy.ParseXML(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() {
		t.Fatalf("XML round trip: %d nodes, want %d", back.Len(), h.Len())
	}
	if got, want := back.ComputeStats(), h.ComputeStats(); got != want {
		t.Errorf("XML round trip stats %+v, want %+v", got, want)
	}
	// Re-serialising must be byte-identical (stable output).
	var sb2 strings.Builder
	if err := back.WriteXML(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != xml {
		t.Error("XML serialisation not stable across a round trip")
	}
}

func TestParseXMLRejectsGarbage(t *testing.T) {
	if _, err := hierarchy.ParseXML(strings.NewReader("<deployment>")); err == nil {
		t.Error("truncated XML accepted")
	}
	bad := `<deployment name="x"><agent name="a" power="1"><widget name="s" power="1"></widget></agent></deployment>`
	if _, err := hierarchy.ParseXML(strings.NewReader(bad)); err == nil {
		t.Error("unknown element accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	h := buildSample(t)
	var sb strings.Builder
	if err := h.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, frag := range []string{"digraph", "n0 -> n1", "shape=ellipse", "shape=box"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

func TestCheckAgainstPlatform(t *testing.T) {
	h := buildSample(t)
	plat := &platform.Platform{
		Name: "p", Bandwidth: 100,
		Nodes: []platform.Node{
			{Name: "root", Power: 500}, {Name: "a1", Power: 400},
			{Name: "s1", Power: 300}, {Name: "s2", Power: 300}, {Name: "s3", Power: 200},
		},
	}
	if err := h.CheckAgainstPlatform(plat); err != nil {
		t.Errorf("consistent deployment rejected: %v", err)
	}
	plat.Nodes[0].Power = 999
	if err := h.CheckAgainstPlatform(plat); err == nil {
		t.Error("power mismatch accepted")
	}
	plat.Nodes = plat.Nodes[1:]
	if err := h.CheckAgainstPlatform(plat); err == nil {
		t.Error("missing pool node accepted")
	}
}

func TestModelBridge(t *testing.T) {
	h := buildSample(t)
	agents := h.ModelAgents()
	if len(agents) != 2 {
		t.Fatalf("%d model agents, want 2", len(agents))
	}
	if agents[0].Degree != 2 || agents[1].Degree != 2 {
		t.Errorf("agent degrees %v", agents)
	}
	powers := h.ServerPowers()
	if len(powers) != 3 {
		t.Fatalf("%d server powers, want 3", len(powers))
	}
	ev := h.Evaluate(model.DIETDefaults(), 100, 16)
	if ev.Rho <= 0 {
		t.Errorf("rho = %g", ev.Rho)
	}
}

// Property: any tree built by a random valid construction sequence passes
// structural validation, and its adjacency matrix round-trips.
func TestPropertyRandomConstructionValid(t *testing.T) {
	f := func(ops []uint8) bool {
		h := hierarchy.New("prop")
		root, err := h.AddRoot("n0", 100)
		if err != nil {
			return false
		}
		agents := []int{root}
		next := 1
		for _, op := range ops {
			if next > 40 {
				break
			}
			parent := agents[int(op%uint8(len(agents)))%len(agents)]
			name := "n" + string(rune('0'+next/10)) + string(rune('0'+next%10))
			power := float64(op) + 1 // avoid uint8 wrap-around for op = 255
			if op%3 == 0 {
				id, err := h.AddAgent(parent, name, power)
				if err != nil {
					return false
				}
				agents = append(agents, id)
			} else {
				if _, err := h.AddServer(parent, name, power); err != nil {
					return false
				}
			}
			next++
		}
		if err := h.Validate(hierarchy.Structural); err != nil {
			return false
		}
		nodes := h.Nodes()
		names := make([]string, len(nodes))
		powers := make([]float64, len(nodes))
		for i, n := range nodes {
			names[i] = n.Name
			powers[i] = n.Power
		}
		back, err := hierarchy.FromAdjacencyMatrix("prop", names, powers, h.AdjacencyMatrix())
		if err != nil {
			return false
		}
		return back.Len() == h.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
