// Package hierarchy provides the deployment hierarchy data structure of the
// paper: a tree whose internal nodes are agents and whose leaves are
// servers. A root agent has one or more children; every non-root agent has
// exactly one parent and (in a final deployment) two or more children; a
// server has exactly one parent and no children. Agents and servers never
// share a physical node.
//
// The package offers construction, validation, traversal, statistics,
// adjacency-matrix export (the heuristic's plot_hierarchy step), GoDIET-style
// XML serialisation (write_xml), and DOT rendering, plus the bridge to the
// analytic model of internal/model.
package hierarchy

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"adept/internal/model"
	"adept/internal/platform"
)

// Role distinguishes agents from servers.
type Role int

const (
	// RoleAgent marks an internal scheduling node.
	RoleAgent Role = iota
	// RoleServer marks a leaf computational node (SeD in DIET parlance).
	RoleServer
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RoleAgent {
		return "agent"
	}
	return "server"
}

// Node is one deployed middleware element.
type Node struct {
	// ID is the node's index inside the hierarchy (dense, 0-based).
	ID int
	// Name is the underlying physical node's name.
	Name string
	// Power is the physical node's computing power (MFlop/s).
	Power float64
	// Bandwidth is the physical node's link bandwidth in Mb/s; zero means
	// "the platform-wide default", mirroring platform.Node.LinkBandwidth.
	// Deployments planned on homogeneous-link platforms carry zero
	// everywhere, keeping their serialised forms unchanged.
	Bandwidth float64
	// Role says whether the element is an agent or a server.
	Role Role
	// Parent is the parent node ID, or -1 for the root.
	Parent int
	// Children lists child node IDs in insertion order (empty for servers).
	Children []int
}

// Link resolves the node's effective link bandwidth against the default.
func (n Node) Link(def float64) float64 {
	if n.Bandwidth > 0 {
		return n.Bandwidth
	}
	return def
}

// Hierarchy is a deployment tree.
type Hierarchy struct {
	// Name labels the deployment.
	Name  string
	nodes []Node
	root  int
	// arena slab-allocates the nodes' Children backing arrays (see
	// appendChild): growing a deployment one child at a time used to be
	// one heap allocation per attachment, the dominant allocation cost of
	// planning at scale.
	arena []int
}

// New creates an empty hierarchy. The first added agent becomes the root.
func New(name string) *Hierarchy {
	return &Hierarchy{Name: name, root: -1}
}

// Len returns the number of deployed elements.
func (h *Hierarchy) Len() int { return len(h.nodes) }

// Root returns the root agent's ID, or -1 when the hierarchy is empty.
func (h *Hierarchy) Root() int { return h.root }

// Node returns a copy of the node with the given ID.
func (h *Hierarchy) Node(id int) (Node, error) {
	if id < 0 || id >= len(h.nodes) {
		return Node{}, fmt.Errorf("hierarchy: node id %d out of range [0,%d)", id, len(h.nodes))
	}
	return h.nodes[id], nil
}

// MustNode is Node but panics on a bad ID; for use after validation.
func (h *Hierarchy) MustNode(id int) Node {
	n, err := h.Node(id)
	if err != nil {
		panic(err)
	}
	return n
}

// Nodes returns a copy of all nodes in ID order.
func (h *Hierarchy) Nodes() []Node {
	cp := make([]Node, len(h.nodes))
	copy(cp, h.nodes)
	for i := range cp {
		cp[i].Children = append([]int(nil), h.nodes[i].Children...)
	}
	return cp
}

// AddRoot adds the root agent. It fails if a root already exists. The
// optional trailing argument is the node's link bandwidth override (Mb/s,
// zero or omitted = platform default).
func (h *Hierarchy) AddRoot(name string, power float64, linkBW ...float64) (int, error) {
	if h.root != -1 {
		return -1, errors.New("hierarchy: root already present")
	}
	bw, err := pickLink(linkBW)
	if err != nil {
		return -1, err
	}
	if err := checkNode(name, power); err != nil {
		return -1, err
	}
	id := len(h.nodes)
	h.nodes = append(h.nodes, Node{ID: id, Name: name, Power: power, Bandwidth: bw, Role: RoleAgent, Parent: -1})
	h.root = id
	return id, nil
}

// AddAgent adds a non-root agent under parent. The optional trailing
// argument is the node's link bandwidth override.
func (h *Hierarchy) AddAgent(parent int, name string, power float64, linkBW ...float64) (int, error) {
	return h.addChild(parent, name, power, RoleAgent, linkBW)
}

// AddServer adds a server leaf under parent. The optional trailing
// argument is the node's link bandwidth override.
func (h *Hierarchy) AddServer(parent int, name string, power float64, linkBW ...float64) (int, error) {
	return h.addChild(parent, name, power, RoleServer, linkBW)
}

func checkNode(name string, power float64) error {
	if name == "" {
		return errors.New("hierarchy: empty node name")
	}
	if power <= 0 {
		return fmt.Errorf("hierarchy: node %q has non-positive power %g", name, power)
	}
	return nil
}

// pickLink validates the optional link-bandwidth argument of the Add*
// constructors: at most one value, non-negative (zero = inherit default).
func pickLink(linkBW []float64) (float64, error) {
	switch len(linkBW) {
	case 0:
		return 0, nil
	case 1:
		if linkBW[0] < 0 {
			return 0, fmt.Errorf("hierarchy: negative link bandwidth %g", linkBW[0])
		}
		return linkBW[0], nil
	default:
		return 0, fmt.Errorf("hierarchy: at most one link bandwidth, got %d", len(linkBW))
	}
}

func (h *Hierarchy) addChild(parent int, name string, power float64, role Role, linkBW []float64) (int, error) {
	bw, err := pickLink(linkBW)
	if err != nil {
		return -1, err
	}
	if err := checkNode(name, power); err != nil {
		return -1, err
	}
	if parent < 0 || parent >= len(h.nodes) {
		return -1, fmt.Errorf("hierarchy: parent id %d out of range", parent)
	}
	if h.nodes[parent].Role != RoleAgent {
		return -1, fmt.Errorf("hierarchy: parent %q is a server; servers cannot have children", h.nodes[parent].Name)
	}
	id := len(h.nodes)
	h.nodes = append(h.nodes, Node{ID: id, Name: name, Power: power, Bandwidth: bw, Role: role, Parent: parent})
	h.nodes[parent].Children = h.appendChild(h.nodes[parent].Children, id)
	return id, nil
}

// arenaBlock is the slab size (in child IDs) of the Children arena.
const arenaBlock = 1024

// appendChild appends id to a Children slice, drawing fresh capacity from
// the hierarchy's slab arena instead of the heap. Each grant hands out the
// full granted capacity and advances the slab cursor past it, so two
// Children slices never alias: in-cap appends stay inside the owner's
// grant, and over-cap appends either take a new grant (here) or fall back
// to the ordinary heap (append anywhere else in the codebase). Abandoned
// grants are garbage until the hierarchy itself is released — a fine trade
// for one-shot plan construction, which allocates O(slabs) instead of
// O(attachments).
func (h *Hierarchy) appendChild(s []int, id int) []int {
	if len(s) < cap(s) {
		return append(s, id)
	}
	newCap := 2 * cap(s)
	if newCap < 2 {
		newCap = 2
	}
	if len(h.arena)+newCap > cap(h.arena) {
		size := arenaBlock
		if newCap > size {
			size = newCap
		}
		h.arena = make([]int, 0, size)
	}
	used := len(h.arena)
	ns := h.arena[used : used : used+newCap]
	h.arena = h.arena[:used+newCap]
	ns = append(ns, s...)
	return append(ns, id)
}

// PromoteToAgent converts a server into an agent (the heuristic's
// shift_nodes step, used when a server must start accepting children).
func (h *Hierarchy) PromoteToAgent(id int) error {
	if id < 0 || id >= len(h.nodes) {
		return fmt.Errorf("hierarchy: node id %d out of range", id)
	}
	if h.nodes[id].Role == RoleAgent {
		return fmt.Errorf("hierarchy: node %q already an agent", h.nodes[id].Name)
	}
	h.nodes[id].Role = RoleAgent
	return nil
}

// DemoteToServer converts a childless non-root agent back into a server:
// the inverse of PromoteToAgent, used by the planner's final fix-up when a
// promotion could not be filled with the required two children.
func (h *Hierarchy) DemoteToServer(id int) error {
	if id < 0 || id >= len(h.nodes) {
		return fmt.Errorf("hierarchy: node id %d out of range", id)
	}
	n := h.nodes[id]
	if n.Role == RoleServer {
		return fmt.Errorf("hierarchy: node %q already a server", n.Name)
	}
	if len(n.Children) != 0 {
		return fmt.Errorf("hierarchy: cannot demote agent %q with %d children", n.Name, len(n.Children))
	}
	if id == h.root {
		return errors.New("hierarchy: cannot demote the root")
	}
	h.nodes[id].Role = RoleServer
	return nil
}

// SetBacking re-assigns the physical platform node backing a deployed
// element, keeping the tree shape intact. Planner refiners use it to trade
// node roles (e.g. hand an agent's powerful node back to serving duty).
// The optional trailing argument sets the new backing node's link
// bandwidth; when omitted the element keeps its current one (the common
// case of re-rating the same physical node's power belief).
func (h *Hierarchy) SetBacking(id int, name string, power float64, linkBW ...float64) error {
	if id < 0 || id >= len(h.nodes) {
		return fmt.Errorf("hierarchy: node id %d out of range", id)
	}
	if err := checkNode(name, power); err != nil {
		return err
	}
	if len(linkBW) > 0 {
		bw, err := pickLink(linkBW)
		if err != nil {
			return err
		}
		h.nodes[id].Bandwidth = bw
	}
	h.nodes[id].Name = name
	h.nodes[id].Power = power
	return nil
}

// WithLinkBandwidths returns a copy of the hierarchy with every node's
// link bandwidth replaced by links[name] (missing names reset to zero,
// i.e. the platform default). Use it to re-bind a deployment planned
// against one network description onto the physical links it actually
// runs on — e.g. simulating a uniform-model plan on the real multi-cluster
// network.
func (h *Hierarchy) WithLinkBandwidths(links map[string]float64) (*Hierarchy, error) {
	cp := h.Clone()
	for _, n := range cp.nodes {
		if err := cp.SetBacking(n.ID, n.Name, n.Power, links[n.Name]); err != nil {
			return nil, err
		}
	}
	return cp, nil
}

// Clone returns a deep copy of the hierarchy. Planners snapshot candidate
// deployments this way before speculative growth.
func (h *Hierarchy) Clone() *Hierarchy {
	cp := &Hierarchy{Name: h.Name, root: h.root}
	cp.nodes = make([]Node, len(h.nodes))
	copy(cp.nodes, h.nodes)
	for i := range cp.nodes {
		cp.nodes[i].Children = append([]int(nil), h.nodes[i].Children...)
	}
	return cp
}

// RemoveLeaf removes a childless node from the hierarchy. IDs of remaining
// nodes are unchanged except the removed one must be the most recently added
// node (the planner only ever retracts its latest decision, mirroring the
// heuristic's "remove 1 child from the last agent" step).
func (h *Hierarchy) RemoveLeaf(id int) error {
	if id != len(h.nodes)-1 {
		return fmt.Errorf("hierarchy: can only remove the most recently added node (%d), got %d", len(h.nodes)-1, id)
	}
	n := h.nodes[id]
	if len(n.Children) != 0 {
		return fmt.Errorf("hierarchy: node %q still has %d children", n.Name, len(n.Children))
	}
	if n.Parent >= 0 {
		p := &h.nodes[n.Parent]
		for i, c := range p.Children {
			if c == id {
				p.Children = append(p.Children[:i], p.Children[i+1:]...)
				break
			}
		}
	}
	if h.root == id {
		h.root = -1
	}
	h.nodes = h.nodes[:id]
	return nil
}

// Agents returns the IDs of all agents in ID order.
func (h *Hierarchy) Agents() []int {
	var ids []int
	for _, n := range h.nodes {
		if n.Role == RoleAgent {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Servers returns the IDs of all servers in ID order.
func (h *Hierarchy) Servers() []int {
	var ids []int
	for _, n := range h.nodes {
		if n.Role == RoleServer {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Degree returns the number of children of the given node.
func (h *Hierarchy) Degree(id int) int {
	return len(h.nodes[id].Children)
}

// Depth returns the number of levels in the tree (a lone root has depth 1).
// An empty hierarchy has depth 0.
func (h *Hierarchy) Depth() int {
	if h.root == -1 {
		return 0
	}
	var rec func(id int) int
	rec = func(id int) int {
		max := 0
		for _, c := range h.nodes[id].Children {
			if d := rec(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	return rec(h.root)
}

// Walk visits every node reachable from the root in depth-first preorder.
func (h *Hierarchy) Walk(visit func(n Node)) {
	if h.root == -1 {
		return
	}
	var rec func(id int)
	rec = func(id int) {
		visit(h.nodes[id])
		for _, c := range h.nodes[id].Children {
			rec(c)
		}
	}
	rec(h.root)
}

// ValidationMode selects which invariants Validate enforces.
type ValidationMode int

const (
	// Structural checks tree well-formedness only: one root, consistent
	// parent/child links, servers are leaves, no cycles, all nodes
	// reachable. Planners use this mid-construction.
	Structural ValidationMode = iota
	// Final additionally enforces the paper's deployment shape: every
	// non-root agent has at least two children, every agent has at least
	// one child, and at least one server exists.
	Final
)

// Validate checks the hierarchy invariants under the given mode.
func (h *Hierarchy) Validate(mode ValidationMode) error {
	if len(h.nodes) == 0 {
		return errors.New("hierarchy: empty")
	}
	if h.root < 0 || h.root >= len(h.nodes) {
		return errors.New("hierarchy: no root")
	}
	if h.nodes[h.root].Role != RoleAgent {
		return errors.New("hierarchy: root is not an agent")
	}
	if h.nodes[h.root].Parent != -1 {
		return errors.New("hierarchy: root has a parent")
	}
	seen := make([]bool, len(h.nodes))
	names := make(map[string]bool, len(h.nodes))
	count := 0
	var rec func(id int) error
	rec = func(id int) error {
		if seen[id] {
			return fmt.Errorf("hierarchy: node %d visited twice (cycle or shared child)", id)
		}
		seen[id] = true
		count++
		n := h.nodes[id]
		if names[n.Name] {
			return fmt.Errorf("hierarchy: duplicate physical node %q", n.Name)
		}
		names[n.Name] = true
		if n.Role == RoleServer && len(n.Children) != 0 {
			return fmt.Errorf("hierarchy: server %q has children", n.Name)
		}
		for _, c := range n.Children {
			if c < 0 || c >= len(h.nodes) {
				return fmt.Errorf("hierarchy: node %q has out-of-range child %d", n.Name, c)
			}
			if h.nodes[c].Parent != id {
				return fmt.Errorf("hierarchy: child %q does not point back to parent %q", h.nodes[c].Name, n.Name)
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(h.root); err != nil {
		return err
	}
	if count != len(h.nodes) {
		return fmt.Errorf("hierarchy: %d of %d nodes unreachable from root", len(h.nodes)-count, len(h.nodes))
	}
	if mode == Final {
		if len(h.Servers()) == 0 {
			return errors.New("hierarchy: final deployment has no servers")
		}
		for _, id := range h.Agents() {
			n := h.nodes[id]
			if len(n.Children) == 0 {
				return fmt.Errorf("hierarchy: agent %q has no children", n.Name)
			}
			if id != h.root && len(n.Children) < 2 {
				return fmt.Errorf("hierarchy: non-root agent %q has %d child(ren); the paper requires at least two", n.Name, len(n.Children))
			}
		}
	}
	return nil
}

// Stats summarises the shape of a hierarchy.
type Stats struct {
	Nodes     int
	Agents    int
	Servers   int
	Depth     int
	MinDegree int // over agents
	MaxDegree int // over agents
}

// ComputeStats returns the shape summary.
func (h *Hierarchy) ComputeStats() Stats {
	s := Stats{Nodes: len(h.nodes), Depth: h.Depth()}
	first := true
	for _, n := range h.nodes {
		switch n.Role {
		case RoleAgent:
			s.Agents++
			d := len(n.Children)
			if first {
				s.MinDegree, s.MaxDegree = d, d
				first = false
			} else {
				if d < s.MinDegree {
					s.MinDegree = d
				}
				if d > s.MaxDegree {
					s.MaxDegree = d
				}
			}
		case RoleServer:
			s.Servers++
		}
	}
	return s
}

// ModelAgents converts the hierarchy's agents into the analytic model's
// agent views (power + degree + link bandwidth), in agent-ID order.
func (h *Hierarchy) ModelAgents() []model.Agent {
	ids := h.Agents()
	out := make([]model.Agent, 0, len(ids))
	for _, id := range ids {
		n := h.nodes[id]
		out = append(out, model.Agent{Power: n.Power, Degree: len(n.Children), Bandwidth: n.Bandwidth})
	}
	return out
}

// ModelServers converts the hierarchy's servers into the analytic model's
// server views (power + link bandwidth), in server-ID order.
func (h *Hierarchy) ModelServers() []model.Server {
	ids := h.Servers()
	out := make([]model.Server, 0, len(ids))
	for _, id := range ids {
		n := h.nodes[id]
		out = append(out, model.Server{Power: n.Power, Bandwidth: n.Bandwidth})
	}
	return out
}

// ServerPowers returns the powers of all servers, in server-ID order.
func (h *Hierarchy) ServerPowers() []float64 {
	ids := h.Servers()
	out := make([]float64, 0, len(ids))
	for _, id := range ids {
		out = append(out, h.nodes[id].Power)
	}
	return out
}

// Evaluate runs the §3 performance model on this hierarchy; bandwidth is
// the default link bandwidth for nodes without a per-node override.
func (h *Hierarchy) Evaluate(c model.Costs, bandwidth, wapp float64) model.Evaluation {
	return model.EvaluateLinks(c, bandwidth, wapp, h.ModelAgents(), h.ModelServers())
}

// UsedNames returns the set of physical node names consumed by the
// deployment, sorted.
func (h *Hierarchy) UsedNames() []string {
	names := make([]string, 0, len(h.nodes))
	for _, n := range h.nodes {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	return names
}

// CheckAgainstPlatform verifies that every deployed element maps to a
// distinct node of the platform pool with matching power and link
// bandwidth.
func (h *Hierarchy) CheckAgainstPlatform(p *platform.Platform) error {
	// The deployment is usually a tiny fraction of a huge pool, so the
	// lookup map is built over the hierarchy side and the platform slice is
	// scanned once: O(pool) time with an O(deployment) map, instead of a
	// pool-sized map on every finalised plan. Reported errors match the old
	// pool-map scan: the earliest failing hierarchy node wins, and a
	// duplicated deployment name fails its later occurrence.
	idx := make(map[string]int, len(h.nodes))
	errIdx := -1
	var firstErr error
	record := func(i int, err error) {
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
	}
	for i, n := range h.nodes {
		if _, dup := idx[n.Name]; dup {
			record(i, fmt.Errorf("hierarchy: node %q not in platform pool", n.Name))
			continue
		}
		idx[n.Name] = i
	}
	matched := make([]bool, len(h.nodes))
	for _, pn := range p.Nodes {
		i, ok := idx[pn.Name]
		if !ok {
			continue
		}
		matched[i] = true
		n := &h.nodes[i]
		switch {
		case pn.Power != n.Power:
			record(i, fmt.Errorf("hierarchy: node %q power mismatch: deployment says %g, platform says %g", n.Name, n.Power, pn.Power))
		case pn.LinkBandwidth != n.Bandwidth:
			record(i, fmt.Errorf("hierarchy: node %q link bandwidth mismatch: deployment says %g, platform says %g", n.Name, n.Bandwidth, pn.LinkBandwidth))
		}
	}
	//adeptvet:allow maporder record() keeps the smallest hierarchy index, so iteration order cannot change the reported error
	for name, i := range idx {
		if !matched[i] {
			record(i, fmt.Errorf("hierarchy: node %q not in platform pool", name))
		}
	}
	if errIdx >= 0 {
		return firstErr
	}
	return nil
}

// String renders an indented tree, one node per line.
func (h *Hierarchy) String() string {
	if h.root == -1 {
		return "(empty hierarchy)"
	}
	var b strings.Builder
	var rec func(id, depth int)
	rec = func(id, depth int) {
		n := h.nodes[id]
		if n.Bandwidth > 0 {
			fmt.Fprintf(&b, "%s%s %s (w=%g, bw=%g, d=%d)\n", strings.Repeat("  ", depth), n.Role, n.Name, n.Power, n.Bandwidth, len(n.Children))
		} else {
			fmt.Fprintf(&b, "%s%s %s (w=%g, d=%d)\n", strings.Repeat("  ", depth), n.Role, n.Name, n.Power, len(n.Children))
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(h.root, 0)
	return b.String()
}
