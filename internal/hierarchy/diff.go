package hierarchy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// This file implements the reconfiguration patch engine: the minimal edit
// script turning one deployment hierarchy into another. The autonomic
// control loop (internal/autonomic) diffs the currently deployed tree
// against a freshly replanned one and applies the resulting patch to the
// live middleware instead of tearing it down — the point of live
// reconfiguration is that the patch is much smaller than the deployment.
//
// Nodes are identified by their physical node name: a node present in both
// trees is the *same* deployed element, possibly moved (reparented),
// re-roled (promoted/demoted), or re-rated (power drift learned by the
// monitor). Nodes present only in the new tree are added; nodes present
// only in the old tree are removed.

// OpKind enumerates the patch operations.
type OpKind int

const (
	// OpPromote converts a deployed server into an agent (so it can accept
	// children attached by later ops).
	OpPromote OpKind = iota
	// OpAdd deploys a new element (agent or server) under Parent.
	OpAdd
	// OpReparent moves an element (and, for agents, its whole subtree)
	// under a new parent.
	OpReparent
	// OpSetPower updates the recorded computing power of an element
	// (effective power learned from observed service times).
	OpSetPower
	// OpRemove undeploys a childless element.
	OpRemove
	// OpDemote converts a childless agent back into a server.
	OpDemote
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpPromote:
		return "promote"
	case OpAdd:
		return "add"
	case OpReparent:
		return "reparent"
	case OpSetPower:
		return "set-power"
	case OpRemove:
		return "remove"
	case OpDemote:
		return "demote"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one edit of a reconfiguration patch.
type Op struct {
	// Kind selects the operation.
	Kind OpKind
	// Name is the physical node name of the element operated on.
	Name string
	// Parent is the destination parent name (OpAdd, OpReparent).
	Parent string
	// Power is the node power (OpAdd, OpSetPower).
	Power float64
	// Bandwidth is the node's link bandwidth override (OpAdd, OpSetPower;
	// zero = platform default). OpSetPower always carries the target
	// node's bandwidth alongside its power so Apply(old, Diff(old, new))
	// converges to Equivalent(new) even when only the link changed.
	Bandwidth float64
	// Role is the element role (OpAdd only).
	Role Role
}

// String renders the op compactly for logs and status reports.
func (o Op) String() string {
	switch o.Kind {
	case OpAdd:
		if o.Bandwidth > 0 {
			return fmt.Sprintf("add %s %s under %s (w=%g, bw=%g)", o.Role, o.Name, o.Parent, o.Power, o.Bandwidth)
		}
		return fmt.Sprintf("add %s %s under %s (w=%g)", o.Role, o.Name, o.Parent, o.Power)
	case OpReparent:
		return fmt.Sprintf("reparent %s under %s", o.Name, o.Parent)
	case OpSetPower:
		return fmt.Sprintf("set-power %s w=%g", o.Name, o.Power)
	default:
		return fmt.Sprintf("%s %s", o.Kind, o.Name)
	}
}

// Patch is a deterministic edit script: applying it to the hierarchy it was
// diffed from yields a tree equivalent to the target hierarchy.
type Patch struct {
	Ops []Op
}

// Len returns the number of edits. The autonomic loop compares it against
// the element count of a full deployment to prove a patch beats a redeploy.
func (p Patch) Len() int { return len(p.Ops) }

// String renders one op per line.
func (p Patch) String() string {
	var b strings.Builder
	for _, op := range p.Ops {
		fmt.Fprintf(&b, "%s\n", op)
	}
	return b.String()
}

// ErrRootChanged reports that the two hierarchies have different root
// elements. A root swap cannot be expressed as an in-place patch (every
// client addresses the root by name), so callers fall back to a full
// redeploy.
var ErrRootChanged = errors.New("hierarchy: root changed; patch cannot apply, full redeploy required")

// Diff computes the minimal deterministic edit script turning old into a
// tree equivalent to new. Ops are emitted in an order that is always
// applicable mid-flight on a live system:
//
//  1. promotes (existing servers that must accept children),
//  2. adds, in preorder of the new tree (parents before children),
//  3. reparents, in preorder of the new tree (destinations are final),
//  4. power updates, in preorder of the new tree,
//  5. removes, in postorder of the old tree (children before parents),
//  6. demotes (agents whose children are all gone by now).
func Diff(old, new *Hierarchy) (Patch, error) {
	if err := old.Validate(Structural); err != nil {
		return Patch{}, fmt.Errorf("hierarchy: diff old: %w", err)
	}
	if err := new.Validate(Structural); err != nil {
		return Patch{}, fmt.Errorf("hierarchy: diff new: %w", err)
	}
	if old.MustNode(old.Root()).Name != new.MustNode(new.Root()).Name {
		return Patch{}, ErrRootChanged
	}

	oldByName := indexByName(old)
	newByName := indexByName(new)

	var patch Patch

	// 1. Promotes.
	new.Walk(func(n Node) {
		if o, ok := oldByName[n.Name]; ok && o.Role == RoleServer && n.Role == RoleAgent {
			patch.Ops = append(patch.Ops, Op{Kind: OpPromote, Name: n.Name})
		}
	})
	// 2. Adds (preorder: a new node's parent is either pre-existing or was
	// added by an earlier op).
	new.Walk(func(n Node) {
		if _, ok := oldByName[n.Name]; ok || n.ID == new.Root() {
			return
		}
		parent := new.MustNode(n.Parent).Name
		patch.Ops = append(patch.Ops, Op{Kind: OpAdd, Name: n.Name, Parent: parent, Power: n.Power, Bandwidth: n.Bandwidth, Role: n.Role})
	})
	// 3. Reparents.
	new.Walk(func(n Node) {
		o, ok := oldByName[n.Name]
		if !ok || n.ID == new.Root() {
			return
		}
		oldParent := old.MustNode(o.Parent).Name
		newParent := new.MustNode(n.Parent).Name
		if oldParent != newParent {
			patch.Ops = append(patch.Ops, Op{Kind: OpReparent, Name: n.Name, Parent: newParent})
		}
	})
	// 4. Power (and link) updates: the op carries both target values so
	// replaying it restores the full backing, bandwidth-only changes
	// included.
	new.Walk(func(n Node) {
		if o, ok := oldByName[n.Name]; ok && (o.Power != n.Power || o.Bandwidth != n.Bandwidth) {
			patch.Ops = append(patch.Ops, Op{Kind: OpSetPower, Name: n.Name, Power: n.Power, Bandwidth: n.Bandwidth})
		}
	})
	// 5. Removes, children before parents.
	postorderWalk(old, old.Root(), func(n Node) {
		if _, ok := newByName[n.Name]; !ok {
			patch.Ops = append(patch.Ops, Op{Kind: OpRemove, Name: n.Name})
		}
	})
	// 6. Demotes.
	new.Walk(func(n Node) {
		if o, ok := oldByName[n.Name]; ok && o.Role == RoleAgent && n.Role == RoleServer {
			patch.Ops = append(patch.Ops, Op{Kind: OpDemote, Name: n.Name})
		}
	})
	return patch, nil
}

func indexByName(h *Hierarchy) map[string]Node {
	m := make(map[string]Node, h.Len())
	h.Walk(func(n Node) { m[n.Name] = n })
	return m
}

func postorderWalk(h *Hierarchy, id int, visit func(n Node)) {
	n := h.MustNode(id)
	for _, c := range n.Children {
		postorderWalk(h, c, visit)
	}
	visit(n)
}

// applyNode is the mutable name-keyed form a patch is replayed against.
type applyNode struct {
	name      string
	power     float64
	bandwidth float64
	role      Role
	parent    string // "" for the root
	children  []string
}

// Apply replays the patch on a copy of h and returns the patched hierarchy.
// h is not modified. Every op is checked against the same invariants the
// live runtime enforces (parents must be agents, removed nodes must be
// childless), so a patch that Apply accepts is safe to hand to
// runtime.System element by element.
func Apply(h *Hierarchy, p Patch) (*Hierarchy, error) {
	if err := h.Validate(Structural); err != nil {
		return nil, fmt.Errorf("hierarchy: apply: %w", err)
	}
	nodes := make(map[string]*applyNode, h.Len())
	var rootName string
	h.Walk(func(n Node) {
		an := &applyNode{name: n.Name, power: n.Power, bandwidth: n.Bandwidth, role: n.Role}
		if n.Parent == -1 {
			rootName = n.Name
		} else {
			an.parent = h.MustNode(n.Parent).Name
		}
		for _, c := range n.Children {
			an.children = append(an.children, h.MustNode(c).Name)
		}
		nodes[n.Name] = an
	})

	get := func(name string) (*applyNode, error) {
		an, ok := nodes[name]
		if !ok {
			return nil, fmt.Errorf("hierarchy: patch references unknown node %q", name)
		}
		return an, nil
	}
	detach := func(an *applyNode) error {
		parent, err := get(an.parent)
		if err != nil {
			return err
		}
		for i, c := range parent.children {
			if c == an.name {
				parent.children = append(parent.children[:i], parent.children[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("hierarchy: node %q missing from parent %q", an.name, an.parent)
	}
	attach := func(an *applyNode, parentName string) error {
		parent, err := get(parentName)
		if err != nil {
			return err
		}
		if parent.role != RoleAgent {
			return fmt.Errorf("hierarchy: patch attaches %q under server %q", an.name, parentName)
		}
		parent.children = append(parent.children, an.name)
		an.parent = parentName
		return nil
	}

	for _, op := range p.Ops {
		switch op.Kind {
		case OpPromote:
			an, err := get(op.Name)
			if err != nil {
				return nil, err
			}
			if an.role != RoleServer {
				return nil, fmt.Errorf("hierarchy: promote %q: not a server", op.Name)
			}
			an.role = RoleAgent
		case OpAdd:
			if _, dup := nodes[op.Name]; dup {
				return nil, fmt.Errorf("hierarchy: add %q: already deployed", op.Name)
			}
			an := &applyNode{name: op.Name, power: op.Power, bandwidth: op.Bandwidth, role: op.Role}
			if err := attach(an, op.Parent); err != nil {
				return nil, err
			}
			nodes[op.Name] = an
		case OpReparent:
			an, err := get(op.Name)
			if err != nil {
				return nil, err
			}
			if an.parent == "" {
				return nil, fmt.Errorf("hierarchy: reparent %q: is the root", op.Name)
			}
			if err := detach(an); err != nil {
				return nil, err
			}
			if err := attach(an, op.Parent); err != nil {
				return nil, err
			}
		case OpSetPower:
			an, err := get(op.Name)
			if err != nil {
				return nil, err
			}
			if op.Power <= 0 {
				return nil, fmt.Errorf("hierarchy: set-power %q: non-positive power %g", op.Name, op.Power)
			}
			if op.Bandwidth < 0 {
				return nil, fmt.Errorf("hierarchy: set-power %q: negative link bandwidth %g", op.Name, op.Bandwidth)
			}
			an.power = op.Power
			an.bandwidth = op.Bandwidth
		case OpRemove:
			an, err := get(op.Name)
			if err != nil {
				return nil, err
			}
			if len(an.children) != 0 {
				return nil, fmt.Errorf("hierarchy: remove %q: still has %d children", op.Name, len(an.children))
			}
			if an.parent == "" {
				return nil, fmt.Errorf("hierarchy: remove %q: is the root", op.Name)
			}
			if err := detach(an); err != nil {
				return nil, err
			}
			delete(nodes, op.Name)
		case OpDemote:
			an, err := get(op.Name)
			if err != nil {
				return nil, err
			}
			if an.role != RoleAgent {
				return nil, fmt.Errorf("hierarchy: demote %q: not an agent", op.Name)
			}
			if len(an.children) != 0 {
				return nil, fmt.Errorf("hierarchy: demote %q: still has %d children", op.Name, len(an.children))
			}
			an.role = RoleServer
		default:
			return nil, fmt.Errorf("hierarchy: unknown op kind %v", op.Kind)
		}
	}

	out := New(h.Name)
	root, ok := nodes[rootName]
	if !ok {
		return nil, errors.New("hierarchy: patch removed the root")
	}
	if _, err := out.AddRoot(root.name, root.power, root.bandwidth); err != nil {
		return nil, err
	}
	var build func(parentID int, an *applyNode) error
	build = func(parentID int, an *applyNode) error {
		for _, childName := range an.children {
			child, err := get(childName)
			if err != nil {
				return err
			}
			var id int
			if child.role == RoleAgent {
				id, err = out.AddAgent(parentID, child.name, child.power, child.bandwidth)
			} else {
				id, err = out.AddServer(parentID, child.name, child.power, child.bandwidth)
			}
			if err != nil {
				return err
			}
			if err := build(id, child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(out.Root(), root); err != nil {
		return nil, err
	}
	if out.Len() != len(nodes) {
		return nil, fmt.Errorf("hierarchy: patch left %d node(s) unreachable", len(nodes)-out.Len())
	}
	if err := out.Validate(Structural); err != nil {
		return nil, fmt.Errorf("hierarchy: patched tree invalid: %w", err)
	}
	return out, nil
}

// Equivalent reports whether two hierarchies describe the same deployment:
// same nodes (by name), same roles and powers, same parent/child structure.
// Child order is ignored — it is an artifact of patch-application order, not
// a property of the deployment.
func Equivalent(a, b *Hierarchy) bool {
	if a.Len() != b.Len() || a.Root() == -1 || b.Root() == -1 {
		return a.Len() == b.Len() && a.Root() == -1 && b.Root() == -1
	}
	bByName := indexByName(b)
	var eq func(aID, bID int) bool
	eq = func(aID, bID int) bool {
		an, bn := a.MustNode(aID), b.MustNode(bID)
		if an.Name != bn.Name || an.Role != bn.Role || an.Power != bn.Power || an.Bandwidth != bn.Bandwidth {
			return false
		}
		if len(an.Children) != len(bn.Children) {
			return false
		}
		aKids := childNames(a, an)
		bKids := childNames(b, bn)
		for i := range aKids {
			if aKids[i] != bKids[i] {
				return false
			}
		}
		for _, name := range aKids {
			ac := -1
			for _, c := range an.Children {
				if a.MustNode(c).Name == name {
					ac = c
					break
				}
			}
			bc := bByName[name].ID
			if !eq(ac, bc) {
				return false
			}
		}
		return true
	}
	return eq(a.Root(), b.Root())
}

func childNames(h *Hierarchy, n Node) []string {
	names := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		names = append(names, h.MustNode(c).Name)
	}
	sort.Strings(names)
	return names
}
