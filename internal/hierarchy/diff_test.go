package hierarchy

import (
	"reflect"
	"strings"
	"testing"
)

// buildTree constructs a hierarchy from a parent->children spec. The first
// entry's parent must be "" (the root). Names starting with "a" are agents,
// everything else servers; powers default to 100 unless given.
func mustAdd(t *testing.T, h *Hierarchy, parent int, name string, power float64, role Role) int {
	t.Helper()
	var id int
	var err error
	if role == RoleAgent {
		id, err = h.AddAgent(parent, name, power)
	} else {
		id, err = h.AddServer(parent, name, power)
	}
	if err != nil {
		t.Fatalf("add %s: %v", name, err)
	}
	return id
}

// star builds root -> (s1..sn).
func star(t *testing.T, servers ...string) *Hierarchy {
	t.Helper()
	h := New("test")
	root, err := h.AddRoot("root", 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range servers {
		mustAdd(t, h, root, s, 100, RoleServer)
	}
	return h
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	a := star(t, "s1", "s2", "s3")
	b := star(t, "s1", "s2", "s3")
	p, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Fatalf("want empty patch, got:\n%s", p)
	}
}

func TestDiffAddRemovePower(t *testing.T) {
	old := star(t, "s1", "s2", "s3")
	new := star(t, "s1", "s2", "s4") // s3 removed, s4 added
	// s1 drifts to half power in the replanned tree.
	for _, n := range new.Nodes() {
		if n.Name == "s1" {
			if err := new.SetBacking(n.ID, "s1", 50); err != nil {
				t.Fatal(err)
			}
		}
	}
	p, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[OpKind]int{}
	for _, op := range p.Ops {
		kinds[op.Kind]++
	}
	if kinds[OpAdd] != 1 || kinds[OpRemove] != 1 || kinds[OpSetPower] != 1 || p.Len() != 3 {
		t.Fatalf("want 1 add + 1 remove + 1 set-power, got:\n%s", p)
	}
	patched, err := Apply(old, p)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(patched, new) {
		t.Fatalf("patched tree differs from target:\npatched:\n%s\ntarget:\n%s", patched, new)
	}
	if Equivalent(patched, old) {
		t.Fatal("patched tree unexpectedly equivalent to the old tree")
	}
}

func TestDiffPromoteAndReparent(t *testing.T) {
	// old: root -> (s1, s2, s3, s4)
	old := star(t, "s1", "s2", "s3", "s4")
	// new: root -> (s1, s2); s1 promoted to agent holding s3 and s4.
	new := New("test")
	root, _ := new.AddRoot("root", 500)
	a1 := mustAdd(t, new, root, "s1", 100, RoleAgent)
	mustAdd(t, new, root, "s2", 100, RoleServer)
	mustAdd(t, new, a1, "s3", 100, RoleServer)
	mustAdd(t, new, a1, "s4", 100, RoleServer)

	p, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: promote s1, reparent s3 under s1, reparent s4 under s1.
	if p.Len() != 3 || p.Ops[0].Kind != OpPromote || p.Ops[0].Name != "s1" {
		t.Fatalf("unexpected patch:\n%s", p)
	}
	patched, err := Apply(old, p)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(patched, new) {
		t.Fatalf("patched tree differs from target:\npatched:\n%s\ntarget:\n%s", patched, new)
	}
	if err := patched.Validate(Final); err != nil {
		t.Fatalf("patched tree fails final validation: %v", err)
	}
}

func TestDiffDemoteCollapsesSubtree(t *testing.T) {
	// old: root -> (a1(s3, s4), s2); new: root -> (s1, s2) with a1's node
	// demoted back to serving as s1... a1 keeps its name, so: demote a1.
	old := New("test")
	root, _ := old.AddRoot("root", 500)
	a1 := mustAdd(t, old, root, "n1", 100, RoleAgent)
	mustAdd(t, old, root, "s2", 100, RoleServer)
	mustAdd(t, old, a1, "s3", 100, RoleServer)
	mustAdd(t, old, a1, "s4", 100, RoleServer)

	new := star(t, "n1", "s2", "s3")
	// s4 removed; s3 reparented to root; n1 demoted.
	p, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := Apply(old, p)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(patched, new) {
		t.Fatalf("patched tree differs from target:\npatched:\n%s\ntarget:\n%s", patched, new)
	}
	// The demote must come after the subtree is dismantled.
	last := p.Ops[p.Len()-1]
	if last.Kind != OpDemote || last.Name != "n1" {
		t.Fatalf("want trailing demote of n1, got:\n%s", p)
	}
}

func TestDiffRootChanged(t *testing.T) {
	a := star(t, "s1", "s2")
	b := New("test")
	root, _ := b.AddRoot("other", 500)
	mustAdd(t, b, root, "s1", 100, RoleServer)
	mustAdd(t, b, root, "s2", 100, RoleServer)
	if _, err := Diff(a, b); err != ErrRootChanged {
		t.Fatalf("want ErrRootChanged, got %v", err)
	}
}

func TestDiffDeterministic(t *testing.T) {
	old := star(t, "s1", "s2", "s3", "s4", "s5")
	new := New("test")
	root, _ := new.AddRoot("root", 500)
	a1 := mustAdd(t, new, root, "s1", 100, RoleAgent)
	mustAdd(t, new, a1, "s4", 100, RoleServer)
	mustAdd(t, new, a1, "s6", 120, RoleServer)
	mustAdd(t, new, root, "s2", 100, RoleServer)

	p1, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("diff not deterministic:\n%s\nvs\n%s", p1, p2)
	}
}

func TestApplyRejectsBadPatch(t *testing.T) {
	h := star(t, "s1", "s2")
	cases := []struct {
		name string
		op   Op
	}{
		{"remove unknown", Op{Kind: OpRemove, Name: "nope"}},
		{"remove root", Op{Kind: OpRemove, Name: "root"}},
		{"add duplicate", Op{Kind: OpAdd, Name: "s1", Parent: "root", Power: 1, Role: RoleServer}},
		{"attach under server", Op{Kind: OpAdd, Name: "x", Parent: "s1", Power: 1, Role: RoleServer}},
		{"reparent root", Op{Kind: OpReparent, Name: "root", Parent: "s1"}},
		{"demote server", Op{Kind: OpDemote, Name: "s1"}},
		{"promote agent", Op{Kind: OpPromote, Name: "root"}},
		{"zero power", Op{Kind: OpSetPower, Name: "s1", Power: 0}},
	}
	for _, tc := range cases {
		if _, err := Apply(h, Patch{Ops: []Op{tc.op}}); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	// The failed Apply calls must not have mutated h.
	if err := h.Validate(Final); err != nil {
		t.Fatalf("source hierarchy corrupted by failed Apply: %v", err)
	}
	if h.Len() != 3 {
		t.Fatalf("source hierarchy mutated: %d nodes", h.Len())
	}
}

// TestPatchedXMLRoundTrip is the reconfiguration analog of the planner's
// write_xml hand-off: apply a patch, emit the patched deployment as GoDIET
// XML, parse it back, and check the round-tripped tree is structurally
// identical to the replanned target.
func TestPatchedXMLRoundTrip(t *testing.T) {
	old := star(t, "s1", "s2", "s3", "s4")
	new := New("test")
	root, _ := new.AddRoot("root", 500)
	a1 := mustAdd(t, new, root, "s1", 100, RoleAgent)
	mustAdd(t, new, a1, "s3", 100, RoleServer)
	mustAdd(t, new, a1, "s5", 140, RoleServer)
	mustAdd(t, new, root, "s2", 100, RoleServer)
	// s4 removed, s5 added, s1 promoted, s3 reparented.

	p, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := Apply(old, p)
	if err != nil {
		t.Fatal(err)
	}
	xml, err := patched.MarshalXMLString()
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseXML(strings.NewReader(xml))
	if err != nil {
		t.Fatalf("re-parse patched XML: %v", err)
	}
	if !Equivalent(reparsed, new) {
		t.Fatalf("XML round-trip of patched tree differs from replanned target:\nround-trip:\n%s\ntarget:\n%s", reparsed, new)
	}
	if !Equivalent(reparsed, patched) {
		t.Fatal("XML round-trip not structurally identical to the patched tree")
	}
}

// TestDiffBandwidthOnlyChange: a link-bandwidth change with identical
// structure, powers, and roles must still produce a convergent patch —
// Apply(old, Diff(old, new)) ends Equivalent to new.
func TestDiffBandwidthOnlyChange(t *testing.T) {
	build := func(serverBW float64) *Hierarchy {
		h := New("bw")
		root, _ := h.AddRoot("root", 400)
		if _, err := h.AddServer(root, "s1", 300, serverBW); err != nil {
			t.Fatal(err)
		}
		if _, err := h.AddServer(root, "s2", 200); err != nil {
			t.Fatal(err)
		}
		return h
	}
	old := build(0)
	target := build(25)
	p, err := Diff(old, target)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.Ops[0].Kind != OpSetPower || p.Ops[0].Bandwidth != 25 {
		t.Fatalf("want one set-power op carrying bw=25, got:\n%s", p)
	}
	patched, err := Apply(old, p)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(patched, target) {
		t.Errorf("patched tree not equivalent to target:\n%s\nvs\n%s", patched, target)
	}
	// And the reverse direction clears the override back to zero.
	back, err := Diff(target, old)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Apply(target, back)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(restored, old) {
		t.Errorf("reverse patch did not restore the original tree")
	}
}
