package hierarchy

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"
)

// xmlElement is the on-disk recursive form of a deployment element, in the
// spirit of the GoDIET input format the paper's write_xml step produces.
type xmlElement struct {
	XMLName xml.Name
	Name    string  `xml:"name,attr"`
	Power   float64 `xml:"power,attr"`
	// Bandwidth is the optional per-node link bandwidth; omitted (zero)
	// for nodes on the platform-default link, so homogeneous deployments
	// serialise byte-identically to the pre-heterogeneous format.
	Bandwidth float64      `xml:"bandwidth,attr,omitempty"`
	Children  []xmlElement `xml:",any"`
}

// xmlDeployment is the document root.
type xmlDeployment struct {
	XMLName xml.Name   `xml:"deployment"`
	Name    string     `xml:"name,attr"`
	Root    xmlElement `xml:"agent"`
}

const (
	xmlAgentTag  = "agent"
	xmlServerTag = "server"
)

func (h *Hierarchy) toXMLElement(id int) xmlElement {
	n := h.nodes[id]
	tag := xmlAgentTag
	if n.Role == RoleServer {
		tag = xmlServerTag
	}
	el := xmlElement{
		XMLName:   xml.Name{Local: tag},
		Name:      n.Name,
		Power:     n.Power,
		Bandwidth: n.Bandwidth,
	}
	for _, c := range n.Children {
		el.Children = append(el.Children, h.toXMLElement(c))
	}
	return el
}

// WriteXML emits the GoDIET-style deployment XML to w. This is the
// heuristic's write_xml step: the artifact handed to the deployment tool.
func (h *Hierarchy) WriteXML(w io.Writer) error {
	if h.root == -1 {
		return fmt.Errorf("hierarchy: cannot serialise empty hierarchy")
	}
	doc := xmlDeployment{Name: h.Name, Root: h.toXMLElement(h.root)}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("hierarchy: encode XML: %w", err)
	}
	if err := enc.Close(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// MarshalXMLString returns the deployment XML as a string.
func (h *Hierarchy) MarshalXMLString() (string, error) {
	var b strings.Builder
	if err := h.WriteXML(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// SaveXML writes the deployment XML to a file.
func (h *Hierarchy) SaveXML(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hierarchy: %w", err)
	}
	defer f.Close()
	if err := h.WriteXML(f); err != nil {
		return err
	}
	return f.Close()
}

// ParseXML reads a deployment back from its XML form, reconstructing the
// hierarchy (the input side of the GoDIET hand-off).
func ParseXML(r io.Reader) (*Hierarchy, error) {
	var doc xmlDeployment
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("hierarchy: decode XML: %w", err)
	}
	h := New(doc.Name)
	rootID, err := h.AddRoot(doc.Root.Name, doc.Root.Power, doc.Root.Bandwidth)
	if err != nil {
		return nil, err
	}
	var rec func(parent int, el xmlElement) error
	rec = func(parent int, el xmlElement) error {
		for _, child := range el.Children {
			switch child.XMLName.Local {
			case xmlAgentTag:
				id, err := h.AddAgent(parent, child.Name, child.Power, child.Bandwidth)
				if err != nil {
					return err
				}
				if err := rec(id, child); err != nil {
					return err
				}
			case xmlServerTag:
				if len(child.Children) != 0 {
					return fmt.Errorf("hierarchy: server %q has child elements", child.Name)
				}
				if _, err := h.AddServer(parent, child.Name, child.Power, child.Bandwidth); err != nil {
					return err
				}
			default:
				return fmt.Errorf("hierarchy: unknown element <%s>", child.XMLName.Local)
			}
		}
		return nil
	}
	if err := rec(rootID, doc.Root); err != nil {
		return nil, err
	}
	if err := h.Validate(Structural); err != nil {
		return nil, err
	}
	return h, nil
}

// LoadXML reads a deployment XML file.
func LoadXML(path string) (*Hierarchy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hierarchy: %w", err)
	}
	defer f.Close()
	return ParseXML(f)
}

// WriteDOT renders the hierarchy in Graphviz DOT format for visual
// inspection of planned deployments.
func (h *Hierarchy) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n", h.Name); err != nil {
		return err
	}
	var werr error
	h.Walk(func(n Node) {
		if werr != nil {
			return
		}
		shape := "box"
		if n.Role == RoleServer {
			shape = "ellipse"
		}
		_, werr = fmt.Fprintf(w, "  n%d [label=\"%s\\n%.0f MFlop/s\", shape=%s];\n", n.ID, n.Name, n.Power, shape)
		if werr != nil {
			return
		}
		for _, c := range n.Children {
			if _, werr = fmt.Fprintf(w, "  n%d -> n%d;\n", n.ID, c); werr != nil {
				return
			}
		}
	})
	if werr != nil {
		return werr
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
