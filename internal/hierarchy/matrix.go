package hierarchy

import (
	"fmt"
	"strings"
)

// AdjacencyMatrix returns the hierarchy's parent/child relation as a dense
// boolean matrix: m[i][j] is true when node j is a child of node i. This is
// the output of the heuristic's plot_hierarchy step, which the paper feeds
// to the XML writer.
func (h *Hierarchy) AdjacencyMatrix() [][]bool {
	n := len(h.nodes)
	m := make([][]bool, n)
	cells := make([]bool, n*n)
	for i := range m {
		m[i], cells = cells[:n], cells[n:]
	}
	for _, node := range h.nodes {
		for _, c := range node.Children {
			m[node.ID][c] = true
		}
	}
	return m
}

// FromAdjacencyMatrix reconstructs a hierarchy from an adjacency matrix plus
// per-node metadata. Row/column order defines node IDs. The root is the
// unique node with no parent. Roles are inferred: nodes with children are
// agents, childless nodes are servers, matching the paper's convention that
// roles follow position.
func FromAdjacencyMatrix(name string, names []string, powers []float64, m [][]bool) (*Hierarchy, error) {
	n := len(m)
	if len(names) != n || len(powers) != n {
		return nil, fmt.Errorf("hierarchy: matrix is %d×%d but %d names / %d powers given", n, n, len(names), len(powers))
	}
	parent := make([]int, n)
	childCount := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	for i := range m {
		if len(m[i]) != n {
			return nil, fmt.Errorf("hierarchy: row %d has %d columns, want %d", i, len(m[i]), n)
		}
		for j := range m[i] {
			if !m[i][j] {
				continue
			}
			if i == j {
				return nil, fmt.Errorf("hierarchy: node %d is its own child", i)
			}
			if parent[j] != -1 {
				return nil, fmt.Errorf("hierarchy: node %d has two parents (%d and %d)", j, parent[j], i)
			}
			parent[j] = i
			childCount[i]++
		}
	}
	root := -1
	for i, p := range parent {
		if p == -1 {
			if root != -1 {
				return nil, fmt.Errorf("hierarchy: multiple roots (%d and %d)", root, i)
			}
			root = i
		}
	}
	if root == -1 {
		return nil, fmt.Errorf("hierarchy: no root (cycle)")
	}

	h := New(name)
	// Insert in BFS order from the root so parents exist before children,
	// then record the mapping from matrix index to hierarchy ID.
	idOf := make([]int, n)
	for i := range idOf {
		idOf[i] = -1
	}
	queue := []int{root}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		var id int
		var err error
		switch {
		case i == root:
			id, err = h.AddRoot(names[i], powers[i])
		case childCount[i] > 0:
			id, err = h.AddAgent(idOf[parent[i]], names[i], powers[i])
		default:
			id, err = h.AddServer(idOf[parent[i]], names[i], powers[i])
		}
		if err != nil {
			return nil, err
		}
		idOf[i] = id
		for j := range m[i] {
			if m[i][j] {
				queue = append(queue, j)
			}
		}
	}
	if h.Len() != n {
		return nil, fmt.Errorf("hierarchy: %d of %d matrix nodes unreachable from root", n-h.Len(), n)
	}
	return h, nil
}

// FormatMatrix renders the adjacency matrix as rows of 0/1 characters; handy
// for debugging and golden tests.
func FormatMatrix(m [][]bool) string {
	var b strings.Builder
	for _, row := range m {
		for _, v := range row {
			if v {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
