package scenario_test

import (
	"bytes"
	"sync"
	"testing"

	"adept/internal/scenario"
)

// TestGenerateValidAcrossCorpus checks every corpus spec expands into a
// valid platform of the requested size.
func TestGenerateValidAcrossCorpus(t *testing.T) {
	specs := scenario.Corpus(1)
	if want := len(scenario.Families()) * 4; len(specs) != want {
		t.Fatalf("corpus has %d specs, want %d", len(specs), want)
	}
	seenFamily := map[scenario.Family]bool{}
	for _, spec := range specs {
		p, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s n=%d: %v", spec.Family, spec.N, err)
		}
		if len(p.Nodes) != spec.N {
			t.Errorf("%s: %d nodes, want %d", spec.Family, len(p.Nodes), spec.N)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid platform: %v", spec.Family, err)
		}
		seenFamily[spec.Family] = true
	}
	for _, f := range scenario.Families() {
		if !seenFamily[f] {
			t.Errorf("family %s missing from corpus", f)
		}
	}
}

// TestGenerateDeterministicAcrossGoroutines requires byte-identical output
// for the same spec regardless of run or concurrency: the corpus seeds the
// fuzz harness and the golden benchmarks, so any ordering or shared-state
// nondeterminism here would poison both.
func TestGenerateDeterministicAcrossGoroutines(t *testing.T) {
	for _, spec := range scenario.Corpus(7, 3, 64) {
		spec := spec
		t.Run(string(spec.Family), func(t *testing.T) {
			t.Parallel()
			ref, err := spec.Generate()
			if err != nil {
				t.Fatal(err)
			}
			refJSON, err := ref.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			const workers = 8
			got := make([][]byte, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					p, err := spec.Generate()
					if err != nil {
						return
					}
					got[w], _ = p.MarshalIndent()
				}(w)
			}
			wg.Wait()
			for w, g := range got {
				if !bytes.Equal(g, refJSON) {
					t.Errorf("goroutine %d produced different platform bytes", w)
				}
			}
		})
	}
}

// TestSpecErrors covers the rejection paths.
func TestSpecErrors(t *testing.T) {
	if _, err := (scenario.Spec{Family: scenario.Star, N: 1, Seed: 1}).Generate(); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := (scenario.Spec{Family: "warped", N: 4, Seed: 1}).Generate(); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := (scenario.Spec{Family: scenario.Star, N: 4, Seed: 1, Bandwidth: -1}).Generate(); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

// TestFamilyShapes spot-checks each family produces its advertised shape.
func TestFamilyShapes(t *testing.T) {
	star, err := (scenario.Spec{Family: scenario.Star, N: 50, Seed: 3}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	hub := star.Nodes[0].Power
	for _, n := range star.Nodes[1:] {
		if n.Power >= hub/2 {
			t.Fatalf("star leaf %g not well below hub %g", n.Power, hub)
		}
	}

	bim, err := (scenario.Spec{Family: scenario.Bimodal, N: 40, Seed: 3}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0, 0
	for _, n := range bim.Nodes {
		if n.Power > 600 {
			hi++
		} else {
			lo++
		}
	}
	if lo == 0 || hi == 0 {
		t.Errorf("bimodal degenerate: lo=%d hi=%d", lo, hi)
	}

	pl, err := (scenario.Spec{Family: scenario.PowerLaw, N: 200, Seed: 3}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	sum, max := 0.0, 0.0
	for _, n := range pl.Nodes {
		sum += n.Power
		if n.Power > max {
			max = n.Power
		}
	}
	if mean := sum / 200; max < 4*mean {
		t.Errorf("power-law tail too thin: max=%g mean=%g", max, mean)
	}

	tr, err := (scenario.Spec{Family: scenario.TracePerturbed, N: 100, Seed: 3}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	near := func(w, c float64) bool { return w > 0.9*c && w < 1.1*c }
	counts := map[string]int{}
	for _, n := range tr.Nodes {
		switch {
		case near(n.Power, 400):
			counts["full"]++
		case near(n.Power, 300), near(n.Power, 200), near(n.Power, 100):
			counts["loaded"]++
		}
	}
	if counts["full"] == 0 || counts["loaded"] == 0 {
		t.Errorf("trace-perturbed missing load classes: %v", counts)
	}
}

// TestHeterogeneousLinkFamilies covers the two link-heterogeneous
// families: determinism, link assignment shape, and their presence in the
// shared corpus.
func TestHeterogeneousLinkFamilies(t *testing.T) {
	cg, err := (scenario.Spec{Family: scenario.ClusterGrid, N: 40, Seed: 5}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if cg.HasUniformLinks() {
		t.Error("cluster-grid generated uniform links")
	}
	interBW := cg.Bandwidth / 10
	for i, n := range cg.Nodes {
		want := 0.0 // cluster 0: inherit the platform default
		if i%4 != 0 {
			want = interBW
		}
		if n.LinkBandwidth != want {
			t.Errorf("cluster-grid node %d: link %g, want %g", i, n.LinkBandwidth, want)
		}
	}

	ft, err := (scenario.Spec{Family: scenario.FatTree, N: 40, Seed: 5}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if ft.HasUniformLinks() {
		t.Error("fat-tree generated uniform links")
	}
	// Links taper monotonically with node index (core first, leaves last)
	// and halve tier by tier.
	seen := map[float64]bool{}
	prev := ft.Bandwidth + 1
	for i, n := range ft.Nodes {
		bw := n.Link(ft.Bandwidth)
		if bw > prev {
			t.Errorf("fat-tree node %d: link %g rises above previous %g", i, bw, prev)
		}
		prev = bw
		seen[bw] = true
	}
	if len(seen) != 3 {
		t.Errorf("fat-tree with 3 tiers produced %d link classes: %v", len(seen), seen)
	}

	// Determinism: byte-identical JSON across calls.
	for _, fam := range []scenario.Family{scenario.ClusterGrid, scenario.FatTree} {
		a, err := (scenario.Spec{Family: fam, N: 24, Seed: 11}).Generate()
		if err != nil {
			t.Fatal(err)
		}
		b, err := (scenario.Spec{Family: fam, N: 24, Seed: 11}).Generate()
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := a.MarshalIndent()
		bj, _ := b.MarshalIndent()
		if string(aj) != string(bj) {
			t.Errorf("%s: generation not deterministic", fam)
		}
	}

	// The corpus now spans the heterogeneous families too.
	found := map[scenario.Family]bool{}
	for _, spec := range scenario.Corpus(1) {
		found[spec.Family] = true
	}
	if !found[scenario.ClusterGrid] || !found[scenario.FatTree] {
		t.Errorf("corpus missing heterogeneous families: %v", found)
	}
}
