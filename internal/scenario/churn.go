package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"adept/internal/sim"
)

// This file generates churn schedules: deterministic sequences of
// sim.LoadPhase events that replay the membership and demand dynamics a
// deployed middleware meets in production — node crash storms,
// join/leave flapping, correlated cluster failures, flash crowds, and
// diurnal demand traces. Platform families above answer "what does the
// pool look like"; churn families answer "what happens to it while it
// runs". The soak harness (cmd/adeptsoak) composes one or more churn
// schedules against a managed simulation and measures how the MAPE-K
// loop and the SLO engine ride them out.

// ChurnFamily names a churn-schedule family.
type ChurnFamily string

// The supported churn families.
const (
	// CrashStorm crashes a random server subset in one or more waves;
	// without restores the dead stay dead (the autonomic loop must evict
	// them).
	CrashStorm ChurnFamily = "crash-storm"
	// JoinLeave flaps single servers: each leaves (crashes) and rejoins
	// (restores) after a short hold — membership churn without permanent
	// loss.
	JoinLeave ChurnFamily = "join-leave"
	// ClusterFailure kills a correlated contiguous block of servers at
	// once — a rack or site outage — and restores it later.
	ClusterFailure ChurnFamily = "cluster-failure"
	// FlashCrowd ramps a client surge up and back down around the middle
	// of the schedule.
	FlashCrowd ChurnFamily = "flash-crowd"
	// Diurnal replays a smooth demand wave (stepped sinusoid) via client
	// arrivals and departures.
	Diurnal ChurnFamily = "diurnal"
)

// ChurnFamilies lists all churn families in stable order.
func ChurnFamilies() []ChurnFamily {
	return []ChurnFamily{CrashStorm, JoinLeave, ClusterFailure, FlashCrowd, Diurnal}
}

// ChurnSpec declaratively describes one churn schedule. Zero-valued
// knobs take family defaults, so {Family, Servers/BaseClients, Start,
// Duration, Seed} is a complete spec.
type ChurnSpec struct {
	Family ChurnFamily `json:"family"`
	// Servers are the crashable server names of the running deployment
	// (fault families pick victims here; demand families ignore it).
	Servers []string `json:"servers,omitempty"`
	// Start and Duration bound the schedule in virtual seconds: all
	// events land in [Start, Start+Duration).
	Start    float64 `json:"start_s"`
	Duration float64 `json:"duration_s"`
	// Seed drives all randomness of this spec.
	Seed int64 `json:"seed"`
	// Intensity scales how hard the family hits: the fraction of servers
	// a fault wave takes (default 0.3, clamped to at least one server)
	// or the demand surge as a multiple of BaseClients (default 1).
	Intensity float64 `json:"intensity,omitempty"`
	// Waves is the number of fault waves / flap events / demand cycles
	// (family defaults: 1 storm, 4 flaps, 1 outage, 1 crowd, 2 cycles).
	Waves int `json:"waves,omitempty"`
	// BaseClients is the steady closed-loop client population the demand
	// deltas scale from (default 4).
	BaseClients int `json:"base_clients,omitempty"`
	// RecoverAfter restores crashed servers that many seconds after each
	// fault event. Zero keeps the family default: CrashStorm leaves them
	// down, JoinLeave holds one tenth of the flap interval,
	// ClusterFailure restores after a third of the schedule.
	RecoverAfter float64 `json:"recover_after_s,omitempty"`
}

func (s ChurnSpec) withDefaults() ChurnSpec {
	if s.Intensity <= 0 {
		switch s.Family {
		case FlashCrowd, Diurnal:
			s.Intensity = 1
		default:
			s.Intensity = 0.3
		}
	}
	if s.Waves <= 0 {
		switch s.Family {
		case JoinLeave:
			s.Waves = 4
		case Diurnal:
			s.Waves = 2
		default:
			s.Waves = 1
		}
	}
	if s.BaseClients <= 0 {
		s.BaseClients = 4
	}
	return s
}

func (s ChurnSpec) validate() error {
	switch s.Family {
	case CrashStorm, JoinLeave, ClusterFailure:
		if len(s.Servers) == 0 {
			return fmt.Errorf("scenario: churn family %q needs server names", s.Family)
		}
	case FlashCrowd, Diurnal:
	default:
		return fmt.Errorf("scenario: unknown churn family %q", s.Family)
	}
	if s.Start < 0 {
		return fmt.Errorf("scenario: churn start %g must be non-negative", s.Start)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: churn duration %g must be positive", s.Duration)
	}
	if s.RecoverAfter < 0 {
		return fmt.Errorf("scenario: negative recover-after %g", s.RecoverAfter)
	}
	return nil
}

// victims picks n distinct servers, deterministically from the spec's
// seeded source.
func victims(rng *rand.Rand, servers []string, n int) []string {
	idx := rng.Perm(len(servers))[:n]
	sort.Ints(idx)
	out := make([]string, n)
	for i, j := range idx {
		out[i] = servers[j]
	}
	return out
}

// waveSize is how many servers one fault wave takes: the intensity
// fraction, at least 1, and never the whole pool (a dead platform has
// nothing left to measure).
func (s ChurnSpec) waveSize() int {
	n := int(math.Ceil(s.Intensity * float64(len(s.Servers))))
	if n < 1 {
		n = 1
	}
	if n >= len(s.Servers) {
		n = len(s.Servers) - 1
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Phases expands the spec into a deterministic sim.LoadPhase schedule,
// sorted by time. The same spec always yields the same schedule.
func (s ChurnSpec) Phases() ([]sim.LoadPhase, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var phases []sim.LoadPhase
	switch s.Family {
	case CrashStorm:
		// Waves evenly spaced; each takes a fresh random subset of the
		// still-alive pool. Restores only if RecoverAfter asks for them.
		alive := append([]string(nil), s.Servers...)
		interval := s.Duration / float64(s.Waves)
		for w := 0; w < s.Waves; w++ {
			if len(alive) <= 1 {
				break
			}
			n := s.waveSize()
			if n >= len(alive) {
				n = len(alive) - 1
			}
			hit := victims(rng, alive, n)
			at := s.Start + float64(w)*interval
			phases = append(phases, sim.LoadPhase{At: at, Crash: hit})
			if s.RecoverAfter > 0 {
				phases = append(phases, sim.LoadPhase{At: at + s.RecoverAfter, Restore: hit})
			} else {
				alive = subtract(alive, hit)
			}
		}
	case JoinLeave:
		// Waves flap events spread over the schedule, each taking one
		// random server down briefly — leave then rejoin.
		interval := s.Duration / float64(s.Waves)
		hold := s.RecoverAfter
		if hold <= 0 {
			hold = interval / 10
		}
		for w := 0; w < s.Waves; w++ {
			name := s.Servers[rng.Intn(len(s.Servers))]
			at := s.Start + (float64(w)+rng.Float64()*0.5)*interval
			phases = append(phases,
				sim.LoadPhase{At: at, Crash: []string{name}},
				sim.LoadPhase{At: at + hold, Restore: []string{name}},
			)
		}
	case ClusterFailure:
		// One contiguous block — platform generators emit clusters as
		// consecutive nodes, so a random contiguous run models "rack 2
		// lost power" rather than scattered bad luck.
		n := s.waveSize()
		startIdx := rng.Intn(len(s.Servers) - n + 1)
		block := append([]string(nil), s.Servers[startIdx:startIdx+n]...)
		down := s.Start + s.Duration/3
		up := down + s.RecoverAfter
		if s.RecoverAfter <= 0 {
			up = down + s.Duration/3
		}
		phases = append(phases,
			sim.LoadPhase{At: down, Crash: block},
			sim.LoadPhase{At: up, Restore: block},
		)
	case FlashCrowd:
		// Surge up in two steps around the middle, decay in two steps.
		surge := int(math.Ceil(s.Intensity * float64(s.BaseClients)))
		if surge < 1 {
			surge = 1
		}
		half := (surge + 1) / 2
		t0 := s.Start + s.Duration*0.3
		t1 := s.Start + s.Duration*0.7
		step := s.Duration * 0.05
		phases = append(phases,
			sim.LoadPhase{At: t0, AddClients: half},
			sim.LoadPhase{At: t0 + step, AddClients: surge - half},
			sim.LoadPhase{At: t1, RemoveClients: half},
			sim.LoadPhase{At: t1 + step, RemoveClients: surge - half},
		)
	case Diurnal:
		// A stepped sinusoid: 8 steps per cycle, amplitude scaled by
		// intensity, emitted as client deltas. The population returns to
		// the base level at the end of every cycle (deltas sum to zero).
		amp := s.Intensity * float64(s.BaseClients)
		const steps = 8
		interval := s.Duration / float64(s.Waves*steps)
		level := 0 // current extra clients
		for i := 1; i <= s.Waves*steps; i++ {
			want := int(math.Round(amp * math.Sin(2*math.Pi*float64(i%steps)/steps)))
			if want < -(s.BaseClients - 1) {
				want = -(s.BaseClients - 1) // never drain the population
			}
			d := want - level
			level = want
			if d == 0 {
				continue
			}
			ph := sim.LoadPhase{At: s.Start + float64(i)*interval}
			if d > 0 {
				ph.AddClients = d
			} else {
				ph.RemoveClients = -d
			}
			phases = append(phases, ph)
		}
	}
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].At < phases[j].At })
	return phases, nil
}

func subtract(from, remove []string) []string {
	dead := make(map[string]bool, len(remove))
	for _, r := range remove {
		dead[r] = true
	}
	out := from[:0]
	for _, f := range from {
		if !dead[f] {
			out = append(out, f)
		}
	}
	return out
}
