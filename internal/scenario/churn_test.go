package scenario

import (
	"reflect"
	"testing"

	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/sim"
)

func churnServers() []string {
	return []string{"s1", "s2", "s3", "s4", "s5", "s6"}
}

func TestChurnDeterministic(t *testing.T) {
	for _, fam := range ChurnFamilies() {
		spec := ChurnSpec{Family: fam, Servers: churnServers(), Start: 10, Duration: 120, Seed: 42, BaseClients: 8}
		a, err := spec.Phases()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		b, err := spec.Phases()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: schedule not deterministic", fam)
		}
		if len(a) == 0 {
			t.Errorf("%s: empty schedule", fam)
		}
		last := -1.0
		for _, ph := range a {
			if ph.At < last {
				t.Errorf("%s: phases not sorted: %g after %g", fam, ph.At, last)
			}
			last = ph.At
			if ph.At < spec.Start {
				t.Errorf("%s: phase at %g before start %g", fam, ph.At, spec.Start)
			}
		}
		// A different seed reshuffles fault victims (check on the storm).
		if fam == CrashStorm {
			spec2 := spec
			spec2.Seed = 43
			c, _ := spec2.Phases()
			if reflect.DeepEqual(a, c) {
				t.Logf("%s: seed 42 and 43 coincide (possible, small pool)", fam)
			}
		}
	}
}

func TestChurnCrashStormNeverKillsEveryone(t *testing.T) {
	spec := ChurnSpec{Family: CrashStorm, Servers: churnServers(), Duration: 100, Seed: 7, Intensity: 0.9, Waves: 5}
	phases, err := spec.Phases()
	if err != nil {
		t.Fatal(err)
	}
	dead := map[string]bool{}
	for _, ph := range phases {
		for _, c := range ph.Crash {
			if dead[c] {
				t.Errorf("server %s crashed twice without restore", c)
			}
			dead[c] = true
		}
	}
	if len(dead) >= len(churnServers()) {
		t.Errorf("storm killed all %d servers", len(dead))
	}
	if len(dead) == 0 {
		t.Error("storm killed nobody")
	}
}

func TestChurnJoinLeaveBalanced(t *testing.T) {
	spec := ChurnSpec{Family: JoinLeave, Servers: churnServers(), Duration: 200, Seed: 3, Waves: 6}
	phases, err := spec.Phases()
	if err != nil {
		t.Fatal(err)
	}
	crashes, restores := 0, 0
	for _, ph := range phases {
		crashes += len(ph.Crash)
		restores += len(ph.Restore)
	}
	if crashes != 6 || restores != 6 {
		t.Errorf("join-leave: %d crashes, %d restores, want 6/6", crashes, restores)
	}
}

func TestChurnClusterFailureContiguous(t *testing.T) {
	servers := churnServers()
	spec := ChurnSpec{Family: ClusterFailure, Servers: servers, Duration: 90, Seed: 1, Intensity: 0.5}
	phases, err := spec.Phases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 || len(phases[0].Crash) == 0 || len(phases[1].Restore) == 0 {
		t.Fatalf("cluster failure phases = %+v", phases)
	}
	block := phases[0].Crash
	// Contiguous run of the server list.
	start := -1
	for i, s := range servers {
		if s == block[0] {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("block head %q not in server list", block[0])
	}
	for i, name := range block {
		if servers[start+i] != name {
			t.Errorf("block not contiguous: %v", block)
		}
	}
	if !reflect.DeepEqual(phases[0].Crash, phases[1].Restore) {
		t.Errorf("restore does not match crash: %+v", phases)
	}
	if phases[1].At <= phases[0].At {
		t.Errorf("restore not after crash: %+v", phases)
	}
}

func TestChurnDemandBalanced(t *testing.T) {
	for _, fam := range []ChurnFamily{FlashCrowd, Diurnal} {
		spec := ChurnSpec{Family: fam, Start: 5, Duration: 160, Seed: 9, BaseClients: 10}
		phases, err := spec.Phases()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		net, level := 0, 0
		for _, ph := range phases {
			net += ph.AddClients - ph.RemoveClients
			level += ph.AddClients - ph.RemoveClients
			if level < -(spec.BaseClients - 1) {
				t.Errorf("%s: population would drain below 1 (level %d)", fam, level)
			}
		}
		if net != 0 {
			t.Errorf("%s: demand deltas sum to %d, want 0 (returns to base)", fam, net)
		}
	}
}

// TestChurnSchedulesDrive ensures every family's schedule is accepted by
// the simulator against a real deployment.
func TestChurnSchedulesDrive(t *testing.T) {
	for _, fam := range ChurnFamilies() {
		spec := ChurnSpec{Family: fam, Servers: []string{"sv0", "sv1", "sv2"}, Start: 2, Duration: 30, Seed: 11, BaseClients: 4}
		phases, err := spec.Phases()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		m := managedFixture(t)
		if _, err := driveManaged(m, phases, 40); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
	}
}

// managedFixture builds a tiny running deployment with servers sv0-sv2.
func managedFixture(t *testing.T) *sim.Managed {
	t.Helper()
	h := churnHierarchy(t)
	m, err := sim.NewManaged(h, churnCosts(), 100, 10, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// driveManaged applies a schedule by hand (NewManaged also accepts
// schedules; doing it live exercises the Crash/Restore/StopClients API)
// then advances the simulation.
func driveManaged(m *sim.Managed, phases []sim.LoadPhase, until float64) (sim.WindowStats, error) {
	for _, ph := range phases {
		for _, c := range ph.Crash {
			if err := m.Crash(c); err != nil {
				return sim.WindowStats{}, err
			}
		}
		for _, r := range ph.Restore {
			if err := m.Restore(r); err != nil {
				return sim.WindowStats{}, err
			}
		}
		m.AddClients(ph.AddClients)
		m.StopClients(ph.RemoveClients)
	}
	return m.Observe(until)
}

func churnHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("churn")
	root, err := h.AddRoot("root", 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sv0", "sv1", "sv2"} {
		if _, err := h.AddServer(root, name, 100); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func churnCosts() model.Costs { return model.DIETDefaults() }
