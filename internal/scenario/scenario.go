// Package scenario generates families of synthetic target platforms for
// stress-testing, fuzzing, and benchmarking the deployment planners far
// beyond the two Grid'5000 sites of the paper's evaluation.
//
// A Spec is a declarative description (family, size, bandwidth, seed, and a
// few family knobs); Generate expands it into a concrete
// platform.Platform. Generation is strictly deterministic: the same Spec
// always yields a byte-identical platform, regardless of how many
// goroutines generate concurrently — every Spec draws from its own seeded
// source and node construction is a plain ordered loop (no map iteration).
//
// The families model the heterogeneity shapes deployment planners meet in
// practice:
//
//   - Star: one powerful head node and a sea of uniform weak leaves — the
//     shape that rewards a flat star deployment.
//   - Bimodal: two node classes (e.g. an old and a new cluster
//     generation), the canonical "two-site" heterogeneity.
//   - PowerLaw: Pareto-distributed powers, a few very strong nodes and a
//     long weak tail — desktop-grid style.
//   - Clustered: k homogeneous-ish clusters with distinct means and small
//     intra-cluster jitter — federated clusters, the closest family to
//     the paper's Lyon+Orsay testbed.
//   - TracePerturbed: the paper's §5.3 heterogenisation replayed
//     synthetically — a homogeneous cluster with background load stealing
//     fixed power fractions from a seeded node subset, plus measurement
//     jitter.
//   - ClusterGrid: the Clustered power shape plus heterogeneous *links* —
//     cluster 0 keeps the fast platform bandwidth while every other
//     cluster sits behind a slow inter-cluster uplink. The multi-site
//     grid (Lyon + Orsay over the WAN) the heterogeneous-links planner
//     exists for.
//   - FatTree: a fat-tree-ish bandwidth taper — a few powerful core nodes
//     on fat links, geometrically more nodes per tier on links that halve
//     tier by tier.
//
// Corpus returns a representative cross product of families and sizes used
// by the property tests (internal/core), the portfolio tests
// (internal/portfolio), and the planner benchmarks.
package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"adept/internal/platform"
)

// Family names a platform-generation family.
type Family string

// The supported families.
const (
	Star           Family = "star"
	Bimodal        Family = "bimodal"
	PowerLaw       Family = "power-law"
	Clustered      Family = "clustered"
	TracePerturbed Family = "trace-perturbed"
	ClusterGrid    Family = "cluster-grid"
	FatTree        Family = "fat-tree"
)

// Families lists all families in stable order. The heterogeneous-link
// families come last so pre-existing (family, size) seed derivations stay
// stable.
func Families() []Family {
	return []Family{Star, Bimodal, PowerLaw, Clustered, TracePerturbed, ClusterGrid, FatTree}
}

// Spec declaratively describes one synthetic platform. Zero-valued knobs
// take family defaults (withDefaults), so {Family, N, Bandwidth, Seed} is a
// complete spec.
type Spec struct {
	Family Family `json:"family"`
	// Name labels the platform; defaults to "<family>-n<N>-s<Seed>".
	Name string `json:"name,omitempty"`
	// N is the pool size (minimum 2: one agent, one server).
	N int `json:"n"`
	// Bandwidth is the homogeneous link bandwidth in Mb/s (default 100).
	Bandwidth float64 `json:"bandwidth_mbps,omitempty"`
	// Seed drives all randomness of this spec.
	Seed int64 `json:"seed"`

	// HubFactor (Star) is the head node's power multiple of the leaf mean
	// (default 8).
	HubFactor float64 `json:"hub_factor,omitempty"`
	// LeafPower (Star) is the mean leaf power in MFlop/s (default 200).
	LeafPower float64 `json:"leaf_power,omitempty"`

	// HighFraction (Bimodal) is the fraction of high-power nodes
	// (default 0.25).
	HighFraction float64 `json:"high_fraction,omitempty"`
	// LowPower and HighPower (Bimodal) are the two class means
	// (defaults 150 and 1200).
	LowPower  float64 `json:"low_power,omitempty"`
	HighPower float64 `json:"high_power,omitempty"`

	// Alpha (PowerLaw) is the Pareto shape (default 1.6; smaller = heavier
	// tail).
	Alpha float64 `json:"alpha,omitempty"`
	// MinPower and MaxPower (PowerLaw, Clustered) bound the node powers
	// (defaults 50 and 4000).
	MinPower float64 `json:"min_power,omitempty"`
	MaxPower float64 `json:"max_power,omitempty"`

	// Clusters (Clustered) is the cluster count (default 4).
	Clusters int `json:"clusters,omitempty"`
	// Spread (Clustered, TracePerturbed) is the relative intra-cluster /
	// measurement jitter (default 0.05).
	Spread float64 `json:"spread,omitempty"`

	// BasePower (TracePerturbed) is the unloaded node power (default 400,
	// the repo's Grid'5000-class reference calibration).
	BasePower float64 `json:"base_power,omitempty"`
	// LoadFraction (TracePerturbed) is the fraction of nodes running
	// background load (default 0.6, the §5.3 setup).
	LoadFraction float64 `json:"load_fraction,omitempty"`

	// InterBandwidth (ClusterGrid) is the uplink bandwidth of every
	// cluster but the local one, in Mb/s (default Bandwidth/10).
	InterBandwidth float64 `json:"inter_bandwidth_mbps,omitempty"`
	// PowerLevels, when at least 1, snaps the drawn node powers to that
	// many evenly spaced levels over the drawn [min, max] range — a
	// machine-catalogue quantisation: real fleets buy from L SKUs, they do
	// not draw from a continuum. Quantised pools compress into few (power,
	// link) equivalence classes, the regime the class-collapsed planner
	// exploits; 0 (the default) keeps the continuous draw untouched. The
	// snap is a post-pass over the power vector, so it never perturbs the
	// spec's random stream: PowerLevels=0 stays byte-identical to specs
	// that predate the knob.
	PowerLevels int `json:"power_levels,omitempty"`
	// Tiers (FatTree) is the number of bandwidth tiers (default 3): tier t
	// runs its links at Bandwidth/2^t and holds twice the nodes of tier
	// t-1.
	Tiers int `json:"tiers,omitempty"`
}

// withDefaults fills zero-valued knobs.
func (s Spec) withDefaults() Spec {
	if s.Bandwidth == 0 {
		s.Bandwidth = 100
	}
	if s.Name == "" {
		s.Name = fmt.Sprintf("%s-n%d-s%d", s.Family, s.N, s.Seed)
	}
	if s.HubFactor == 0 {
		s.HubFactor = 8
	}
	if s.LeafPower == 0 {
		s.LeafPower = 200
	}
	if s.HighFraction == 0 {
		s.HighFraction = 0.25
	}
	if s.LowPower == 0 {
		s.LowPower = 150
	}
	if s.HighPower == 0 {
		s.HighPower = 1200
	}
	if s.Alpha == 0 {
		s.Alpha = 1.6
	}
	if s.MinPower == 0 {
		s.MinPower = 50
	}
	if s.MaxPower == 0 {
		s.MaxPower = 4000
	}
	if s.Clusters == 0 {
		s.Clusters = 4
	}
	if s.Spread == 0 {
		s.Spread = 0.05
	}
	if s.BasePower == 0 {
		s.BasePower = 400
	}
	if s.LoadFraction == 0 {
		s.LoadFraction = 0.6
	}
	if s.InterBandwidth == 0 {
		s.InterBandwidth = s.Bandwidth / 10
	}
	if s.Tiers == 0 {
		s.Tiers = 3
	}
	return s
}

// Generate expands the spec into a platform. The result is deterministic
// in the spec (byte-identical JSON across calls and goroutines).
func (s Spec) Generate() (*platform.Platform, error) {
	s = s.withDefaults()
	if s.N < 2 {
		return nil, fmt.Errorf("scenario: N must be at least 2, got %d", s.N)
	}
	if s.Bandwidth <= 0 {
		return nil, fmt.Errorf("scenario: bandwidth must be positive, got %g", s.Bandwidth)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	p := &platform.Platform{Name: s.Name, Bandwidth: s.Bandwidth}
	powers, err := s.powers(rng)
	if err != nil {
		return nil, err
	}
	links := s.links()
	for i, w := range powers {
		n := platform.Node{
			Name:  fmt.Sprintf("%s-%04d", s.Name, i),
			Power: w,
		}
		if links != nil {
			n.LinkBandwidth = links[i]
		}
		p.Nodes = append(p.Nodes, n)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: generated invalid platform: %w", err)
	}
	return p, nil
}

// links returns the per-node link-bandwidth overrides (0 = platform
// default), or nil for the homogeneous-link families. Link assignment is
// purely positional — no randomness — so it never perturbs the power
// stream of the shared rng.
func (s Spec) links() []float64 {
	switch s.Family {
	case ClusterGrid:
		// Cluster 0 is the local site (default bandwidth); every other
		// cluster is reached over the inter-cluster uplink.
		out := make([]float64, s.N)
		for i := range out {
			if i%s.Clusters != 0 {
				out[i] = s.InterBandwidth
			}
		}
		return out
	case FatTree:
		out := make([]float64, s.N)
		for i := range out {
			t := s.tierOf(i)
			if t > 0 {
				out[i] = s.Bandwidth / float64(int(1)<<t)
			}
		}
		return out
	default:
		return nil
	}
}

// tierOf maps a FatTree node index to its bandwidth tier: tier t holds
// 2^t shares of the pool (1, 2, 4, … — leaves outnumber core nodes), so
// with T tiers node i sits at the tier covering position i·(2^T−1)/N.
func (s Spec) tierOf(i int) int {
	total := (1 << s.Tiers) - 1
	pos := i * total / s.N
	cum := 0
	for t := 0; t < s.Tiers; t++ {
		cum += 1 << t
		if pos < cum {
			return t
		}
	}
	return s.Tiers - 1
}

// jitter multiplies base by a clamped relative gaussian perturbation.
func jitter(rng *rand.Rand, base, spread float64) float64 {
	f := 1 + spread*rng.NormFloat64()
	if f < 0.1 {
		f = 0.1
	}
	return base * f
}

// powers draws the node power vector, in node order.
func (s Spec) powers(rng *rand.Rand) ([]float64, error) {
	out := make([]float64, s.N)
	switch s.Family {
	case Star:
		out[0] = s.HubFactor * s.LeafPower
		for i := 1; i < s.N; i++ {
			out[i] = jitter(rng, s.LeafPower, s.Spread)
		}
	case Bimodal:
		high := int(math.Round(s.HighFraction * float64(s.N)))
		if high < 1 {
			high = 1
		}
		for i := 0; i < s.N; i++ {
			base := s.LowPower
			if i < high {
				base = s.HighPower
			}
			out[i] = jitter(rng, base, s.Spread)
		}
	case PowerLaw:
		for i := 0; i < s.N; i++ {
			// Pareto(MinPower, Alpha), clamped at MaxPower.
			u := rng.Float64()
			w := s.MinPower * math.Pow(1-u, -1/s.Alpha)
			if w > s.MaxPower {
				w = s.MaxPower
			}
			out[i] = w
		}
	case Clustered, ClusterGrid:
		// Cluster means spread geometrically across [MinPower, MaxPower];
		// nodes assigned round-robin so every cluster is populated.
		// ClusterGrid shares the power shape and adds heterogeneous links
		// (see Spec.links).
		means := make([]float64, s.Clusters)
		ratio := s.MaxPower / s.MinPower
		for k := 0; k < s.Clusters; k++ {
			frac := 0.5
			if s.Clusters > 1 {
				frac = float64(k) / float64(s.Clusters-1)
			}
			means[k] = s.MinPower * math.Pow(ratio, frac)
		}
		for i := 0; i < s.N; i++ {
			out[i] = jitter(rng, means[i%s.Clusters], s.Spread)
		}
	case FatTree:
		// Core nodes (low tiers) are the strong ones; power halves with
		// the link bandwidth tier, floored at MinPower.
		for i := 0; i < s.N; i++ {
			base := s.MaxPower / float64(int(1)<<s.tierOf(i))
			if base < s.MinPower {
				base = s.MinPower
			}
			out[i] = jitter(rng, base, s.Spread)
		}
	case TracePerturbed:
		// §5.3 replayed: a homogeneous cluster, background load pinning a
		// seeded subset to 1/4, 1/2 or 3/4 of its power, plus measurement
		// jitter on every node.
		factors := []float64{0.25, 0.5, 0.75}
		perm := rng.Perm(s.N)
		loaded := int(s.LoadFraction * float64(s.N))
		for i := 0; i < s.N; i++ {
			out[i] = s.BasePower
		}
		for k := 0; k < loaded; k++ {
			out[perm[k]] *= factors[k%len(factors)]
		}
		for i := 0; i < s.N; i++ {
			out[i] = jitter(rng, out[i], s.Spread/5)
		}
	default:
		return nil, fmt.Errorf("scenario: unknown family %q (have %v)", s.Family, Families())
	}
	s.quantize(out)
	return out, nil
}

// quantize snaps the power vector to PowerLevels evenly spaced levels over
// its own [min, max] range (no-op when the knob is unset or the vector is
// constant). Runs after all random draws so the rng stream is untouched.
func (s Spec) quantize(out []float64) {
	if s.PowerLevels < 1 || len(out) == 0 {
		return
	}
	lo, hi := out[0], out[0]
	for _, w := range out {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if lo == hi {
		return
	}
	if s.PowerLevels == 1 {
		for i := range out {
			out[i] = lo
		}
		return
	}
	step := (hi - lo) / float64(s.PowerLevels-1)
	for i := range out {
		out[i] = lo + math.Round((out[i]-lo)/step)*step
	}
}

// Corpus returns one spec per (family, size) pair, seeds derived from the
// base seed. It is the shared test/benchmark corpus: small enough to
// enumerate in tests, diverse enough to cover every planner regime.
func Corpus(seed int64, sizes ...int) []Spec {
	if len(sizes) == 0 {
		sizes = []int{4, 12, 40, 120}
	}
	var specs []Spec
	for fi, fam := range Families() {
		for si, n := range sizes {
			specs = append(specs, Spec{
				Family: fam,
				N:      n,
				Seed:   seed + int64(fi*1000+si),
			})
		}
	}
	return specs
}
