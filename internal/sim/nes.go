package sim

import (
	"fmt"
	"math"
	"sort"

	"adept/internal/hierarchy"
	"adept/internal/model"
)

// Deployment is a hierarchy instantiated inside the simulator: one Resource
// per physical node, the two-phase NES protocol wired between them, and
// closed-loop clients driving load.
type Deployment struct {
	eng   *Engine
	costs model.Costs
	bw    float64
	wapp  float64

	root    *simAgent
	agents  []*simAgent
	servers []*simServer

	// Completed counts fully completed requests (service response received).
	Completed int64
	// SchedCompleted counts scheduling phases completed at the root.
	SchedCompleted int64
	// Failed counts service requests that timed out against a crashed
	// server (the client retries after clientTimeout).
	Failed int64
	// PerServer counts service completions per server, in deployment order.
	PerServer map[string]int64

	// clientTimeout is how long a client waits for a service response
	// from a dead node before giving up and retrying (seconds).
	clientTimeout float64
	// stopRequests asks that many closed-loop clients to exit at their
	// next submission boundary; activeClients tracks how many still loop.
	stopRequests  int
	activeClients int

	// mixture optionally replaces the single-application workload: clients
	// draw each request's service cost from these shares.
	mixture []AppShare
	credits []float64 // largest-remainder rotation state, one per share

	// latencies samples completed-request latencies (seconds), capped at
	// maxLatencySamples.
	latencies []float64
}

// AppShare is one application of a simulated workload mixture.
type AppShare struct {
	// Wapp is the service cost in MFlop.
	Wapp float64
	// Fraction is the share of requests using this application.
	Fraction float64
}

// maxLatencySamples bounds latency memory on long runs.
const maxLatencySamples = 1 << 17

// SetMixture makes clients draw request costs from the given shares using
// a deterministic largest-remainder rotation (exact fractions, no RNG).
// Estimates and the model's Wapp keep using the effective mean cost.
func (d *Deployment) SetMixture(shares []AppShare) error {
	sum := 0.0
	for _, s := range shares {
		if s.Wapp <= 0 || s.Fraction <= 0 {
			return fmt.Errorf("sim: invalid mixture share %+v", s)
		}
		sum += s.Fraction
	}
	if len(shares) == 0 || math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("sim: mixture fractions sum to %g, want 1", sum)
	}
	d.mixture = append([]AppShare(nil), shares...)
	d.credits = make([]float64, len(shares))
	return nil
}

// nextWapp draws the next request's service cost.
func (d *Deployment) nextWapp() float64 {
	if len(d.mixture) == 0 {
		return d.wapp
	}
	best := 0
	for i := range d.credits {
		d.credits[i] += d.mixture[i].Fraction
		if d.credits[i] > d.credits[best] {
			best = i
		}
	}
	d.credits[best]--
	return d.mixture[best].Wapp
}

// recordLatency samples one completed request's latency.
func (d *Deployment) recordLatency(start float64) {
	if len(d.latencies) < maxLatencySamples {
		d.latencies = append(d.latencies, d.eng.Now()-start)
	}
}

// Latencies returns the sampled request latencies in seconds.
func (d *Deployment) Latencies() []float64 {
	return append([]float64(nil), d.latencies...)
}

// simAgent is a deployed scheduling agent.
type simAgent struct {
	dep      *Deployment
	name     string
	power    float64
	bw       float64 // the node's own link bandwidth
	res      *Resource
	children []entity
}

// simServer is a deployed computational server (SeD).
type simServer struct {
	dep   *Deployment
	name  string
	power float64 // physical speed the node actually delivers
	bw    float64 // the node's own link bandwidth
	res   *Resource

	// rated is the power the server's predictions believe in. It starts at
	// the physical power; SetPower patches refresh it when drift is
	// learned. The gap between rated and effective speed is the drift the
	// autonomic loop detects.
	rated float64

	// bg is the background-load slowdown factor (1 = unloaded): effective
	// compute speed is power/bg, the §5.3 heterogenisation applied live.
	bg float64

	pending int // service requests selected-but-not-finished (for prediction)

	// crashed marks a dead node: it still appears in scheduling replies —
	// the agents' monitoring database is refreshed asynchronously and
	// keeps advertising the node until the autonomic loop evicts it — but
	// service requests sent to it time out and fail instead of completing.
	crashed bool

	// svcSeconds/svcCount accumulate observed execution times, the
	// monitoring signal of the autonomic loop.
	svcSeconds float64
	svcCount   int64
}

// entity is the common scheduling-phase interface of agents and servers.
type entity interface {
	// deliverSched delivers a scheduling request arriving on this node's
	// port; replyTo fires after this node's reply has been fully sent.
	deliverSched(replyTo func(schedResult))
}

// schedResult is the reply flowing back up: the candidate servers of the
// subtree, sorted best-first ("response sorted & forwarded up", Fig. 1
// step 4). Candidates are compared by their *current* expected completion
// time (estimate) wherever a sort or selection happens, not by a value
// frozen when the server computed its prediction: the paper's agents
// "select potential servers from a list of servers maintained in the
// database by frequent monitoring" (footnote 1), so comparison data is
// fresher than the in-band prediction. Without this, a deterministic
// simulator herds every request onto one server, because by the time a
// frozen prediction is compared the server's queue has drained.
type schedResult struct {
	servers []*simServer
}

// Note: the full sorted candidate list is forwarded up the tree, like
// DIET's response lists. Truncating it (an earlier design) starves all but
// the top few servers under heavy concurrent load, because batches of
// requests aggregated back-to-back would share the same truncated list.

// Instantiate builds a simulated deployment from a hierarchy. bandwidth
// is the default link bandwidth; nodes carrying a per-node override
// (hierarchy.Node.Bandwidth, planned from a multi-cluster platform) send,
// receive, and transfer at their own link speed — every occupation that
// divides a message size by a bandwidth uses the occupying node's link.
func Instantiate(eng *Engine, h *hierarchy.Hierarchy, costs model.Costs, bandwidth, wapp float64) (*Deployment, error) {
	if err := h.Validate(hierarchy.Structural); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if bandwidth <= 0 || wapp <= 0 {
		return nil, fmt.Errorf("sim: bandwidth (%g) and wapp (%g) must be positive", bandwidth, wapp)
	}
	d := &Deployment{
		eng:           eng,
		costs:         costs,
		bw:            bandwidth,
		wapp:          wapp,
		PerServer:     make(map[string]int64),
		clientTimeout: defaultClientTimeout,
	}
	var build func(id int) entity
	build = func(id int) entity {
		n := h.MustNode(id)
		if n.Role == hierarchy.RoleServer {
			s := &simServer{dep: d, name: n.Name, power: n.Power, bw: n.Link(bandwidth), rated: n.Power, bg: 1, res: NewResource(eng)}
			d.servers = append(d.servers, s)
			return s
		}
		a := &simAgent{dep: d, name: n.Name, power: n.Power, bw: n.Link(bandwidth), res: NewResource(eng)}
		d.agents = append(d.agents, a)
		for _, c := range n.Children {
			a.children = append(a.children, build(c))
		}
		return a
	}
	rootEnt := build(h.Root())
	root, ok := rootEnt.(*simAgent)
	if !ok {
		return nil, fmt.Errorf("sim: root is not an agent")
	}
	d.root = root
	return d, nil
}

// --- scheduling phase -------------------------------------------------

// A note on activity granularity: each request's contiguous work on a node
// (e.g. receive + process, or compute + respond) is modelled as a single
// occupation of the summed duration. Splitting the stages into separate
// queue entries would let a burst of B requests "layer": all B receives
// first, then all B computations, with every response transmitted only
// after the last computation — an artifact no real system exhibits (a
// server writes a ready response before picking up the next queued job).
// The summed occupation is exactly what the §3 model integrates per
// request, so predicted and measured throughput still agree.

// deliverSched implements entity for agents: receive the request, process
// it (Wreq), forward serially to every child, collect the replies, select
// the best server (Wrep), and send the reply up.
func (a *simAgent) deliverSched(replyTo func(schedResult)) {
	c, bw := a.dep.costs, a.bw
	// Eq. 1 request part + Eq. 5 Wreq part.
	a.res.Do(c.AgentSreq/bw+c.AgentWreq/a.power, func() {
		a.broadcast(replyTo)
	})
}

// broadcast forwards the request to every child and aggregates replies.
func (a *simAgent) broadcast(replyTo func(schedResult)) {
	c, bw := a.dep.costs, a.bw
	d := len(a.children)
	agg := &aggregator{want: d}
	for _, child := range a.children {
		child := child
		// The send occupies the agent's port (Eq. 2, d·Sreq part); its
		// completion delivers the message to the child's port.
		a.res.Do(c.AgentSreq/bw, func() {
			child.deliverSched(func(r schedResult) {
				a.receiveReply(agg, r, replyTo)
			})
		})
	}
}

// receiveReply accounts one child reply (Eq. 1, d·Srep part); once all
// replies are in, the agent runs the selection computation Wrep(d) (Eq. 5)
// and sends the merged reply to its parent (Eq. 2, Srep part).
func (a *simAgent) receiveReply(agg *aggregator, r schedResult, replyTo func(schedResult)) {
	c, bw := a.dep.costs, a.bw
	a.res.Do(c.AgentSrep/bw, func() {
		agg.add(r)
		if !agg.complete() {
			return
		}
		d := len(a.children)
		// Wrep(d) selection plus the reply transmission (Eq. 2, Srep part),
		// as one contiguous occupation.
		a.res.Do(c.WrepAgent(d)/a.power+c.AgentSrep/bw, func() {
			replyTo(agg.merged())
		})
	})
}

// aggregator collects children replies and merges their candidate lists.
type aggregator struct {
	want int
	got  int
	all  []*simServer
}

func (g *aggregator) add(r schedResult) {
	g.all = append(g.all, r.servers...)
	g.got++
}

// merged sorts the collected candidates best-first by current estimate
// (stable, so ties keep child order like DIET's sort) — the work the
// Wrep(d) computation cost accounts for.
func (g *aggregator) merged() schedResult {
	sort.SliceStable(g.all, func(i, j int) bool {
		return g.all[i].estimate() < g.all[j].estimate()
	})
	return schedResult{servers: g.all}
}

func (g *aggregator) complete() bool { return g.got == g.want }

// deliverSched implements entity for servers: receive the request, compute
// the performance prediction (Wpre), and send the reply back.
func (s *simServer) deliverSched(replyTo func(schedResult)) {
	c, bw := s.dep.costs, s.bw
	// Scheduling-phase work takes the priority lane: predictions are tiny
	// interactive operations that a real server answers while batch service
	// jobs wait; see Resource for why the simulator must model this.
	// Eq. 3 receive + prediction + Eq. 4 reply, one contiguous occupation.
	s.res.DoPriority(c.ServerSreq/bw+c.ServerWpre/s.power+c.ServerSrep/bw, func() {
		replyTo(schedResult{servers: []*simServer{s}})
	})
}

// estimate is this server's current expected completion time for one more
// service request: the backlog of already-selected requests plus its own
// execution, normalised by the *rated* power — the earliest-completion
// metric DIET's performance prediction feeds into the agents' monitoring
// database. Rated power goes stale under background-load drift until a
// SetPower patch refreshes it: exactly the mis-scheduling the autonomic
// loop corrects.
func (s *simServer) estimate() float64 {
	return float64(s.pending+1) * (s.dep.wapp / s.rated)
}

// --- service phase ----------------------------------------------------

// submitService runs the service phase on the selected server: request
// receive + execution + response (Eq. 15's per-request terms) as one
// contiguous occupation. wapp is this request's service cost (mixtures
// vary it per request).
func (d *Deployment) submitService(s *simServer, wapp float64, onDone func()) {
	c, bw := d.costs, s.bw
	s.pending++
	if s.crashed {
		// The request is sent into a dead node: no service ever runs, the
		// client burns its reply timeout, counts the request as failed,
		// and retries (onDone resumes the closed loop). pending still
		// rises and falls so the node's advertised estimate behaves like a
		// loaded-but-alive server — exactly the stale-monitoring trap that
		// keeps attracting traffic until the autonomic loop evicts it.
		d.eng.At(d.eng.Now()+d.clientTimeout, func() {
			s.pending--
			d.Failed++
			onDone()
		})
		return
	}
	compute := wapp * s.bg / s.power
	s.res.Do(c.ServerSreq/bw+compute+c.ServerSrep/bw, func() {
		s.pending--
		s.svcSeconds += compute
		s.svcCount++
		d.Completed++
		d.PerServer[s.name]++
		onDone()
	})
}

// --- clients ------------------------------------------------------------

// Submit runs one complete request (scheduling phase then service phase),
// calling onDone when the service response is back.
func (d *Deployment) Submit(onDone func()) {
	start := d.eng.Now()
	wapp := d.nextWapp()
	d.root.deliverSched(func(r schedResult) {
		d.SchedCompleted++
		if len(r.servers) == 0 {
			// No server replied — cannot happen on validated hierarchies,
			// but fail loudly in case of protocol bugs.
			panic("sim: scheduling reply carries no server")
		}
		// Final selection: the best candidate by *current* estimate, which
		// may differ from the ranking at merge time (the client-visible
		// "scheduling response" of Fig. 1 carries the sorted list).
		best := r.servers[0]
		for _, s := range r.servers[1:] {
			if s.estimate() < best.estimate() {
				best = s
			}
		}
		d.submitService(best, wapp, func() {
			d.recordLatency(start)
			onDone()
		})
	})
}

// defaultClientTimeout is how long simulated clients wait on a dead
// server before retrying. One second is long against service times
// (milliseconds at the paper's scales) and short against measurement
// windows, like real middleware RPC timeouts.
const defaultClientTimeout = 1.0

// SetClientTimeout overrides the clients' reply timeout against crashed
// servers (seconds).
func (d *Deployment) SetClientTimeout(seconds float64) error {
	if seconds <= 0 {
		return fmt.Errorf("sim: client timeout must be positive, got %g", seconds)
	}
	d.clientTimeout = seconds
	return nil
}

// StartClient launches a closed-loop client at the given simulation time:
// it submits one request at a time in a continual loop (§5.1). The loop
// exits when StopClients has asked for departures.
func (d *Deployment) StartClient(at float64) {
	var loop func()
	loop = func() {
		if d.stopRequests > 0 {
			d.stopRequests--
			d.activeClients--
			return
		}
		d.Submit(loop)
	}
	d.eng.At(at, func() {
		d.activeClients++
		loop()
	})
}

// StopClients asks n closed-loop clients to leave; each departs at its
// next submission boundary (an in-flight request finishes first). Asking
// for more departures than active clients leaves the surplus pending
// against clients that start later.
func (d *Deployment) StopClients(n int) {
	if n > 0 {
		d.stopRequests += n
	}
}

// ActiveClients returns the number of clients currently looping.
func (d *Deployment) ActiveClients() int { return d.activeClients }

// Utilization reports per-node busy fraction over the elapsed simulation
// time; useful for locating bottlenecks in measured deployments.
func (d *Deployment) Utilization() map[string]float64 {
	out := make(map[string]float64, len(d.agents)+len(d.servers))
	t := d.eng.Now()
	if t <= 0 {
		return out
	}
	for _, a := range d.agents {
		out[a.name] = math.Min(1, a.res.BusyTime/t)
	}
	for _, s := range d.servers {
		out[s.name] = math.Min(1, s.res.BusyTime/t)
	}
	return out
}

// ServerCount returns the number of deployed servers.
func (d *Deployment) ServerCount() int { return len(d.servers) }

// AgentCount returns the number of deployed agents.
func (d *Deployment) AgentCount() int { return len(d.agents) }
