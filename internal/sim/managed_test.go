package sim

import (
	"testing"

	"adept/internal/hierarchy"
	"adept/internal/model"
)

func managedStar(t *testing.T, powers map[string]float64) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("managed")
	root, err := h.AddRoot("root", 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"s1", "s2", "s3"} {
		p := 100.0
		if powers != nil {
			if v, ok := powers[name]; ok {
				p = v
			}
		}
		if _, err := h.AddServer(root, name, p); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestManagedBackgroundLoadScenario(t *testing.T) {
	h := managedStar(t, nil)
	scenario := []LoadPhase{{At: 10, Factors: map[string]float64{"s1": 2}}}
	m, err := NewManaged(h, model.DIETDefaults(), 100, 10, 4, scenario)
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.Observe(10)
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.Observe(10)
	if err != nil {
		t.Fatal(err)
	}
	b, okB := before.ServiceSeconds["s1"]
	a, okA := after.ServiceSeconds["s1"]
	if !okB || !okA {
		t.Fatalf("missing s1 observations: before %v after %v", before.ServiceSeconds, after.ServiceSeconds)
	}
	if a < 1.8*b {
		t.Errorf("2x background load not visible in observed service time: %.4fs -> %.4fs", b, a)
	}
	if after.Throughput >= before.Throughput {
		t.Errorf("throughput did not sag under drift: %.2f -> %.2f req/s", before.Throughput, after.Throughput)
	}
	// Unloaded servers keep their service time.
	if s2b, s2a := before.ServiceSeconds["s2"], after.ServiceSeconds["s2"]; s2a > 1.1*s2b {
		t.Errorf("unloaded server slowed too: %.4fs -> %.4fs", s2b, s2a)
	}
}

func TestManagedDemandShiftPhase(t *testing.T) {
	h := managedStar(t, nil)
	scenario := []LoadPhase{{At: 10, AddClients: 6}}
	m, err := NewManaged(h, model.DIETDefaults(), 100, 10, 1, scenario)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := m.Observe(10)
	after, _ := m.Observe(10)
	if after.Completed <= before.Completed {
		t.Errorf("demand shift invisible: %d -> %d completions", before.Completed, after.Completed)
	}
}

func TestManagedLivePatchKeepsServing(t *testing.T) {
	h := managedStar(t, nil)
	m, err := NewManaged(h, model.DIETDefaults(), 100, 10, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(5); err != nil {
		t.Fatal(err)
	}

	// Reshape mid-run: promote s1, hang s2/s3 under it, add s4.
	target := hierarchy.New("managed")
	root, _ := target.AddRoot("root", 500)
	a1, _ := target.AddAgent(root, "s1", 100)
	if _, err := target.AddServer(a1, "s2", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := target.AddServer(a1, "s3", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := target.AddServer(root, "s4", 150); err != nil {
		t.Fatal(err)
	}
	patch, err := hierarchy.Diff(h, target)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := m.ApplyPatch(patch); err != nil {
		t.Fatalf("applied %d/%d: %v", n, patch.Len(), err)
	}
	ws, err := m.Observe(10)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Completed == 0 {
		t.Fatal("patched simulation stopped serving")
	}
	if ws.Served["s4"] == 0 {
		t.Errorf("added server served nothing: %v", ws.Served)
	}
	names := m.ServerNames()
	want := []string{"s2", "s3", "s4"}
	if len(names) != len(want) {
		t.Fatalf("server set after patch: %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("server set after patch: %v, want %v", names, want)
		}
	}
}

func TestManagedRejectsBadOps(t *testing.T) {
	h := managedStar(t, nil)
	m, err := NewManaged(h, model.DIETDefaults(), 100, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("root"); err == nil {
		t.Error("removed the root")
	}
	if err := m.Reparent("s1", "s2"); err == nil {
		t.Error("reparented under a server")
	}
	if err := m.AddServer("s1", "x", 100); err == nil {
		t.Error("added under a server")
	}
	if err := m.SetBackgroundLoad("nope", 2); err == nil {
		t.Error("loaded unknown server")
	}
	if _, err := NewManaged(h, model.DIETDefaults(), 100, 10, 1, []LoadPhase{{At: 1, Factors: map[string]float64{"ghost": 2}}}); err == nil {
		t.Error("scenario naming unknown server accepted")
	}
}

func TestManagedCrashFailsAndRestoreRecovers(t *testing.T) {
	h := managedStar(t, nil)
	scenario := []LoadPhase{
		{At: 10, Crash: []string{"s1"}},
		{At: 30, Restore: []string{"s1"}},
	}
	m, err := NewManaged(h, model.DIETDefaults(), 100, 10, 6, scenario)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := m.Observe(10)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Failed != 0 {
		t.Fatalf("healthy window recorded %d failures", healthy.Failed)
	}
	crashed, _ := m.Observe(10)
	crashed2, _ := m.Observe(10)
	if crashed.Failed+crashed2.Failed == 0 {
		t.Fatalf("crashed server produced no failures: %+v / %+v", crashed, crashed2)
	}
	// The dead node completes nothing while crashed, but the platform as
	// a whole keeps serving (stale estimates spread load, the crash
	// detector needs platform-wide progress).
	if crashed2.Served["s1"] != 0 {
		t.Errorf("crashed server served %d requests", crashed2.Served["s1"])
	}
	if crashed2.Completed == 0 {
		t.Errorf("platform stopped entirely during the crash: %+v", crashed2)
	}
	// Restored: failures stop (allow the tail of in-flight timeouts in
	// the first window) and the node serves again.
	m.Observe(10)
	restored, _ := m.Observe(10)
	if restored.Failed != 0 {
		t.Errorf("failures persisted after restore: %+v", restored)
	}
	if restored.Served["s1"] == 0 {
		t.Errorf("restored server never served again: %+v", restored)
	}
	if m.Failed() != crashed.Failed+crashed2.Failed {
		// Cumulative counter must reconcile with the window deltas plus
		// anything in the settling window we skipped.
		skipped := m.Failed() - crashed.Failed - crashed2.Failed
		if skipped < 0 {
			t.Errorf("cumulative Failed %d below summed window deltas", m.Failed())
		}
	}
}

func TestManagedClientDepartures(t *testing.T) {
	h := managedStar(t, nil)
	// Off the window boundaries: a phase at exactly t=10 fires inside the
	// first Observe(10) (the engine runs events at t <= 10).
	scenario := []LoadPhase{
		{At: 12, AddClients: 8},
		{At: 22, RemoveClients: 8},
	}
	m, err := NewManaged(h, model.DIETDefaults(), 100, 10, 2, scenario)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := m.Observe(10)
	if base.ActiveClients != 2 {
		t.Fatalf("base population = %d, want 2", base.ActiveClients)
	}
	surge, _ := m.Observe(10)
	if surge.ActiveClients != 10 {
		t.Fatalf("surge population = %d, want 10", surge.ActiveClients)
	}
	after, _ := m.Observe(10)
	if after.ActiveClients != 2 {
		t.Fatalf("population after departures = %d, want 2", after.ActiveClients)
	}
	if surge.Completed <= base.Completed || after.Completed >= surge.Completed {
		t.Errorf("demand trace invisible in completions: %d -> %d -> %d",
			base.Completed, surge.Completed, after.Completed)
	}
}

func TestManagedCrashUnknownServer(t *testing.T) {
	h := managedStar(t, nil)
	if _, err := NewManaged(h, model.DIETDefaults(), 100, 10, 1,
		[]LoadPhase{{At: 1, Crash: []string{"ghost"}}}); err == nil {
		t.Fatal("crash phase naming an unknown server was accepted")
	}
	m, err := NewManaged(h, model.DIETDefaults(), 100, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Crash("ghost"); err == nil {
		t.Fatal("Crash(ghost) succeeded")
	}
	if err := m.Crash("root"); err == nil {
		t.Fatal("Crash(root) succeeded on an agent")
	}
	if err := m.SetClientTimeout(0); err == nil {
		t.Fatal("zero client timeout accepted")
	}
	if err := m.SetClientTimeout(0.5); err != nil {
		t.Fatal(err)
	}
}
