// Package sim is a discrete-event simulator of hierarchical NES middleware
// under the paper's machine model M(r,s,w): a computing resource has no
// internal parallelism — it either sends one message, receives one message,
// or computes, serially, through a single port.
//
// The simulator replaces the paper's Grid'5000 measurement campaign: a
// deployment hierarchy is instantiated as simulated agents and servers,
// closed-loop clients drive load through the full two-phase protocol
// (scheduling broadcast down the tree, best-server selection on the way up,
// then the service request on the selected server), and steady-state
// throughput is measured over a configurable window. Experiments compare
// these measurements against the analytic model of internal/model exactly
// the way the paper compares testbed measurements against its predictions.
package sim

import "container/heap"

// event is one scheduled callback.
type event struct {
	t   float64
	seq int64 // tie-break for deterministic FIFO ordering at equal times
	fn  func()
}

// eventQueue is a min-heap on (t, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is the simulation clock and event loop. It is single-threaded and
// fully deterministic: events at equal times fire in scheduling order.
type Engine struct {
	now    float64
	queue  eventQueue
	seq    int64
	events int64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() int64 { return e.events }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a logic error in the protocol code.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	heap.Push(&e.queue, &event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) {
	e.At(e.now+delay, fn)
}

// Run executes events until the queue is empty or the clock passes `until`.
// Events scheduled exactly at `until` still run.
func (e *Engine) Run(until float64) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.t > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.t
		e.events++
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Resource models one physical node under M(r,s,w): serialised activities
// (sends, receives, computations) drawn from two lanes. The priority lane
// models interactive control-plane work (the scheduling phase's tiny
// predictions and messages) that a real middleware interleaves ahead of
// queued batch work; service without it, a deterministic simulator locks
// every closed-loop client into synchronised waves, because a scheduling
// request would wait behind an entire service backlog. Priority is
// non-preemptive, so per-request occupation accounting — what the §3
// throughput model integrates — is unchanged.
type Resource struct {
	eng      *Engine
	busy     bool
	queue    []activity // normal lane (service phase)
	priority []activity // priority lane (scheduling phase)

	// BusyTime accumulates the total occupied seconds, for utilisation
	// reporting.
	BusyTime float64
}

type activity struct {
	dur  float64
	done func()
}

// NewResource attaches a fresh idle resource to the engine.
func NewResource(eng *Engine) *Resource {
	return &Resource{eng: eng}
}

// Do enqueues a normal-lane activity lasting dur seconds; done (may be
// nil) runs when the activity completes. Negative durations panic.
func (r *Resource) Do(dur float64, done func()) {
	if dur < 0 {
		panic("sim: negative activity duration")
	}
	r.queue = append(r.queue, activity{dur: dur, done: done})
	if !r.busy {
		r.startNext()
	}
}

// DoPriority enqueues a priority-lane activity: it runs before any queued
// normal-lane activity but never interrupts the one in progress.
func (r *Resource) DoPriority(dur float64, done func()) {
	if dur < 0 {
		panic("sim: negative activity duration")
	}
	r.priority = append(r.priority, activity{dur: dur, done: done})
	if !r.busy {
		r.startNext()
	}
}

func (r *Resource) startNext() {
	var a activity
	switch {
	case len(r.priority) > 0:
		a = r.priority[0]
		r.priority = r.priority[1:]
	case len(r.queue) > 0:
		a = r.queue[0]
		r.queue = r.queue[1:]
	default:
		r.busy = false
		return
	}
	r.busy = true
	r.BusyTime += a.dur
	r.eng.After(a.dur, func() {
		if a.done != nil {
			a.done()
		}
		r.startNext()
	})
}

// QueueLen reports the number of queued (not yet started) activities.
func (r *Resource) QueueLen() int { return len(r.queue) + len(r.priority) }

// Busy reports whether an activity is in progress.
func (r *Resource) Busy() bool { return r.busy }
