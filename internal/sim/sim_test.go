package sim_test

import (
	"testing"

	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/sim"
	"adept/internal/stats"
	"adept/internal/workload"
)

const testBW = 100.0

// star builds a 1-agent star with the given server powers.
func star(t *testing.T, agentPower float64, serverPowers ...float64) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("star")
	root, err := h.AddRoot("agent", agentPower)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range serverPowers {
		if _, err := h.AddServer(root, serverName(i), w); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func serverName(i int) string {
	return "sed-" + string(rune('a'+i))
}

func measureSaturated(t *testing.T, h *hierarchy.Hierarchy, wapp float64) sim.Result {
	t.Helper()
	res, err := sim.Plateau(h, model.DIETDefaults(), testBW, wapp, 5, 20, 256, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimMatchesModelServerLimitedStar(t *testing.T) {
	// DGEMM 200x200 on a 1-server star is server-limited (Figs. 4–5): the
	// simulator's saturated throughput must match Eq. 16 closely.
	wapp := workload.DGEMM{N: 200}.MFlop()
	for _, servers := range [][]float64{{400}, {400, 400}} {
		h := star(t, 400, servers...)
		pred := h.Evaluate(model.DIETDefaults(), testBW, wapp)
		res := measureSaturated(t, h, wapp)
		t.Logf("%d server(s): predicted %.2f, measured %.2f req/s", len(servers), pred.Rho, res.Throughput)
		if !stats.WithinTolerance(res.Throughput, pred.Rho, 0.1) {
			t.Errorf("%d server(s): measured %.2f req/s, model predicts %.2f (>10%% off)",
				len(servers), res.Throughput, pred.Rho)
		}
	}
}

func TestSimSecondServerDoublesServerLimitedThroughput(t *testing.T) {
	// The Figs. 4–5 shape: with large requests, adding a second server
	// roughly doubles throughput.
	wapp := workload.DGEMM{N: 200}.MFlop()
	one := measureSaturated(t, star(t, 400, 400), wapp)
	two := measureSaturated(t, star(t, 400, 400, 400), wapp)
	ratio := two.Throughput / one.Throughput
	t.Logf("1 SeD: %.2f, 2 SeDs: %.2f req/s (x%.2f)", one.Throughput, two.Throughput, ratio)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("second server scaled throughput by %.2f, want ~2.0", ratio)
	}
}

func TestSimSecondServerHurtsAgentLimitedThroughput(t *testing.T) {
	// The Figs. 2–3 shape: with tiny requests the agent is the bottleneck
	// and a second server lowers throughput.
	wapp := workload.DGEMM{N: 10}.MFlop()
	one := measureSaturated(t, star(t, 400, 400), wapp)
	two := measureSaturated(t, star(t, 400, 400, 400), wapp)
	t.Logf("1 SeD: %.2f, 2 SeDs: %.2f req/s", one.Throughput, two.Throughput)
	if two.Throughput >= one.Throughput {
		t.Errorf("agent-limited: 2 SeDs (%.2f) should be slower than 1 SeD (%.2f)",
			two.Throughput, one.Throughput)
	}
}

func TestSimAgentLimitedStarMatchesModel(t *testing.T) {
	wapp := workload.DGEMM{N: 10}.MFlop()
	h := star(t, 400, 400)
	pred := h.Evaluate(model.DIETDefaults(), testBW, wapp)
	res := measureSaturated(t, h, wapp)
	t.Logf("predicted %.2f, measured %.2f req/s", pred.Rho, res.Throughput)
	if !stats.WithinTolerance(res.Throughput, pred.Rho, 0.15) {
		t.Errorf("measured %.2f req/s, model predicts %.2f (>15%% off)", res.Throughput, pred.Rho)
	}
}

func TestSimThreeLevelHierarchy(t *testing.T) {
	// Two agents over four servers: sim must run the full recursive
	// protocol and stay within tolerance of the model.
	h := hierarchy.New("two-level")
	root, _ := h.AddRoot("root", 400)
	a1, _ := h.AddAgent(root, "a1", 400)
	a2, _ := h.AddAgent(root, "a2", 400)
	for i, parent := range []int{a1, a1, a2, a2} {
		if _, err := h.AddServer(parent, serverName(i), 400); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Validate(hierarchy.Final); err != nil {
		t.Fatal(err)
	}
	wapp := workload.DGEMM{N: 200}.MFlop()
	pred := h.Evaluate(model.DIETDefaults(), testBW, wapp)
	res := measureSaturated(t, h, wapp)
	t.Logf("predicted %.2f, measured %.2f req/s", pred.Rho, res.Throughput)
	if !stats.WithinTolerance(res.Throughput, pred.Rho, 0.15) {
		t.Errorf("measured %.2f req/s, model predicts %.2f (>15%% off)", res.Throughput, pred.Rho)
	}
}

func TestSimConservationPerServerCountsSumToCompleted(t *testing.T) {
	// Eq. 6: Σ Ni = N.
	wapp := workload.DGEMM{N: 200}.MFlop()
	h := star(t, 400, 400, 300, 200)
	res, err := sim.Measure(h, model.DIETDefaults(), testBW, wapp, sim.Config{Clients: 32, Warmup: 0, Window: 30})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, n := range res.PerServer {
		sum += n
	}
	if sum != res.Completed {
		t.Errorf("per-server counts sum to %d, completed = %d", sum, res.Completed)
	}
	if got := len(res.PerServer); got != 3 {
		t.Errorf("%d servers received work, want 3", got)
	}
}

func TestSimLoadSharingFollowsPower(t *testing.T) {
	// Heterogeneous servers should complete requests roughly proportionally
	// to their power (Eq. 8), thanks to the prediction-based selection.
	wapp := workload.DGEMM{N: 200}.MFlop()
	h := star(t, 400, 400, 200)
	res, err := sim.Measure(h, model.DIETDefaults(), testBW, wapp, sim.Config{Clients: 32, Warmup: 10, Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	fast := float64(res.PerServer[serverName(0)])
	slow := float64(res.PerServer[serverName(1)])
	if slow == 0 {
		t.Fatal("slow server did no work")
	}
	ratio := fast / slow
	t.Logf("fast/slow completion ratio = %.2f (power ratio 2.0)", ratio)
	if ratio < 1.6 || ratio > 2.5 {
		t.Errorf("completion ratio %.2f, want ≈2.0 (power-proportional sharing)", ratio)
	}
}

func TestSimLoadSeriesIsSaturating(t *testing.T) {
	wapp := workload.DGEMM{N: 200}.MFlop()
	h := star(t, 400, 400, 400)
	pts, err := sim.LoadSeries(h, model.DIETDefaults(), testBW, wapp, []int{1, 2, 4, 8, 16}, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Throughput < pts[i-1].Throughput*0.9 {
			t.Errorf("load series dipped: %.2f@%d -> %.2f@%d",
				pts[i-1].Throughput, pts[i-1].Clients, pts[i].Throughput, pts[i].Clients)
		}
	}
	if pts[len(pts)-1].Throughput <= pts[0].Throughput {
		t.Errorf("series never grew: first %.2f, last %.2f", pts[0].Throughput, pts[len(pts)-1].Throughput)
	}
}

func TestSimRampMeasureMatchesPlateau(t *testing.T) {
	wapp := workload.DGEMM{N: 200}.MFlop()
	h := star(t, 400, 400, 400)
	series, plateau, err := sim.RampMeasure(h, model.DIETDefaults(), testBW, wapp,
		workload.Ramp{MaxClients: 16, Interval: 1, HoldSeconds: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("empty ramp series")
	}
	sat := measureSaturated(t, h, wapp)
	t.Logf("ramp plateau %.2f, independent plateau %.2f req/s", plateau, sat.Throughput)
	if !stats.WithinTolerance(plateau, sat.Throughput, 0.15) {
		t.Errorf("ramp plateau %.2f disagrees with saturated measurement %.2f", plateau, sat.Throughput)
	}
}

func TestEngineDeterminism(t *testing.T) {
	wapp := workload.DGEMM{N: 100}.MFlop()
	run := func() sim.Result {
		h := star(t, 400, 400, 300)
		res, err := sim.Measure(h, model.DIETDefaults(), testBW, wapp, sim.Config{Clients: 8, Warmup: 2, Window: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Events != b.Events {
		t.Errorf("simulation not deterministic: (%d,%d) vs (%d,%d)", a.Completed, a.Events, b.Completed, b.Events)
	}
}
