package sim

import (
	"fmt"

	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/stats"
	"adept/internal/workload"
)

// Config parameterises a steady-state measurement.
type Config struct {
	// Clients is the number of closed-loop clients.
	Clients int
	// Warmup is the simulated seconds discarded before measuring.
	Warmup float64
	// Window is the simulated measurement window in seconds.
	Window float64
	// Mixture optionally replaces the single-application workload; see
	// Deployment.SetMixture. The wapp passed to Measure stays the
	// effective mean cost used for estimates and model comparisons.
	Mixture []AppShare
}

// Validate checks the measurement configuration.
func (c Config) Validate() error {
	if c.Clients <= 0 {
		return fmt.Errorf("sim: need at least one client, got %d", c.Clients)
	}
	if c.Warmup < 0 || c.Window <= 0 {
		return fmt.Errorf("sim: invalid warmup %g / window %g", c.Warmup, c.Window)
	}
	return nil
}

// Result is one steady-state measurement.
type Result struct {
	// Throughput is completed requests per simulated second in the window.
	Throughput float64
	// Completed is the total number of completed requests in the window.
	Completed int64
	// Clients echoes the offered load level.
	Clients int
	// Events is the number of simulator events executed.
	Events int64
	// Utilization is the per-node busy fraction over the whole run.
	Utilization map[string]float64
	// PerServer is the per-server completion count over the whole run;
	// Eq. 6's Σ Ni = N conservation is checked against it in tests.
	PerServer map[string]int64
	// Latency summarises sampled request latencies over the whole run
	// (zero when nothing completed).
	Latency LatencySummary
}

// LatencySummary holds request-latency statistics in simulated seconds.
type LatencySummary struct {
	Mean float64
	P50  float64
	P95  float64
	P99  float64
	N    int
}

func summarizeLatency(samples []float64) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Mean: stats.Mean(samples),
		P50:  stats.Percentile(samples, 50),
		P95:  stats.Percentile(samples, 95),
		P99:  stats.Percentile(samples, 99),
		N:    len(samples),
	}
}

// Measure instantiates the hierarchy, applies the closed-loop client load,
// and returns the steady-state throughput over the measurement window.
func Measure(h *hierarchy.Hierarchy, costs model.Costs, bandwidth, wapp float64, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	eng := NewEngine()
	dep, err := Instantiate(eng, h, costs, bandwidth, wapp)
	if err != nil {
		return Result{}, err
	}
	if len(cfg.Mixture) > 0 {
		if err := dep.SetMixture(cfg.Mixture); err != nil {
			return Result{}, err
		}
	}
	for i := 0; i < cfg.Clients; i++ {
		dep.StartClient(0)
	}
	eng.Run(cfg.Warmup)
	start := dep.Completed
	eng.Run(cfg.Warmup + cfg.Window)
	done := dep.Completed - start
	return Result{
		Throughput:  float64(done) / cfg.Window,
		Completed:   done,
		Clients:     cfg.Clients,
		Events:      eng.Events(),
		Utilization: dep.Utilization(),
		PerServer:   dep.PerServer,
		Latency:     summarizeLatency(dep.latencies),
	}, nil
}

// Point is one (clients, throughput) sample of a load curve.
type Point struct {
	Clients    int
	Throughput float64
}

// LoadSeries measures steady-state throughput at each client level with an
// independent simulation per level, producing the load curves of Figs. 2,
// 4, 6 and 7.
func LoadSeries(h *hierarchy.Hierarchy, costs model.Costs, bandwidth, wapp float64, levels []int, warmup, window float64) ([]Point, error) {
	out := make([]Point, 0, len(levels))
	for _, k := range levels {
		res, err := Measure(h, costs, bandwidth, wapp, Config{Clients: k, Warmup: warmup, Window: window})
		if err != nil {
			return nil, fmt.Errorf("sim: load level %d: %w", k, err)
		}
		out = append(out, Point{Clients: k, Throughput: res.Throughput})
	}
	return out, nil
}

// Plateau searches for the saturated (maximum sustained) throughput by
// doubling the client count until throughput stops improving by more than
// tol (relative), then returns the best observed level. This condenses the
// paper's "introduce clients until the throughput of the platform stops
// improving" protocol.
func Plateau(h *hierarchy.Hierarchy, costs model.Costs, bandwidth, wapp float64, warmup, window float64, maxClients int, tol float64) (Result, error) {
	if maxClients < 1 {
		return Result{}, fmt.Errorf("sim: maxClients must be positive")
	}
	if tol <= 0 {
		tol = 0.01
	}
	best := Result{}
	prev := -1.0
	for k := 1; k <= maxClients; k *= 2 {
		res, err := Measure(h, costs, bandwidth, wapp, Config{Clients: k, Warmup: warmup, Window: window})
		if err != nil {
			return Result{}, err
		}
		if res.Throughput > best.Throughput {
			best = res
		}
		if prev > 0 && res.Throughput < prev*(1+tol) {
			break
		}
		prev = res.Throughput
	}
	return best, nil
}

// RampMeasure replays the paper's exact §5.1 protocol inside one
// simulation: clients arrive one per ramp interval; per-second completion
// counts are recorded; after the last arrival the platform holds for the
// configured window. It returns one throughput sample per whole simulated
// second (the Figs. 2/4 style raw series) plus the plateau estimate
// measured over the hold.
func RampMeasure(h *hierarchy.Hierarchy, costs model.Costs, bandwidth, wapp float64, ramp workload.Ramp) (series []Point, plateau float64, err error) {
	if err := ramp.Validate(); err != nil {
		return nil, 0, err
	}
	eng := NewEngine()
	dep, err := Instantiate(eng, h, costs, bandwidth, wapp)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < ramp.MaxClients; i++ {
		dep.StartClient(ramp.ArrivalTime(i))
	}

	end := ramp.EndTime()
	lastCount := int64(0)
	clientsAt := func(t float64) int {
		if ramp.Interval == 0 {
			return ramp.MaxClients
		}
		k := int(t/ramp.Interval) + 1
		if k > ramp.MaxClients {
			k = ramp.MaxClients
		}
		return k
	}
	for t := 1.0; t <= end; t++ {
		eng.Run(t)
		done := dep.Completed - lastCount
		lastCount = dep.Completed
		series = append(series, Point{Clients: clientsAt(t - 1), Throughput: float64(done)})
	}
	eng.Run(end)

	holdStart := ramp.ArrivalTime(ramp.MaxClients - 1)
	// Average the samples inside the hold window for the plateau estimate.
	var sum float64
	var n int
	for i, p := range series {
		if float64(i+1) > holdStart {
			sum += p.Throughput
			n++
		}
	}
	if n > 0 {
		plateau = sum / float64(n)
	}
	return series, plateau, nil
}
