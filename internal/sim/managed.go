package sim

import (
	"fmt"
	"sort"

	"adept/internal/hierarchy"
	"adept/internal/model"
)

// This file adds live management to the simulator: a time-varying
// background-load scenario (the §5.3 heterogenisation replayed *during* a
// run instead of before it) and in-place reconfiguration of a running
// deployment. Together they let the autonomic MAPE-K loop be exercised and
// benchmarked end-to-end in deterministic simulated time: drift is
// injected on schedule, the monitor samples measurement windows, and
// patches are applied to the same running deployment the clients keep
// driving.

// LoadPhase is one step of a background-load scenario.
type LoadPhase struct {
	// At is the simulated time (seconds) the phase starts.
	At float64
	// Factors maps server names to background-load slowdown factors:
	// effective compute speed becomes power/factor. Servers not named keep
	// their current factor. Factor 1 removes the load.
	Factors map[string]float64
	// AddClients starts that many extra closed-loop clients at At,
	// modelling a demand shift.
	AddClients int
	// RemoveClients asks that many closed-loop clients to leave at At
	// (each departs at its next submission boundary) — the downswing of a
	// demand trace.
	RemoveClients int
	// Crash marks the named servers dead at At: they keep answering
	// scheduling (stale monitoring) but every service request to them
	// times out and fails. Restore revives servers crashed earlier.
	Crash   []string
	Restore []string
}

// Managed is a running simulated deployment under autonomic management:
// closed-loop clients drive it continuously, a load scenario injects
// drift, and reconfiguration ops patch it in place while it runs.
type Managed struct {
	eng *Engine
	dep *Deployment

	byName   map[string]entity
	parentOf map[string]*simAgent

	// window baselines for Observe deltas.
	lastCompleted int64
	lastFailed    int64
	lastServed    map[string]int64
	lastSvcSec    map[string]float64
	lastSvcCount  map[string]int64
}

// NewManaged instantiates h inside a fresh engine, starts the closed-loop
// clients, and schedules the load scenario.
func NewManaged(h *hierarchy.Hierarchy, costs model.Costs, bandwidth, wapp float64, clients int, scenario []LoadPhase) (*Managed, error) {
	if clients < 1 {
		return nil, fmt.Errorf("sim: managed deployment needs at least one client, got %d", clients)
	}
	eng := NewEngine()
	dep, err := Instantiate(eng, h, costs, bandwidth, wapp)
	if err != nil {
		return nil, err
	}
	m := &Managed{
		eng:          eng,
		dep:          dep,
		byName:       make(map[string]entity),
		parentOf:     make(map[string]*simAgent),
		lastServed:   make(map[string]int64),
		lastSvcSec:   make(map[string]float64),
		lastSvcCount: make(map[string]int64),
	}
	m.indexTree()
	for i := 0; i < clients; i++ {
		dep.StartClient(0)
	}
	for _, phase := range scenario {
		phase := phase
		if phase.At < 0 {
			return nil, fmt.Errorf("sim: load phase at negative time %g", phase.At)
		}
		// Validate and later apply factors in sorted-name order: which
		// unknown element gets reported, and the order servers pick up
		// new background load inside the DES, must not depend on map
		// iteration order.
		factorNames := make([]string, 0, len(phase.Factors))
		for name := range phase.Factors {
			factorNames = append(factorNames, name)
		}
		sort.Strings(factorNames)
		for _, name := range factorNames {
			if _, ok := m.byName[name]; !ok {
				return nil, fmt.Errorf("sim: load phase names unknown element %q", name)
			}
		}
		for _, name := range phase.Crash {
			if _, ok := m.byName[name].(*simServer); !ok {
				return nil, fmt.Errorf("sim: crash phase names unknown server %q", name)
			}
		}
		for _, name := range phase.Restore {
			if _, ok := m.byName[name].(*simServer); !ok {
				return nil, fmt.Errorf("sim: restore phase names unknown server %q", name)
			}
		}
		eng.At(phase.At, func() {
			for _, name := range factorNames {
				if srv, ok := m.byName[name].(*simServer); ok && phase.Factors[name] > 0 {
					srv.bg = phase.Factors[name]
				}
			}
			// Crash/restore by name, tolerating servers the autonomic loop
			// already removed by the time the phase fires.
			for _, name := range phase.Crash {
				if srv, ok := m.byName[name].(*simServer); ok {
					srv.crashed = true
				}
			}
			for _, name := range phase.Restore {
				if srv, ok := m.byName[name].(*simServer); ok {
					srv.crashed = false
				}
			}
			for i := 0; i < phase.AddClients; i++ {
				dep.StartClient(eng.Now())
			}
			dep.StopClients(phase.RemoveClients)
		})
	}
	return m, nil
}

// indexTree rebuilds the name and parent indexes from the deployment.
func (m *Managed) indexTree() {
	for _, a := range m.dep.agents {
		m.byName[a.name] = a
	}
	for _, s := range m.dep.servers {
		m.byName[s.name] = s
	}
	for _, a := range m.dep.agents {
		for _, child := range a.children {
			switch c := child.(type) {
			case *simAgent:
				m.parentOf[c.name] = a
			case *simServer:
				m.parentOf[c.name] = a
			}
		}
	}
}

// Now returns the current simulated time.
func (m *Managed) Now() float64 { return m.eng.Now() }

// WindowStats is one measurement window of a managed run: the Monitor
// stage's raw observation.
type WindowStats struct {
	// Window is the window length in simulated seconds.
	Window float64
	// Throughput is completed requests per simulated second.
	Throughput float64
	// Completed counts requests completed inside the window.
	Completed int64
	// Failed counts requests that timed out against crashed servers
	// inside the window.
	Failed int64
	// ActiveClients is the closed-loop client population at window end.
	ActiveClients int
	// Served is the per-server completion count inside the window.
	Served map[string]int64
	// ServiceSeconds is the per-server mean observed execution time inside
	// the window (absent for servers that served nothing).
	ServiceSeconds map[string]float64
}

// Observe advances the simulation by window seconds and reports what
// happened inside it.
func (m *Managed) Observe(window float64) (WindowStats, error) {
	if window <= 0 {
		return WindowStats{}, fmt.Errorf("sim: observation window %g must be positive", window)
	}
	m.eng.Run(m.eng.Now() + window)
	ws := WindowStats{
		Window:         window,
		Completed:      m.dep.Completed - m.lastCompleted,
		Failed:         m.dep.Failed - m.lastFailed,
		ActiveClients:  m.dep.ActiveClients(),
		Served:         make(map[string]int64),
		ServiceSeconds: make(map[string]float64),
	}
	m.lastCompleted = m.dep.Completed
	m.lastFailed = m.dep.Failed
	ws.Throughput = float64(ws.Completed) / window
	for _, s := range m.dep.servers {
		served := m.dep.PerServer[s.name] - m.lastServed[s.name]
		ws.Served[s.name] = served
		m.lastServed[s.name] = m.dep.PerServer[s.name]
		dSec := s.svcSeconds - m.lastSvcSec[s.name]
		dCnt := s.svcCount - m.lastSvcCount[s.name]
		m.lastSvcSec[s.name] = s.svcSeconds
		m.lastSvcCount[s.name] = s.svcCount
		if dCnt > 0 {
			ws.ServiceSeconds[s.name] = dSec / float64(dCnt)
		}
	}
	return ws, nil
}

// Crash marks a deployed server dead immediately (scenarios do the same
// on schedule): it keeps answering scheduling but fails every service
// request until Restore or eviction.
func (m *Managed) Crash(name string) error {
	srv, ok := m.byName[name].(*simServer)
	if !ok {
		return fmt.Errorf("sim: no server %q", name)
	}
	srv.crashed = true
	return nil
}

// Restore revives a crashed server.
func (m *Managed) Restore(name string) error {
	srv, ok := m.byName[name].(*simServer)
	if !ok {
		return fmt.Errorf("sim: no server %q", name)
	}
	srv.crashed = false
	return nil
}

// SetClientTimeout overrides the clients' reply timeout against crashed
// servers (seconds).
func (m *Managed) SetClientTimeout(seconds float64) error {
	return m.dep.SetClientTimeout(seconds)
}

// AddClients starts n extra closed-loop clients now.
func (m *Managed) AddClients(n int) {
	for i := 0; i < n; i++ {
		m.dep.StartClient(m.eng.Now())
	}
}

// StopClients asks n closed-loop clients to leave at their next
// submission boundary.
func (m *Managed) StopClients(n int) { m.dep.StopClients(n) }

// ActiveClients returns the current closed-loop client population.
func (m *Managed) ActiveClients() int { return m.dep.ActiveClients() }

// Completed returns the cumulative completed-request count.
func (m *Managed) Completed() int64 { return m.dep.Completed }

// Failed returns the cumulative failed (timed-out) request count.
func (m *Managed) Failed() int64 { return m.dep.Failed }

// Latencies returns the sampled request latencies in seconds.
func (m *Managed) Latencies() []float64 { return m.dep.Latencies() }

// SetBackgroundLoad changes a server's background-load factor immediately
// (scenarios do the same on schedule).
func (m *Managed) SetBackgroundLoad(name string, factor float64) error {
	srv, ok := m.byName[name].(*simServer)
	if !ok {
		return fmt.Errorf("sim: no server %q", name)
	}
	if factor <= 0 {
		return fmt.Errorf("sim: background-load factor %g must be positive", factor)
	}
	srv.bg = factor
	return nil
}

// --- live reconfiguration ------------------------------------------------

// liveLink resolves the optional link-bandwidth argument of a live add
// against the deployment's default bandwidth.
func (m *Managed) liveLink(linkBW []float64) (float64, error) {
	if len(linkBW) == 0 || linkBW[0] == 0 {
		return m.dep.bw, nil
	}
	if linkBW[0] < 0 {
		return 0, fmt.Errorf("sim: negative link bandwidth %g", linkBW[0])
	}
	return linkBW[0], nil
}

// AddServer deploys a new server under an existing agent while the
// simulation runs; it participates from the next scheduling broadcast.
// The optional trailing argument is the node's link bandwidth (zero or
// omitted = the deployment default).
func (m *Managed) AddServer(parentName, name string, power float64, linkBW ...float64) error {
	parent, err := m.agent(parentName)
	if err != nil {
		return err
	}
	if _, dup := m.byName[name]; dup {
		return fmt.Errorf("sim: element %q already deployed", name)
	}
	if power <= 0 {
		return fmt.Errorf("sim: power %g must be positive", power)
	}
	bw, err := m.liveLink(linkBW)
	if err != nil {
		return err
	}
	s := &simServer{dep: m.dep, name: name, power: power, bw: bw, rated: power, bg: 1, res: NewResource(m.eng)}
	m.dep.servers = append(m.dep.servers, s)
	m.byName[name] = s
	parent.children = append(parent.children, s)
	m.parentOf[name] = parent
	return nil
}

// AddAgent deploys a new childless agent under an existing agent. The
// optional trailing argument is the node's link bandwidth.
func (m *Managed) AddAgent(parentName, name string, power float64, linkBW ...float64) error {
	parent, err := m.agent(parentName)
	if err != nil {
		return err
	}
	if _, dup := m.byName[name]; dup {
		return fmt.Errorf("sim: element %q already deployed", name)
	}
	if power <= 0 {
		return fmt.Errorf("sim: power %g must be positive", power)
	}
	bw, err := m.liveLink(linkBW)
	if err != nil {
		return err
	}
	a := &simAgent{dep: m.dep, name: name, power: power, bw: bw, res: NewResource(m.eng)}
	m.dep.agents = append(m.dep.agents, a)
	m.byName[name] = a
	parent.children = append(parent.children, a)
	m.parentOf[name] = parent
	return nil
}

// Remove undeploys a childless element. In-flight requests it already
// accepted complete normally (their events are scheduled); it just stops
// receiving new scheduling broadcasts.
func (m *Managed) Remove(name string) error {
	ent, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("sim: no element %q", name)
	}
	if a, isAgent := ent.(*simAgent); isAgent {
		if len(a.children) != 0 {
			return fmt.Errorf("sim: agent %q still has %d children", name, len(a.children))
		}
		if a == m.dep.root {
			return fmt.Errorf("sim: cannot remove the root")
		}
	}
	if err := m.detach(name, ent); err != nil {
		return err
	}
	delete(m.byName, name)
	delete(m.parentOf, name)
	m.dep.agents = filterAgents(m.dep.agents, name)
	m.dep.servers = filterServers(m.dep.servers, name)
	return nil
}

// Reparent moves an element (with its subtree, for agents) under a new
// parent agent.
func (m *Managed) Reparent(name, newParentName string) error {
	ent, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("sim: no element %q", name)
	}
	np, err := m.agent(newParentName)
	if err != nil {
		return err
	}
	// Reject cycles: walk up from the new parent.
	for cur := newParentName; cur != ""; {
		if cur == name {
			return fmt.Errorf("sim: reparenting %q under its own subtree", name)
		}
		p, ok := m.parentOf[cur]
		if !ok {
			break
		}
		cur = p.name
	}
	if err := m.detach(name, ent); err != nil {
		return err
	}
	np.children = append(np.children, ent)
	m.parentOf[name] = np
	return nil
}

// SetPower refreshes a server's rated power, feeding learned drift back
// into its predictions. For agents it is a planner-side bookkeeping change
// with no simulated effect.
func (m *Managed) SetPower(name string, power float64) error {
	if power <= 0 {
		return fmt.Errorf("sim: power %g must be positive", power)
	}
	switch ent := m.byName[name].(type) {
	case *simServer:
		ent.rated = power
	case *simAgent:
		// Agents run no service predictions; nothing to refresh.
	default:
		return fmt.Errorf("sim: no element %q", name)
	}
	return nil
}

// Promote converts a server into a (childless) agent on the same physical
// node, reusing its resource so busy-time accounting carries over.
func (m *Managed) Promote(name string) error {
	srv, ok := m.byName[name].(*simServer)
	if !ok {
		return fmt.Errorf("sim: no server %q", name)
	}
	parent := m.parentOf[name]
	if parent == nil {
		return fmt.Errorf("sim: cannot promote the root")
	}
	a := &simAgent{dep: m.dep, name: name, power: srv.power, bw: srv.bw, res: srv.res}
	if err := m.detach(name, srv); err != nil {
		return err
	}
	m.dep.servers = filterServers(m.dep.servers, name)
	m.dep.agents = append(m.dep.agents, a)
	m.byName[name] = a
	parent.children = append(parent.children, a)
	m.parentOf[name] = parent
	return nil
}

// Demote converts a childless agent back into a server.
func (m *Managed) Demote(name string) error {
	a, ok := m.byName[name].(*simAgent)
	if !ok {
		return fmt.Errorf("sim: no agent %q", name)
	}
	if len(a.children) != 0 {
		return fmt.Errorf("sim: agent %q still has %d children", name, len(a.children))
	}
	parent := m.parentOf[name]
	if parent == nil {
		return fmt.Errorf("sim: cannot demote the root")
	}
	s := &simServer{dep: m.dep, name: name, power: a.power, bw: a.bw, rated: a.power, bg: 1, res: a.res}
	if err := m.detach(name, a); err != nil {
		return err
	}
	m.dep.agents = filterAgents(m.dep.agents, name)
	m.dep.servers = append(m.dep.servers, s)
	m.byName[name] = s
	parent.children = append(parent.children, s)
	m.parentOf[name] = parent
	return nil
}

// ApplyOp applies one reconfiguration patch op to the running simulation.
func (m *Managed) ApplyOp(op hierarchy.Op) error {
	switch op.Kind {
	case hierarchy.OpAdd:
		if op.Role == hierarchy.RoleAgent {
			return m.AddAgent(op.Parent, op.Name, op.Power, op.Bandwidth)
		}
		return m.AddServer(op.Parent, op.Name, op.Power, op.Bandwidth)
	case hierarchy.OpRemove:
		return m.Remove(op.Name)
	case hierarchy.OpReparent:
		return m.Reparent(op.Name, op.Parent)
	case hierarchy.OpSetPower:
		return m.SetPower(op.Name, op.Power)
	case hierarchy.OpPromote:
		return m.Promote(op.Name)
	case hierarchy.OpDemote:
		return m.Demote(op.Name)
	}
	return fmt.Errorf("sim: unknown op kind %v", op.Kind)
}

// ApplyPatch applies a patch op by op, stopping at the first failure; the
// count says how many ops were applied.
func (m *Managed) ApplyPatch(p hierarchy.Patch) (int, error) {
	for i, op := range p.Ops {
		if err := m.ApplyOp(op); err != nil {
			return i, fmt.Errorf("sim: patch op %d (%s): %w", i, op, err)
		}
	}
	return len(p.Ops), nil
}

// ServerNames lists the currently deployed servers, sorted.
func (m *Managed) ServerNames() []string {
	names := make([]string, 0, len(m.dep.servers))
	for _, s := range m.dep.servers {
		names = append(names, s.name)
	}
	sort.Strings(names)
	return names
}

func (m *Managed) agent(name string) (*simAgent, error) {
	a, ok := m.byName[name].(*simAgent)
	if !ok {
		return nil, fmt.Errorf("sim: no agent %q", name)
	}
	return a, nil
}

func (m *Managed) detach(name string, ent entity) error {
	parent := m.parentOf[name]
	if parent == nil {
		return fmt.Errorf("sim: element %q has no parent", name)
	}
	for i, c := range parent.children {
		if c == ent {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("sim: element %q missing from parent %q", name, parent.name)
}

func filterAgents(in []*simAgent, name string) []*simAgent {
	out := in[:0]
	for _, a := range in {
		if a.name != name {
			out = append(out, a)
		}
	}
	return out
}

func filterServers(in []*simServer, name string) []*simServer {
	out := in[:0]
	for _, s := range in {
		if s.name != name {
			out = append(out, s)
		}
	}
	return out
}
