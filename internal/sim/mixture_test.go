package sim_test

import (
	"testing"

	"adept/internal/model"
	"adept/internal/sim"
	"adept/internal/stats"
	"adept/internal/workload"
)

func TestSimMixtureMatchesEffectiveCostModel(t *testing.T) {
	// A 70/30 mixture of DGEMM 100 and DGEMM 200: the simulator's measured
	// throughput must match the model evaluated at the mixture's effective
	// mean cost (the multi-application extension).
	mix, err := workload.NewMixture(
		workload.Component{App: workload.DGEMM{N: 100}, Fraction: 0.7},
		workload.Component{App: workload.DGEMM{N: 200}, Fraction: 0.3},
	)
	if err != nil {
		t.Fatal(err)
	}
	h := star(t, 400, 400, 400)
	eff := mix.EffectiveMFlop()
	pred := h.Evaluate(model.DIETDefaults(), testBW, eff)

	shares := make([]sim.AppShare, len(mix.Components))
	for i, c := range mix.Components {
		shares[i] = sim.AppShare{Wapp: c.App.MFlop(), Fraction: c.Fraction}
	}
	res, err := sim.Measure(h, model.DIETDefaults(), testBW, eff, sim.Config{
		Clients: 32, Warmup: 5, Window: 30, Mixture: shares,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mixture %s: predicted %.2f, measured %.2f req/s", mix, pred.Rho, res.Throughput)
	if !stats.WithinTolerance(res.Throughput, pred.Rho, 0.1) {
		t.Errorf("measured %.2f, model at effective cost predicts %.2f (>10%% off)", res.Throughput, pred.Rho)
	}
}

func TestSimMixtureValidation(t *testing.T) {
	h := star(t, 400, 400)
	_, err := sim.Measure(h, model.DIETDefaults(), testBW, 2, sim.Config{
		Clients: 1, Warmup: 0, Window: 1,
		Mixture: []sim.AppShare{{Wapp: 2, Fraction: 0.4}},
	})
	if err == nil {
		t.Error("mixture with fractions summing to 0.4 accepted")
	}
	_, err = sim.Measure(h, model.DIETDefaults(), testBW, 2, sim.Config{
		Clients: 1, Warmup: 0, Window: 1,
		Mixture: []sim.AppShare{{Wapp: -1, Fraction: 1}},
	})
	if err == nil {
		t.Error("mixture with negative cost accepted")
	}
}

func TestSimLatencySummary(t *testing.T) {
	h := star(t, 400, 400, 400)
	wapp := workload.DGEMM{N: 200}.MFlop()
	res, err := sim.Measure(h, model.DIETDefaults(), testBW, wapp,
		sim.Config{Clients: 8, Warmup: 2, Window: 20})
	if err != nil {
		t.Fatal(err)
	}
	lat := res.Latency
	if lat.N == 0 {
		t.Fatal("no latency samples")
	}
	if lat.Mean <= 0 || lat.P50 <= 0 {
		t.Errorf("degenerate latency summary %+v", lat)
	}
	if !(lat.P50 <= lat.P95 && lat.P95 <= lat.P99) {
		t.Errorf("percentiles not monotone: %+v", lat)
	}
	// 8 closed-loop clients at ~50 req/s: Little's law says mean latency
	// ≈ 8/50 = 0.16 s; allow generous tolerance.
	if lat.Mean < 0.05 || lat.Mean > 0.5 {
		t.Errorf("mean latency %.3f s implausible for 8 clients at ~50 req/s", lat.Mean)
	}
}

func TestSimLatencyGrowsWithLoad(t *testing.T) {
	h := star(t, 400, 400)
	wapp := workload.DGEMM{N: 200}.MFlop()
	measure := func(clients int) float64 {
		res, err := sim.Measure(h, model.DIETDefaults(), testBW, wapp,
			sim.Config{Clients: clients, Warmup: 2, Window: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean
	}
	low, high := measure(2), measure(32)
	t.Logf("mean latency: 2 clients %.3fs, 32 clients %.3fs", low, high)
	if high <= low {
		t.Errorf("latency should grow with load: %.3f vs %.3f", low, high)
	}
}
