// Package blas implements the dense linear-algebra kernels the paper's
// evaluation is built on: DGEMM, the level-3 BLAS general matrix-matrix
// multiplication used as the client application in every experiment, in
// naive, cache-blocked, and parallel variants. The middleware runtime
// executes these kernels for real during the service phase, so measured
// deployments do genuine floating-point work.
package blas

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols values, row-major.
	Data []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic("blas: negative matrix dimension")
	}
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// RandomMatrix fills a matrix with deterministic pseudo-random values in
// [-1, 1).
func RandomMatrix(rows, cols int, seed int64) Matrix {
	m := NewMatrix(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// At returns element (i, j).
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	cp := Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(cp.Data, m.Data)
	return cp
}

// ErrShape reports incompatible operand shapes.
var ErrShape = errors.New("blas: incompatible matrix shapes")

func checkMul(a, b Matrix, c *Matrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("%w: (%dx%d)·(%dx%d)", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("%w: result is %dx%d, want %dx%d", ErrShape, c.Rows, c.Cols, a.Rows, b.Cols)
	}
	return nil
}

// Dgemm computes C = alpha·A·B + beta·C with the naive triple loop in ikj
// order (streaming-friendly for row-major data).
func Dgemm(alpha float64, a, b Matrix, beta float64, c *Matrix) error {
	if err := checkMul(a, b, c); err != nil {
		return err
	}
	if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*m : (i+1)*m]
		for kk := 0; kk < k; kk++ {
			av := alpha * arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*m : (kk+1)*m]
			for j := 0; j < m; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return nil
}

// DefaultBlock is the cache-blocking tile size used by DgemmBlocked when the
// caller passes 0.
const DefaultBlock = 64

// DgemmBlocked computes C = alpha·A·B + beta·C with square cache blocking.
func DgemmBlocked(alpha float64, a, b Matrix, beta float64, c *Matrix, block int) error {
	if err := checkMul(a, b, c); err != nil {
		return err
	}
	if block <= 0 {
		block = DefaultBlock
	}
	if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	for i0 := 0; i0 < n; i0 += block {
		imax := min(i0+block, n)
		for k0 := 0; k0 < k; k0 += block {
			kmax := min(k0+block, k)
			for j0 := 0; j0 < m; j0 += block {
				jmax := min(j0+block, m)
				for i := i0; i < imax; i++ {
					arow := a.Data[i*k : (i+1)*k]
					crow := c.Data[i*m : (i+1)*m]
					for kk := k0; kk < kmax; kk++ {
						av := alpha * arow[kk]
						if av == 0 {
							continue
						}
						brow := b.Data[kk*m : (kk+1)*m]
						for j := j0; j < jmax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
	return nil
}

// DgemmParallel computes C = alpha·A·B + beta·C splitting row bands across
// workers goroutines (0 means GOMAXPROCS). Each band is disjoint in C, so
// no synchronisation beyond the final join is needed.
func DgemmParallel(alpha float64, a, b Matrix, beta float64, c *Matrix, workers int) error {
	if err := checkMul(a, b, c); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 {
		return Dgemm(alpha, a, b, beta, c)
	}
	var wg sync.WaitGroup
	rowsPer := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := min(lo+rowsPer, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sub := Matrix{Rows: hi - lo, Cols: a.Cols, Data: a.Data[lo*a.Cols : hi*a.Cols]}
			csub := Matrix{Rows: hi - lo, Cols: c.Cols, Data: c.Data[lo*c.Cols : hi*c.Cols]}
			// Errors are impossible here: shapes were checked above.
			_ = Dgemm(alpha, sub, b, beta, &csub)
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// MatMul is the convenience form C = A·B using the blocked kernel.
func MatMul(a, b Matrix) (Matrix, error) {
	c := NewMatrix(a.Rows, b.Cols)
	if err := DgemmBlocked(1, a, b, 0, &c, 0); err != nil {
		return Matrix{}, err
	}
	return c, nil
}

// Flops returns the floating-point operation count of one DGEMM on the
// given shapes (2·n·m·k).
func Flops(n, m, k int) float64 {
	return 2 * float64(n) * float64(m) * float64(k)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
