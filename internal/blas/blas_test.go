package blas_test

import (
	"math"
	"testing"
	"testing/quick"

	"adept/internal/blas"
)

func matEqual(a, b blas.Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestDgemmKnownProduct(t *testing.T) {
	a := blas.Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := blas.Matrix{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := blas.NewMatrix(2, 2)
	if err := blas.Dgemm(1, a, b, 0, &c); err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("C = %v, want %v", c.Data, want)
		}
	}
}

func TestDgemmAlphaBeta(t *testing.T) {
	a := blas.Matrix{Rows: 1, Cols: 1, Data: []float64{3}}
	b := blas.Matrix{Rows: 1, Cols: 1, Data: []float64{5}}
	c := blas.Matrix{Rows: 1, Cols: 1, Data: []float64{10}}
	// C = 2·A·B + 0.5·C = 30 + 5 = 35.
	if err := blas.Dgemm(2, a, b, 0.5, &c); err != nil {
		t.Fatal(err)
	}
	if c.Data[0] != 35 {
		t.Errorf("C = %g, want 35", c.Data[0])
	}
}

func TestDgemmShapeErrors(t *testing.T) {
	a := blas.NewMatrix(2, 3)
	b := blas.NewMatrix(2, 3) // incompatible: needs 3 rows
	c := blas.NewMatrix(2, 3)
	if err := blas.Dgemm(1, a, b, 0, &c); err == nil {
		t.Error("incompatible shapes accepted")
	}
	b2 := blas.NewMatrix(3, 2)
	bad := blas.NewMatrix(3, 3) // wrong result shape
	if err := blas.Dgemm(1, a, b2, 0, &bad); err == nil {
		t.Error("wrong result shape accepted")
	}
}

func TestVariantsAgree(t *testing.T) {
	for _, n := range []int{1, 7, 33, 64, 65} {
		a := blas.RandomMatrix(n, n, int64(n))
		b := blas.RandomMatrix(n, n, int64(n)+100)
		ref := blas.NewMatrix(n, n)
		if err := blas.Dgemm(1, a, b, 0, &ref); err != nil {
			t.Fatal(err)
		}
		blocked := blas.NewMatrix(n, n)
		if err := blas.DgemmBlocked(1, a, b, 0, &blocked, 16); err != nil {
			t.Fatal(err)
		}
		if !matEqual(ref, blocked, 1e-9) {
			t.Errorf("n=%d: blocked kernel disagrees with naive", n)
		}
		par := blas.NewMatrix(n, n)
		if err := blas.DgemmParallel(1, a, b, 0, &par, 4); err != nil {
			t.Fatal(err)
		}
		if !matEqual(ref, par, 1e-9) {
			t.Errorf("n=%d: parallel kernel disagrees with naive", n)
		}
	}
}

func TestMatMulConvenience(t *testing.T) {
	a := blas.RandomMatrix(8, 8, 1)
	b := blas.RandomMatrix(8, 8, 2)
	c, err := blas.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ref := blas.NewMatrix(8, 8)
	if err := blas.Dgemm(1, a, b, 0, &ref); err != nil {
		t.Fatal(err)
	}
	if !matEqual(ref, c, 1e-9) {
		t.Error("MatMul disagrees with Dgemm")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := blas.RandomMatrix(3, 3, 1)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
}

func TestFlops(t *testing.T) {
	if got := blas.Flops(10, 10, 10); got != 2000 {
		t.Errorf("Flops = %g, want 2000", got)
	}
}

// Property: DGEMM distributes over addition: A·(B1+B2) = A·B1 + A·B2.
func TestPropertyDistributive(t *testing.T) {
	f := func(seed int64) bool {
		n := 6
		a := blas.RandomMatrix(n, n, seed)
		b1 := blas.RandomMatrix(n, n, seed+1)
		b2 := blas.RandomMatrix(n, n, seed+2)
		sum := blas.NewMatrix(n, n)
		for i := range sum.Data {
			sum.Data[i] = b1.Data[i] + b2.Data[i]
		}
		left := blas.NewMatrix(n, n)
		if err := blas.DgemmBlocked(1, a, sum, 0, &left, 4); err != nil {
			return false
		}
		right := blas.NewMatrix(n, n)
		if err := blas.DgemmBlocked(1, a, b1, 0, &right, 4); err != nil {
			return false
		}
		if err := blas.DgemmBlocked(1, a, b2, 1, &right, 4); err != nil {
			return false
		}
		return matEqual(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDgemmNaive128(b *testing.B) {
	x := blas.RandomMatrix(128, 128, 1)
	y := blas.RandomMatrix(128, 128, 2)
	c := blas.NewMatrix(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blas.Dgemm(1, x, y, 0, &c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDgemmBlocked128(b *testing.B) {
	x := blas.RandomMatrix(128, 128, 1)
	y := blas.RandomMatrix(128, 128, 2)
	c := blas.NewMatrix(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blas.DgemmBlocked(1, x, y, 0, &c, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDgemmParallel128(b *testing.B) {
	x := blas.RandomMatrix(128, 128, 1)
	y := blas.RandomMatrix(128, 128, 2)
	c := blas.NewMatrix(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blas.DgemmParallel(1, x, y, 0, &c, 0); err != nil {
			b.Fatal(err)
		}
	}
}
