package autonomic

import (
	"strconv"
	"strings"
	"time"

	"adept/internal/stats"
)

// Incident correlates one fault's MAPE-K lifecycle — detect → replan →
// patch → recovered — into a single record with measured recovery time.
// The controller opens an incident on the first acting verdict, merges
// further detections while it is open (a crash storm is one incident,
// not one per window), stamps the replan and patch milestones as they
// happen, and closes it on the first post-cooldown window whose
// analysis is clean. MTTR is measured twice: wall-clock (what an
// operator waits) and virtual seconds (window time the target
// reported, which is simulated time under cmd/adeptsoak).
type Incident struct {
	ID int `json:"id"`
	// Reasons accumulates the distinct Analyze findings merged into this
	// incident.
	Reasons     []string  `json:"reasons"`
	DetectCycle int       `json:"detect_cycle"`
	DetectedAt  time.Time `json:"detected_at"`
	// *Virtual fields are offsets on the target's own clock: the sum of
	// observed window durations since the controller started.
	DetectedVirtual float64   `json:"detected_virtual_s"`
	ReplanAt        time.Time `json:"replan_at,omitzero"`
	ReplanVirtual   float64   `json:"replan_virtual_s,omitempty"`
	PatchAt         time.Time `json:"patch_at,omitzero"`
	PatchVirtual    float64   `json:"patch_virtual_s,omitempty"`
	// PatchOps counts patch operations applied for this incident (across
	// merged detections); FullRedeploy marks the root-swap fallback;
	// NoChange marks a verdict that produced no actionable patch (e.g. a
	// sag with no better plan).
	PatchOps     int  `json:"patch_ops,omitempty"`
	FullRedeploy bool `json:"full_redeploy,omitempty"`
	NoChange     bool `json:"no_change,omitempty"`

	RecoveredAt      time.Time `json:"recovered_at,omitzero"`
	RecoveredVirtual float64   `json:"recovered_virtual_s,omitempty"`
	RecoverCycle     int       `json:"recover_cycle,omitempty"`
	Resolved         bool      `json:"resolved"`
	// MTTRSeconds is RecoveredAt-DetectedAt; MTTRVirtualSeconds is the
	// same interval on the virtual clock. Both are zero while open.
	MTTRSeconds        float64 `json:"mttr_s,omitempty"`
	MTTRVirtualSeconds float64 `json:"mttr_virtual_s,omitempty"`
}

// incidentDetect opens a new incident or merges reasons into the open
// one. Caller holds c.mu. Returns the incident ID.
func (c *Controller) incidentDetect(cycle int, reasons []string) int {
	if c.openIdx >= 0 {
		in := &c.incidents[c.openIdx]
		for _, r := range reasons {
			if !containsStr(in.Reasons, r) {
				in.Reasons = append(in.Reasons, r)
			}
		}
		return in.ID
	}
	c.incidents = append(c.incidents, Incident{
		ID:          len(c.incidents) + 1,
		Reasons:     append([]string(nil), reasons...),
		DetectCycle: cycle,
		//adeptvet:allow nondet wall-clock incident milestone; MTTR is measured on both clocks, planning reads neither
		DetectedAt:      time.Now().UTC(),
		DetectedVirtual: c.virtualNow,
	})
	c.openIdx = len(c.incidents) - 1
	return c.incidents[c.openIdx].ID
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// incidentMark applies fn to the open incident, if any, under c.mu.
func (c *Controller) incidentMark(fn func(*Incident)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openIdx >= 0 {
		fn(&c.incidents[c.openIdx])
	}
}

// incidentRecoverLocked closes the open incident at a clean
// post-cooldown window. Caller holds c.mu. Returns the closed incident
// (by value) and whether one was open.
func (c *Controller) incidentRecoverLocked(cycle int) (Incident, bool) {
	if c.openIdx < 0 {
		return Incident{}, false
	}
	in := &c.incidents[c.openIdx]
	//adeptvet:allow nondet wall-clock incident milestone; MTTR is measured on both clocks, planning reads neither
	in.RecoveredAt = time.Now().UTC()
	in.RecoveredVirtual = c.virtualNow
	in.RecoverCycle = cycle
	in.Resolved = true
	in.MTTRSeconds = in.RecoveredAt.Sub(in.DetectedAt).Seconds()
	in.MTTRVirtualSeconds = in.RecoveredVirtual - in.DetectedVirtual
	c.openIdx = -1
	return *in, true
}

// emitRecovered journals an incident closure. Called without c.mu.
func (c *Controller) emitRecovered(in Incident) {
	c.event("recovered", "incident recovered: "+strings.Join(in.Reasons, "; "), map[string]string{
		"incident":       strconv.Itoa(in.ID),
		"cycle":          strconv.Itoa(in.RecoverCycle),
		"detect_cycle":   strconv.Itoa(in.DetectCycle),
		"mttr_s":         strconv.FormatFloat(in.MTTRSeconds, 'f', 3, 64),
		"mttr_virtual_s": strconv.FormatFloat(in.MTTRVirtualSeconds, 'f', 3, 64),
	})
}

// Incidents returns a copy of every incident record, oldest first.
func (c *Controller) Incidents() []Incident {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Incident, len(c.incidents))
	copy(out, c.incidents)
	for i := range out {
		out[i].Reasons = append([]string(nil), out[i].Reasons...)
	}
	return out
}

// MTTRSummary aggregates resolved incidents' recovery times.
type MTTRSummary struct {
	Resolved   int     `json:"resolved"`
	Open       int     `json:"open"`
	MeanSec    float64 `json:"mean_s"`
	MedianSec  float64 `json:"p50_s"`
	P95Sec     float64 `json:"p95_s"`
	MaxSec     float64 `json:"max_s"`
	MeanVirt   float64 `json:"mean_virtual_s"`
	MedianVirt float64 `json:"p50_virtual_s"`
	P95Virt    float64 `json:"p95_virtual_s"`
	MaxVirt    float64 `json:"max_virtual_s"`
}

// SummarizeMTTR computes MTTR percentiles over the resolved incidents
// in the list, on both clocks.
func SummarizeMTTR(incidents []Incident) MTTRSummary {
	var wall, virt []float64
	var open int
	for _, in := range incidents {
		if !in.Resolved {
			open++
			continue
		}
		wall = append(wall, in.MTTRSeconds)
		virt = append(virt, in.MTTRVirtualSeconds)
	}
	s := MTTRSummary{Resolved: len(wall), Open: open}
	if len(wall) == 0 {
		return s
	}
	s.MeanSec = stats.Mean(wall)
	s.MedianSec = stats.Median(wall)
	s.P95Sec = stats.Percentile(wall, 95)
	s.MaxSec = stats.Max(wall)
	s.MeanVirt = stats.Mean(virt)
	s.MedianVirt = stats.Median(virt)
	s.P95Virt = stats.Percentile(virt, 95)
	s.MaxVirt = stats.Max(virt)
	return s
}
