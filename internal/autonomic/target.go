package autonomic

import (
	"context"

	"adept/internal/hierarchy"
)

// Observation is one monitoring window: what the Monitor stage sees of the
// managed system. All times are in the system's virtual seconds (simulated
// seconds for the sim target, wall-clock scaled by TimeScale for the live
// runtime), so throughputs are comparable to the §3 model's predictions.
type Observation struct {
	// Window is the measurement window length in virtual seconds.
	Window float64
	// Throughput is completed requests per virtual second.
	Throughput float64
	// Completed counts requests completed inside the window.
	Completed int64
	// Failed counts requests that observably failed inside the window
	// (e.g. timed out against a crashed node); targets without failure
	// accounting report zero.
	Failed int64
	// Served is the per-server completion count inside the window, for
	// every currently deployed server (zero entries included — a frozen
	// counter is the crash signal).
	Served map[string]int64
	// ServiceSeconds is the per-server mean observed service execution
	// time inside the window; servers that served nothing are absent.
	ServiceSeconds map[string]float64
}

// Target is the managed system the MAPE-K loop observes and reconfigures.
// Two implementations exist: SimTarget (deterministic discrete-event
// simulation, for benchmarking the loop end-to-end) and LiveTarget (the
// goroutine middleware runtime of internal/runtime).
type Target interface {
	// Observe runs one measurement window and reports it.
	Observe(ctx context.Context) (Observation, error)
	// Apply patches the running system in place, op by op, returning how
	// many ops were applied before any error.
	Apply(ctx context.Context, p hierarchy.Patch) (int, error)
	// Redeploy tears the system down and deploys h from scratch: the
	// fallback when a patch cannot express the change (root swap).
	// Implementations may refuse (the sim target does).
	Redeploy(ctx context.Context, h *hierarchy.Hierarchy) error
	// CanRedeploy reports whether Redeploy is supported. The planning step
	// consults it up front: on a target that cannot rebuild, a replanned
	// tree demanding a root swap is discarded in favour of the in-place
	// belief fix instead of failing the cycle at execute time.
	CanRedeploy() bool
}
