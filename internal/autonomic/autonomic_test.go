package autonomic_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"adept/internal/autonomic"
	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/runtime"
	"adept/internal/sim"
)

const (
	testBandwidth = 100.0
	testWapp      = 10.0
)

func testPlatform(s1Power float64) *platform.Platform {
	return &platform.Platform{
		Name:      "autonomic-test",
		Bandwidth: testBandwidth,
		Nodes: []platform.Node{
			{Name: "n0", Power: 400},
			{Name: "s1", Power: s1Power},
			{Name: "s2", Power: 150},
			{Name: "s3", Power: 150},
			{Name: "s4", Power: 100},
		},
	}
}

func planFor(t *testing.T, p *platform.Platform) *core.Plan {
	t.Helper()
	plan, err := core.NewHeuristic().Plan(core.Request{
		Platform: p,
		Costs:    model.DIETDefaults(),
		Wapp:     testWapp,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestDriftRecoveryEndToEnd is the acceptance scenario: a 2x background
// load lands on the most powerful serving node of a running (simulated)
// deployment; the MAPE-K loop must learn the drift, patch the live
// hierarchy without a full redeploy and with fewer ops than a redeploy
// would cost, and converge to at least 90% of the throughput a fresh
// replan against the drifted platform achieves.
func TestDriftRecoveryEndToEnd(t *testing.T) {
	nominal := testPlatform(200)
	plan := planFor(t, nominal)
	deployed := plan.Hierarchy
	t.Logf("initial plan:\n%s", deployed)

	// Find the most powerful server of the deployment — the drift victim.
	victim, victimPower := "", 0.0
	for _, id := range deployed.Servers() {
		if n := deployed.MustNode(id); n.Power > victimPower {
			victim, victimPower = n.Name, n.Power
		}
	}
	if victim == "" {
		t.Fatal("no servers in the initial plan")
	}

	const (
		clients  = 12
		window   = 10.0
		driftAt  = 40.0
		factor   = 2.0
		maxCycle = 40
	)
	managed, err := sim.NewManaged(deployed, model.DIETDefaults(), testBandwidth, testWapp, clients,
		[]sim.LoadPhase{{At: driftAt, Factors: map[string]float64{victim: factor}}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := autonomic.New(autonomic.Config{
		Platform:     nominal,
		Costs:        model.DIETDefaults(),
		Wapp:         testWapp,
		CrashWindows: -1, // a starved server is not a crash in this scenario
		MaxCycles:    maxCycle,
	}, &autonomic.SimTarget{Managed: managed, Window: window}, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Run(context.Background()); err != nil {
		t.Fatalf("control loop failed: %v (status: %+v)", err, ctrl.Status())
	}
	status := ctrl.Status()

	// The loop adapted, by patching, not redeploying.
	if len(status.Adaptations) == 0 {
		t.Fatalf("no adaptation happened: %+v", status)
	}
	if status.FullRedeploys != 0 {
		t.Fatalf("loop fell back to %d full redeploys", status.FullRedeploys)
	}

	// Reference: replan from scratch against the true drifted platform and
	// measure it in an identical, freshly saturated simulation.
	drifted := testPlatform(victimPower / factor)
	freshPlan := planFor(t, drifted)
	ref, err := sim.Measure(freshPlan.Hierarchy, model.DIETDefaults(), testBandwidth, testWapp,
		sim.Config{Clients: clients, Warmup: 20, Window: 60})
	if err != nil {
		t.Fatal(err)
	}

	// Patch ops strictly cheaper than a full redeploy.
	if status.PatchOpsApplied >= freshPlan.Hierarchy.Len() {
		t.Errorf("patching cost %d ops, a redeploy costs %d elements", status.PatchOpsApplied, freshPlan.Hierarchy.Len())
	}

	// Converged to >= 90% of the freshly replanned optimum.
	if status.Throughput < 0.9*ref.Throughput {
		t.Errorf("recovered throughput %.2f req/s < 90%% of replanned optimum %.2f req/s\nstatus: %+v",
			status.Throughput, ref.Throughput, status)
	}
	// The learned effective power converged near the truth.
	eff, ok := status.EffectivePowers[victim]
	if !ok {
		t.Fatalf("no effective power learned for %s: %v", victim, status.EffectivePowers)
	}
	if truth := victimPower / factor; eff < 0.75*truth || eff > 1.35*truth {
		t.Errorf("learned effective power %.0f far from truth %.0f", eff, truth)
	}
	t.Logf("recovered %.2f req/s vs replanned %.2f req/s with %d patch ops (%d adaptations); effective %s = %.0f MFlop/s",
		status.Throughput, ref.Throughput, status.PatchOpsApplied, len(status.Adaptations), victim, eff)
	for _, ev := range status.Adaptations {
		t.Logf("cycle %d: %v -> %v", ev.Cycle, ev.Reasons, ev.Ops)
	}

	// The drift maps to incident records with a full measured lifecycle:
	// detect -> replan -> patch -> recovered, MTTR on both clocks.
	incidents := ctrl.Incidents()
	if len(incidents) == 0 {
		t.Fatalf("adaptations happened but no incident was recorded")
	}
	resolved := 0
	for _, in := range incidents {
		t.Logf("incident %d: %v detect@c%d recovered@c%d mttr=%.2fs/%.1fvs",
			in.ID, in.Reasons, in.DetectCycle, in.RecoverCycle, in.MTTRSeconds, in.MTTRVirtualSeconds)
		if !in.Resolved {
			continue
		}
		resolved++
		if in.DetectedAt.IsZero() || in.ReplanAt.IsZero() || in.PatchAt.IsZero() || in.RecoveredAt.IsZero() {
			t.Errorf("incident %d missing lifecycle timestamps: %+v", in.ID, in)
		}
		if in.ReplanAt.Before(in.DetectedAt) || in.PatchAt.Before(in.ReplanAt) || in.RecoveredAt.Before(in.PatchAt) {
			t.Errorf("incident %d timestamps out of order: %+v", in.ID, in)
		}
		if in.MTTRVirtualSeconds <= 0 || in.MTTRSeconds < 0 {
			t.Errorf("incident %d has non-positive MTTR: %+v", in.ID, in)
		}
		if in.PatchOps == 0 && !in.FullRedeploy && !in.NoChange {
			t.Errorf("incident %d resolved without any recorded action: %+v", in.ID, in)
		}
	}
	if resolved == 0 {
		t.Errorf("no incident resolved; incidents: %+v", incidents)
	}
	sum := autonomic.SummarizeMTTR(incidents)
	if sum.Resolved != resolved || sum.MaxVirt <= 0 {
		t.Errorf("MTTR summary inconsistent: %+v", sum)
	}
}

// TestStableSystemNeverAdapts: without drift the loop must sit still.
func TestStableSystemNeverAdapts(t *testing.T) {
	nominal := testPlatform(200)
	plan := planFor(t, nominal)
	managed, err := sim.NewManaged(plan.Hierarchy, model.DIETDefaults(), testBandwidth, testWapp, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := autonomic.New(autonomic.Config{
		Platform:  nominal,
		Costs:     model.DIETDefaults(),
		Wapp:      testWapp,
		MaxCycles: 15,
	}, &autonomic.SimTarget{Managed: managed, Window: 10}, plan.Hierarchy)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	status := ctrl.Status()
	if len(status.Adaptations) != 0 || status.PatchOpsApplied != 0 {
		t.Fatalf("stable system got adapted: %+v", status.Adaptations)
	}
	if status.Cycles != 15 {
		t.Errorf("ran %d cycles, want 15", status.Cycles)
	}
}

// TestCrashRecoveryLive exercises the loop against the real goroutine
// middleware: a server crash (frozen ServedCounts, stalled scheduling
// phases) must be detected and evicted by a live patch, recovering
// throughput without a redeploy.
func TestCrashRecoveryLive(t *testing.T) {
	h := hierarchy.New("live-crash")
	root, _ := h.AddRoot("agent-0", 400)
	for _, name := range []string{"sed-a", "sed-b"} {
		if _, err := h.AddServer(root, name, 400); err != nil {
			t.Fatal(err)
		}
	}
	opts := runtime.Options{
		Costs:        model.DIETDefaults(),
		Bandwidth:    testBandwidth,
		Wapp:         16,
		TimeScale:    0.002,
		ReplyTimeout: 100 * time.Millisecond,
	}
	sys, err := runtime.Deploy(h, runtime.NewChanTransport(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { sys.Stop() }()

	target := autonomic.NewLiveTarget(sys, opts, 4, 300*time.Millisecond,
		func() runtime.Transport { return runtime.NewChanTransport() })
	pool := &platform.Platform{
		Name:      "live-crash",
		Bandwidth: testBandwidth,
		Nodes: []platform.Node{
			{Name: "agent-0", Power: 400},
			{Name: "sed-a", Power: 400},
			{Name: "sed-b", Power: 400},
		},
	}
	ctrl, err := autonomic.New(autonomic.Config{
		Platform:     pool,
		Costs:        model.DIETDefaults(),
		Wapp:         16,
		CrashWindows: 2,
		Hysteresis:   2,
		Cooldown:     1,
	}, target, h)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	// Two healthy windows to establish a baseline.
	for i := 0; i < 2; i++ {
		if err := ctrl.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	healthy := ctrl.Status().Throughput
	if err := sys.CrashServer("sed-a"); err != nil {
		t.Fatal(err)
	}
	// Give the loop up to 8 windows to detect, evict, and recover.
	for i := 0; i < 8; i++ {
		if err := ctrl.Step(ctx); err != nil {
			t.Fatalf("cycle after crash: %v", err)
		}
		if len(ctrl.Status().Adaptations) > 0 && ctrl.Status().Throughput > healthy/2 {
			break
		}
	}
	status := ctrl.Status()
	if len(status.Adaptations) == 0 {
		t.Fatalf("crash never detected: %+v", status)
	}
	found := false
	for _, ev := range status.Adaptations {
		for _, op := range ev.Ops {
			if strings.Contains(op, "remove sed-a") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no eviction of sed-a in adaptations: %+v", status.Adaptations)
	}
	snap, err := target.System().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range snap.Nodes() {
		if n.Name == "sed-a" {
			t.Fatalf("crashed server still deployed:\n%s", snap)
		}
	}
	if status.Throughput <= healthy/2 {
		t.Errorf("throughput did not recover: healthy %.1f, final %.1f req/s", healthy, status.Throughput)
	}
	t.Logf("healthy %.1f req/s, final %.1f req/s, adaptations: %+v", healthy, status.Throughput, status.Adaptations)

	// The eviction must be permanent knowledge: drive a second adaptation
	// (drift on the survivor) and check the planner never re-adds the
	// crashed node at its nominal power.
	if err := target.System().SetBackgroundLoad("sed-b", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := ctrl.Step(ctx); err != nil {
			t.Fatalf("cycle after drift: %v", err)
		}
		if len(ctrl.Status().Adaptations) > len(status.Adaptations) {
			break
		}
	}
	after := ctrl.Status()
	if len(after.Adaptations) == len(status.Adaptations) {
		t.Fatalf("drift on survivor never adapted: %+v", after)
	}
	snap, err = target.System().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range snap.Nodes() {
		if n.Name == "sed-a" {
			t.Fatalf("crashed server resurrected by a later replan:\n%s", snap)
		}
	}
}

// TestAnalyzerHysteresis: one bad window must not trigger; consecutive
// windows must.
func TestAnalyzerHysteresis(t *testing.T) {
	h := hierarchy.New("hyst")
	root, _ := h.AddRoot("a0", 400)
	if _, err := h.AddServer(root, "s1", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddServer(root, "s2", 100); err != nil {
		t.Fatal(err)
	}
	mon := autonomic.NewMonitor(1, testWapp) // alpha 1: latest window wins
	ana := autonomic.NewAnalyzer(0.25, 0.25, 2, 2)

	healthy := autonomic.Observation{
		Window: 10, Throughput: 20, Completed: 200,
		Served:         map[string]int64{"s1": 100, "s2": 100},
		ServiceSeconds: map[string]float64{"s1": 0.1, "s2": 0.1},
	}
	drifted := autonomic.Observation{
		Window: 10, Throughput: 15, Completed: 150,
		Served:         map[string]int64{"s1": 50, "s2": 100},
		ServiceSeconds: map[string]float64{"s1": 0.2, "s2": 0.1},
	}
	mon.Update(healthy)
	if v := ana.Analyze(h, healthy, mon); v.Act() {
		t.Fatalf("healthy window triggered: %+v", v)
	}
	mon.Update(drifted)
	if v := ana.Analyze(h, drifted, mon); v.Act() {
		t.Fatalf("single drifted window triggered (no hysteresis): %+v", v)
	}
	mon.Update(drifted)
	v := ana.Analyze(h, drifted, mon)
	if len(v.Drifted) == 0 {
		t.Fatalf("two drifted windows did not trigger: %+v", v)
	}
	if eff := v.Drifted["s1"]; eff < 45 || eff > 55 {
		t.Errorf("effective power %v, want ~50", v.Drifted)
	}
}

// TestAnalyzerCrashDetection: frozen counters flag after CrashWindows.
func TestAnalyzerCrashDetection(t *testing.T) {
	h := hierarchy.New("crash")
	root, _ := h.AddRoot("a0", 400)
	if _, err := h.AddServer(root, "s1", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddServer(root, "s2", 100); err != nil {
		t.Fatal(err)
	}
	mon := autonomic.NewMonitor(0.5, testWapp)
	ana := autonomic.NewAnalyzer(0.25, 0, 2, 2)
	obs := autonomic.Observation{
		Window: 10, Throughput: 10, Completed: 100,
		Served:         map[string]int64{"s1": 0, "s2": 100},
		ServiceSeconds: map[string]float64{"s2": 0.1},
	}
	if v := ana.Analyze(h, obs, mon); len(v.Crashed) != 0 {
		t.Fatalf("one frozen window flagged a crash: %+v", v)
	}
	v := ana.Analyze(h, obs, mon)
	if len(v.Crashed) != 1 || v.Crashed[0] != "s1" {
		t.Fatalf("crash not flagged after 2 windows: %+v", v)
	}
	// An idle platform (nothing completed at all) must not flag crashes.
	ana2 := autonomic.NewAnalyzer(0.25, 0, 2, 2)
	idle := autonomic.Observation{Window: 10, Served: map[string]int64{"s1": 0, "s2": 0}}
	ana2.Analyze(h, idle, mon)
	if v := ana2.Analyze(h, idle, mon); len(v.Crashed) != 0 {
		t.Fatalf("idle platform flagged crashes: %+v", v)
	}
}
