package autonomic

import (
	"context"
	"errors"

	"adept/internal/hierarchy"
	"adept/internal/sim"
)

// SimTarget adapts a managed simulation (internal/sim.Managed) to the
// control loop: measurement windows advance the deterministic event clock,
// so the loop can be exercised and benchmarked end-to-end with injected
// drift scenarios and zero wall-clock noise.
type SimTarget struct {
	// Managed is the running simulated deployment.
	Managed *sim.Managed
	// Window is the measurement window in simulated seconds.
	Window float64
}

// Observe implements Target by advancing the simulation one window.
func (t *SimTarget) Observe(ctx context.Context) (Observation, error) {
	if err := ctx.Err(); err != nil {
		return Observation{}, err
	}
	ws, err := t.Managed.Observe(t.Window)
	if err != nil {
		return Observation{}, err
	}
	return Observation{
		Window:         ws.Window,
		Throughput:     ws.Throughput,
		Completed:      ws.Completed,
		Failed:         ws.Failed,
		Served:         ws.Served,
		ServiceSeconds: ws.ServiceSeconds,
	}, nil
}

// Apply implements Target.
func (t *SimTarget) Apply(ctx context.Context, p hierarchy.Patch) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return t.Managed.ApplyPatch(p)
}

// Redeploy implements Target. A simulated deployment cannot be rebuilt
// mid-run (its clients and scenario are bound to the engine), so a root
// swap is refused; the controller reports the failure and keeps serving on
// the old tree.
func (t *SimTarget) Redeploy(ctx context.Context, h *hierarchy.Hierarchy) error {
	return errors.New("autonomic: sim target does not support full redeploy")
}

// CanRedeploy implements Target: a simulated deployment cannot be rebuilt.
func (t *SimTarget) CanRedeploy() bool { return false }
