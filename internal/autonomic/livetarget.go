package autonomic

import (
	"context"
	"fmt"
	"sync"
	"time"

	"adept/internal/hierarchy"
	"adept/internal/runtime"
)

// LiveTarget adapts a deployed runtime.System to the control loop: each
// Observe drives a cohort of closed-loop clients for a real-time window
// and drains the per-server service-time accumulators; Apply uses the
// system's live reconfiguration primitives.
type LiveTarget struct {
	// Clients is the closed-loop client count per measurement window.
	Clients int
	// Window is the real-time measurement window.
	Window time.Duration
	// Opts are the runtime options the system was deployed with (used to
	// convert to virtual seconds and to redeploy).
	Opts runtime.Options
	// NewTransport builds a fresh transport for the full-redeploy
	// fallback; nil disables redeploy.
	NewTransport func() runtime.Transport

	mu  sync.Mutex
	sys *runtime.System
}

// NewLiveTarget wraps a deployed system.
func NewLiveTarget(sys *runtime.System, opts runtime.Options, clients int, window time.Duration, newTransport func() runtime.Transport) *LiveTarget {
	return &LiveTarget{
		Clients:      clients,
		Window:       window,
		Opts:         opts,
		NewTransport: newTransport,
		sys:          sys,
	}
}

// System returns the currently managed system (it changes after a full
// redeploy).
func (t *LiveTarget) System() *runtime.System {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sys
}

// Observe implements Target: one client-driven measurement window.
func (t *LiveTarget) Observe(ctx context.Context) (Observation, error) {
	sys := t.System()
	before := sys.ServedCounts()
	stats, err := sys.RunClients(ctx, t.Clients, t.Window)
	if err != nil {
		return Observation{}, err
	}
	after := sys.ServedCounts()
	served := make(map[string]int64, len(after))
	//adeptvet:allow maporder per-key delta into an unordered map; no cross-key interaction
	for name, n := range after {
		served[name] = n - before[name]
	}
	window := stats.Elapsed.Seconds()
	if t.Opts.TimeScale > 0 {
		window = stats.Elapsed.Seconds() / t.Opts.TimeScale
	}
	obs := Observation{
		Window:         window,
		Throughput:     stats.Throughput,
		Completed:      stats.Completed,
		Served:         served,
		ServiceSeconds: make(map[string]float64),
	}
	//adeptvet:allow maporder per-key ratio into an unordered map; no cross-key interaction
	for name, st := range sys.TakeServiceStats() {
		if st.Count > 0 {
			obs.ServiceSeconds[name] = st.Seconds / float64(st.Count)
		}
	}
	return obs, nil
}

// Apply implements Target via the runtime's live patch primitives.
func (t *LiveTarget) Apply(ctx context.Context, p hierarchy.Patch) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return t.System().ApplyPatch(p)
}

// CanRedeploy implements Target: possible whenever a transport factory
// was provided.
func (t *LiveTarget) CanRedeploy() bool { return t.NewTransport != nil }

// Redeploy implements Target: stop the old system, deploy h on a fresh
// transport, and swap.
func (t *LiveTarget) Redeploy(ctx context.Context, h *hierarchy.Hierarchy) error {
	if t.NewTransport == nil {
		return fmt.Errorf("autonomic: live target has no transport factory; redeploy disabled")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	next, err := runtime.Deploy(h, t.NewTransport(), t.Opts)
	if err != nil {
		return err
	}
	t.mu.Lock()
	old := t.sys
	t.sys = next
	t.mu.Unlock()
	old.Stop()
	return nil
}
