// Package autonomic closes the deployment loop the paper leaves open: a
// MAPE-K controller over a deployed middleware system. The paper plans a
// deployment once, offline, for a fixed platform and a known Wapp; its own
// experiments (§5.3) heterogenise the platform with background load, and
// its future work asks for statistical forecasting of execution times.
// This package combines both: Monitor samples observed throughput and
// per-server service times (feeding the internal/forecast estimators to
// learn effective per-node powers), Analyze runs a drift detector with
// hysteresis (power drift, server crash, throughput sag), Plan re-invokes
// a planner — by default the internal/portfolio race of every stock
// planner — against the updated platform, and Execute applies the
// replanned tree as a minimal hierarchy.Diff patch to the running system
// instead of redeploying from scratch.
package autonomic

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/obs"
	"adept/internal/platform"
	"adept/internal/portfolio"
	"adept/internal/workload"
)

// Config tunes the control loop.
type Config struct {
	// Planner computes replacement deployments (default: the portfolio
	// race, whose throughput dominates every individual stock planner).
	Planner core.Planner
	// Platform is the nominal node pool (powers as benchmarked at deploy
	// time) plus the link bandwidth. Replanning starts from this pool with
	// learned effective powers substituted and crashed nodes removed.
	Platform *platform.Platform
	// Costs are the middleware cost parameters (Table 3).
	Costs model.Costs
	// Wapp is the nominal service cost in MFlop.
	Wapp float64
	// Demand optionally caps the planned throughput.
	Demand workload.Demand

	// Alpha is the EWMA smoothing of the per-server service-time
	// estimators (default 0.5: drift should be learned in a few windows).
	Alpha float64
	// DriftTolerance is the relative effective-vs-rated power deviation
	// that counts as drift (default 0.25).
	DriftTolerance float64
	// SagTolerance is the relative throughput drop below baseline that
	// counts as a sag (0 means the default 0.25; negative disables sag
	// detection).
	SagTolerance float64
	// Hysteresis is how many consecutive flagged windows are needed before
	// the loop reacts (default 2).
	Hysteresis int
	// CrashWindows is how many consecutive zero-completion windows mark a
	// server as crashed (0 means the default 3; negative disables crash
	// detection).
	CrashWindows int
	// MinGain is the minimum relative predicted-throughput improvement a
	// *structural* change must promise (default 0.05). Pure belief fixes
	// (SetPower) and crash evictions are applied regardless — the first is
	// nearly free, the second is an availability action.
	MinGain float64
	// Cooldown is how many windows the loop observes without reacting
	// after an adaptation, letting the estimators re-learn (default 2).
	Cooldown int
	// MaxCycles bounds Run (0 = until the context is cancelled).
	MaxCycles int

	// Journal, when non-nil, receives structured decision events
	// (detections with hysteresis state, replan outcomes, patch
	// applications, redeploys, cycle errors) for GET /v1/autonomic/events.
	Journal *obs.Journal
	// Logger receives the loop's structured logs; nil means discard.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Planner == nil {
		c.Planner = portfolio.New()
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.DriftTolerance <= 0 {
		c.DriftTolerance = 0.25
	}
	if c.SagTolerance < 0 {
		c.SagTolerance = 0
	} else if c.SagTolerance == 0 {
		c.SagTolerance = 0.25
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	if c.CrashWindows < 0 {
		c.CrashWindows = 0
	} else if c.CrashWindows == 0 {
		c.CrashWindows = 3
	}
	if c.MinGain <= 0 {
		c.MinGain = 0.05
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

func (c Config) validate() error {
	if c.Platform == nil {
		return errors.New("autonomic: nil platform")
	}
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	if c.Wapp <= 0 {
		return fmt.Errorf("autonomic: Wapp must be positive, got %g", c.Wapp)
	}
	return nil
}

// AdaptationEvent records one applied reconfiguration.
type AdaptationEvent struct {
	// Cycle is the monitoring cycle the adaptation happened in.
	Cycle int `json:"cycle"`
	// At is the wall-clock time of the adaptation.
	At time.Time `json:"at"`
	// Reasons are the Analyze findings that triggered it.
	Reasons []string `json:"reasons"`
	// Ops renders the applied patch operations.
	Ops []string `json:"ops"`
	// FullRedeploy marks the root-swap fallback instead of a patch.
	FullRedeploy bool `json:"full_redeploy,omitempty"`
	// PredictedRhoBefore/After are the §3 model throughputs of the old and
	// new trees, both evaluated with the learned effective powers.
	PredictedRhoBefore float64 `json:"predicted_rho_before"`
	PredictedRhoAfter  float64 `json:"predicted_rho_after"`
	// Error records a partially applied patch.
	Error string `json:"error,omitempty"`
}

// Status is a snapshot of the controller for reporting.
type Status struct {
	Running         bool               `json:"running"`
	Cycles          int                `json:"cycles"`
	Adaptations     []AdaptationEvent  `json:"adaptations"`
	PatchOpsApplied int                `json:"patch_ops_applied"`
	FullRedeploys   int                `json:"full_redeploys"`
	Throughput      float64            `json:"throughput_rps"`
	Baseline        float64            `json:"baseline_rps"`
	EffectivePowers map[string]float64 `json:"effective_powers"`
	Hierarchy       string             `json:"hierarchy"`
	Elements        int                `json:"elements"`
	LastError       string             `json:"last_error,omitempty"`
}

// Controller runs the MAPE-K loop over one Target.
type Controller struct {
	cfg    Config
	target Target

	mu       sync.Mutex
	cur      *hierarchy.Hierarchy
	mon      *Monitor
	ana      *Analyzer
	crashed  map[string]bool // evicted nodes, excluded from every later replan
	running  bool
	cycles   int
	cooldown int
	history  []AdaptationEvent
	patchOps int
	redeploy int
	lastObs  Observation
	lastErr  string

	// virtualNow is the target's own clock: the sum of observed window
	// durations (simulated seconds under a sim target).
	virtualNow float64
	incidents  []Incident
	openIdx    int // index of the open incident in incidents, -1 if none
}

// New builds a controller managing target, whose currently deployed tree
// is deployed (the controller clones it; rated powers evolve with applied
// SetPower patches).
func New(cfg Config, target Target, deployed *hierarchy.Hierarchy) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if target == nil {
		return nil, errors.New("autonomic: nil target")
	}
	if err := deployed.Validate(hierarchy.Structural); err != nil {
		return nil, fmt.Errorf("autonomic: deployed tree: %w", err)
	}
	return &Controller{
		cfg:     cfg,
		target:  target,
		cur:     deployed.Clone(),
		mon:     NewMonitor(cfg.Alpha, cfg.Wapp),
		ana:     NewAnalyzer(cfg.DriftTolerance, cfg.SagTolerance, cfg.Hysteresis, cfg.CrashWindows),
		crashed: make(map[string]bool),
		openIdx: -1,
	}, nil
}

// event journals one decision and mirrors it to the structured log.
// Safe with a nil journal (events drop) and unconfigured logger.
func (c *Controller) event(kind, msg string, fields map[string]string) {
	if c.cfg.Journal != nil {
		c.cfg.Journal.Append(kind, msg, fields)
	}
	//adeptvet:allow ctxflow log-enablement probe; slog's context is for handler plumbing, there is no request here
	if !c.cfg.Logger.Enabled(context.Background(), slog.LevelInfo) {
		return
	}
	attrs := make([]slog.Attr, 0, len(fields)+2)
	attrs = append(attrs, slog.String("kind", kind))
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		attrs = append(attrs, slog.String(k, fields[k]))
	}
	//adeptvet:allow ctxflow journal mirror to the structured log; decision events outlive any one request context
	c.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
}

// streakSummary renders a streak map compactly ("node3:2,node7:1").
func streakSummary(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+":"+strconv.Itoa(m[k]))
	}
	return strings.Join(parts, ",")
}

// Hierarchy returns the controller's view of the deployed tree.
func (c *Controller) Hierarchy() *hierarchy.Hierarchy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur.Clone()
}

// Status snapshots the controller state.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Running:         c.running,
		Cycles:          c.cycles,
		Adaptations:     append([]AdaptationEvent(nil), c.history...),
		PatchOpsApplied: c.patchOps,
		FullRedeploys:   c.redeploy,
		Throughput:      c.lastObs.Throughput,
		Baseline:        c.ana.Baseline(),
		EffectivePowers: c.mon.EffectivePowers(),
		Hierarchy:       c.cur.String(),
		Elements:        c.cur.Len(),
		LastError:       c.lastErr,
	}
}

// Run executes MAPE cycles until the context is cancelled, MaxCycles is
// reached, or three consecutive cycles fail.
func (c *Controller) Run(ctx context.Context) error {
	c.mu.Lock()
	c.running = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.running = false
		c.mu.Unlock()
	}()
	consecutive := 0
	for i := 0; c.cfg.MaxCycles == 0 || i < c.cfg.MaxCycles; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.Step(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			consecutive++
			c.mu.Lock()
			c.lastErr = err.Error()
			cycle := c.cycles
			c.mu.Unlock()
			c.event("cycle_error", "MAPE cycle failed", map[string]string{
				"cycle":       strconv.Itoa(cycle),
				"error":       err.Error(),
				"consecutive": strconv.Itoa(consecutive),
			})
			if consecutive >= 3 {
				return fmt.Errorf("autonomic: %d consecutive cycle failures, last: %w", consecutive, err)
			}
			continue
		}
		consecutive = 0
	}
	return nil
}

// Step runs one full MAPE cycle: observe a window, update the knowledge
// base, analyse for drift, and — when warranted — replan and patch.
func (c *Controller) Step(ctx context.Context) error {
	window, err := c.target.Observe(ctx)
	if err != nil {
		return fmt.Errorf("autonomic: monitor: %w", err)
	}

	c.mu.Lock()
	c.cycles = c.cycles + 1
	cycle := c.cycles
	c.lastObs = window
	c.virtualNow += window.Window
	c.mon.Update(window)
	if c.cooldown > 0 {
		c.cooldown--
		c.mu.Unlock()
		return nil
	}
	verdict := c.ana.Analyze(c.cur, window, c.mon)
	if !verdict.Act() {
		// A clean post-cooldown window closes the open incident, if any:
		// the system has measurably recovered from whatever was detected.
		closed, ok := c.incidentRecoverLocked(cycle)
		c.mu.Unlock()
		if ok {
			c.emitRecovered(closed)
		}
		return nil
	}
	incidentID := c.incidentDetect(cycle, verdict.Reasons)
	driftStreaks, zeroStreaks, sagStreak := c.ana.Streaks()
	cur := c.cur.Clone()
	// Once evicted, a crashed node stays out of every future replan: the
	// verdict only carries this cycle's findings, the ban is permanent
	// knowledge.
	for _, name := range verdict.Crashed {
		c.crashed[name] = true
	}
	crashed := make(map[string]bool, len(c.crashed))
	//adeptvet:allow maporder set copy into an unordered map; the replanner re-sorts the pool it filters with this
	for name := range c.crashed {
		crashed[name] = true
	}
	c.mu.Unlock()

	c.event("detect", strings.Join(verdict.Reasons, "; "), map[string]string{
		"cycle":          strconv.Itoa(cycle),
		"incident":       strconv.Itoa(incidentID),
		"drifted":        strconv.Itoa(len(verdict.Drifted)),
		"crashed":        strconv.Itoa(len(verdict.Crashed)),
		"sagging":        strconv.FormatBool(verdict.Sagging),
		"drift_streaks":  streakSummary(driftStreaks),
		"zero_streaks":   streakSummary(zeroStreaks),
		"sag_streak":     strconv.Itoa(sagStreak),
		"throughput_rps": strconv.FormatFloat(window.Throughput, 'f', 3, 64),
	})

	targetTree, before, after, err := c.plan(ctx, cur, crashed, verdict)
	if err != nil {
		return err
	}
	c.incidentMark(func(in *Incident) {
		if in.ReplanAt.IsZero() {
			//adeptvet:allow nondet wall-clock incident milestone; journal metadata, never an input to planning
			in.ReplanAt = time.Now().UTC()
			in.ReplanVirtual = c.virtualNow
		}
	})
	c.event("replan", "replan evaluated", map[string]string{
		"cycle":      strconv.Itoa(cycle),
		"rho_before": strconv.FormatFloat(before, 'f', 3, 64),
		"rho_after":  strconv.FormatFloat(after, 'f', 3, 64),
	})
	return c.execute(ctx, cycle, cur, targetTree, verdict, before, after)
}

// plan is the P of MAPE: build the honest platform view (effective powers
// substituted, crashed nodes evicted), replan, and decide between the
// replanned structure and an in-place belief fix.
func (c *Controller) plan(ctx context.Context, cur *hierarchy.Hierarchy, crashed map[string]bool, v Verdict) (target *hierarchy.Hierarchy, rhoBefore, rhoAfter float64, err error) {
	// Rated powers of deployed elements carry the beliefs already patched
	// in; pool nodes outside the deployment keep their nominal benchmark.
	ratedByName := make(map[string]float64, cur.Len())
	cur.Walk(func(n hierarchy.Node) { ratedByName[n.Name] = n.Power })

	pool := &platform.Platform{
		Name:      c.cfg.Platform.Name,
		Bandwidth: c.cfg.Platform.Bandwidth,
	}
	for _, n := range c.cfg.Platform.Nodes {
		if crashed[n.Name] {
			continue
		}
		p := n.Power
		if rated, ok := ratedByName[n.Name]; ok {
			p = rated
		}
		if eff, ok := v.Drifted[n.Name]; ok {
			p = eff
		}
		// Powers drift with learned beliefs; links are physical and keep
		// the platform's per-node bandwidth.
		pool.Nodes = append(pool.Nodes, platform.Node{Name: n.Name, Power: p, LinkBandwidth: n.LinkBandwidth})
	}

	// The honest view of the current deployment: same structure, learned
	// powers, crashed servers excluded from service capacity. (A tree with
	// a crashed server cannot be evaluated honestly by the §3 model — the
	// eviction is forced regardless, so the comparison is skipped then.)
	honest := cur.Clone()
	for _, n := range honest.Nodes() {
		if eff, ok := v.Drifted[n.Name]; ok {
			if err := honest.SetBacking(n.ID, n.Name, eff); err != nil {
				return nil, 0, 0, fmt.Errorf("autonomic: %w", err)
			}
		}
	}
	honestEval := honest.Evaluate(c.cfg.Costs, c.cfg.Platform.Bandwidth, c.cfg.Wapp)
	rhoBefore = honestEval.Rho

	req := core.Request{
		Platform: pool,
		Costs:    c.cfg.Costs,
		Wapp:     c.cfg.Wapp,
		Demand:   c.cfg.Demand,
	}
	plan, err := c.cfg.Planner.PlanContext(ctx, req)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("autonomic: replan: %w", err)
	}
	rhoAfter = plan.Eval.Rho

	// Crash evictions always take the replanned tree (the crashed node
	// must leave). Otherwise a structural change must beat the honest
	// current deployment by MinGain; if it does not — or if it would swap
	// the root on a target that cannot rebuild from scratch — the
	// adaptation reduces to teaching the live system its effective powers.
	if len(v.Crashed) > 0 || plan.Eval.Rho > rhoBefore*(1+c.cfg.MinGain) {
		rootSwap := plan.Hierarchy.MustNode(plan.Hierarchy.Root()).Name != cur.MustNode(cur.Root()).Name
		if rootSwap && !c.target.CanRedeploy() {
			if len(v.Crashed) == 0 {
				return honest, rhoBefore, honestEval.Rho, nil
			}
			// The eviction is mandatory but the target cannot rebuild from
			// scratch, so the replanned root swap is unreachable: drop the
			// crashed leaves from the honest current tree in place instead.
			// Less throughput than the replanned shape, but expressible as
			// a patch the live system can absorb.
			evicted, err := evictLeaves(honest, v.Crashed)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("autonomic: evict without redeploy: %w", err)
			}
			ev := evicted.Evaluate(c.cfg.Costs, c.cfg.Platform.Bandwidth, c.cfg.Wapp)
			return evicted, rhoBefore, ev.Rho, nil
		}
		return plan.Hierarchy, rhoBefore, rhoAfter, nil
	}
	return honest, rhoBefore, honestEval.Rho, nil
}

// evictLeaves removes the named server leaves from h (as a patched
// copy). Names no longer present are skipped (a previous patch may
// already have dropped them).
func evictLeaves(h *hierarchy.Hierarchy, names []string) (*hierarchy.Hierarchy, error) {
	present := make(map[string]bool, h.Len())
	h.Walk(func(n hierarchy.Node) { present[n.Name] = true })
	var ops []hierarchy.Op
	for _, name := range names {
		if present[name] {
			ops = append(ops, hierarchy.Op{Kind: hierarchy.OpRemove, Name: name})
		}
	}
	if len(ops) == 0 {
		return h.Clone(), nil
	}
	return hierarchy.Apply(h, hierarchy.Patch{Ops: ops})
}

// execute is the E of MAPE: diff, patch the live system, fall back to a
// full redeploy only when the root changed.
func (c *Controller) execute(ctx context.Context, cycle int, cur, target *hierarchy.Hierarchy, v Verdict, rhoBefore, rhoAfter float64) error {
	patch, err := hierarchy.Diff(cur, target)
	if errors.Is(err, hierarchy.ErrRootChanged) {
		return c.fullRedeploy(ctx, cycle, target, v, rhoBefore, rhoAfter)
	}
	if err != nil {
		return fmt.Errorf("autonomic: diff: %w", err)
	}
	if patch.Len() == 0 {
		// Nothing to change (e.g. a sag with no better plan): reset the sag
		// detector so the finding does not re-fire every window, but keep
		// the drift/crash streaks building.
		c.mu.Lock()
		c.ana.ResetSag()
		if c.openIdx >= 0 {
			c.incidents[c.openIdx].NoChange = true
		}
		c.mu.Unlock()
		c.event("no_change", "verdict produced no actionable patch", map[string]string{
			"cycle": strconv.Itoa(cycle),
		})
		return nil
	}

	applied, applyErr := c.target.Apply(ctx, patch)
	// Advance the controller's tree by exactly the applied prefix so the
	// knowledge base tracks the live system even on partial failure.
	newCur, reErr := hierarchy.Apply(cur, hierarchy.Patch{Ops: patch.Ops[:applied]})
	if reErr != nil {
		return fmt.Errorf("autonomic: state tracking: %w", reErr)
	}

	event := AdaptationEvent{
		Cycle: cycle,
		//adeptvet:allow nondet wall-clock history stamp; journal metadata, never an input to planning
		At:                 time.Now(),
		Reasons:            v.Reasons,
		PredictedRhoBefore: rhoBefore,
		PredictedRhoAfter:  rhoAfter,
	}
	for _, op := range patch.Ops[:applied] {
		event.Ops = append(event.Ops, op.String())
	}
	if applyErr != nil {
		event.Error = applyErr.Error()
	}

	c.mu.Lock()
	c.cur = newCur
	c.history = append(c.history, event)
	c.patchOps += applied
	c.cooldown = c.cfg.Cooldown
	c.ana.Reset()
	for _, name := range v.Crashed {
		c.mon.Forget(name)
	}
	if c.openIdx >= 0 {
		in := &c.incidents[c.openIdx]
		if in.PatchAt.IsZero() {
			in.PatchAt = event.At.UTC()
			in.PatchVirtual = c.virtualNow
		}
		in.PatchOps += applied
	}
	c.mu.Unlock()

	fields := map[string]string{
		"cycle":       strconv.Itoa(cycle),
		"ops_applied": strconv.Itoa(applied),
		"ops_total":   strconv.Itoa(patch.Len()),
		"rho_before":  strconv.FormatFloat(rhoBefore, 'f', 3, 64),
		"rho_after":   strconv.FormatFloat(rhoAfter, 'f', 3, 64),
	}
	if applyErr != nil {
		fields["error"] = applyErr.Error()
	}
	c.event("patch", "patch applied: "+strings.Join(v.Reasons, "; "), fields)

	if applyErr != nil {
		return fmt.Errorf("autonomic: patch partially applied (%d/%d ops): %w", applied, patch.Len(), applyErr)
	}
	return nil
}

// fullRedeploy is the teardown fallback for changes a patch cannot express.
func (c *Controller) fullRedeploy(ctx context.Context, cycle int, target *hierarchy.Hierarchy, v Verdict, rhoBefore, rhoAfter float64) error {
	if err := c.target.Redeploy(ctx, target); err != nil {
		return fmt.Errorf("autonomic: full redeploy: %w", err)
	}
	c.mu.Lock()
	c.cur = target.Clone()
	c.history = append(c.history, AdaptationEvent{
		Cycle: cycle,
		//adeptvet:allow nondet wall-clock history stamp; journal metadata, never an input to planning
		At:                 time.Now(),
		Reasons:            v.Reasons,
		FullRedeploy:       true,
		PredictedRhoBefore: rhoBefore,
		PredictedRhoAfter:  rhoAfter,
	})
	c.redeploy++
	c.cooldown = c.cfg.Cooldown
	c.ana.Reset()
	if c.openIdx >= 0 {
		in := &c.incidents[c.openIdx]
		if in.PatchAt.IsZero() {
			//adeptvet:allow nondet wall-clock incident milestone; journal metadata, never an input to planning
			in.PatchAt = time.Now().UTC()
			in.PatchVirtual = c.virtualNow
		}
		in.FullRedeploy = true
	}
	c.mu.Unlock()
	c.event("redeploy", "full redeploy: "+strings.Join(v.Reasons, "; "), map[string]string{
		"cycle":      strconv.Itoa(cycle),
		"rho_before": strconv.FormatFloat(rhoBefore, 'f', 3, 64),
		"rho_after":  strconv.FormatFloat(rhoAfter, 'f', 3, 64),
	})
	return nil
}
