package autonomic

import (
	"fmt"
	"sort"

	"adept/internal/hierarchy"
)

// Analyzer is the A of MAPE-K: a drift detector with hysteresis. Three
// signals can trigger replanning:
//
//   - power drift: a server's learned effective power deviates from its
//     rated power by more than DriftTolerance for Hysteresis consecutive
//     windows (the §5.3 background-load heterogenisation happening live);
//   - crash: a deployed server's completion counter stays frozen for
//     CrashWindows consecutive windows while the platform as a whole keeps
//     completing requests (the CrashServer fault path);
//   - throughput sag: measured throughput falls more than SagTolerance
//     below its slow-moving baseline for Hysteresis consecutive windows
//     (demand shifts and drifts the per-server signals miss).
//
// Hysteresis is the loop's stability mechanism: a single noisy window
// never triggers a reconfiguration, and the post-adaptation cooldown in
// the controller keeps the loop from chasing its own transients.
type Analyzer struct {
	driftTol     float64
	sagTol       float64
	hysteresis   int
	crashWindows int

	driftStreak map[string]int
	zeroStreak  map[string]int
	sagStreak   int

	baseline     float64 // slow EWMA of observed throughput
	baselineSeen bool
}

// baselineAlpha smooths the throughput baseline much more slowly than the
// per-server estimators, so a sag is measured against pre-drift normality.
const baselineAlpha = 0.1

// NewAnalyzer builds the drift detector.
func NewAnalyzer(driftTol, sagTol float64, hysteresis, crashWindows int) *Analyzer {
	return &Analyzer{
		driftTol:     driftTol,
		sagTol:       sagTol,
		hysteresis:   hysteresis,
		crashWindows: crashWindows,
		driftStreak:  make(map[string]int),
		zeroStreak:   make(map[string]int),
	}
}

// Verdict is the analyzer's conclusion for one window.
type Verdict struct {
	// Drifted maps flagged server names to their learned effective powers.
	Drifted map[string]float64
	// Crashed lists servers whose counters froze.
	Crashed []string
	// Sagging reports a sustained throughput drop below baseline.
	Sagging bool
	// Reasons renders the findings for the adaptation history.
	Reasons []string
}

// Act reports whether the verdict warrants a planning run.
func (v Verdict) Act() bool {
	return len(v.Drifted) > 0 || len(v.Crashed) > 0 || v.Sagging
}

// Analyze folds one window into the streak counters and returns the
// verdict. cur is the currently deployed tree (rated powers); mon holds
// the learned effective powers.
func (a *Analyzer) Analyze(cur *hierarchy.Hierarchy, obs Observation, mon *Monitor) Verdict {
	v := Verdict{Drifted: make(map[string]float64)}

	rated := make(map[string]float64)
	cur.Walk(func(n hierarchy.Node) {
		if n.Role == hierarchy.RoleServer {
			rated[n.Name] = n.Power
		}
	})

	// Power drift, per deployed server with a learned effective power.
	names := make([]string, 0, len(rated))
	for name := range rated {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		eff, ok := mon.EffectivePower(name)
		if !ok {
			continue
		}
		dev := (eff - rated[name]) / rated[name]
		if dev < 0 {
			dev = -dev
		}
		if dev > a.driftTol {
			a.driftStreak[name]++
		} else {
			a.driftStreak[name] = 0
		}
		if a.driftStreak[name] >= a.hysteresis {
			v.Drifted[name] = eff
			v.Reasons = append(v.Reasons, fmt.Sprintf("drift: %s rated %.0f, effective %.0f MFlop/s", name, rated[name], eff))
		}
	}

	// Crash: frozen counter while the platform still completes work.
	if a.crashWindows > 0 && obs.Completed > 0 {
		for _, name := range names {
			served, deployed := obs.Served[name]
			if !deployed {
				continue
			}
			if served == 0 {
				a.zeroStreak[name]++
			} else {
				a.zeroStreak[name] = 0
			}
			if a.zeroStreak[name] >= a.crashWindows {
				v.Crashed = append(v.Crashed, name)
				v.Reasons = append(v.Reasons, fmt.Sprintf("crash: %s served nothing for %d windows", name, a.zeroStreak[name]))
			}
		}
	}

	// Throughput sag against the slow baseline.
	if a.baselineSeen && a.sagTol > 0 && obs.Throughput < a.baseline*(1-a.sagTol) {
		a.sagStreak++
	} else {
		a.sagStreak = 0
	}
	if a.sagStreak >= a.hysteresis {
		v.Sagging = true
		v.Reasons = append(v.Reasons, fmt.Sprintf("sag: throughput %.2f below baseline %.2f req/s", obs.Throughput, a.baseline))
	}
	if !a.baselineSeen {
		a.baseline = obs.Throughput
		a.baselineSeen = true
	} else {
		a.baseline = baselineAlpha*obs.Throughput + (1-baselineAlpha)*a.baseline
	}

	// Drop streaks of servers that left the deployment.
	//adeptvet:allow maporder prune-in-place of a keyed set; iteration order cannot reach any output
	for name := range a.driftStreak {
		if _, ok := rated[name]; !ok {
			delete(a.driftStreak, name)
		}
	}
	//adeptvet:allow maporder prune-in-place of a keyed set; iteration order cannot reach any output
	for name := range a.zeroStreak {
		if _, ok := rated[name]; !ok {
			delete(a.zeroStreak, name)
		}
	}
	return v
}

// Reset clears the streaks and the throughput baseline after an applied
// reconfiguration: the adapted system defines new normality.
func (a *Analyzer) Reset() {
	a.driftStreak = make(map[string]int)
	a.zeroStreak = make(map[string]int)
	a.sagStreak = 0
	a.baselineSeen = false
}

// ResetSag clears only the sag detector: the response when a sag verdict
// produced no actionable change. Drift and crash streaks keep building —
// wiping them here could mask a crash that is one window away from its
// threshold.
func (a *Analyzer) ResetSag() {
	a.sagStreak = 0
	a.baselineSeen = false
}

// Baseline exposes the current throughput baseline for status reports.
func (a *Analyzer) Baseline() float64 { return a.baseline }

// Streaks snapshots the hysteresis state — per-server drift and
// zero-completion streak lengths (only non-zero entries) plus the sag
// streak — for the decision journal: an event that says "drift detected"
// is only debuggable alongside how long each signal had been building.
func (a *Analyzer) Streaks() (drift, zero map[string]int, sag int) {
	drift = make(map[string]int)
	//adeptvet:allow maporder filtered copy into an unordered map; no cross-key interaction, journal serialization sorts keys
	for name, n := range a.driftStreak {
		if n > 0 {
			drift[name] = n
		}
	}
	zero = make(map[string]int)
	//adeptvet:allow maporder filtered copy into an unordered map; no cross-key interaction, journal serialization sorts keys
	for name, n := range a.zeroStreak {
		if n > 0 {
			zero[name] = n
		}
	}
	return drift, zero, a.sagStreak
}
