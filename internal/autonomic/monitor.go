package autonomic

import (
	"sort"

	"adept/internal/forecast"
)

// Monitor is the M of MAPE-K: it folds per-window service-time
// observations into the existing forecast estimators (one EWMA per server)
// and derives each node's *effective* computing power — the learned Wapp/t
// that replaces the nominal benchmark power once drift sets in. This is
// the knowledge base the Analyze and Plan stages read.
type Monitor struct {
	alpha float64
	wapp  float64
	est   map[string]*forecast.EWMA
}

// NewMonitor returns an empty monitor. alpha is the EWMA smoothing factor
// in (0, 1]; wapp is the service cost in MFlop used to invert observed
// seconds into MFlop/s.
func NewMonitor(alpha, wapp float64) *Monitor {
	return &Monitor{alpha: alpha, wapp: wapp, est: make(map[string]*forecast.EWMA)}
}

// Update folds one observation window into the estimators.
func (m *Monitor) Update(obs Observation) {
	//adeptvet:allow maporder per-name estimator fold; each EWMA only sees its own key's samples
	for name, sec := range obs.ServiceSeconds {
		if sec <= 0 {
			continue
		}
		e, ok := m.est[name]
		if !ok {
			var err error
			e, err = forecast.NewEWMA(m.alpha)
			if err != nil {
				continue // alpha validated at construction; defensive only
			}
			m.est[name] = e
		}
		e.Observe(sec)
	}
}

// EffectivePower returns the learned effective power of a server in
// MFlop/s, and false while no observation has been folded in yet.
func (m *Monitor) EffectivePower(name string) (float64, bool) {
	e, ok := m.est[name]
	if !ok {
		return 0, false
	}
	sec, ok := e.Predict()
	if !ok || sec <= 0 {
		return 0, false
	}
	return m.wapp / sec, true
}

// EffectivePowers returns every learned effective power, for status
// reporting. The snapshot is assembled over sorted server names so the
// work (and any future serialization threaded through it) is
// reproducible run to run.
func (m *Monitor) EffectivePowers() map[string]float64 {
	out := make(map[string]float64, len(m.est))
	for _, name := range m.Names() {
		if p, ok := m.EffectivePower(name); ok {
			out[name] = p
		}
	}
	return out
}

// Forget drops a server's estimator (the server left the deployment).
func (m *Monitor) Forget(name string) {
	delete(m.est, name)
}

// Names returns the servers with estimators, sorted (deterministic status
// output).
func (m *Monitor) Names() []string {
	names := make([]string, 0, len(m.est))
	for name := range m.est {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
