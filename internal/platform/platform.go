// Package platform models the target execution platform of the paper:
// a pool of heterogeneous computing nodes (characterised by their computing
// power in MFlop/s) interconnected by homogeneous communication links of a
// single bandwidth B (Mbit/s).
//
// The paper evaluates on Grid'5000 clusters (Lyon, Orsay); this package
// replaces that physical substrate with platform descriptions that can be
// generated synthetically, loaded from JSON, or "heterogenised" from a
// homogeneous cluster exactly the way the paper does in §5.3 (launching
// background matrix-multiplication load on a subset of nodes and re-running
// the Linpack mini-benchmark).
package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
)

// Node is a single computing resource.
type Node struct {
	// Name identifies the node, e.g. "orsay-042".
	Name string `json:"name"`
	// Power is the node's computing power in MFlop/s, as measured by the
	// Linpack mini-benchmark (internal/linpack) or assigned synthetically.
	Power float64 `json:"power"`
	// LinkBandwidth is the bandwidth in Mbit/s of the node's link into the
	// platform. Zero means "the platform-wide Bandwidth B" — the paper's
	// homogeneous-links model — so descriptions written before links became
	// per-node round-trip unchanged. A multi-cluster grid sets it per node:
	// fast intra-cluster links on the local site, the slow WAN uplink on
	// nodes reached across sites.
	LinkBandwidth float64 `json:"link_bandwidth_mbps,omitempty"`
}

// Link resolves the node's effective link bandwidth against the platform
// default def (the platform-wide B).
func (n Node) Link(def float64) float64 {
	if n.LinkBandwidth > 0 {
		return n.LinkBandwidth
	}
	return def
}

// Platform is a pool of candidate nodes plus the link bandwidth between
// them. The paper's communication model assumes homogeneous connectivity
// (a single cluster site); Bandwidth is that shared B, and it remains the
// default for every node whose LinkBandwidth is unset. Heterogeneous
// multi-cluster platforms override LinkBandwidth per node.
type Platform struct {
	// Name labels the platform in reports.
	Name string `json:"name"`
	// Bandwidth is the default link bandwidth B in Mbit/s: the bandwidth of
	// every link whose node does not carry an explicit LinkBandwidth.
	Bandwidth float64 `json:"bandwidth_mbps"`
	// Nodes is the pool of candidate middleware nodes. Client machines are
	// not part of the pool (the paper reserves separate nodes for clients).
	Nodes []Node `json:"nodes"`
}

// Validate checks platform well-formedness: positive bandwidth, at least one
// node, positive powers, and unique node names.
func (p *Platform) Validate() error {
	if p.Bandwidth <= 0 {
		return fmt.Errorf("platform %q: bandwidth must be positive, got %g", p.Name, p.Bandwidth)
	}
	if len(p.Nodes) == 0 {
		return fmt.Errorf("platform %q: no nodes", p.Name)
	}
	seen := make(map[string]bool, len(p.Nodes))
	for i, n := range p.Nodes {
		if n.Name == "" {
			return fmt.Errorf("platform %q: node %d has empty name", p.Name, i)
		}
		if n.Power <= 0 {
			return fmt.Errorf("platform %q: node %q has non-positive power %g", p.Name, n.Name, n.Power)
		}
		if n.LinkBandwidth < 0 || math.IsNaN(n.LinkBandwidth) || math.IsInf(n.LinkBandwidth, 0) {
			return fmt.Errorf("platform %q: node %q has invalid link bandwidth %g", p.Name, n.Name, n.LinkBandwidth)
		}
		if seen[n.Name] {
			return fmt.Errorf("platform %q: duplicate node name %q", p.Name, n.Name)
		}
		seen[n.Name] = true
	}
	return nil
}

// LinkRange returns the minimum and maximum effective link bandwidth over
// the pool (zeros resolved against the platform default). An empty pool
// reports (Bandwidth, Bandwidth).
func (p *Platform) LinkRange() (min, max float64) {
	min, max = p.Bandwidth, p.Bandwidth
	for i, n := range p.Nodes {
		bw := n.Link(p.Bandwidth)
		if i == 0 {
			min, max = bw, bw
			continue
		}
		if bw < min {
			min = bw
		}
		if bw > max {
			max = bw
		}
	}
	return min, max
}

// HasUniformLinks reports whether every node's effective link bandwidth
// equals the platform default — the regime the paper's model (and the
// optimality proof behind baseline.OptimalDAry) assumes.
func (p *Platform) HasUniformLinks() bool {
	for _, n := range p.Nodes {
		if n.LinkBandwidth > 0 && n.LinkBandwidth != p.Bandwidth {
			return false
		}
	}
	return true
}

// Powers returns the slice of node powers, in node order.
func (p *Platform) Powers() []float64 {
	ws := make([]float64, len(p.Nodes))
	for i, n := range p.Nodes {
		ws[i] = n.Power
	}
	return ws
}

// TotalPower returns the aggregate MFlop/s of the pool.
func (p *Platform) TotalPower() float64 {
	sum := 0.0
	for _, n := range p.Nodes {
		//adeptvet:allow floataccum fixed-order fold over the Nodes slice; reporting aggregate, not a planner input
		sum += n.Power
	}
	return sum
}

// DistinctSpecs counts the distinct (power, raw link bandwidth) node specs
// in the pool — the number of equivalence classes the planner's
// class-collapsed path would operate over. Equality is exact (float64 bit
// patterns), matching the collapse itself.
func DistinctSpecs(nodes []Node) int {
	type spec struct{ p, b uint64 }
	seen := make(map[spec]struct{}, 64)
	for _, n := range nodes {
		seen[spec{math.Float64bits(n.Power), math.Float64bits(n.LinkBandwidth)}] = struct{}{}
	}
	return len(seen)
}

// IsHomogeneous reports whether all nodes have identical power.
func (p *Platform) IsHomogeneous() bool {
	if len(p.Nodes) <= 1 {
		return true
	}
	w := p.Nodes[0].Power
	for _, n := range p.Nodes[1:] {
		if n.Power != w {
			return false
		}
	}
	return true
}

// SortByPowerDesc returns a copy of the node slice sorted by decreasing
// power, breaking ties by name for determinism.
func (p *Platform) SortByPowerDesc() []Node {
	cp := append([]Node(nil), p.Nodes...)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Power != cp[j].Power {
			return cp[i].Power > cp[j].Power
		}
		return cp[i].Name < cp[j].Name
	})
	return cp
}

// Clone returns a deep copy of the platform.
func (p *Platform) Clone() *Platform {
	cp := *p
	cp.Nodes = append([]Node(nil), p.Nodes...)
	return &cp
}

// String renders a short human-readable summary.
func (p *Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "platform %q: %d nodes, B=%g Mb/s", p.Name, len(p.Nodes), p.Bandwidth)
	if lo, hi := p.LinkRange(); lo != hi || lo != p.Bandwidth {
		// Heterogeneous links: surface the spread (an inverted generation —
		// inter faster than intra — is accepted but shows up here).
		fmt.Fprintf(&b, ", links [%g, %g] Mb/s", lo, hi)
	}
	if len(p.Nodes) > 0 {
		ws := p.Powers()
		min, max := ws[0], ws[0]
		for _, w := range ws {
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
		fmt.Fprintf(&b, ", power [%g, %g] MFlop/s", min, max)
	}
	return b.String()
}

// Homogeneous builds a platform of n identical nodes of the given power.
func Homogeneous(name string, n int, power, bandwidth float64) *Platform {
	p := &Platform{Name: name, Bandwidth: bandwidth}
	for i := 0; i < n; i++ {
		p.Nodes = append(p.Nodes, Node{Name: fmt.Sprintf("%s-%03d", name, i), Power: power})
	}
	return p
}

// GenSpec configures synthetic heterogeneous platform generation.
type GenSpec struct {
	Name      string
	N         int
	Bandwidth float64
	// MinPower and MaxPower bound the uniform power distribution (MFlop/s).
	MinPower float64
	MaxPower float64
	// Seed makes generation reproducible: every call with the same spec
	// draws from a fresh source seeded with this value, never from the
	// global math/rand source.
	Seed int64
	// Rand, when non-nil, supplies the random source directly and takes
	// precedence over Seed. Use it to thread one deterministic stream
	// through a whole scenario (several platforms, background loads, …).
	Rand *rand.Rand

	// Clusters, when at least 2, generates a multi-cluster grid instead of
	// a flat pool: nodes are assigned round-robin to K clusters and named
	// "<name>-c<k>-<i>". Cluster 0 is the local site — its nodes keep the
	// fast intra-cluster link — while every other cluster is reached over
	// the slow inter-cluster uplink. Zero or one keeps the flat
	// homogeneous-links generation (byte-identical to pre-cluster output).
	Clusters int
	// IntraBandwidth is the local-site link bandwidth in Mb/s (default:
	// Bandwidth). Only consulted when Clusters >= 2.
	IntraBandwidth float64
	// InterBandwidth is the link bandwidth of nodes reached across the WAN
	// (default: IntraBandwidth/10). An inversion (inter > intra) is
	// accepted — some grids really do have faster backbones than site LANs —
	// and shows up in the generated Platform's String(). Only consulted
	// when Clusters >= 2.
	InterBandwidth float64
}

// source returns the random stream to draw from: the explicit Rand when
// set, otherwise a fresh Seed-derived source (the compatible default —
// identical specs keep producing identical platforms).
func (spec GenSpec) source() *rand.Rand {
	if spec.Rand != nil {
		return spec.Rand
	}
	return rand.New(rand.NewSource(spec.Seed))
}

// Generate builds a synthetic heterogeneous platform with uniformly
// distributed node powers. It is the substitute for reserving Grid'5000
// nodes: the planner and models only consume (power, bandwidth) pairs.
// With Clusters >= 2 it builds a multi-cluster grid with heterogeneous
// links (see GenSpec.Clusters).
func Generate(spec GenSpec) (*Platform, error) {
	if spec.N <= 0 {
		return nil, errors.New("platform: GenSpec.N must be positive")
	}
	if spec.MinPower <= 0 || spec.MaxPower < spec.MinPower {
		return nil, fmt.Errorf("platform: invalid power range [%g, %g]", spec.MinPower, spec.MaxPower)
	}
	if spec.Bandwidth <= 0 {
		return nil, errors.New("platform: GenSpec.Bandwidth must be positive")
	}
	if spec.Clusters < 0 {
		return nil, fmt.Errorf("platform: GenSpec.Clusters must be non-negative, got %d", spec.Clusters)
	}
	if spec.Clusters > spec.N {
		return nil, fmt.Errorf("platform: cluster count %d exceeds node count %d", spec.Clusters, spec.N)
	}
	multi := spec.Clusters >= 2
	intra, inter := spec.IntraBandwidth, spec.InterBandwidth
	if multi {
		if intra == 0 {
			intra = spec.Bandwidth
		}
		if inter == 0 {
			inter = intra / 10
		}
		if intra <= 0 || inter <= 0 {
			return nil, fmt.Errorf("platform: invalid cluster bandwidths intra=%g inter=%g", intra, inter)
		}
	}
	rng := spec.source()
	p := &Platform{Name: spec.Name, Bandwidth: spec.Bandwidth}
	for i := 0; i < spec.N; i++ {
		w := spec.MinPower
		if spec.MaxPower > spec.MinPower {
			w = spec.MinPower + rng.Float64()*(spec.MaxPower-spec.MinPower)
		}
		n := Node{Name: fmt.Sprintf("%s-%03d", spec.Name, i), Power: w}
		if multi {
			k := i % spec.Clusters
			n.Name = fmt.Sprintf("%s-c%d-%03d", spec.Name, k, i)
			if k == 0 {
				n.LinkBandwidth = intra
			} else {
				n.LinkBandwidth = inter
			}
		}
		p.Nodes = append(p.Nodes, n)
	}
	return p, nil
}

// BackgroundLoad describes the §5.3 heterogenisation procedure: a fraction
// of the nodes runs a background matrix-multiplication program, reducing the
// power available to the middleware. LoadFactors gives the multiplicative
// power retention levels applied round-robin to the loaded nodes (e.g. 0.25
// means the background job steals 75 % of the node).
type BackgroundLoad struct {
	Fraction    float64
	LoadFactors []float64
	// Seed selects the loaded-node subset reproducibly.
	Seed int64
	// Rand, when non-nil, takes precedence over Seed (see GenSpec.Rand).
	Rand *rand.Rand
}

// Heterogenize returns a copy of p with background load applied to a random
// subset of nodes, reproducing the paper's method of converting the
// homogeneous Orsay cluster into a heterogeneous one. The returned platform
// has the same node names; only powers change.
func Heterogenize(p *Platform, bg BackgroundLoad) (*Platform, error) {
	if bg.Fraction < 0 || bg.Fraction > 1 {
		return nil, fmt.Errorf("platform: load fraction %g out of [0,1]", bg.Fraction)
	}
	if len(bg.LoadFactors) == 0 {
		return nil, errors.New("platform: no load factors")
	}
	for _, f := range bg.LoadFactors {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("platform: load factor %g out of (0,1]", f)
		}
	}
	cp := p.Clone()
	rng := bg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(bg.Seed))
	}
	perm := rng.Perm(len(cp.Nodes))
	loaded := int(bg.Fraction * float64(len(cp.Nodes)))
	for k := 0; k < loaded; k++ {
		idx := perm[k]
		factor := bg.LoadFactors[k%len(bg.LoadFactors)]
		cp.Nodes[idx].Power *= factor
	}
	return cp, nil
}

// LoadJSON reads a platform description from a JSON file.
func LoadJSON(path string) (*Platform, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	return ParseJSON(data)
}

// ParseJSON decodes a platform description from JSON bytes and validates it.
func ParseJSON(data []byte) (*Platform, error) {
	var p Platform
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("platform: decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// MarshalJSON renders the platform as indented JSON suitable for files.
func (p *Platform) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// SaveJSON writes the platform description to a JSON file.
func (p *Platform) SaveJSON(path string) error {
	data, err := p.MarshalIndent()
	if err != nil {
		return fmt.Errorf("platform: encode: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}
