package platform_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adept/internal/platform"
)

// TestValidateHeterogeneousLinks is the table-driven malformed-spec sweep
// for per-node link bandwidths.
func TestValidateHeterogeneousLinks(t *testing.T) {
	base := func() *platform.Platform {
		return &platform.Platform{
			Name:      "t",
			Bandwidth: 100,
			Nodes: []platform.Node{
				{Name: "a", Power: 400},
				{Name: "b", Power: 300, LinkBandwidth: 10},
			},
		}
	}
	cases := []struct {
		name    string
		mutate  func(p *platform.Platform)
		wantErr string // "" = must validate
	}{
		{"valid heterogeneous", func(p *platform.Platform) {}, ""},
		{"zero link inherits default", func(p *platform.Platform) { p.Nodes[1].LinkBandwidth = 0 }, ""},
		{"explicit default link", func(p *platform.Platform) { p.Nodes[1].LinkBandwidth = 100 }, ""},
		{"negative link bandwidth", func(p *platform.Platform) { p.Nodes[0].LinkBandwidth = -5 }, "invalid link bandwidth"},
		{"NaN link bandwidth", func(p *platform.Platform) { p.Nodes[0].LinkBandwidth = math.NaN() }, "invalid link bandwidth"},
		{"Inf link bandwidth", func(p *platform.Platform) { p.Nodes[1].LinkBandwidth = math.Inf(1) }, "invalid link bandwidth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mutate(p)
			err := p.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// TestGenerateMultiCluster is the table-driven malformed-GenSpec sweep for
// the multi-cluster generator, plus the accepted inter>intra inversion.
func TestGenerateMultiCluster(t *testing.T) {
	base := platform.GenSpec{
		Name: "grid", N: 12, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 3,
		Clusters: 3,
	}
	cases := []struct {
		name    string
		mutate  func(s *platform.GenSpec)
		wantErr string
	}{
		{"valid 3 clusters", func(s *platform.GenSpec) {}, ""},
		{"cluster count exceeds N", func(s *platform.GenSpec) { s.Clusters = 13 }, "cluster count 13 exceeds node count 12"},
		{"negative clusters", func(s *platform.GenSpec) { s.Clusters = -1 }, "Clusters must be non-negative"},
		{"negative inter bandwidth", func(s *platform.GenSpec) { s.InterBandwidth = -4 }, "invalid cluster bandwidths"},
		{"negative intra bandwidth", func(s *platform.GenSpec) { s.IntraBandwidth = -1 }, "invalid cluster bandwidths"},
		{"inversion inter faster than intra accepted", func(s *platform.GenSpec) { s.IntraBandwidth = 10; s.InterBandwidth = 1000 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)
			p, err := platform.Generate(spec)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("generated platform invalid: %v", err)
			}
		})
	}

	// Shape of a valid multi-cluster grid: cluster 0 on the intra link,
	// the others behind the inter uplink, round-robin, cluster-tagged
	// names.
	p, err := platform.Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range p.Nodes {
		k := i % base.Clusters
		wantBW := 100.0 // intra defaults to Bandwidth
		if k != 0 {
			wantBW = 10 // inter defaults to intra/10
		}
		if n.LinkBandwidth != wantBW {
			t.Errorf("node %d (cluster %d): link %g, want %g", i, k, n.LinkBandwidth, wantBW)
		}
		if !strings.Contains(n.Name, "-c"+string(rune('0'+k))+"-") {
			t.Errorf("node %d name %q missing cluster tag c%d", i, n.Name, k)
		}
	}
	if lo, hi := p.LinkRange(); lo != 10 || hi != 100 {
		t.Errorf("LinkRange = [%g, %g], want [10, 100]", lo, hi)
	}
	if p.HasUniformLinks() {
		t.Error("multi-cluster grid must not report uniform links")
	}

	// The inversion is accepted and surfaces in String() as the link
	// spread.
	inv := base
	inv.IntraBandwidth, inv.InterBandwidth = 10, 1000
	pi, err := platform.Generate(inv)
	if err != nil {
		t.Fatal(err)
	}
	if s := pi.String(); !strings.Contains(s, "links [10, 1000]") {
		t.Errorf("inverted grid String() hides the spread: %s", s)
	}
}

// TestLinkJSONRoundTrip: pre-heterogeneous descriptions (no link field)
// round-trip byte-identically, and per-node links survive a round trip.
func TestLinkJSONRoundTrip(t *testing.T) {
	uniform := &platform.Platform{
		Name: "u", Bandwidth: 100,
		Nodes: []platform.Node{{Name: "a", Power: 400}, {Name: "b", Power: 300}},
	}
	data, err := uniform.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("link_bandwidth")) {
		t.Errorf("uniform platform JSON leaks the link field:\n%s", data)
	}
	back, err := platform.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("uniform platform JSON not byte-stable across a round trip")
	}

	het := uniform.Clone()
	het.Nodes[1].LinkBandwidth = 12.5
	hdata, err := het.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	hback, err := platform.ParseJSON(hdata)
	if err != nil {
		t.Fatal(err)
	}
	if hback.Nodes[1].LinkBandwidth != 12.5 || hback.Nodes[0].LinkBandwidth != 0 {
		t.Errorf("links lost in round trip: %+v", hback.Nodes)
	}
	if hback.Nodes[0].Link(hback.Bandwidth) != 100 || hback.Nodes[1].Link(hback.Bandwidth) != 12.5 {
		t.Errorf("Link resolution wrong: %g, %g",
			hback.Nodes[0].Link(hback.Bandwidth), hback.Nodes[1].Link(hback.Bandwidth))
	}
}
