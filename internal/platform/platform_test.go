package platform_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"adept/internal/platform"
)

func TestHomogeneous(t *testing.T) {
	p := platform.Homogeneous("c", 5, 400, 100)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsHomogeneous() {
		t.Error("homogeneous platform not detected")
	}
	if got := p.TotalPower(); got != 2000 {
		t.Errorf("TotalPower = %g, want 2000", got)
	}
	if len(p.Powers()) != 5 {
		t.Errorf("Powers len = %d", len(p.Powers()))
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    platform.Platform
	}{
		{"zero bandwidth", platform.Platform{Name: "x", Bandwidth: 0, Nodes: []platform.Node{{Name: "a", Power: 1}}}},
		{"no nodes", platform.Platform{Name: "x", Bandwidth: 1}},
		{"empty node name", platform.Platform{Name: "x", Bandwidth: 1, Nodes: []platform.Node{{Name: "", Power: 1}}}},
		{"zero power", platform.Platform{Name: "x", Bandwidth: 1, Nodes: []platform.Node{{Name: "a", Power: 0}}}},
		{"duplicate names", platform.Platform{Name: "x", Bandwidth: 1, Nodes: []platform.Node{{Name: "a", Power: 1}, {Name: "a", Power: 2}}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := platform.GenSpec{Name: "g", N: 20, Bandwidth: 100, MinPower: 50, MaxPower: 500, Seed: 7}
	a, err := platform.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := platform.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("generation not deterministic at node %d", i)
		}
	}
	for _, n := range a.Nodes {
		if n.Power < 50 || n.Power > 500 {
			t.Errorf("node %s power %g out of [50, 500]", n.Name, n.Power)
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := []platform.GenSpec{
		{N: 0, Bandwidth: 1, MinPower: 1, MaxPower: 2},
		{N: 1, Bandwidth: 0, MinPower: 1, MaxPower: 2},
		{N: 1, Bandwidth: 1, MinPower: 0, MaxPower: 2},
		{N: 1, Bandwidth: 1, MinPower: 3, MaxPower: 2},
	}
	for i, spec := range bad {
		if _, err := platform.Generate(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestHeterogenize(t *testing.T) {
	base := platform.Homogeneous("h", 100, 400, 100)
	het, err := platform.Heterogenize(base, platform.BackgroundLoad{
		Fraction:    0.5,
		LoadFactors: []float64{0.25, 0.5},
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if het.IsHomogeneous() {
		t.Error("heterogenisation had no effect")
	}
	loaded := 0
	for i, n := range het.Nodes {
		if n.Name != base.Nodes[i].Name {
			t.Fatalf("node %d renamed", i)
		}
		if n.Power != 400 {
			loaded++
			if n.Power != 100 && n.Power != 200 {
				t.Errorf("unexpected degraded power %g", n.Power)
			}
		}
	}
	if loaded != 50 {
		t.Errorf("%d nodes loaded, want 50", loaded)
	}
	// Base must be untouched.
	if !base.IsHomogeneous() {
		t.Error("Heterogenize mutated its input")
	}
}

func TestHeterogenizeRejections(t *testing.T) {
	base := platform.Homogeneous("h", 4, 400, 100)
	if _, err := platform.Heterogenize(base, platform.BackgroundLoad{Fraction: 1.5, LoadFactors: []float64{0.5}}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := platform.Heterogenize(base, platform.BackgroundLoad{Fraction: 0.5}); err == nil {
		t.Error("no load factors accepted")
	}
	if _, err := platform.Heterogenize(base, platform.BackgroundLoad{Fraction: 0.5, LoadFactors: []float64{1.5}}); err == nil {
		t.Error("load factor > 1 accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := platform.Homogeneous("file", 3, 250, 100)
	path := filepath.Join(t.TempDir(), "platform.json")
	if err := p.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := platform.LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name || back.Bandwidth != p.Bandwidth || len(back.Nodes) != len(p.Nodes) {
		t.Errorf("round trip mismatch: %+v vs %+v", back, p)
	}
}

func TestParseJSONRejectsInvalid(t *testing.T) {
	if _, err := platform.ParseJSON([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := platform.ParseJSON([]byte(`{"name":"x","bandwidth_mbps":0,"nodes":[]}`)); err == nil {
		t.Error("invalid platform accepted")
	}
	if _, err := platform.LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSortByPowerDesc(t *testing.T) {
	p := &platform.Platform{Name: "s", Bandwidth: 1, Nodes: []platform.Node{
		{Name: "b", Power: 10}, {Name: "a", Power: 30}, {Name: "c", Power: 30}, {Name: "d", Power: 20},
	}}
	sorted := p.SortByPowerDesc()
	want := []string{"a", "c", "d", "b"}
	for i, n := range sorted {
		if n.Name != want[i] {
			t.Fatalf("sorted[%d] = %s, want %s", i, n.Name, want[i])
		}
	}
	// Input order untouched.
	if p.Nodes[0].Name != "b" {
		t.Error("SortByPowerDesc mutated the platform")
	}
}

// Property: Heterogenize never raises a node's power and keeps the pool
// size and names.
func TestPropertyHeterogenizeOnlyDegrades(t *testing.T) {
	f := func(seed int64, fracSeed uint8) bool {
		base := platform.Homogeneous("p", 30, 400, 100)
		frac := float64(fracSeed%100) / 100
		het, err := platform.Heterogenize(base, platform.BackgroundLoad{
			Fraction:    frac,
			LoadFactors: []float64{0.25, 0.5, 0.75},
			Seed:        seed,
		})
		if err != nil {
			return false
		}
		if len(het.Nodes) != len(base.Nodes) {
			return false
		}
		for i, n := range het.Nodes {
			if n.Power > base.Nodes[i].Power || n.Name != base.Nodes[i].Name {
				return false
			}
		}
		return het.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Generation must be reproducible: the same GenSpec yields the same
// platform on every call (no global math/rand state involved).
func TestGenerateReproducible(t *testing.T) {
	spec := platform.GenSpec{
		Name: "repro", N: 40, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 99,
	}
	a, err := platform.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := platform.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs across identical specs: %+v vs %+v", i, a.Nodes[i], b.Nodes[i])
		}
	}
	// A different seed produces a different pool.
	spec.Seed = 100
	c, err := platform.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Nodes {
		if a.Nodes[i] != c.Nodes[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical platforms")
	}
}

// An explicit *rand.Rand takes precedence over Seed and threads one
// deterministic stream through several generations.
func TestGenerateExplicitRand(t *testing.T) {
	spec := platform.GenSpec{
		Name: "stream", N: 10, Bandwidth: 100, MinPower: 100, MaxPower: 800,
	}

	gen2 := func(seed int64) (*platform.Platform, *platform.Platform) {
		rng := rand.New(rand.NewSource(seed))
		s := spec
		s.Rand = rng
		a, err := platform.Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := platform.Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}

	a1, b1 := gen2(7)
	a2, b2 := gen2(7)
	// The shared stream advances: the second platform differs from the
	// first...
	if a1.Nodes[0] == b1.Nodes[0] && a1.Nodes[1] == b1.Nodes[1] {
		t.Error("shared stream did not advance between generations")
	}
	// ...but the whole two-platform scenario replays exactly from the
	// stream seed.
	for i := range a1.Nodes {
		if a1.Nodes[i] != a2.Nodes[i] || b1.Nodes[i] != b2.Nodes[i] {
			t.Fatalf("scenario not reproducible at node %d", i)
		}
	}

	// Heterogenize honours an explicit stream the same way.
	base := platform.Homogeneous("h", 20, 400, 100)
	bg := platform.BackgroundLoad{
		Fraction:    0.5,
		LoadFactors: []float64{0.25, 0.5},
		Rand:        rand.New(rand.NewSource(3)),
	}
	h1, err := platform.Heterogenize(base, bg)
	if err != nil {
		t.Fatal(err)
	}
	bg.Rand = rand.New(rand.NewSource(3))
	h2, err := platform.Heterogenize(base, bg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Nodes {
		if h1.Nodes[i] != h2.Nodes[i] {
			t.Fatalf("Heterogenize with equal streams diverged at node %d", i)
		}
	}
}

// TestGenerateByteIdenticalAcrossRunsAndGoroutines is the determinism
// contract the scenario corpus, the fuzz harness, and the golden
// benchmarks all lean on: the same GenSpec (or the same Heterogenize
// seed) must yield byte-identical platforms no matter how many goroutines
// generate concurrently. Any map-iteration or shared-state
// nondeterminism in generation would surface here as diverging JSON.
func TestGenerateByteIdenticalAcrossRunsAndGoroutines(t *testing.T) {
	spec := platform.GenSpec{
		Name: "det", N: 200, Bandwidth: 100, MinPower: 50, MaxPower: 2000, Seed: 42,
	}
	ref, err := platform.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	refHet, err := platform.Heterogenize(ref, platform.BackgroundLoad{
		Fraction: 0.6, LoadFactors: []float64{0.25, 0.5, 0.75}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	refHetJSON, err := refHet.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	type out struct{ gen, het []byte }
	results := make([]out, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := platform.Generate(spec)
			if err != nil {
				return
			}
			results[w].gen, _ = p.MarshalIndent()
			h, err := platform.Heterogenize(p, platform.BackgroundLoad{
				Fraction: 0.6, LoadFactors: []float64{0.25, 0.5, 0.75}, Seed: 7,
			})
			if err != nil {
				return
			}
			results[w].het, _ = h.MarshalIndent()
		}(w)
	}
	wg.Wait()
	for w, r := range results {
		if !bytes.Equal(r.gen, refJSON) {
			t.Errorf("goroutine %d: Generate bytes diverged", w)
		}
		if !bytes.Equal(r.het, refHetJSON) {
			t.Errorf("goroutine %d: Heterogenize bytes diverged", w)
		}
	}
}
