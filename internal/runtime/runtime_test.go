package runtime_test

import (
	"testing"
	"time"

	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/runtime"
	"adept/internal/workload"
)

func testOptions(dgemmN int) runtime.Options {
	return runtime.Options{
		Costs:        model.DIETDefaults(),
		Bandwidth:    100,
		Wapp:         workload.DGEMM{N: dgemmN}.MFlop(),
		TimeScale:    0.002, // 1 virtual second = 2ms real
		ReplyTimeout: 2 * time.Second,
	}
}

func buildStar(t *testing.T, servers int) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("rt-star")
	root, err := h.AddRoot("agent-0", 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < servers; i++ {
		if _, err := h.AddServer(root, "sed-"+string(rune('a'+i)), 400); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func buildTwoLevel(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("rt-tree")
	root, _ := h.AddRoot("root", 400)
	a1, _ := h.AddAgent(root, "a1", 400)
	a2, _ := h.AddAgent(root, "a2", 400)
	for i, p := range []int{a1, a1, a2, a2} {
		if _, err := h.AddServer(p, "sed-"+string(rune('a'+i)), 400); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestRuntimeCompletesRequestsOnChanTransport(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	stats, err := sys.RunClients(4, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatalf("no requests completed: %+v, errors: %v", stats, sys.Errors())
	}
	if stats.Failed != 0 {
		t.Errorf("%d failed requests: %v", stats.Failed, sys.Errors())
	}
	t.Logf("completed %d requests, virtual throughput %.1f req/s", stats.Completed, stats.Throughput)
}

func TestRuntimeCompletesRequestsOnTCPTransport(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewTCPTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	stats, err := sys.RunClients(4, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatalf("no requests completed over TCP: %+v, errors: %v", stats, sys.Errors())
	}
	t.Logf("TCP: completed %d requests", stats.Completed)
}

func TestRuntimeTwoLevelHierarchyRoutesToAllServers(t *testing.T) {
	sys, err := runtime.Deploy(buildTwoLevel(t), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	stats, err := sys.RunClients(8, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatal("no requests completed through two-level hierarchy")
	}
	counts := sys.ServedCounts()
	var sum int64
	busy := 0
	for _, c := range counts {
		sum += c
		if c > 0 {
			busy++
		}
	}
	if sum != stats.Completed {
		t.Errorf("Σ Ni = %d but completed = %d (Eq. 6 violated)", sum, stats.Completed)
	}
	if busy < 2 {
		t.Errorf("only %d of 4 servers did work: %v", busy, counts)
	}
}

func TestRuntimeSurvivesServerCrash(t *testing.T) {
	opts := testOptions(200)
	opts.ReplyTimeout = 200 * time.Millisecond
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if err := sys.CrashServer("sed-a"); err != nil {
		t.Fatal(err)
	}
	stats, err := sys.RunClients(2, 800*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatalf("platform wedged after a single server crash: %+v", stats)
	}
	counts := sys.ServedCounts()
	if counts["sed-a"] != 0 {
		t.Errorf("crashed server served %d requests", counts["sed-a"])
	}
	if counts["sed-b"] == 0 {
		t.Errorf("surviving server served nothing: %v", counts)
	}
}

func TestRuntimeCrashUnknownServer(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 1), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if err := sys.CrashServer("nope"); err == nil {
		t.Error("expected error crashing unknown server")
	}
}

func TestRuntimeRealDgemmExecution(t *testing.T) {
	opts := testOptions(0)
	opts.Wapp = workload.DGEMM{N: 64}.MFlop()
	opts.DgemmN = 64
	opts.TimeScale = 0 // only real compute, no modelled sleeps
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	stats, err := sys.RunClients(2, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatal("no real-DGEMM requests completed")
	}
	t.Logf("real DGEMM 64x64: %d completions", stats.Completed)
}

func TestMeteredTransportCountsTraffic(t *testing.T) {
	mt := runtime.NewMeteredTransport(runtime.NewChanTransport())
	sys, err := runtime.Deploy(buildStar(t, 1), mt, testOptions(100))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if _, err := sys.RunClients(1, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if mt.TotalMessages() == 0 || mt.TotalBytes() == 0 {
		t.Fatalf("metered transport saw no traffic: %d msgs, %d bytes", mt.TotalMessages(), mt.TotalBytes())
	}
	stats := mt.Stats()
	for _, typ := range []string{"runtime.SchedRequest", "runtime.SchedReply", "runtime.ServiceRequest", "runtime.ServiceReply"} {
		st, ok := stats[typ]
		if !ok || st.Count == 0 {
			t.Errorf("no metered traffic for %s (stats: %v)", typ, stats)
		}
	}
}

func TestDeployRejectsBadOptions(t *testing.T) {
	h := buildStar(t, 1)
	if _, err := runtime.Deploy(h, runtime.NewChanTransport(), runtime.Options{Bandwidth: 0, Wapp: 1}); err == nil {
		t.Error("expected error for zero bandwidth")
	}
	if _, err := runtime.Deploy(h, runtime.NewChanTransport(), runtime.Options{Bandwidth: 100, Wapp: 0}); err == nil {
		t.Error("expected error for zero wapp")
	}
}
