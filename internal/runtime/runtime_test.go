package runtime_test

import (
	"context"
	"testing"
	"time"

	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/runtime"
	"adept/internal/workload"
)

func testOptions(dgemmN int) runtime.Options {
	return runtime.Options{
		Costs:        model.DIETDefaults(),
		Bandwidth:    100,
		Wapp:         workload.DGEMM{N: dgemmN}.MFlop(),
		TimeScale:    0.002, // 1 virtual second = 2ms real
		ReplyTimeout: 2 * time.Second,
	}
}

func buildStar(t *testing.T, servers int) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("rt-star")
	root, err := h.AddRoot("agent-0", 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < servers; i++ {
		if _, err := h.AddServer(root, "sed-"+string(rune('a'+i)), 400); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func buildTwoLevel(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("rt-tree")
	root, _ := h.AddRoot("root", 400)
	a1, _ := h.AddAgent(root, "a1", 400)
	a2, _ := h.AddAgent(root, "a2", 400)
	for i, p := range []int{a1, a1, a2, a2} {
		if _, err := h.AddServer(p, "sed-"+string(rune('a'+i)), 400); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestRuntimeCompletesRequestsOnChanTransport(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	stats, err := sys.RunClients(context.Background(), 4, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatalf("no requests completed: %+v, errors: %v", stats, sys.Errors())
	}
	if stats.Failed != 0 {
		t.Errorf("%d failed requests: %v", stats.Failed, sys.Errors())
	}
	t.Logf("completed %d requests, virtual throughput %.1f req/s", stats.Completed, stats.Throughput)
}

func TestRuntimeCompletesRequestsOnTCPTransport(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewTCPTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	stats, err := sys.RunClients(context.Background(), 4, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatalf("no requests completed over TCP: %+v, errors: %v", stats, sys.Errors())
	}
	t.Logf("TCP: completed %d requests", stats.Completed)
}

func TestRuntimeTwoLevelHierarchyRoutesToAllServers(t *testing.T) {
	sys, err := runtime.Deploy(buildTwoLevel(t), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	stats, err := sys.RunClients(context.Background(), 8, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatal("no requests completed through two-level hierarchy")
	}
	counts := sys.ServedCounts()
	var sum int64
	busy := 0
	for _, c := range counts {
		sum += c
		if c > 0 {
			busy++
		}
	}
	if sum != stats.Completed {
		t.Errorf("Σ Ni = %d but completed = %d (Eq. 6 violated)", sum, stats.Completed)
	}
	if busy < 2 {
		t.Errorf("only %d of 4 servers did work: %v", busy, counts)
	}
}

func TestRuntimeSurvivesServerCrash(t *testing.T) {
	opts := testOptions(200)
	opts.ReplyTimeout = 200 * time.Millisecond
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if err := sys.CrashServer("sed-a"); err != nil {
		t.Fatal(err)
	}
	stats, err := sys.RunClients(context.Background(), 2, 800*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatalf("platform wedged after a single server crash: %+v", stats)
	}
	counts := sys.ServedCounts()
	if counts["sed-a"] != 0 {
		t.Errorf("crashed server served %d requests", counts["sed-a"])
	}
	if counts["sed-b"] == 0 {
		t.Errorf("surviving server served nothing: %v", counts)
	}
}

func TestRuntimeCrashUnknownServer(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 1), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if err := sys.CrashServer("nope"); err == nil {
		t.Error("expected error crashing unknown server")
	}
}

func TestRuntimeRealDgemmExecution(t *testing.T) {
	opts := testOptions(0)
	opts.Wapp = workload.DGEMM{N: 64}.MFlop()
	opts.DgemmN = 64
	opts.TimeScale = 0 // only real compute, no modelled sleeps
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	stats, err := sys.RunClients(context.Background(), 2, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatal("no real-DGEMM requests completed")
	}
	t.Logf("real DGEMM 64x64: %d completions", stats.Completed)
}

func TestMeteredTransportCountsTraffic(t *testing.T) {
	mt := runtime.NewMeteredTransport(runtime.NewChanTransport())
	sys, err := runtime.Deploy(buildStar(t, 1), mt, testOptions(100))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if _, err := sys.RunClients(context.Background(), 1, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if mt.TotalMessages() == 0 || mt.TotalBytes() == 0 {
		t.Fatalf("metered transport saw no traffic: %d msgs, %d bytes", mt.TotalMessages(), mt.TotalBytes())
	}
	stats := mt.Stats()
	for _, typ := range []string{"runtime.SchedRequest", "runtime.SchedReply", "runtime.ServiceRequest", "runtime.ServiceReply"} {
		st, ok := stats[typ]
		if !ok || st.Count == 0 {
			t.Errorf("no metered traffic for %s (stats: %v)", typ, stats)
		}
	}
}

func TestDeployRejectsBadOptions(t *testing.T) {
	h := buildStar(t, 1)
	if _, err := runtime.Deploy(h, runtime.NewChanTransport(), runtime.Options{Bandwidth: 0, Wapp: 1}); err == nil {
		t.Error("expected error for zero bandwidth")
	}
	if _, err := runtime.Deploy(h, runtime.NewChanTransport(), runtime.Options{Bandwidth: 100, Wapp: 0}); err == nil {
		t.Error("expected error for zero wapp")
	}
}

func TestRunClientsCancellable(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(100*time.Millisecond, cancel)
	start := time.Now()
	stats, err := sys.RunClients(ctx, 2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("cancelled window took %v, want prompt return", took)
	}
	if stats.Elapsed >= 10*time.Second {
		t.Fatalf("stats report the full window (%v) despite cancellation", stats.Elapsed)
	}
	t.Logf("cancelled after %v with %d completions", stats.Elapsed, stats.Completed)
}

// TestCrashDegradationVisibleInSignals injects a leaf crash mid-load and
// checks that the signal the autonomic Analyze stage consumes is really
// there: the crashed server's ServedCounts freeze while the survivor's
// keep growing, and the LoadStats of the window record timeouts.
func TestCrashDegradationVisibleInSignals(t *testing.T) {
	opts := testOptions(200)
	opts.ReplyTimeout = 150 * time.Millisecond
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	var atCrash map[string]int64
	done := make(chan struct{})
	time.AfterFunc(300*time.Millisecond, func() {
		defer close(done)
		atCrash = sys.ServedCounts()
		if err := sys.CrashServer("sed-a"); err != nil {
			t.Error(err)
		}
	})
	healthy, err := sys.RunClients(context.Background(), 4, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Crash fires 300ms into this second window: mid-load.
	degraded, err := sys.RunClients(context.Background(), 4, 1000*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	final := sys.ServedCounts()
	if atCrash["sed-a"] == 0 && atCrash["sed-b"] == 0 {
		t.Fatalf("no load before the crash: %v", atCrash)
	}
	// In-flight tolerance of one request that was already executing.
	if final["sed-a"] > atCrash["sed-a"]+1 {
		t.Errorf("crashed server kept serving: %d -> %d", atCrash["sed-a"], final["sed-a"])
	}
	if final["sed-b"] <= atCrash["sed-b"] {
		t.Errorf("surviving server froze too: %d -> %d", atCrash["sed-b"], final["sed-b"])
	}
	// The crashed child wedges every scheduling phase until the agent's
	// reply timeout: per-window throughput collapses — the LoadStats signal
	// the autonomic Analyze stage detects.
	if healthy.Completed == 0 || degraded.Completed == 0 {
		t.Fatalf("platform wedged entirely: healthy %+v degraded %+v", healthy, degraded)
	}
	if degraded.Throughput > healthy.Throughput/2 {
		t.Errorf("throughput degradation not visible: %.1f -> %.1f req/s",
			healthy.Throughput, degraded.Throughput)
	}
	t.Logf("crash signals: served %v -> %v, throughput %.1f -> %.1f req/s (timeouts %d)",
		atCrash, final, healthy.Throughput, degraded.Throughput, degraded.Timeouts)
}

// TestLiveAddRemoveServer grows and shrinks a running deployment under
// load without redeploying.
func TestLiveAddRemoveServer(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	if err := sys.AddServer("agent-0", "sed-x", 400); err != nil {
		t.Fatal(err)
	}
	stats, err := sys.RunClients(context.Background(), 6, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	counts := sys.ServedCounts()
	if counts["sed-x"] == 0 {
		t.Errorf("added server served nothing: %v (stats %+v)", counts, stats)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 4 {
		t.Fatalf("snapshot has %d nodes, want 4:\n%s", snap.Len(), snap)
	}
	if err := snap.Validate(hierarchy.Final); err != nil {
		t.Fatalf("snapshot invalid after add: %v", err)
	}

	if err := sys.RemoveServer("sed-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunClients(context.Background(), 4, 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	counts = sys.ServedCounts()
	if _, still := counts["sed-b"]; still {
		t.Errorf("removed server still reporting: %v", counts)
	}
	snap, err = sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 3 {
		t.Fatalf("snapshot has %d nodes after removal, want 3:\n%s", snap.Len(), snap)
	}
	svc := sys.TakeServiceStats()
	if svc["sed-a"].Count == 0 && svc["sed-x"].Count == 0 {
		t.Errorf("no service-time observations after removal: %v", svc)
	}
}

// TestLivePatchMatchesDiff replans a different shape, diffs, applies the
// patch to the live system, and checks the live topology converged to the
// target tree — the Execute step of the MAPE-K loop in isolation.
func TestLivePatchMatchesDiff(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 4), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	// Target: sed-a promoted to an agent holding sed-c, sed-d and a new
	// sed-e; sed-b stays under the root at drifted power.
	target := hierarchy.New("rt-star")
	root, _ := target.AddRoot("agent-0", 400)
	a1, err := target.AddAgent(root, "sed-a", 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.AddServer(root, "sed-b", 200); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sed-c", "sed-d"} {
		if _, err := target.AddServer(a1, name, 400); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := target.AddServer(a1, "sed-e", 300); err != nil {
		t.Fatal(err)
	}

	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	patch, err := hierarchy.Diff(snap, target)
	if err != nil {
		t.Fatal(err)
	}
	if patch.Len() >= target.Len() {
		t.Fatalf("patch (%d ops) not smaller than a redeploy (%d elements):\n%s", patch.Len(), target.Len(), patch)
	}
	if n, err := sys.ApplyPatch(patch); err != nil {
		t.Fatalf("applied %d/%d ops: %v", n, patch.Len(), err)
	}
	after, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !hierarchy.Equivalent(after, target) {
		t.Fatalf("live topology differs from target:\nlive:\n%s\ntarget:\n%s", after, target)
	}
	stats, err := sys.RunClients(context.Background(), 6, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatalf("patched platform serves nothing: %+v, errors %v", stats, sys.Errors())
	}
	// The added server is deployed and visible in the Ni accounting; whether
	// it wins requests depends on the estimates (faster servers may
	// legitimately absorb the whole load).
	if _, ok := sys.ServedCounts()["sed-e"]; !ok {
		t.Errorf("server added by patch missing from ServedCounts: %v", sys.ServedCounts())
	}
}

// TestBackgroundLoadSlowsServer checks the drift-injection primitive: a
// loaded server's observed service time roughly doubles while its
// predictions (rated power) stay stale until SetPower teaches them.
func TestBackgroundLoadSlowsServer(t *testing.T) {
	sys, err := runtime.Deploy(buildStar(t, 2), runtime.NewChanTransport(), testOptions(200))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if _, err := sys.RunClients(context.Background(), 4, 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	base := sys.TakeServiceStats()
	if err := sys.SetBackgroundLoad("sed-a", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunClients(context.Background(), 4, 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	loaded := sys.TakeServiceStats()
	if base["sed-a"].Count == 0 || loaded["sed-a"].Count == 0 {
		t.Fatalf("missing observations: base %v loaded %v", base, loaded)
	}
	baseMean := base["sed-a"].Seconds / float64(base["sed-a"].Count)
	loadedMean := loaded["sed-a"].Seconds / float64(loaded["sed-a"].Count)
	if loadedMean < 1.5*baseMean {
		t.Errorf("background load barely visible: %.4fs -> %.4fs", baseMean, loadedMean)
	}
}
