package runtime

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Transport delivers envelopes between named elements. Implementations must
// be safe for concurrent use.
type Transport interface {
	// Register creates the inbox for a named element. Registering the same
	// name twice is an error.
	Register(name string) (<-chan Envelope, error)
	// Send delivers msg to the named element's inbox.
	Send(from, to string, msg any) error
	// Deregister removes a named element and closes its inbox, freeing the
	// name for a later Register. Live reconfiguration (RemoveServer,
	// promotion) retires elements this way without tearing the transport
	// down. Deregistering an unknown name is an error.
	Deregister(name string) error
	// Close tears the transport down; pending inboxes are closed.
	Close() error
}

// inboxSize is the per-element buffered inbox capacity. Large enough that
// a saturated element back-pressures senders instead of deadlocking the
// protocol's request/reply cycles.
const inboxSize = 1024

// inbox is one element's guarded mailbox: the closed flag and the channel
// close are synchronised with in-flight sends, so live deregistration (an
// element retired by a reconfiguration patch) cannot race a sender.
type inbox struct {
	mu     sync.RWMutex
	ch     chan Envelope
	closed bool
}

func newInbox() *inbox {
	return &inbox{ch: make(chan Envelope, inboxSize)}
}

// send delivers env unless the inbox is already retired. The read lock is
// held across the (possibly blocking) channel send; close waits for it, and
// the element keeps draining its channel until close, so senders always
// make progress.
func (b *inbox) send(env Envelope) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return fmt.Errorf("runtime: element retired")
	}
	b.ch <- env
	return nil
}

// retire closes the channel after in-flight sends complete. A sender can
// be blocked on a full channel whose owner already exited (teardown of a
// wedged element) — it then holds the read lock forever, so retire drains
// messages while spinning for the write lock to free such senders.
// "Message dropped at teardown" is the correct semantic for anything
// drained here.
func (b *inbox) retire() {
	for !b.mu.TryLock() {
		select {
		case <-b.ch:
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	if !b.closed {
		b.closed = true
		close(b.ch)
	}
	b.mu.Unlock()
}

// ChanTransport is the in-process transport: one buffered channel per
// element.
type ChanTransport struct {
	mu     sync.Mutex
	boxes  map[string]*inbox
	closed bool
}

// NewChanTransport returns an empty in-process transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{boxes: make(map[string]*inbox)}
}

// Register implements Transport.
func (t *ChanTransport) Register(name string) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("runtime: transport closed")
	}
	if _, dup := t.boxes[name]; dup {
		return nil, fmt.Errorf("runtime: element %q already registered", name)
	}
	b := newInbox()
	t.boxes[name] = b
	return b.ch, nil
}

// Send implements Transport.
func (t *ChanTransport) Send(from, to string, msg any) error {
	t.mu.Lock()
	b, ok := t.boxes[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("runtime: transport closed")
	}
	if !ok {
		return fmt.Errorf("runtime: unknown element %q", to)
	}
	return b.send(Envelope{From: from, Msg: msg})
}

// Deregister implements Transport.
func (t *ChanTransport) Deregister(name string) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("runtime: transport closed")
	}
	b, ok := t.boxes[name]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("runtime: element %q not registered", name)
	}
	delete(t.boxes, name)
	t.mu.Unlock()
	b.retire()
	return nil
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	boxes := t.boxes
	t.boxes = map[string]*inbox{}
	t.mu.Unlock()
	//adeptvet:allow maporder transport shutdown; retire order is immaterial
	for _, b := range boxes {
		b.retire()
	}
	return nil
}

// MessageStats aggregates per-message-type traffic accounting. The
// calibration package regenerates Table 3's Sreq/Srep columns from these
// counters, playing the role of the paper's tcpdump + Ethereal capture.
type MessageStats struct {
	Count int64
	Bytes int64
}

// MeteredTransport wraps a Transport and measures the gob-encoded size of
// every envelope, like a network capture would.
type MeteredTransport struct {
	inner Transport

	mu    sync.Mutex
	stats map[string]*MessageStats // keyed by message type name

	totalBytes atomic.Int64
	totalMsgs  atomic.Int64
}

// NewMeteredTransport wraps inner with traffic metering.
func NewMeteredTransport(inner Transport) *MeteredTransport {
	return &MeteredTransport{inner: inner, stats: make(map[string]*MessageStats)}
}

// Register implements Transport.
func (m *MeteredTransport) Register(name string) (<-chan Envelope, error) {
	return m.inner.Register(name)
}

// Send implements Transport, measuring the wire size of the envelope.
func (m *MeteredTransport) Send(from, to string, msg any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Envelope{From: from, Msg: msg}); err != nil {
		return fmt.Errorf("runtime: metering encode: %w", err)
	}
	size := int64(buf.Len())
	key := fmt.Sprintf("%T", msg)
	m.mu.Lock()
	st := m.stats[key]
	if st == nil {
		st = &MessageStats{}
		m.stats[key] = st
	}
	st.Count++
	st.Bytes += size
	m.mu.Unlock()
	m.totalBytes.Add(size)
	m.totalMsgs.Add(1)
	return m.inner.Send(from, to, msg)
}

// Deregister implements Transport.
func (m *MeteredTransport) Deregister(name string) error { return m.inner.Deregister(name) }

// Close implements Transport.
func (m *MeteredTransport) Close() error { return m.inner.Close() }

// Stats returns a copy of the per-type traffic counters. The snapshot is
// assembled over sorted message types so its construction order is
// stable for any consumer that iterates as it copies.
func (m *MeteredTransport) Stats() map[string]MessageStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	types := make([]string, 0, len(m.stats))
	for k := range m.stats {
		types = append(types, k)
	}
	sort.Strings(types)
	out := make(map[string]MessageStats, len(m.stats))
	for _, k := range types {
		out[k] = *m.stats[k]
	}
	return out
}

// TotalBytes returns the total metered traffic in bytes.
func (m *MeteredTransport) TotalBytes() int64 { return m.totalBytes.Load() }

// TotalMessages returns the number of metered messages.
func (m *MeteredTransport) TotalMessages() int64 { return m.totalMsgs.Load() }
