package runtime

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
)

// Transport delivers envelopes between named elements. Implementations must
// be safe for concurrent use.
type Transport interface {
	// Register creates the inbox for a named element. Registering the same
	// name twice is an error.
	Register(name string) (<-chan Envelope, error)
	// Send delivers msg to the named element's inbox.
	Send(from, to string, msg any) error
	// Close tears the transport down; pending inboxes are closed.
	Close() error
}

// inboxSize is the per-element buffered inbox capacity. Large enough that
// a saturated element back-pressures senders instead of deadlocking the
// protocol's request/reply cycles.
const inboxSize = 1024

// ChanTransport is the in-process transport: one buffered channel per
// element.
type ChanTransport struct {
	mu     sync.Mutex
	boxes  map[string]chan Envelope
	closed bool
}

// NewChanTransport returns an empty in-process transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{boxes: make(map[string]chan Envelope)}
}

// Register implements Transport.
func (t *ChanTransport) Register(name string) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("runtime: transport closed")
	}
	if _, dup := t.boxes[name]; dup {
		return nil, fmt.Errorf("runtime: element %q already registered", name)
	}
	ch := make(chan Envelope, inboxSize)
	t.boxes[name] = ch
	return ch, nil
}

// Send implements Transport.
func (t *ChanTransport) Send(from, to string, msg any) error {
	t.mu.Lock()
	ch, ok := t.boxes[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("runtime: transport closed")
	}
	if !ok {
		return fmt.Errorf("runtime: unknown element %q", to)
	}
	defer func() {
		// A racing Close may close the inbox under us; sending on a closed
		// channel panics, and "message dropped at teardown" is the correct
		// semantic for that race.
		_ = recover()
	}()
	ch <- Envelope{From: from, Msg: msg}
	return nil
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, ch := range t.boxes {
		close(ch)
	}
	return nil
}

// MessageStats aggregates per-message-type traffic accounting. The
// calibration package regenerates Table 3's Sreq/Srep columns from these
// counters, playing the role of the paper's tcpdump + Ethereal capture.
type MessageStats struct {
	Count int64
	Bytes int64
}

// MeteredTransport wraps a Transport and measures the gob-encoded size of
// every envelope, like a network capture would.
type MeteredTransport struct {
	inner Transport

	mu    sync.Mutex
	stats map[string]*MessageStats // keyed by message type name

	totalBytes atomic.Int64
	totalMsgs  atomic.Int64
}

// NewMeteredTransport wraps inner with traffic metering.
func NewMeteredTransport(inner Transport) *MeteredTransport {
	return &MeteredTransport{inner: inner, stats: make(map[string]*MessageStats)}
}

// Register implements Transport.
func (m *MeteredTransport) Register(name string) (<-chan Envelope, error) {
	return m.inner.Register(name)
}

// Send implements Transport, measuring the wire size of the envelope.
func (m *MeteredTransport) Send(from, to string, msg any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Envelope{From: from, Msg: msg}); err != nil {
		return fmt.Errorf("runtime: metering encode: %w", err)
	}
	size := int64(buf.Len())
	key := fmt.Sprintf("%T", msg)
	m.mu.Lock()
	st := m.stats[key]
	if st == nil {
		st = &MessageStats{}
		m.stats[key] = st
	}
	st.Count++
	st.Bytes += size
	m.mu.Unlock()
	m.totalBytes.Add(size)
	m.totalMsgs.Add(1)
	return m.inner.Send(from, to, msg)
}

// Close implements Transport.
func (m *MeteredTransport) Close() error { return m.inner.Close() }

// Stats returns a copy of the per-type traffic counters.
func (m *MeteredTransport) Stats() map[string]MessageStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]MessageStats, len(m.stats))
	for k, v := range m.stats {
		out[k] = *v
	}
	return out
}

// TotalBytes returns the total metered traffic in bytes.
func (m *MeteredTransport) TotalBytes() int64 { return m.totalBytes.Load() }

// TotalMessages returns the number of metered messages.
func (m *MeteredTransport) TotalMessages() int64 { return m.totalMsgs.Load() }
