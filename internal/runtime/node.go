package runtime

import (
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adept/internal/blas"
	"adept/internal/model"
)

// maxForwardedCandidates bounds the sorted response list forwarded up the
// tree, mirroring internal/sim.
const maxForwardedCandidates = 8

// schedTimeout is the internal self-message an agent schedules to bound the
// wait for children replies (failure tolerance: a crashed server must not
// wedge the whole platform).
type schedTimeout struct{ ID uint64 }

func init() { gob.Register(schedTimeout{}) }

// Options configures a deployed runtime system.
type Options struct {
	// Costs are the middleware cost parameters (Table 3).
	Costs model.Costs
	// Bandwidth is the virtual link bandwidth in Mb/s.
	Bandwidth float64
	// Wapp is the service cost in MFlop.
	Wapp float64
	// TimeScale converts virtual seconds of modelled cost into real
	// wall-clock sleep: realSeconds = virtualSeconds * TimeScale.
	// Zero disables modelled delays entirely (protocol-only mode).
	TimeScale float64
	// DgemmN, when positive, makes servers execute a real blocked DGEMM of
	// that dimension for each service request instead of the modelled
	// sleep.
	DgemmN int
	// ReplyTimeout bounds (in real time) how long an agent waits for its
	// children's scheduling replies before answering with the candidates
	// collected so far. Zero means a generous default.
	ReplyTimeout time.Duration
}

func (o Options) replyTimeout() time.Duration {
	if o.ReplyTimeout > 0 {
		return o.ReplyTimeout
	}
	return 5 * time.Second
}

// sleepVirtual blocks for the scaled equivalent of sec virtual seconds.
func (o Options) sleepVirtual(sec float64) {
	if o.TimeScale <= 0 || sec <= 0 {
		return
	}
	time.Sleep(time.Duration(sec * o.TimeScale * float64(time.Second)))
}

// WrepSample is one timed reply-treatment observation: the calibration
// harness fits these against degree to recover Wrep(d) = Wfix + Wsel·d,
// replaying the paper's Table 3 methodology.
type WrepSample struct {
	Agent   string
	Degree  int
	Seconds float64
}

// maxWrepSamples bounds the per-agent sample memory.
const maxWrepSamples = 4096

// agentElem is one deployed agent: a single goroutine serialising all of
// its receives, computations, and sends (the M(r,s,w) discipline).
type agentElem struct {
	sys      *System
	name     string
	power    float64
	children []string

	pending map[uint64]*replyAgg

	// done is closed when the element loop exits, so reconfiguration can
	// wait for retirement.
	done chan struct{}

	sampleMu    sync.Mutex
	wrepSamples []WrepSample
}

type replyAgg struct {
	requester  string
	want       int
	got        int
	candidates []Candidate
	done       bool
}

func (a *agentElem) run(inbox <-chan Envelope) {
	defer a.sys.wg.Done()
	defer close(a.done)
	o := a.sys.opts
	c := o.Costs
	for env := range inbox {
		switch msg := env.Msg.(type) {
		case Shutdown:
			return
		case Attach:
			a.attach(msg.Child)
		case Detach:
			a.detach(msg.Child)
		case SetPower:
			// Agents have no server-side prediction to refresh; the rated
			// power lives in the system topology for replanning.
		case SchedRequest:
			o.sleepVirtual(c.AgentSreq / o.Bandwidth) // receive request
			o.sleepVirtual(c.AgentWreq / a.power)     // Wreq
			agg := &replyAgg{requester: env.From, want: len(a.children)}
			a.pending[msg.ID] = agg
			for _, child := range a.children {
				o.sleepVirtual(c.AgentSreq / o.Bandwidth) // send to child
				if err := a.sys.send(a.name, child, SchedRequest{ID: msg.ID, ReplyTo: a.name}); err != nil {
					agg.want--
				}
			}
			if agg.want <= 0 {
				a.finish(msg.ID, agg)
				continue
			}
			id := msg.ID
			self := a.name
			time.AfterFunc(o.replyTimeout(), func() {
				_ = a.sys.send(self, self, schedTimeout{ID: id})
			})
		case SchedReply:
			agg, ok := a.pending[msg.ID]
			if !ok || agg.done {
				continue // reply after timeout
			}
			o.sleepVirtual(c.AgentSrep / o.Bandwidth) // receive reply
			agg.candidates = append(agg.candidates, msg.Candidates...)
			agg.got++
			if agg.got >= agg.want {
				a.finish(msg.ID, agg)
			}
		case schedTimeout:
			if agg, ok := a.pending[msg.ID]; ok && !agg.done {
				a.finish(msg.ID, agg)
			}
		default:
			a.sys.noteError(fmt.Errorf("agent %s: unexpected message %T", a.name, env.Msg))
		}
	}
}

// finish sorts and truncates the candidate list (Wrep), sends it to the
// requester, and clears the per-request state.
func (a *agentElem) finish(id uint64, agg *replyAgg) {
	o := a.sys.opts
	c := o.Costs
	agg.done = true
	delete(a.pending, id)
	start := time.Now()
	o.sleepVirtual(c.WrepAgent(len(a.children)) / a.power)
	sort.SliceStable(agg.candidates, func(i, j int) bool {
		return agg.candidates[i].Estimate < agg.candidates[j].Estimate
	})
	if len(agg.candidates) > maxForwardedCandidates {
		agg.candidates = agg.candidates[:maxForwardedCandidates]
	}
	a.recordWrep(time.Since(start))
	o.sleepVirtual(c.AgentSrep / o.Bandwidth)
	_ = a.sys.send(a.name, agg.requester, SchedReply{ID: id, Candidates: agg.candidates})
}

// attach adds a child to the routing list (idempotent). It runs inside the
// agent's own loop, so the children slice is never touched concurrently.
func (a *agentElem) attach(child string) {
	for _, c := range a.children {
		if c == child {
			return
		}
	}
	a.children = append(a.children, child)
}

// detach removes a child from the routing list. Aggregations already in
// flight keep their original fan-out count; a reply from the detached child
// is still accepted, and the scheduling timeout covers the case where it
// never arrives.
func (a *agentElem) detach(child string) {
	for i, c := range a.children {
		if c == child {
			a.children = append(a.children[:i], a.children[i+1:]...)
			return
		}
	}
}

// recordWrep stores one timed reply-treatment sample for calibration.
func (a *agentElem) recordWrep(d time.Duration) {
	a.sampleMu.Lock()
	defer a.sampleMu.Unlock()
	if len(a.wrepSamples) < maxWrepSamples {
		a.wrepSamples = append(a.wrepSamples, WrepSample{
			Agent:   a.name,
			Degree:  len(a.children),
			Seconds: d.Seconds(),
		})
	}
}

// serverElem is one deployed server (SeD).
type serverElem struct {
	sys   *System
	name  string
	power float64 // physical speed (MFlop/s) the node actually delivers

	// ratedBits is the power the server *believes* it has and folds into
	// its scheduling-phase predictions (float64 bits). It starts equal to
	// the physical power and is refreshed by SetPower patches; the gap
	// between rated and effective speed is exactly the drift the autonomic
	// loop closes.
	ratedBits atomic.Uint64

	// bgBits is the background-load factor (float64 bits): the injected
	// slowdown of §5.3's heterogenisation. Effective speed is
	// power / factor. Zero bits mean factor 1 (no load).
	bgBits atomic.Uint64

	pending atomic.Int64 // selected-but-unfinished service requests

	// Served counts completed service requests, for Ni accounting.
	served atomic.Int64

	// svcMu guards the per-server observed service-time accumulation the
	// autonomic monitor consumes.
	svcMu      sync.Mutex
	svcSeconds float64
	svcCount   int64

	// lastActive is the unix-nano timestamp of the last processed message,
	// for the remove-server drain heuristic.
	lastActive atomic.Int64

	// done is closed when the element loop exits.
	done chan struct{}

	// crashed servers ignore all traffic (failure injection).
	crashed atomic.Bool
}

// rated returns the believed power used in predictions.
func (s *serverElem) rated() float64 {
	if bits := s.ratedBits.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return s.power
}

// loadFactor returns the injected background-load slowdown (>= 1 nominally).
func (s *serverElem) loadFactor() float64 {
	if bits := s.bgBits.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return 1
}

func (s *serverElem) run(inbox <-chan Envelope) {
	defer s.sys.wg.Done()
	defer close(s.done)
	o := s.sys.opts
	c := o.Costs
	for env := range inbox {
		s.lastActive.Store(time.Now().UnixNano())
		switch msg := env.Msg.(type) {
		case Shutdown:
			return
		case SetPower:
			if msg.Power > 0 {
				s.ratedBits.Store(math.Float64bits(msg.Power))
			}
		case SchedRequest:
			if s.crashed.Load() {
				continue
			}
			o.sleepVirtual(c.ServerSreq / o.Bandwidth) // Eq. 3
			o.sleepVirtual(c.ServerWpre / s.power)     // prediction
			est := float64(s.pending.Load()+1) * (o.Wapp / s.rated())
			o.sleepVirtual(c.ServerSrep / o.Bandwidth) // Eq. 4
			_ = s.sys.send(s.name, env.From, SchedReply{
				ID:         msg.ID,
				Candidates: []Candidate{{Server: s.name, Estimate: est}},
			})
		case ServiceRequest:
			if s.crashed.Load() {
				continue
			}
			s.pending.Add(1)
			o.sleepVirtual(c.ServerSreq / o.Bandwidth)
			seconds, err := s.execute(msg)
			s.pending.Add(-1)
			o.sleepVirtual(c.ServerSrep / o.Bandwidth)
			reply := ServiceReply{ID: msg.ID, OK: err == nil}
			if err != nil {
				reply.Err = err.Error()
			} else {
				s.served.Add(1)
				s.recordService(seconds)
			}
			_ = s.sys.send(s.name, msg.ReplyTo, reply)
		default:
			s.sys.noteError(fmt.Errorf("server %s: unexpected message %T", s.name, env.Msg))
		}
		s.lastActive.Store(time.Now().UnixNano())
	}
}

// recordService accumulates one observed service execution time (virtual
// seconds), the raw signal the autonomic monitor turns into effective
// per-node power.
func (s *serverElem) recordService(seconds float64) {
	s.svcMu.Lock()
	s.svcSeconds += seconds
	s.svcCount++
	s.svcMu.Unlock()
}

// takeService drains the accumulated service-time observations.
func (s *serverElem) takeService() (seconds float64, count int64) {
	s.svcMu.Lock()
	seconds, count = s.svcSeconds, s.svcCount
	s.svcSeconds, s.svcCount = 0, 0
	s.svcMu.Unlock()
	return seconds, count
}

// execute performs the service work and reports its duration in virtual
// seconds: a real DGEMM when configured (measured wall-clock), the
// calibrated sleep otherwise (the modelled time, scaled by the injected
// background load).
func (s *serverElem) execute(msg ServiceRequest) (float64, error) {
	o := s.sys.opts
	if n := msg.N; n > 0 && o.DgemmN > 0 {
		start := time.Now()
		a := blas.RandomMatrix(n, n, int64(msg.ID))
		b := blas.RandomMatrix(n, n, int64(msg.ID)+1)
		out := blas.NewMatrix(n, n)
		err := blas.DgemmBlocked(1, a, b, 0, &out, 0)
		elapsed := time.Since(start).Seconds() * s.loadFactor()
		// Background load on a real-compute server is modelled as the extra
		// wall time the co-scheduled job would steal.
		if extra := elapsed - time.Since(start).Seconds(); extra > 0 {
			time.Sleep(time.Duration(extra * float64(time.Second)))
		}
		// Report in virtual seconds like the calibrated path, so the
		// monitor's effective-power inversion (Wapp / seconds) sees one
		// consistent time base regardless of execution mode.
		if o.TimeScale > 0 {
			elapsed /= o.TimeScale
		}
		return elapsed, err
	}
	virtual := o.Wapp * s.loadFactor() / s.power
	o.sleepVirtual(virtual)
	return virtual, nil
}
