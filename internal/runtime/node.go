package runtime

import (
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adept/internal/blas"
	"adept/internal/model"
)

// maxForwardedCandidates bounds the sorted response list forwarded up the
// tree, mirroring internal/sim.
const maxForwardedCandidates = 8

// schedTimeout is the internal self-message an agent schedules to bound the
// wait for children replies (failure tolerance: a crashed server must not
// wedge the whole platform).
type schedTimeout struct{ ID uint64 }

func init() { gob.Register(schedTimeout{}) }

// Options configures a deployed runtime system.
type Options struct {
	// Costs are the middleware cost parameters (Table 3).
	Costs model.Costs
	// Bandwidth is the virtual link bandwidth in Mb/s.
	Bandwidth float64
	// Wapp is the service cost in MFlop.
	Wapp float64
	// TimeScale converts virtual seconds of modelled cost into real
	// wall-clock sleep: realSeconds = virtualSeconds * TimeScale.
	// Zero disables modelled delays entirely (protocol-only mode).
	TimeScale float64
	// DgemmN, when positive, makes servers execute a real blocked DGEMM of
	// that dimension for each service request instead of the modelled
	// sleep.
	DgemmN int
	// ReplyTimeout bounds (in real time) how long an agent waits for its
	// children's scheduling replies before answering with the candidates
	// collected so far. Zero means a generous default.
	ReplyTimeout time.Duration
}

func (o Options) replyTimeout() time.Duration {
	if o.ReplyTimeout > 0 {
		return o.ReplyTimeout
	}
	return 5 * time.Second
}

// sleepVirtual blocks for the scaled equivalent of sec virtual seconds.
func (o Options) sleepVirtual(sec float64) {
	if o.TimeScale <= 0 || sec <= 0 {
		return
	}
	time.Sleep(time.Duration(sec * o.TimeScale * float64(time.Second)))
}

// WrepSample is one timed reply-treatment observation: the calibration
// harness fits these against degree to recover Wrep(d) = Wfix + Wsel·d,
// replaying the paper's Table 3 methodology.
type WrepSample struct {
	Agent   string
	Degree  int
	Seconds float64
}

// maxWrepSamples bounds the per-agent sample memory.
const maxWrepSamples = 4096

// agentElem is one deployed agent: a single goroutine serialising all of
// its receives, computations, and sends (the M(r,s,w) discipline).
type agentElem struct {
	sys      *System
	name     string
	power    float64
	children []string

	pending map[uint64]*replyAgg

	sampleMu    sync.Mutex
	wrepSamples []WrepSample
}

type replyAgg struct {
	requester  string
	want       int
	got        int
	candidates []Candidate
	done       bool
}

func (a *agentElem) run(inbox <-chan Envelope) {
	defer a.sys.wg.Done()
	o := a.sys.opts
	c := o.Costs
	for env := range inbox {
		switch msg := env.Msg.(type) {
		case Shutdown:
			return
		case SchedRequest:
			o.sleepVirtual(c.AgentSreq / o.Bandwidth) // receive request
			o.sleepVirtual(c.AgentWreq / a.power)     // Wreq
			agg := &replyAgg{requester: env.From, want: len(a.children)}
			a.pending[msg.ID] = agg
			for _, child := range a.children {
				o.sleepVirtual(c.AgentSreq / o.Bandwidth) // send to child
				if err := a.sys.send(a.name, child, SchedRequest{ID: msg.ID, ReplyTo: a.name}); err != nil {
					agg.want--
				}
			}
			if agg.want <= 0 {
				a.finish(msg.ID, agg)
				continue
			}
			id := msg.ID
			self := a.name
			time.AfterFunc(o.replyTimeout(), func() {
				_ = a.sys.send(self, self, schedTimeout{ID: id})
			})
		case SchedReply:
			agg, ok := a.pending[msg.ID]
			if !ok || agg.done {
				continue // reply after timeout
			}
			o.sleepVirtual(c.AgentSrep / o.Bandwidth) // receive reply
			agg.candidates = append(agg.candidates, msg.Candidates...)
			agg.got++
			if agg.got >= agg.want {
				a.finish(msg.ID, agg)
			}
		case schedTimeout:
			if agg, ok := a.pending[msg.ID]; ok && !agg.done {
				a.finish(msg.ID, agg)
			}
		default:
			a.sys.noteError(fmt.Errorf("agent %s: unexpected message %T", a.name, env.Msg))
		}
	}
}

// finish sorts and truncates the candidate list (Wrep), sends it to the
// requester, and clears the per-request state.
func (a *agentElem) finish(id uint64, agg *replyAgg) {
	o := a.sys.opts
	c := o.Costs
	agg.done = true
	delete(a.pending, id)
	start := time.Now()
	o.sleepVirtual(c.WrepAgent(len(a.children)) / a.power)
	sort.SliceStable(agg.candidates, func(i, j int) bool {
		return agg.candidates[i].Estimate < agg.candidates[j].Estimate
	})
	if len(agg.candidates) > maxForwardedCandidates {
		agg.candidates = agg.candidates[:maxForwardedCandidates]
	}
	a.recordWrep(time.Since(start))
	o.sleepVirtual(c.AgentSrep / o.Bandwidth)
	_ = a.sys.send(a.name, agg.requester, SchedReply{ID: id, Candidates: agg.candidates})
}

// recordWrep stores one timed reply-treatment sample for calibration.
func (a *agentElem) recordWrep(d time.Duration) {
	a.sampleMu.Lock()
	defer a.sampleMu.Unlock()
	if len(a.wrepSamples) < maxWrepSamples {
		a.wrepSamples = append(a.wrepSamples, WrepSample{
			Agent:   a.name,
			Degree:  len(a.children),
			Seconds: d.Seconds(),
		})
	}
}

// serverElem is one deployed server (SeD).
type serverElem struct {
	sys   *System
	name  string
	power float64

	pending atomic.Int64 // selected-but-unfinished service requests

	// Served counts completed service requests, for Ni accounting.
	served atomic.Int64

	// crashed servers ignore all traffic (failure injection).
	crashed atomic.Bool
}

func (s *serverElem) run(inbox <-chan Envelope) {
	defer s.sys.wg.Done()
	o := s.sys.opts
	c := o.Costs
	for env := range inbox {
		switch msg := env.Msg.(type) {
		case Shutdown:
			return
		case SchedRequest:
			if s.crashed.Load() {
				continue
			}
			o.sleepVirtual(c.ServerSreq / o.Bandwidth) // Eq. 3
			o.sleepVirtual(c.ServerWpre / s.power)     // prediction
			est := float64(s.pending.Load()+1) * (o.Wapp / s.power)
			o.sleepVirtual(c.ServerSrep / o.Bandwidth) // Eq. 4
			_ = s.sys.send(s.name, env.From, SchedReply{
				ID:         msg.ID,
				Candidates: []Candidate{{Server: s.name, Estimate: est}},
			})
		case ServiceRequest:
			if s.crashed.Load() {
				continue
			}
			s.pending.Add(1)
			o.sleepVirtual(c.ServerSreq / o.Bandwidth)
			err := s.execute(msg)
			s.pending.Add(-1)
			o.sleepVirtual(c.ServerSrep / o.Bandwidth)
			reply := ServiceReply{ID: msg.ID, OK: err == nil}
			if err != nil {
				reply.Err = err.Error()
			} else {
				s.served.Add(1)
			}
			_ = s.sys.send(s.name, msg.ReplyTo, reply)
		default:
			s.sys.noteError(fmt.Errorf("server %s: unexpected message %T", s.name, env.Msg))
		}
	}
}

// execute performs the service work: a real DGEMM when configured, the
// calibrated sleep otherwise.
func (s *serverElem) execute(msg ServiceRequest) error {
	o := s.sys.opts
	if n := msg.N; n > 0 && o.DgemmN > 0 {
		a := blas.RandomMatrix(n, n, int64(msg.ID))
		b := blas.RandomMatrix(n, n, int64(msg.ID)+1)
		out := blas.NewMatrix(n, n)
		return blas.DgemmBlocked(1, a, b, 0, &out, 0)
	}
	o.sleepVirtual(o.Wapp / s.power)
	return nil
}
