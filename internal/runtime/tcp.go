package runtime

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// TCPTransport delivers envelopes over loopback TCP with gob encoding: the
// closest stdlib-only analog of DIET's CORBA transport. Every registered
// element gets its own listener; senders keep one persistent connection per
// destination.
type TCPTransport struct {
	mu        sync.Mutex
	listeners map[string]net.Listener
	addrs     map[string]string
	boxes     map[string]*inbox
	conns     map[string]*tcpConn
	closed    bool
	wg        sync.WaitGroup
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// NewTCPTransport returns an empty loopback TCP transport.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		listeners: make(map[string]net.Listener),
		addrs:     make(map[string]string),
		boxes:     make(map[string]*inbox),
		conns:     make(map[string]*tcpConn),
	}
}

// Register implements Transport: it opens a loopback listener for the
// element and fans accepted connections into its inbox.
func (t *TCPTransport) Register(name string) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errors.New("runtime: transport closed")
	}
	if _, dup := t.boxes[name]; dup {
		return nil, fmt.Errorf("runtime: element %q already registered", name)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("runtime: listen for %q: %w", name, err)
	}
	box := newInbox()
	t.listeners[name] = ln
	t.addrs[name] = ln.Addr().String()
	t.boxes[name] = box

	t.wg.Add(1)
	go t.acceptLoop(ln, box)
	return box.ch, nil
}

func (t *TCPTransport) acceptLoop(ln net.Listener, box *inbox) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			dec := gob.NewDecoder(conn)
			for {
				var env Envelope
				if err := dec.Decode(&env); err != nil {
					return
				}
				// A send error means the box retired mid-decode; dropping
				// the message is the teardown semantic.
				_ = box.send(env)
			}
		}()
	}
}

// Send implements Transport, lazily dialing and caching one connection per
// destination.
func (t *TCPTransport) Send(from, to string, msg any) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("runtime: transport closed")
	}
	addr, ok := t.addrs[to]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("runtime: unknown element %q", to)
	}
	key := from + "\x00" + to
	c := t.conns[key]
	if c == nil {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.mu.Unlock()
			return fmt.Errorf("runtime: dial %q: %w", to, err)
		}
		c = &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
		t.conns[key] = c
	}
	t.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Envelope{From: from, Msg: msg}); err != nil {
		return fmt.Errorf("runtime: send to %q: %w", to, err)
	}
	return nil
}

// Deregister implements Transport: it closes the element's listener and
// inbox and drops cached connections to it, freeing the name for reuse.
func (t *TCPTransport) Deregister(name string) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("runtime: transport closed")
	}
	box, ok := t.boxes[name]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("runtime: element %q not registered", name)
	}
	if ln := t.listeners[name]; ln != nil {
		ln.Close()
	}
	delete(t.listeners, name)
	delete(t.addrs, name)
	delete(t.boxes, name)
	suffix := "\x00" + name
	//adeptvet:allow maporder teardown of matching connections; close order is immaterial
	for key, c := range t.conns {
		if len(key) >= len(suffix) && key[len(key)-len(suffix):] == suffix {
			c.conn.Close()
			delete(t.conns, key)
		}
	}
	t.mu.Unlock()
	// Decoder goroutines feeding this box drain out once their connections
	// close; retire() waits for in-flight sends before closing.
	box.retire()
	return nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	//adeptvet:allow maporder transport shutdown; close order is immaterial
	for _, ln := range t.listeners {
		ln.Close()
	}
	//adeptvet:allow maporder transport shutdown; close order is immaterial
	for _, c := range t.conns {
		c.conn.Close()
	}
	boxes := t.boxes
	t.boxes = map[string]*inbox{}
	t.mu.Unlock()

	t.wg.Wait()
	//adeptvet:allow maporder transport shutdown; retire order is immaterial
	for _, box := range boxes {
		box.retire()
	}
	return nil
}
