// Package runtime is a real, concurrent implementation of the hierarchical
// NES middleware the paper deploys (DIET): agents, servers and clients run
// as goroutines, exchange the two-phase protocol messages of Fig. 1 over a
// pluggable transport (in-process channels or TCP+gob on localhost), and
// the service phase executes real work (a DGEMM kernel or a calibrated
// sleep). It is the stand-in for the paper's DIET 2.0 + GoDIET + Grid'5000
// stack: deployments planned by internal/core are instantiated here and
// their throughput measured with wall-clock clients.
//
// Fidelity to the machine model M(r,s,w) is approximated by giving every
// element a single message-processing loop: one goroutine per element
// serialises its receives, computations, and sends.
package runtime

import (
	"encoding/gob"
	"fmt"
)

// SchedRequest opens the scheduling phase for one request. It travels from
// the client to the root agent and down the tree.
type SchedRequest struct {
	// ID identifies the request uniquely per client.
	ID uint64
	// ReplyTo names the element the final reply must reach (the client for
	// the root agent; intermediate hops rewrite it).
	ReplyTo string
}

// Candidate is one server entry of the sorted response list.
type Candidate struct {
	// Server is the server element's name.
	Server string
	// Estimate is the server's expected completion time (seconds, virtual)
	// for one more request at prediction time.
	Estimate float64
}

// SchedReply carries the sorted candidate list back up the tree
// ("response sorted & forwarded up").
type SchedReply struct {
	ID         uint64
	Candidates []Candidate
}

// ServiceRequest asks the selected server to execute the application once.
type ServiceRequest struct {
	ID uint64
	// ReplyTo names the client awaiting the response.
	ReplyTo string
	// N is the DGEMM problem dimension (the service payload descriptor).
	N int
}

// ServiceReply closes the service phase.
type ServiceReply struct {
	ID uint64
	// OK is false when the server failed to execute the request.
	OK bool
	// Err carries the failure description when OK is false.
	Err string
}

// Shutdown asks an element's loop to exit.
type Shutdown struct{}

// Attach asks an agent to start routing scheduling requests to a new child
// (live reconfiguration: add-server, reparent).
type Attach struct {
	// Child is the element name to add to the agent's child list.
	Child string
}

// Detach asks an agent to stop routing scheduling requests to a child. The
// child element itself keeps running until it is drained and deregistered;
// in-flight requests it already accepted complete normally.
type Detach struct {
	// Child is the element name to remove from the agent's child list.
	Child string
}

// SetPower updates an element's recorded computing power. Servers fold the
// new value into their performance predictions immediately, which is how a
// reconfiguration patch teaches the scheduling phase about learned drift.
type SetPower struct {
	// Power is the new power in MFlop/s.
	Power float64
}

// Envelope wraps a message with its sender for transports that cannot
// recover it from the connection.
type Envelope struct {
	From string
	Msg  any
}

func init() {
	// gob needs concrete types registered for the any-valued Envelope.
	gob.Register(SchedRequest{})
	gob.Register(SchedReply{})
	gob.Register(ServiceRequest{})
	gob.Register(ServiceReply{})
	gob.Register(Shutdown{})
	gob.Register(Attach{})
	gob.Register(Detach{})
	gob.Register(SetPower{})
}

// String renders an envelope compactly for traces.
func (e Envelope) String() string {
	return fmt.Sprintf("from=%s %T", e.From, e.Msg)
}
