package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adept/internal/hierarchy"
)

// member is the system's bookkeeping view of one deployed element: the
// source of truth for Snapshot(), kept in sync by the reconfiguration
// primitives. Power here is the *rated* power (the planner's belief),
// which SetPower patches refresh when the monitor learns drift.
type member struct {
	role     hierarchy.Role
	power    float64
	parent   string // "" for the root
	children []string
}

// System is a deployed middleware instance: the live realisation of one
// planned hierarchy. It supports live reconfiguration — AddServer,
// RemoveServer, Reparent, PromoteServer, DemoteAgent, SetPower — with
// drain/quiesce semantics: in-flight requests complete, clients ride
// through patches with at most per-request failures.
type System struct {
	opts      Options
	transport Transport
	root      string
	name      string

	mu      sync.RWMutex
	agents  map[string]*agentElem
	servers map[string]*serverElem
	topo    map[string]*member

	clientEpoch atomic.Uint64

	wg      sync.WaitGroup
	started bool
	stopped atomic.Bool

	errMu  sync.Mutex
	errLog []error
}

// Deploy instantiates the hierarchy on the transport and starts every
// element's goroutine. The caller owns the returned System and must Stop it.
func Deploy(h *hierarchy.Hierarchy, transport Transport, opts Options) (*System, error) {
	if err := h.Validate(hierarchy.Structural); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	if opts.Bandwidth <= 0 {
		return nil, errors.New("runtime: bandwidth must be positive")
	}
	if opts.Wapp <= 0 {
		return nil, errors.New("runtime: wapp must be positive")
	}
	sys := &System{
		opts:      opts,
		transport: transport,
		name:      h.Name,
		agents:    make(map[string]*agentElem),
		servers:   make(map[string]*serverElem),
		topo:      make(map[string]*member),
	}

	type pendingStart struct {
		run   func(<-chan Envelope)
		inbox <-chan Envelope
	}
	var starts []pendingStart

	var build func(id int, parentName string) (string, error)
	build = func(id int, parentName string) (string, error) {
		n := h.MustNode(id)
		inbox, err := transport.Register(n.Name)
		if err != nil {
			return "", err
		}
		sys.topo[n.Name] = &member{role: n.Role, power: n.Power, parent: parentName}
		if n.Role == hierarchy.RoleServer {
			s := newServerElem(sys, n.Name, n.Power)
			sys.servers[n.Name] = s
			starts = append(starts, pendingStart{run: s.run, inbox: inbox})
			return n.Name, nil
		}
		a := newAgentElem(sys, n.Name, n.Power)
		sys.agents[n.Name] = a
		for _, c := range n.Children {
			childName, err := build(c, n.Name)
			if err != nil {
				return "", err
			}
			a.children = append(a.children, childName)
			sys.topo[n.Name].children = append(sys.topo[n.Name].children, childName)
		}
		starts = append(starts, pendingStart{run: a.run, inbox: inbox})
		return n.Name, nil
	}
	rootName, err := build(h.Root(), "")
	if err != nil {
		transport.Close()
		return nil, err
	}
	sys.root = rootName
	for _, st := range starts {
		sys.wg.Add(1)
		go st.run(st.inbox)
	}
	sys.started = true
	return sys, nil
}

func newAgentElem(sys *System, name string, power float64) *agentElem {
	return &agentElem{
		sys:     sys,
		name:    name,
		power:   power,
		pending: make(map[uint64]*replyAgg),
		done:    make(chan struct{}),
	}
}

func newServerElem(sys *System, name string, power float64) *serverElem {
	return &serverElem{sys: sys, name: name, power: power, done: make(chan struct{})}
}

// Root returns the root agent's element name.
func (s *System) Root() string { return s.root }

// Snapshot reconstructs the currently deployed hierarchy from the system's
// topology bookkeeping. The autonomic loop diffs this snapshot against a
// freshly replanned tree; powers are the *rated* powers, including every
// SetPower patch applied so far.
func (s *System) Snapshot() (*hierarchy.Hierarchy, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := hierarchy.New(s.name)
	rootM, ok := s.topo[s.root]
	if !ok {
		return nil, errors.New("runtime: root missing from topology")
	}
	rootID, err := h.AddRoot(s.root, rootM.power)
	if err != nil {
		return nil, err
	}
	var build func(parentID int, m *member) error
	build = func(parentID int, m *member) error {
		for _, childName := range m.children {
			cm, ok := s.topo[childName]
			if !ok {
				return fmt.Errorf("runtime: child %q missing from topology", childName)
			}
			var id int
			var err error
			if cm.role == hierarchy.RoleAgent {
				id, err = h.AddAgent(parentID, childName, cm.power)
			} else {
				id, err = h.AddServer(parentID, childName, cm.power)
			}
			if err != nil {
				return err
			}
			if err := build(id, cm); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(rootID, rootM); err != nil {
		return nil, err
	}
	return h, nil
}

// send routes a message through the transport, tolerating teardown.
func (s *System) send(from, to string, msg any) error {
	if s.stopped.Load() {
		return errors.New("runtime: system stopped")
	}
	return s.transport.Send(from, to, msg)
}

// noteError records a protocol anomaly for post-run inspection.
func (s *System) noteError(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if len(s.errLog) < 100 {
		s.errLog = append(s.errLog, err)
	}
}

// Errors returns the protocol anomalies observed so far.
func (s *System) Errors() []error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return append([]error(nil), s.errLog...)
}

// CrashServer simulates a server failure: the named server stops reacting
// to all traffic. Agents' reply timeouts keep the platform available.
func (s *System) CrashServer(name string) error {
	s.mu.RLock()
	srv, ok := s.servers[name]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("runtime: no server %q", name)
	}
	srv.crashed.Store(true)
	return nil
}

// SetBackgroundLoad injects a background-load slowdown on the named server:
// its effective compute speed becomes power/factor while predictions keep
// using the rated power — the §5.3 heterogenisation as a live drift source.
// factor 1 removes the load.
func (s *System) SetBackgroundLoad(name string, factor float64) error {
	if factor <= 0 || math.IsNaN(factor) {
		return fmt.Errorf("runtime: background-load factor %g must be positive", factor)
	}
	s.mu.RLock()
	srv, ok := s.servers[name]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("runtime: no server %q", name)
	}
	srv.bgBits.Store(math.Float64bits(factor))
	return nil
}

// WrepSamples collects every agent's timed reply-treatment observations,
// for Table 3 calibration.
func (s *System) WrepSamples() []WrepSample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Concatenate per-agent samples in sorted agent order: the result is
	// a slice, so map iteration order would leak straight into the
	// calibration input ordering.
	names := make([]string, 0, len(s.agents))
	for name := range s.agents {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []WrepSample
	for _, name := range names {
		a := s.agents[name]
		a.sampleMu.Lock()
		out = append(out, a.wrepSamples...)
		a.sampleMu.Unlock()
	}
	return out
}

// ServedCounts returns per-server completed service counts (Ni of Eq. 6).
func (s *System) ServedCounts() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.servers))
	//adeptvet:allow maporder per-key counter copy into an unordered map; no cross-key interaction
	for name, srv := range s.servers {
		out[name] = srv.served.Load()
	}
	return out
}

// ServiceStat aggregates a server's observed service executions since the
// last TakeServiceStats call.
type ServiceStat struct {
	// Seconds is the summed observed execution time (virtual seconds).
	Seconds float64
	// Count is the number of completed executions observed.
	Count int64
}

// TakeServiceStats drains every server's accumulated service-time
// observations: the monitoring signal of the autonomic loop. Each call
// returns only the window since the previous call.
func (s *System) TakeServiceStats() map[string]ServiceStat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]ServiceStat, len(s.servers))
	//adeptvet:allow maporder per-key drain into an unordered map; no cross-key interaction
	for name, srv := range s.servers {
		sec, n := srv.takeService()
		out[name] = ServiceStat{Seconds: sec, Count: n}
	}
	return out
}

// --- live reconfiguration ------------------------------------------------

// drainQuiet is how long a server must sit idle (no message processed, no
// pending execution) before its removal drain declares quiescence.
const drainQuiet = 15 * time.Millisecond

// DefaultDrainTimeout bounds the wait for a retiring element to go quiet.
const DefaultDrainTimeout = 2 * time.Second

var errStopped = errors.New("runtime: system stopped")

// lookup fetches a topology entry under the read lock.
func (s *System) lookup(name string) (*member, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.topo[name]
	return m, ok
}

// AddServer deploys a new server under an existing agent: the element is
// registered and running before the parent starts routing to it, so no
// request can observe a half-added child.
func (s *System) AddServer(parentName, name string, power float64) error {
	return s.addElement(parentName, name, power, hierarchy.RoleServer)
}

// AddAgent deploys a new (initially childless) agent under an existing
// agent. Children arrive via later Attach-producing ops (AddServer,
// Reparent).
func (s *System) AddAgent(parentName, name string, power float64) error {
	return s.addElement(parentName, name, power, hierarchy.RoleAgent)
}

func (s *System) addElement(parentName, name string, power float64, role hierarchy.Role) error {
	if s.stopped.Load() {
		return errStopped
	}
	if power <= 0 || math.IsNaN(power) {
		return fmt.Errorf("runtime: power %g must be positive", power)
	}
	s.mu.Lock()
	parent, ok := s.topo[parentName]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("runtime: no element %q", parentName)
	}
	if parent.role != hierarchy.RoleAgent {
		s.mu.Unlock()
		return fmt.Errorf("runtime: parent %q is a server", parentName)
	}
	if _, dup := s.topo[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("runtime: element %q already deployed", name)
	}
	inbox, err := s.transport.Register(name)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	var run func(<-chan Envelope)
	if role == hierarchy.RoleServer {
		srv := newServerElem(s, name, power)
		s.servers[name] = srv
		run = srv.run
	} else {
		a := newAgentElem(s, name, power)
		s.agents[name] = a
		run = a.run
	}
	s.topo[name] = &member{role: role, power: power, parent: parentName}
	parent.children = append(parent.children, name)
	s.wg.Add(1)
	go run(inbox)
	s.mu.Unlock()
	return s.send("system", parentName, Attach{Child: name})
}

// RemoveServer undeploys a server with drain/quiesce semantics: the parent
// stops routing to it first, then the removal waits (bounded by
// DefaultDrainTimeout) for in-flight requests to complete before the
// element is deregistered. Clients holding the server in an old candidate
// list see at most one failed request.
func (s *System) RemoveServer(name string) error {
	return s.removeElement(name, hierarchy.RoleServer)
}

// RemoveAgent undeploys a childless non-root agent.
func (s *System) RemoveAgent(name string) error {
	return s.removeElement(name, hierarchy.RoleAgent)
}

func (s *System) removeElement(name string, role hierarchy.Role) error {
	if s.stopped.Load() {
		return errStopped
	}
	s.mu.Lock()
	m, ok := s.topo[name]
	switch {
	case !ok:
		s.mu.Unlock()
		return fmt.Errorf("runtime: no element %q", name)
	case m.role != role:
		s.mu.Unlock()
		return fmt.Errorf("runtime: element %q is a %s", name, m.role)
	case name == s.root:
		s.mu.Unlock()
		return errors.New("runtime: cannot remove the root")
	case len(m.children) != 0:
		s.mu.Unlock()
		return fmt.Errorf("runtime: element %q still has %d children", name, len(m.children))
	}
	parentName := m.parent
	s.detachTopo(name)
	delete(s.topo, name)
	s.mu.Unlock()
	return s.retire(parentName, name)
}

// detachTopo removes name from its parent's child list (caller holds mu).
func (s *System) detachTopo(name string) {
	m := s.topo[name]
	if m == nil || m.parent == "" {
		return
	}
	p := s.topo[m.parent]
	for i, c := range p.children {
		if c == name {
			p.children = append(p.children[:i], p.children[i+1:]...)
			return
		}
	}
}

// retire detaches an element from its parent's routing, drains it, and
// deregisters it from the transport, waiting for the element loop to exit.
func (s *System) retire(parentName, name string) error {
	if err := s.send("system", parentName, Detach{Child: name}); err != nil {
		return err
	}
	s.mu.RLock()
	srv := s.servers[name]
	agent := s.agents[name]
	s.mu.RUnlock()
	var done chan struct{}
	if srv != nil {
		s.drainServer(srv, DefaultDrainTimeout)
		done = srv.done
	} else if agent != nil {
		done = agent.done
	}
	if err := s.transport.Deregister(name); err != nil {
		return err
	}
	if done != nil {
		select {
		case <-done:
		case <-time.After(DefaultDrainTimeout):
			s.noteError(fmt.Errorf("runtime: element %q did not exit after deregistration", name))
		}
	}
	s.mu.Lock()
	delete(s.servers, name)
	delete(s.agents, name)
	s.mu.Unlock()
	return nil
}

// drainServer waits until the server has no pending execution and has been
// idle for drainQuiet, or the timeout fires. Crashed servers are not
// waited on — they will never go quiet in any meaningful sense.
func (s *System) drainServer(srv *serverElem, timeout time.Duration) {
	if srv.crashed.Load() {
		return
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		idle := time.Duration(time.Now().UnixNano() - srv.lastActive.Load())
		if srv.pending.Load() == 0 && idle > drainQuiet {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Reparent moves an element (with its whole subtree, for agents) under a
// new parent agent. The element keeps running throughout; only the routing
// changes.
func (s *System) Reparent(name, newParentName string) error {
	if s.stopped.Load() {
		return errStopped
	}
	s.mu.Lock()
	m, ok := s.topo[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("runtime: no element %q", name)
	}
	if name == s.root {
		s.mu.Unlock()
		return errors.New("runtime: cannot reparent the root")
	}
	np, ok := s.topo[newParentName]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("runtime: no element %q", newParentName)
	}
	if np.role != hierarchy.RoleAgent {
		s.mu.Unlock()
		return fmt.Errorf("runtime: new parent %q is a server", newParentName)
	}
	// Reject cycles: the new parent must not live inside name's subtree.
	for cur := newParentName; cur != ""; {
		if cur == name {
			s.mu.Unlock()
			return fmt.Errorf("runtime: reparenting %q under its own subtree", name)
		}
		cur = s.topo[cur].parent
	}
	oldParent := m.parent
	if oldParent == newParentName {
		s.mu.Unlock()
		return nil
	}
	s.detachTopo(name)
	m.parent = newParentName
	np.children = append(np.children, name)
	s.mu.Unlock()
	if err := s.send("system", oldParent, Detach{Child: name}); err != nil {
		return err
	}
	return s.send("system", newParentName, Attach{Child: name})
}

// SetPower updates an element's rated power: the belief the scheduling
// phase predictions and the next replanning run use.
func (s *System) SetPower(name string, power float64) error {
	if s.stopped.Load() {
		return errStopped
	}
	if power <= 0 || math.IsNaN(power) {
		return fmt.Errorf("runtime: power %g must be positive", power)
	}
	s.mu.Lock()
	m, ok := s.topo[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("runtime: no element %q", name)
	}
	m.power = power
	s.mu.Unlock()
	return s.send("system", name, SetPower{Power: power})
}

// PromoteServer converts a running server into an agent (the live analog
// of the heuristic's shift_nodes): the server is drained and retired, and
// an agent element re-registers under the same name and parent.
func (s *System) PromoteServer(name string) error {
	return s.convert(name, hierarchy.RoleServer, hierarchy.RoleAgent)
}

// DemoteAgent converts a running childless agent back into a server.
func (s *System) DemoteAgent(name string) error {
	return s.convert(name, hierarchy.RoleAgent, hierarchy.RoleServer)
}

func (s *System) convert(name string, from, to hierarchy.Role) error {
	if s.stopped.Load() {
		return errStopped
	}
	s.mu.Lock()
	m, ok := s.topo[name]
	switch {
	case !ok:
		s.mu.Unlock()
		return fmt.Errorf("runtime: no element %q", name)
	case m.role != from:
		s.mu.Unlock()
		return fmt.Errorf("runtime: element %q is a %s, not a %s", name, m.role, from)
	case name == s.root:
		s.mu.Unlock()
		return errors.New("runtime: cannot convert the root")
	case len(m.children) != 0:
		s.mu.Unlock()
		return fmt.Errorf("runtime: element %q still has %d children", name, len(m.children))
	}
	parentName, power := m.parent, m.power
	s.mu.Unlock()

	if err := s.retire(parentName, name); err != nil {
		return err
	}
	s.mu.Lock()
	inbox, err := s.transport.Register(name)
	if err != nil {
		// The element is gone and could not come back: drop it from the
		// topology so Snapshot stays consistent.
		s.detachTopo(name)
		delete(s.topo, name)
		s.mu.Unlock()
		return err
	}
	var run func(<-chan Envelope)
	if to == hierarchy.RoleAgent {
		a := newAgentElem(s, name, power)
		s.agents[name] = a
		run = a.run
	} else {
		srv := newServerElem(s, name, power)
		s.servers[name] = srv
		run = srv.run
	}
	m.role = to
	s.wg.Add(1)
	go run(inbox)
	s.mu.Unlock()
	return s.send("system", parentName, Attach{Child: name})
}

// ApplyOp applies one reconfiguration patch operation to the live system.
//
// Link-bandwidth limitation: the live runtime models a single shared wire
// (Options.Bandwidth) — the paper's homogeneous-links testbed — so
// op.Bandwidth is bookkeeping only here: elements added by a patch send
// and receive at the uniform wire speed, and Snapshot() reports bandwidth
// zero for every element. Per-node link speeds are modelled by the
// discrete-event simulator (internal/sim), whose patch target honours
// op.Bandwidth; plan deployments for heterogeneous links there.
func (s *System) ApplyOp(op hierarchy.Op) error {
	switch op.Kind {
	case hierarchy.OpAdd:
		if op.Role == hierarchy.RoleAgent {
			return s.AddAgent(op.Parent, op.Name, op.Power)
		}
		return s.AddServer(op.Parent, op.Name, op.Power)
	case hierarchy.OpRemove:
		m, ok := s.lookup(op.Name)
		if !ok {
			return fmt.Errorf("runtime: no element %q", op.Name)
		}
		if m.role == hierarchy.RoleAgent {
			return s.RemoveAgent(op.Name)
		}
		return s.RemoveServer(op.Name)
	case hierarchy.OpReparent:
		return s.Reparent(op.Name, op.Parent)
	case hierarchy.OpSetPower:
		return s.SetPower(op.Name, op.Power)
	case hierarchy.OpPromote:
		return s.PromoteServer(op.Name)
	case hierarchy.OpDemote:
		return s.DemoteAgent(op.Name)
	}
	return fmt.Errorf("runtime: unknown op kind %v", op.Kind)
}

// ApplyPatch applies a reconfiguration patch op by op, stopping at the
// first failure. The returned count says how many ops were applied.
func (s *System) ApplyPatch(p hierarchy.Patch) (int, error) {
	for i, op := range p.Ops {
		if err := s.ApplyOp(op); err != nil {
			return i, fmt.Errorf("runtime: patch op %d (%s): %w", i, op, err)
		}
	}
	return len(p.Ops), nil
}

// Stop shuts every element down and closes the transport.
func (s *System) Stop() {
	if !s.started || !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.agents)+len(s.servers))
	for name := range s.agents {
		names = append(names, name)
	}
	for name := range s.servers {
		names = append(names, name)
	}
	s.mu.RUnlock()
	// Deterministic shutdown order, so teardown traces and any
	// shutdown-races the soak harness shakes out replay identically.
	sort.Strings(names)
	for _, name := range names {
		_ = s.transport.Send("system", name, Shutdown{})
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		// Elements blocked on a dead peer: closing the transport below
		// unblocks them by closing their inboxes.
	}
	s.transport.Close()
	s.wg.Wait()
}

// LoadStats summarises a client-driven measurement.
type LoadStats struct {
	// Completed counts fully completed requests across all clients.
	Completed int64
	// Failed counts requests whose service phase reported failure (or
	// whose selected server disappeared under them mid-reconfiguration).
	Failed int64
	// Timeouts counts requests abandoned by clients.
	Timeouts int64
	// Elapsed is the real measurement duration.
	Elapsed time.Duration
	// Throughput is completed requests per *virtual* second when a
	// TimeScale is set, per real second otherwise.
	Throughput float64
}

// RunClients drives the platform with n closed-loop clients until the
// duration elapses or the context is cancelled, and reports completion
// statistics (the §5.1 measurement). Cancellation is a normal early end of
// the measurement window: the stats cover the elapsed part and the error
// is nil. It may be called repeatedly on the same system — each call
// registers a fresh client cohort — which is how the autonomic monitor
// samples successive measurement windows.
func (s *System) RunClients(ctx context.Context, n int, duration time.Duration) (LoadStats, error) {
	if n <= 0 {
		return LoadStats{}, errors.New("runtime: need at least one client")
	}
	var completed, failed, timeouts atomic.Int64
	start := time.Now()
	deadline := start.Add(duration)
	epoch := s.clientEpoch.Add(1)
	var wg sync.WaitGroup

	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("client-%d-%d", epoch, i)
		inbox, err := s.transport.Register(name)
		if err != nil {
			return LoadStats{}, err
		}
		names = append(names, name)
		wg.Add(1)
		go func(idx int, name string, inbox <-chan Envelope) {
			defer wg.Done()
			s.clientLoop(ctx, uint64(epoch)<<16|uint64(idx), name, inbox, deadline, &completed, &failed, &timeouts)
		}(i, name, inbox)
	}
	wg.Wait()
	for _, name := range names {
		_ = s.transport.Deregister(name)
	}
	elapsed := time.Since(start)
	stats := LoadStats{
		Completed: completed.Load(),
		Failed:    failed.Load(),
		Timeouts:  timeouts.Load(),
		Elapsed:   elapsed,
	}
	virtualSeconds := elapsed.Seconds()
	if s.opts.TimeScale > 0 {
		virtualSeconds = elapsed.Seconds() / s.opts.TimeScale
	}
	if virtualSeconds > 0 {
		stats.Throughput = float64(stats.Completed) / virtualSeconds
	}
	return stats, nil
}

// clientLoop is one closed-loop client: scheduling request, selection,
// service request, repeat until the deadline or cancellation. Send
// failures are counted, not fatal: during a live reconfiguration a
// selected server may retire between selection and submission.
func (s *System) clientLoop(ctx context.Context, idx uint64, name string, inbox <-chan Envelope, deadline time.Time, completed, failed, timeouts *atomic.Int64) {
	seq := uint64(0)
	perRequest := s.opts.replyTimeout() + time.Second
	for time.Now().Before(deadline) && ctx.Err() == nil {
		seq++
		id := idx<<32 | seq
		if s.send(name, s.root, SchedRequest{ID: id, ReplyTo: name}) != nil {
			if s.stopped.Load() {
				return
			}
			failed.Add(1)
			time.Sleep(time.Millisecond)
			continue
		}
		reply, ok := awaitReply[SchedReply](ctx, inbox, id, perRequest)
		if !ok {
			timeouts.Add(1)
			continue
		}
		if len(reply.Candidates) == 0 {
			failed.Add(1)
			continue
		}
		best := reply.Candidates[0]
		if s.send(name, best.Server, ServiceRequest{ID: id, ReplyTo: name, N: s.opts.DgemmN}) != nil {
			if s.stopped.Load() {
				return
			}
			failed.Add(1)
			continue
		}
		svc, ok := awaitReply[ServiceReply](ctx, inbox, id, perRequest)
		if !ok {
			timeouts.Add(1)
			continue
		}
		if !svc.OK {
			failed.Add(1)
			continue
		}
		completed.Add(1)
	}
}

// awaitReply reads the inbox until a message of type T with the wanted ID
// arrives, the inbox closes, the context fires, or the timeout fires.
// Stale replies from abandoned earlier requests are discarded.
func awaitReply[T interface{ requestID() uint64 }](ctx context.Context, inbox <-chan Envelope, id uint64, timeout time.Duration) (T, bool) {
	var zero T
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case env, ok := <-inbox:
			if !ok {
				return zero, false
			}
			if msg, ok := env.Msg.(T); ok && msg.requestID() == id {
				return msg, true
			}
		case <-ctx.Done():
			return zero, false
		case <-timer.C:
			return zero, false
		}
	}
}

// requestID implementations let awaitReply match replies generically.
func (r SchedReply) requestID() uint64   { return r.ID }
func (r ServiceReply) requestID() uint64 { return r.ID }
