package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adept/internal/hierarchy"
)

// System is a deployed middleware instance: the live realisation of one
// planned hierarchy.
type System struct {
	opts      Options
	transport Transport
	root      string

	agents  map[string]*agentElem
	servers map[string]*serverElem

	wg      sync.WaitGroup
	started bool
	stopped atomic.Bool

	errMu  sync.Mutex
	errLog []error
}

// Deploy instantiates the hierarchy on the transport and starts every
// element's goroutine. The caller owns the returned System and must Stop it.
func Deploy(h *hierarchy.Hierarchy, transport Transport, opts Options) (*System, error) {
	if err := h.Validate(hierarchy.Structural); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	if opts.Bandwidth <= 0 {
		return nil, errors.New("runtime: bandwidth must be positive")
	}
	if opts.Wapp <= 0 {
		return nil, errors.New("runtime: wapp must be positive")
	}
	sys := &System{
		opts:      opts,
		transport: transport,
		agents:    make(map[string]*agentElem),
		servers:   make(map[string]*serverElem),
	}

	type pendingStart struct {
		run   func(<-chan Envelope)
		inbox <-chan Envelope
	}
	var starts []pendingStart

	var build func(id int) (string, error)
	build = func(id int) (string, error) {
		n := h.MustNode(id)
		inbox, err := transport.Register(n.Name)
		if err != nil {
			return "", err
		}
		if n.Role == hierarchy.RoleServer {
			s := &serverElem{sys: sys, name: n.Name, power: n.Power}
			sys.servers[n.Name] = s
			starts = append(starts, pendingStart{run: s.run, inbox: inbox})
			return n.Name, nil
		}
		a := &agentElem{sys: sys, name: n.Name, power: n.Power, pending: make(map[uint64]*replyAgg)}
		sys.agents[n.Name] = a
		for _, c := range n.Children {
			childName, err := build(c)
			if err != nil {
				return "", err
			}
			a.children = append(a.children, childName)
		}
		starts = append(starts, pendingStart{run: a.run, inbox: inbox})
		return n.Name, nil
	}
	rootName, err := build(h.Root())
	if err != nil {
		transport.Close()
		return nil, err
	}
	sys.root = rootName
	for _, st := range starts {
		sys.wg.Add(1)
		go st.run(st.inbox)
	}
	sys.started = true
	return sys, nil
}

// Root returns the root agent's element name.
func (s *System) Root() string { return s.root }

// send routes a message through the transport, tolerating teardown.
func (s *System) send(from, to string, msg any) error {
	if s.stopped.Load() {
		return errors.New("runtime: system stopped")
	}
	return s.transport.Send(from, to, msg)
}

// noteError records a protocol anomaly for post-run inspection.
func (s *System) noteError(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if len(s.errLog) < 100 {
		s.errLog = append(s.errLog, err)
	}
}

// Errors returns the protocol anomalies observed so far.
func (s *System) Errors() []error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return append([]error(nil), s.errLog...)
}

// CrashServer simulates a server failure: the named server stops reacting
// to all traffic. Agents' reply timeouts keep the platform available.
func (s *System) CrashServer(name string) error {
	srv, ok := s.servers[name]
	if !ok {
		return fmt.Errorf("runtime: no server %q", name)
	}
	srv.crashed.Store(true)
	return nil
}

// WrepSamples collects every agent's timed reply-treatment observations,
// for Table 3 calibration.
func (s *System) WrepSamples() []WrepSample {
	var out []WrepSample
	for _, a := range s.agents {
		a.sampleMu.Lock()
		out = append(out, a.wrepSamples...)
		a.sampleMu.Unlock()
	}
	return out
}

// ServedCounts returns per-server completed service counts (Ni of Eq. 6).
func (s *System) ServedCounts() map[string]int64 {
	out := make(map[string]int64, len(s.servers))
	for name, srv := range s.servers {
		out[name] = srv.served.Load()
	}
	return out
}

// Stop shuts every element down and closes the transport.
func (s *System) Stop() {
	if !s.started || !s.stopped.CompareAndSwap(false, true) {
		return
	}
	for name := range s.agents {
		_ = s.transport.Send("system", name, Shutdown{})
	}
	for name := range s.servers {
		_ = s.transport.Send("system", name, Shutdown{})
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		// Elements blocked on a dead peer: closing the transport below
		// unblocks them by closing their inboxes.
	}
	s.transport.Close()
	s.wg.Wait()
}

// LoadStats summarises a client-driven measurement.
type LoadStats struct {
	// Completed counts fully completed requests across all clients.
	Completed int64
	// Failed counts requests whose service phase reported failure.
	Failed int64
	// Timeouts counts requests abandoned by clients.
	Timeouts int64
	// Elapsed is the real measurement duration.
	Elapsed time.Duration
	// Throughput is completed requests per *virtual* second when a
	// TimeScale is set, per real second otherwise.
	Throughput float64
}

// RunClients drives the platform with n closed-loop clients for the given
// real duration and reports completion statistics (the §5.1 measurement).
func (s *System) RunClients(n int, duration time.Duration) (LoadStats, error) {
	if n <= 0 {
		return LoadStats{}, errors.New("runtime: need at least one client")
	}
	var completed, failed, timeouts atomic.Int64
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup

	for i := 0; i < n; i++ {
		name := fmt.Sprintf("client-%d", i)
		inbox, err := s.transport.Register(name)
		if err != nil {
			return LoadStats{}, err
		}
		wg.Add(1)
		go func(idx int, name string, inbox <-chan Envelope) {
			defer wg.Done()
			s.clientLoop(uint64(idx), name, inbox, deadline, &completed, &failed, &timeouts)
		}(i, name, inbox)
	}
	wg.Wait()
	elapsed := duration
	stats := LoadStats{
		Completed: completed.Load(),
		Failed:    failed.Load(),
		Timeouts:  timeouts.Load(),
		Elapsed:   elapsed,
	}
	virtualSeconds := elapsed.Seconds()
	if s.opts.TimeScale > 0 {
		virtualSeconds = elapsed.Seconds() / s.opts.TimeScale
	}
	if virtualSeconds > 0 {
		stats.Throughput = float64(stats.Completed) / virtualSeconds
	}
	return stats, nil
}

// clientLoop is one closed-loop client: scheduling request, selection,
// service request, repeat until the deadline.
func (s *System) clientLoop(idx uint64, name string, inbox <-chan Envelope, deadline time.Time, completed, failed, timeouts *atomic.Int64) {
	seq := uint64(0)
	perRequest := s.opts.replyTimeout() + time.Second
	for time.Now().Before(deadline) {
		seq++
		id := idx<<32 | seq
		if s.send(name, s.root, SchedRequest{ID: id, ReplyTo: name}) != nil {
			return
		}
		reply, ok := awaitReply[SchedReply](inbox, id, perRequest)
		if !ok {
			timeouts.Add(1)
			continue
		}
		if len(reply.Candidates) == 0 {
			failed.Add(1)
			continue
		}
		best := reply.Candidates[0]
		if s.send(name, best.Server, ServiceRequest{ID: id, ReplyTo: name, N: s.opts.DgemmN}) != nil {
			return
		}
		svc, ok := awaitReply[ServiceReply](inbox, id, perRequest)
		if !ok {
			timeouts.Add(1)
			continue
		}
		if !svc.OK {
			failed.Add(1)
			continue
		}
		completed.Add(1)
	}
}

// awaitReply reads the inbox until a message of type T with the wanted ID
// arrives, the inbox closes, or the timeout fires. Stale replies from
// abandoned earlier requests are discarded.
func awaitReply[T interface{ requestID() uint64 }](inbox <-chan Envelope, id uint64, timeout time.Duration) (T, bool) {
	var zero T
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case env, ok := <-inbox:
			if !ok {
				return zero, false
			}
			if msg, ok := env.Msg.(T); ok && msg.requestID() == id {
				return msg, true
			}
		case <-timer.C:
			return zero, false
		}
	}
}

// requestID implementations let awaitReply match replies generically.
func (r SchedReply) requestID() uint64   { return r.ID }
func (r ServiceReply) requestID() uint64 { return r.ID }
