package calib_test

import (
	"testing"
	"time"

	"adept/internal/calib"
	"adept/internal/model"
	"adept/internal/runtime"
	"adept/internal/stats"
)

func options() runtime.Options {
	return runtime.Options{
		Costs:     model.DIETDefaults(),
		Bandwidth: 100,
		Wapp:      2,
		TimeScale: 0.005,
	}
}

func TestMeasureMessageSizes(t *testing.T) {
	sizes, err := calib.MeasureMessageSizes(400, 400, options(), 1, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sizes.Messages == 0 {
		t.Fatal("no messages captured")
	}
	for name, v := range map[string]float64{
		"SchedRequest":   sizes.SchedRequest,
		"SchedReply":     sizes.SchedReply,
		"ServiceRequest": sizes.ServiceRequest,
		"ServiceReply":   sizes.ServiceReply,
	} {
		if v <= 0 {
			t.Errorf("%s size = %g Mbit, want > 0", name, v)
		}
		if v > 1 {
			t.Errorf("%s size = %g Mbit: implausibly large for a control message", name, v)
		}
	}
	// The scheduling reply (candidate list) must be larger than the bare
	// scheduling request — the agent/server asymmetry of Table 3.
	if sizes.SchedReply <= sizes.SchedRequest {
		t.Errorf("SchedReply (%g) should exceed SchedRequest (%g)", sizes.SchedReply, sizes.SchedRequest)
	}
}

func TestMeasureWrepRecoversLinearLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive calibration skipped in -short mode")
	}
	opts := options()
	opts.TimeScale = 50 // coarse enough that Wrep(d) sleeps dominate timer noise
	cal, err := calib.MeasureWrep(400, 400, opts, []int{1, 4, 8, 12}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Samples < 8 {
		t.Fatalf("only %d samples", cal.Samples)
	}
	if cal.Fit.R < 0.9 {
		t.Errorf("correlation R = %.3f, want >= 0.9 (paper reports 0.97)", cal.Fit.R)
	}
	// The slope (Wsel) should recover the configured value within 30%.
	want := model.DIETDefaults().AgentWsel
	if !stats.WithinTolerance(cal.WselMFlop, want, 0.3) {
		t.Errorf("measured Wsel = %g MFlop, configured %g (>30%% off)", cal.WselMFlop, want)
	}
}

func TestMeasureWrepRejectsBadInput(t *testing.T) {
	if _, err := calib.MeasureWrep(400, 400, options(), []int{3}, time.Millisecond); err == nil {
		t.Error("single degree accepted")
	}
	if _, err := calib.MeasureWrep(400, 400, options(), []int{0, 2}, time.Millisecond); err == nil {
		t.Error("zero degree accepted")
	}
}
