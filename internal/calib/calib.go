// Package calib regenerates the middleware cost parameters of Table 3 by
// measurement, replaying the paper's calibration methodology on our
// substituted stack:
//
//   - Message sizes Sreq/Srep: the paper captured all traffic between the
//     agent and server machines with tcpdump and measured message sizes
//     with Ethereal. Here a MeteredTransport gob-encodes every envelope and
//     counts wire bytes while 100 clients' requests flow through a
//     one-agent/one-server deployment.
//   - Wrep(d): the paper timed response processing for star deployments of
//     varying degree and fitted a line (correlation coefficient 0.97). Here
//     the runtime records timed reply-treatment samples per degree and the
//     same least-squares fit recovers slope (Wsel) and intercept (Wfix).
//   - Node power: the paper used a Linpack mini-benchmark; internal/linpack
//     provides the equivalent measurement for real nodes.
package calib

import (
	"context"
	"fmt"
	"time"

	"adept/internal/deploy"
	"adept/internal/hierarchy"
	"adept/internal/runtime"
	"adept/internal/stats"
)

// bitsPerByte converts metered byte counts to the Mbit units of Table 3.
const bitsPerByte = 8

// MessageSizes holds the measured per-message wire sizes in Mbit.
type MessageSizes struct {
	// SchedRequest and SchedReply are the agent-level Sreq/Srep.
	SchedRequest float64
	SchedReply   float64
	// ServiceRequest and ServiceReply are the server-level Sreq/Srep.
	ServiceRequest float64
	ServiceReply   float64
	// Messages is the total number of captured messages.
	Messages int64
}

// MeasureMessageSizes deploys one agent and one server, runs `clients`
// serial request loops for the given duration, and returns mean wire sizes
// per message type (the tcpdump/Ethereal step).
func MeasureMessageSizes(agentPower, serverPower float64, opts runtime.Options, clients int, dur time.Duration) (MessageSizes, error) {
	h := hierarchy.New("calibration")
	root, err := h.AddRoot("calib-agent", agentPower)
	if err != nil {
		return MessageSizes{}, err
	}
	if _, err := h.AddServer(root, "calib-server", serverPower); err != nil {
		return MessageSizes{}, err
	}
	dep, err := deploy.Launch(h, deploy.Config{Metered: true, Options: opts})
	if err != nil {
		return MessageSizes{}, err
	}
	defer dep.Stop()
	//adeptvet:allow ctxflow calibration harness owns its run lifecycle; duration-bounded, nothing upstream to cancel it
	if _, err := dep.System.RunClients(context.Background(), clients, dur); err != nil {
		return MessageSizes{}, err
	}
	ms := dep.Meter.Stats()
	mean := func(typ string) float64 {
		st, ok := ms[typ]
		if !ok || st.Count == 0 {
			return 0
		}
		bytesPerMsg := float64(st.Bytes) / float64(st.Count)
		return bytesPerMsg * bitsPerByte / 1e6 // Mbit
	}
	return MessageSizes{
		SchedRequest:   mean("runtime.SchedRequest"),
		SchedReply:     mean("runtime.SchedReply"),
		ServiceRequest: mean("runtime.ServiceRequest"),
		ServiceReply:   mean("runtime.ServiceReply"),
		Messages:       dep.Meter.TotalMessages(),
	}, nil
}

// WrepCalibration is the measured reply-treatment cost model.
type WrepCalibration struct {
	// Fit is the least-squares line of reply-treatment seconds against
	// degree; Fit.R plays the role of the paper's 0.97 correlation.
	Fit stats.Fit
	// WfixMFlop and WselMFlop are the fitted cost parameters converted back
	// to MFlop via the agent's power and the configured time scale.
	WfixMFlop float64
	WselMFlop float64
	// Samples is the number of timed observations used.
	Samples int
}

// MeasureWrep deploys stars of each given degree, drives load through them,
// collects the runtime's timed reply-treatment samples, and fits the linear
// Wrep(d) model.
func MeasureWrep(agentPower, serverPower float64, opts runtime.Options, degrees []int, perDegree time.Duration) (WrepCalibration, error) {
	if len(degrees) < 2 {
		return WrepCalibration{}, fmt.Errorf("calib: need at least two degrees, got %d", len(degrees))
	}
	var xs, ys []float64
	total := 0
	for _, d := range degrees {
		if d < 1 {
			return WrepCalibration{}, fmt.Errorf("calib: invalid degree %d", d)
		}
		h := hierarchy.New(fmt.Sprintf("calib-star-%d", d))
		root, err := h.AddRoot("calib-agent", agentPower)
		if err != nil {
			return WrepCalibration{}, err
		}
		for i := 0; i < d; i++ {
			if _, err := h.AddServer(root, fmt.Sprintf("calib-server-%d", i), serverPower); err != nil {
				return WrepCalibration{}, err
			}
		}
		dep, err := deploy.Launch(h, deploy.Config{Options: opts})
		if err != nil {
			return WrepCalibration{}, err
		}
		//adeptvet:allow ctxflow calibration harness owns its run lifecycle; duration-bounded, nothing upstream to cancel it
		if _, err := dep.System.RunClients(context.Background(), 2, perDegree); err != nil {
			dep.Stop()
			return WrepCalibration{}, err
		}
		samples := dep.System.WrepSamples()
		dep.Stop()
		for _, s := range samples {
			xs = append(xs, float64(s.Degree))
			ys = append(ys, s.Seconds)
			total++
		}
	}
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		return WrepCalibration{}, fmt.Errorf("calib: %w", err)
	}
	out := WrepCalibration{Fit: fit, Samples: total}
	// Convert timed seconds back to MFlop: seconds = MFlop/power · scale.
	scale := opts.TimeScale
	if scale > 0 {
		out.WfixMFlop = fit.Intercept * agentPower / scale
		out.WselMFlop = fit.Slope * agentPower / scale
	}
	return out, nil
}
