package portfolio_test

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/portfolio"
	"adept/internal/scenario"
	"adept/internal/workload"
)

func corpusRequest(t *testing.T, spec scenario.Spec, wapp float64) core.Request {
	t.Helper()
	plat, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: wapp}
}

// TestPortfolioDominatesMembersAcrossCorpus is the portfolio's defining
// property: on every scenario-corpus platform its predicted demand-capped
// throughput is at least that of the plain heuristic and the star baseline.
func TestPortfolioDominatesMembersAcrossCorpus(t *testing.T) {
	wapps := []float64{workload.DGEMM{N: 100}.MFlop(), workload.DGEMM{N: 1000}.MFlop()}
	pf := portfolio.New()
	heur := core.NewHeuristic()
	star := &baseline.Star{}
	for _, spec := range scenario.Corpus(11, 4, 16, 48) {
		for _, wapp := range wapps {
			req := corpusRequest(t, spec, wapp)
			pp, stats, err := pf.PlanWithStats(context.Background(), req)
			if err != nil {
				t.Fatalf("%s n=%d: portfolio: %v", spec.Family, spec.N, err)
			}
			hp, err := heur.Plan(req)
			if err != nil {
				t.Fatalf("%s n=%d: heuristic: %v", spec.Family, spec.N, err)
			}
			sp, err := star.Plan(req)
			if err != nil {
				t.Fatalf("%s n=%d: star: %v", spec.Family, spec.N, err)
			}
			if pp.Capped < hp.Capped {
				t.Errorf("%s n=%d wapp=%.0f: portfolio %.6f < heuristic %.6f", spec.Family, spec.N, wapp, pp.Capped, hp.Capped)
			}
			if pp.Capped < sp.Capped {
				t.Errorf("%s n=%d wapp=%.0f: portfolio %.6f < star %.6f", spec.Family, spec.N, wapp, pp.Capped, sp.Capped)
			}
			winners := 0
			for _, st := range stats {
				if st.Winner {
					winners++
					if !strings.HasPrefix(pp.Planner, "portfolio:") {
						t.Errorf("winner plan not branded: %q", pp.Planner)
					}
				}
			}
			if winners != 1 {
				t.Errorf("%s n=%d: %d winners, want 1", spec.Family, spec.N, winners)
			}
		}
	}
}

// TestPortfolioSkipsExhaustiveOnLargePools checks the MaxNodes gate.
func TestPortfolioSkipsExhaustiveOnLargePools(t *testing.T) {
	req := corpusRequest(t, scenario.Spec{Family: scenario.Bimodal, N: 40, Seed: 3}, workload.DGEMM{N: 310}.MFlop())
	_, stats, err := portfolio.New().PlanWithStats(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range stats {
		if st.Variant == "exhaustive" {
			found = true
			if st.Skipped == "" {
				t.Error("exhaustive not skipped on a 40-node pool")
			}
		}
	}
	if !found {
		t.Error("exhaustive variant missing from stats")
	}
}

// TestPortfolioUsesExhaustiveOnTinyPools checks the ground-truth variant
// actually races (and, being optimal, wins ties at worst) on small pools.
func TestPortfolioUsesExhaustiveOnTinyPools(t *testing.T) {
	req := corpusRequest(t, scenario.Spec{Family: scenario.PowerLaw, N: 5, Seed: 9}, workload.DGEMM{N: 100}.MFlop())
	pp, stats, err := portfolio.New().PlanWithStats(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := (&baseline.Exhaustive{}).Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Capped < ep.Capped {
		t.Errorf("portfolio %.6f below exhaustive optimum %.6f", pp.Capped, ep.Capped)
	}
	for _, st := range stats {
		if st.Variant == "exhaustive" && (st.Skipped != "" || st.Err != "") {
			t.Errorf("exhaustive did not run on a 5-node pool: %+v", st)
		}
	}
}

// TestPortfolioMatchesExhaustiveOptimum pins the portfolio to the
// exhaustive ground truth on every enumerable small platform: wherever the
// swap-refined heuristic's optimality gap opens (see
// internal/baseline's TestHeuristicOptimalityGap), the exhaustive variant
// closes it.
func TestPortfolioMatchesExhaustiveOptimum(t *testing.T) {
	pf := portfolio.New()
	exhaustive := &baseline.Exhaustive{}
	wapps := []float64{workload.DGEMM{N: 10}.MFlop(), workload.DGEMM{N: 100}.MFlop()}
	for n := 2; n <= 6; n++ {
		for _, fam := range scenario.Families() {
			spec := scenario.Spec{Family: fam, N: n, Seed: int64(n) * 31}
			for _, wapp := range wapps {
				req := corpusRequest(t, spec, wapp)
				opt, err := exhaustive.Plan(req)
				if err != nil {
					t.Fatal(err)
				}
				pp, err := pf.Plan(req)
				if err != nil {
					t.Fatal(err)
				}
				if pp.Capped < opt.Capped*(1-1e-9) {
					t.Errorf("%s n=%d wapp=%.0f: portfolio %.6f below exhaustive optimum %.6f", fam, n, wapp, pp.Capped, opt.Capped)
				}
			}
		}
	}
}

// TestPortfolioHonoursCancellation checks a dead context yields an error,
// not a plan.
func TestPortfolioHonoursCancellation(t *testing.T) {
	req := corpusRequest(t, scenario.Spec{Family: scenario.Clustered, N: 60, Seed: 2}, workload.DGEMM{N: 310}.MFlop())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := portfolio.New().PlanWithStats(ctx, req); err == nil {
		t.Fatal("cancelled context produced a plan")
	}
}

// TestPortfolioDemandCutoff: with a trivially met demand the portfolio
// returns a plan that meets it exactly (capped at the demand) — and the
// winner must be a minimal deployment, not the whole-pool star: the early
// cutoff only fires on frugal variants precisely so the fewer-nodes
// tie-break survives racing.
func TestPortfolioDemandCutoff(t *testing.T) {
	req := corpusRequest(t, scenario.Spec{Family: scenario.TracePerturbed, N: 30, Seed: 4}, workload.DGEMM{N: 100}.MFlop())
	req.Demand = workload.Demand(1) // 1 req/s: any member meets it
	pp, _, err := portfolio.New().PlanWithStats(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Capped != 1 {
		t.Errorf("capped %.3f, want demand 1", pp.Capped)
	}
	if pp.NodesUsed > 3 {
		t.Errorf("demand-met plan uses %d of 30 nodes; the frugal tie-break should have kept it minimal", pp.NodesUsed)
	}
}

// TestPortfolioIsACorePlanner locks the interface contract.
func TestPortfolioIsACorePlanner(t *testing.T) {
	var pl core.Planner = portfolio.New()
	if pl.Name() != "portfolio" {
		t.Errorf("name %q", pl.Name())
	}
	req := corpusRequest(t, scenario.Spec{Family: scenario.Star, N: 10, Seed: 1}, workload.DGEMM{N: 310}.MFlop())
	plan, err := pl.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Hierarchy.Validate(0) != nil {
		t.Error("portfolio plan invalid")
	}
}

// TestPortfolioDeterministicThroughClassPath races the stock portfolio on
// a pool large and quantised enough that the heuristic variants plan
// through the class-collapsed path, and asserts the race is fully
// deterministic under scheduling noise: same winner, bit-identical XML,
// across repeated races and across GOMAXPROCS 1 and 8. The race already
// breaks throughput-and-size ties by variant order; this pins that
// contract where the variants themselves run parallel candidate scans.
func TestPortfolioDeterministicThroughClassPath(t *testing.T) {
	spec := scenario.Spec{Family: scenario.ClusterGrid, N: 4500, Seed: 29, PowerLevels: 8}
	req := corpusRequest(t, spec, workload.DGEMM{N: 1000}.MFlop())
	pf := portfolio.New()

	race := func() (string, string) {
		t.Helper()
		plan, _, err := pf.PlanWithStats(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		xml, err := plan.XML()
		if err != nil {
			t.Fatal(err)
		}
		return plan.Planner, xml
	}

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	refWinner, refXML := race()
	if !strings.HasPrefix(refWinner, "portfolio:") {
		t.Fatalf("winner = %q, want portfolio:<variant>", refWinner)
	}
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for round := 0; round < 3; round++ {
			winner, xml := race()
			if winner != refWinner {
				t.Fatalf("GOMAXPROCS=%d round %d: winner %q != %q", procs, round, winner, refWinner)
			}
			if xml != refXML {
				t.Fatalf("GOMAXPROCS=%d round %d: XML differs from reference", procs, round)
			}
		}
	}
}
