// Package portfolio races several deployment planners over the same
// request and returns the best plan, in the spirit of algorithm-portfolio
// schedulers: Algorithm 1 is strongest on scheduling-rich heterogeneous
// pools, the swap refinement wins when powerful nodes should serve rather
// than schedule, the flat star occasionally beats both on tiny or
// agent-limited pools, the complete-spanning-d-ary search of [10] dominates
// on homogeneous clusters, and the exhaustive search is the ground truth on
// very small pools. No single planner wins everywhere; the portfolio takes
// the per-request maximum, so its predicted throughput is ≥ every member's
// on every platform — a property the test suite enforces across the whole
// scenario corpus.
//
// Variants run concurrently on a bounded goroutine pool with a shared
// context: cancelling the caller's context cancels every in-flight
// planner, and once a frugal variant (one that already stops at the
// fewest nodes meeting the demand) proves the client demand met, the
// stragglers are cut off early — their best possible outcome could
// neither raise the demand-capped throughput nor win the fewer-nodes
// tie-break.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	gort "runtime"
	"strings"
	"sync"
	"time"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/obs"
)

// Variant is one planner in the race.
type Variant struct {
	// Name labels the variant in stats (defaults to Planner.Name()).
	Name string
	// Planner runs the variant. It must be safe for concurrent use, as all
	// stock planners are.
	Planner core.Planner
	// MaxNodes skips the variant on pools larger than this (0 = no limit).
	// The exhaustive variant uses it to stay within its Θ(n·nⁿ) budget.
	MaxNodes int
	// Frugal marks planners that stop growing the moment the client
	// demand is met, i.e. that already prefer the fewest nodes at equal
	// capped throughput. Only a frugal variant's demand-met finish
	// triggers the early cutoff: a non-frugal variant (the star deploys
	// the whole pool) meeting demand first must not cancel a frugal
	// straggler that would win the fewer-nodes tie-break.
	Frugal bool
}

// ExhaustiveCutoff is the default pool-size ceiling for the exhaustive
// variant: beyond 6 nodes the enumeration's latency (seconds and up) stops
// being a useful race entrant.
const ExhaustiveCutoff = 6

// DefaultVariants returns the stock portfolio. Order matters only for
// tie-breaking: earlier variants win exact throughput-and-size ties.
func DefaultVariants() []Variant {
	return []Variant{
		{Name: "heuristic+swap", Planner: &core.SwapRefiner{Inner: core.NewHeuristic()}, Frugal: true},
		{Name: "heuristic", Planner: core.NewHeuristic(), Frugal: true},
		{Name: "star", Planner: &baseline.Star{}},
		{Name: "homogeneous", Planner: &baseline.OptimalDAry{}},
		{Name: "exhaustive", Planner: &baseline.Exhaustive{}, MaxNodes: ExhaustiveCutoff},
	}
}

// Result reports one variant's outcome in a race.
type Result struct {
	// Variant is the variant name.
	Variant string `json:"variant"`
	// Winner marks the variant whose plan was returned.
	Winner bool `json:"winner,omitempty"`
	// Skipped explains why the variant did not run ("" = it ran).
	Skipped string `json:"skipped,omitempty"`
	// Err is the planner error, if any ("" = success). A variant cut off
	// by the early-cutoff rule reports a context error here.
	Err string `json:"error,omitempty"`
	// Rho, Capped and NodesUsed summarise the variant's plan.
	Rho       float64 `json:"rho,omitempty"`
	Capped    float64 `json:"capped,omitempty"`
	NodesUsed int     `json:"nodes_used,omitempty"`
	// ElapsedMS is the variant's planning wall time.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// Planner races a set of variants; it implements core.Planner.
type Planner struct {
	// Variants is the race field (default DefaultVariants).
	Variants []Variant
	// Parallelism bounds concurrently running variants (default
	// min(len(Variants), GOMAXPROCS)).
	Parallelism int
}

// New returns a portfolio planner with the stock variants.
func New() *Planner { return &Planner{} }

// Name implements core.Planner.
func (*Planner) Name() string { return "portfolio" }

// Plan implements core.Planner.
//
//adeptvet:allow ctxflow context-free convenience wrapper; callers that want cancellation use PlanContext
func (p *Planner) Plan(req core.Request) (*core.Plan, error) {
	return p.PlanContext(context.Background(), req)
}

// PlanContext implements core.Planner.
func (p *Planner) PlanContext(ctx context.Context, req core.Request) (*core.Plan, error) {
	plan, _, err := p.PlanWithStats(ctx, req)
	return plan, err
}

// PlanWithStats races the variants and returns the winning plan plus
// per-variant stats (index-aligned with the variant set). The winning
// plan's Planner field is "portfolio:<variant>". An error is returned only
// when no variant produced a plan.
func (p *Planner) PlanWithStats(ctx context.Context, req core.Request) (*core.Plan, []Result, error) {
	variants := p.Variants
	if len(variants) == 0 {
		variants = DefaultVariants()
	}
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	if err := core.CheckContext(ctx, "portfolio"); err != nil {
		return nil, nil, err
	}

	par := p.Parallelism
	if par <= 0 {
		par = gort.GOMAXPROCS(0)
	}
	if par > len(variants) {
		par = len(variants)
	}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	tr := obs.TraceFrom(ctx)
	// Variants get a detached trace context: their inner phases (sort_nodes,
	// grow, ...) would interleave nondeterministically across goroutines in
	// the caller's recorder. The race reports per-variant spans instead.
	variantCtx := obs.DetachTrace(raceCtx)

	results := make([]Result, len(variants))
	plans := make([]*core.Plan, len(variants))
	sem := make(chan struct{}, par)
	endRace := tr.Phase("race")
	var wg sync.WaitGroup
	for i, v := range variants {
		name := v.Name
		if name == "" {
			name = v.Planner.Name()
		}
		results[i] = Result{Variant: name}
		if v.MaxNodes > 0 && len(req.Platform.Nodes) > v.MaxNodes {
			results[i].Skipped = fmt.Sprintf("pool of %d exceeds variant limit %d", len(req.Platform.Nodes), v.MaxNodes)
			continue
		}
		wg.Add(1)
		go func(i int, v Variant) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-raceCtx.Done():
				results[i].Err = raceCtx.Err().Error()
				return
			}
			//adeptvet:allow nondet per-variant wall-time stats for the race report; winner selection never reads them
			start := time.Now()
			plan, err := v.Planner.PlanContext(variantCtx, req)
			//adeptvet:allow nondet per-variant wall-time stats for the race report; winner selection never reads them
			results[i].ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
			if err != nil {
				results[i].Err = err.Error()
				return
			}
			plans[i] = plan
			results[i].Rho = plan.Eval.Rho
			results[i].Capped = plan.Capped
			results[i].NodesUsed = plan.NodesUsed
			// Early cutoff: once a frugal variant meets the demand, no
			// straggler can raise the demand-capped throughput, and the
			// fewer-nodes tie-break is already in safe hands — a frugal
			// plan stopped growing the moment the demand was met.
			if v.Frugal && req.Demand.Bounded() && plan.Capped >= float64(req.Demand) {
				cancel()
			}
		}(i, v)
	}
	wg.Wait()
	endRace()

	best := -1
	for i, plan := range plans {
		if plan == nil {
			continue
		}
		if best < 0 || plan.Capped > plans[best].Capped ||
			(plan.Capped == plans[best].Capped && plan.NodesUsed < plans[best].NodesUsed) {
			best = i
		}
	}
	if best < 0 {
		// Prefer reporting the caller's cancellation over per-variant noise.
		if err := ctx.Err(); err != nil {
			return nil, results, fmt.Errorf("portfolio: %w", err)
		}
		var errs []string
		for _, r := range results {
			if r.Err != "" {
				errs = append(errs, r.Variant+": "+r.Err)
			}
		}
		return nil, results, errors.New("portfolio: every variant failed: " + strings.Join(errs, "; "))
	}
	results[best].Winner = true
	for _, r := range results {
		tr.Variant(obs.VariantSpan{
			Name:      r.Variant,
			ElapsedMS: r.ElapsedMS,
			Skipped:   r.Skipped != "",
			Err:       r.Err,
		})
	}
	tr.SetWinner(results[best].Variant)
	win := *plans[best]
	win.Planner = "portfolio:" + results[best].Variant
	return &win, results, nil
}
