package deploy_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adept/internal/deploy"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/runtime"
)

func sampleHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("dep")
	root, err := h.AddRoot("agent-0", 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"sed-0", "sed-1"} {
		if _, err := h.AddServer(root, n, 400); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func options() runtime.Options {
	return runtime.Options{
		Costs:     model.DIETDefaults(),
		Bandwidth: 100,
		Wapp:      2,
		TimeScale: 0.001,
	}
}

func TestLaunchAndDrive(t *testing.T) {
	dep, err := deploy.Launch(sampleHierarchy(t), deploy.Config{Options: options()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	stats, err := dep.System.RunClients(context.Background(), 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Error("no completions through launched deployment")
	}
}

func TestLaunchXMLRoundTrip(t *testing.T) {
	h := sampleHierarchy(t)
	xml, err := h.MarshalXMLString()
	if err != nil {
		t.Fatal(err)
	}
	dep, err := deploy.LaunchXML(strings.NewReader(xml), deploy.Config{Options: options()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	if dep.Hierarchy.Len() != h.Len() {
		t.Errorf("launched %d elements, want %d", dep.Hierarchy.Len(), h.Len())
	}
}

func TestLaunchXMLFile(t *testing.T) {
	h := sampleHierarchy(t)
	path := filepath.Join(t.TempDir(), "dep.xml")
	if err := h.SaveXML(path); err != nil {
		t.Fatal(err)
	}
	dep, err := deploy.LaunchXMLFile(path, deploy.Config{Options: options()})
	if err != nil {
		t.Fatal(err)
	}
	dep.Stop()
}

func TestLaunchXMLFileMissing(t *testing.T) {
	if _, err := deploy.LaunchXMLFile(filepath.Join(t.TempDir(), "nope.xml"), deploy.Config{Options: options()}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLaunchRejectsBadTransport(t *testing.T) {
	if _, err := deploy.Launch(sampleHierarchy(t), deploy.Config{Transport: "carrier-pigeon", Options: options()}); err == nil {
		t.Error("unknown transport accepted")
	}
}

func TestLaunchXMLRejectsGarbage(t *testing.T) {
	if _, err := deploy.LaunchXML(strings.NewReader("not xml"), deploy.Config{Options: options()}); err == nil {
		t.Error("garbage XML accepted")
	}
}

func TestMeteredLaunch(t *testing.T) {
	dep, err := deploy.Launch(sampleHierarchy(t), deploy.Config{Metered: true, Options: options()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	if dep.Meter == nil {
		t.Fatal("metered launch returned nil meter")
	}
	if _, err := dep.System.RunClients(context.Background(), 1, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if dep.Meter.TotalMessages() == 0 {
		t.Error("meter saw no traffic")
	}
}

func TestTCPLaunch(t *testing.T) {
	dep, err := deploy.Launch(sampleHierarchy(t), deploy.Config{Transport: deploy.TransportTCP, Options: options()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	stats, err := dep.System.RunClients(context.Background(), 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Error("no completions over TCP deployment")
	}
}
