// Package deploy is the GoDIET analog: it consumes the deployment XML the
// planner emits (the write_xml hand-off of Algorithm 1), instantiates the
// middleware on a chosen transport, and launches it. Where GoDIET ran
// ssh/scp against Grid'5000, this package starts the goroutine runtime of
// internal/runtime — the same role in our substituted stack.
package deploy

import (
	"fmt"
	"io"

	"adept/internal/hierarchy"
	"adept/internal/runtime"
)

// TransportKind selects how deployed elements communicate.
type TransportKind string

const (
	// TransportChan wires elements with in-process channels.
	TransportChan TransportKind = "chan"
	// TransportTCP wires elements over loopback TCP with gob encoding.
	TransportTCP TransportKind = "tcp"
)

// Config bundles everything needed to launch a deployment.
type Config struct {
	// Transport selects the wire; empty defaults to TransportChan.
	Transport TransportKind
	// Metered wraps the transport with traffic accounting (calibration).
	Metered bool
	// Options are the runtime's middleware options.
	Options runtime.Options
}

// Deployment is a launched middleware platform plus its handles.
type Deployment struct {
	// System is the running middleware.
	System *runtime.System
	// Hierarchy is the deployed tree.
	Hierarchy *hierarchy.Hierarchy
	// Meter is non-nil when Config.Metered was set.
	Meter *runtime.MeteredTransport
}

// Stop shuts the platform down.
func (d *Deployment) Stop() {
	d.System.Stop()
}

// newTransport builds the configured transport stack.
func newTransport(cfg Config) (runtime.Transport, *runtime.MeteredTransport, error) {
	var base runtime.Transport
	switch cfg.Transport {
	case TransportChan, "":
		base = runtime.NewChanTransport()
	case TransportTCP:
		base = runtime.NewTCPTransport()
	default:
		return nil, nil, fmt.Errorf("deploy: unknown transport %q", cfg.Transport)
	}
	if cfg.Metered {
		m := runtime.NewMeteredTransport(base)
		return m, m, nil
	}
	return base, nil, nil
}

// Launch deploys an in-memory hierarchy.
func Launch(h *hierarchy.Hierarchy, cfg Config) (*Deployment, error) {
	tr, meter, err := newTransport(cfg)
	if err != nil {
		return nil, err
	}
	sys, err := runtime.Deploy(h, tr, cfg.Options)
	if err != nil {
		return nil, err
	}
	return &Deployment{System: sys, Hierarchy: h, Meter: meter}, nil
}

// LaunchXML deploys from a GoDIET-style XML stream.
func LaunchXML(r io.Reader, cfg Config) (*Deployment, error) {
	h, err := hierarchy.ParseXML(r)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	return Launch(h, cfg)
}

// LaunchXMLFile deploys from a deployment XML file on disk.
func LaunchXMLFile(path string, cfg Config) (*Deployment, error) {
	h, err := hierarchy.LoadXML(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	return Launch(h, cfg)
}
