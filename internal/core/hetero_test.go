package core_test

import (
	"math"
	"testing"

	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/scenario"
	"adept/internal/workload"
)

// clusterGridCorpus is the heterogeneous-link platform sweep shared by the
// property tests below: the cluster-grid and fat-tree families at several
// sizes and seeds.
func clusterGridCorpus(t *testing.T) []*platform.Platform {
	t.Helper()
	var out []*platform.Platform
	for _, fam := range []scenario.Family{scenario.ClusterGrid, scenario.FatTree} {
		for _, n := range []int{4, 12, 40} {
			for seed := int64(1); seed <= 3; seed++ {
				p, err := scenario.Spec{Family: fam, N: n, Seed: seed * 7}.Generate()
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, p)
			}
		}
	}
	return out
}

// TestClusterGridPlanProperties runs the full plan-invariant battery over
// the heterogeneous-link corpus: plan validity, the ρ = min(sched,
// service) law, star dominance, and incremental-vs-naive evaluator
// agreement at 1e-9 — all under per-node link bandwidths.
func TestClusterGridPlanProperties(t *testing.T) {
	for _, plat := range clusterGridCorpus(t) {
		for _, dgemm := range []int{100, 1000} {
			req := core.Request{
				Platform: plat,
				Costs:    model.DIETDefaults(),
				Wapp:     workload.DGEMM{N: dgemm}.MFlop(),
			}
			planInvariants(t, req, plat.Name)
		}
	}
}

// scaleLinks returns a copy of p with every effective link bandwidth
// multiplied by f: the platform default scales, and every per-node
// override scales with it.
func scaleLinks(p *platform.Platform, f float64) *platform.Platform {
	cp := p.Clone()
	cp.Bandwidth *= f
	for i := range cp.Nodes {
		cp.Nodes[i].LinkBandwidth *= f
	}
	return cp
}

// TestLinkBandwidthMonotonicity: uniformly raising link bandwidths never
// lowers the planned throughput. Every term of the §3 model is
// non-decreasing in bandwidth, so the optimum is monotone; this pins the
// plain heuristic to that law *exactly* across the heterogeneous corpus —
// a greedy planner that flipped to a worse shape on a faster network
// would fail here (the best-star and best-pair snapshot scans exist
// precisely to close those flips). The swap-refined variant is
// path-dependent local search: its improvement walk may end in a
// marginally different basin at a different bandwidth, so it gets a 1%
// envelope instead of exactness — a genuine shape regression would blow
// far past that.
func TestLinkBandwidthMonotonicity(t *testing.T) {
	cases := []struct {
		planner core.Planner
		slack   float64
	}{
		{core.NewHeuristic(), 1e-9},
		{&core.SwapRefiner{Inner: core.NewHeuristic()}, 0.01},
	}
	for _, plat := range clusterGridCorpus(t) {
		wapp := workload.DGEMM{N: 310}.MFlop()
		for _, tc := range cases {
			prev := -1.0
			for _, f := range []float64{1, 2, 8} {
				req := core.Request{
					Platform: scaleLinks(plat, f),
					Costs:    model.DIETDefaults(),
					Wapp:     wapp,
				}
				plan, err := tc.planner.Plan(req)
				if err != nil {
					t.Fatalf("%s x%g: %s: %v", plat.Name, f, tc.planner.Name(), err)
				}
				if plan.Capped < prev && !relClose(plan.Capped, prev, tc.slack) {
					t.Errorf("%s: %s: raising links x%g lowered planned throughput %.9g -> %.9g",
						plat.Name, tc.planner.Name(), f, prev, plan.Capped)
				}
				if plan.Capped > prev {
					prev = plan.Capped
				}
			}
		}
	}
	// The model law itself is strict: re-evaluating a *fixed* tree under
	// uniformly raised links never lowers any throughput term.
	for _, plat := range clusterGridCorpus(t)[:6] {
		req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: workload.DGEMM{N: 310}.MFlop()}
		plan, err := core.NewHeuristic().Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		base := plan.Hierarchy.Evaluate(req.Costs, plat.Bandwidth, req.Wapp)
		// Per-node overrides don't scale with the default, so scale them
		// in the tree before the raised-links evaluation.
		scaled := plan.Hierarchy.Clone()
		for _, n := range scaled.Nodes() {
			if n.Bandwidth > 0 {
				if err := scaled.SetBacking(n.ID, n.Name, n.Power, 2*n.Bandwidth); err != nil {
					t.Fatal(err)
				}
			}
		}
		fast := scaled.Evaluate(req.Costs, 2*plat.Bandwidth, req.Wapp)
		if fast.Rho < base.Rho || fast.Sched < base.Sched || fast.Service < base.Service {
			t.Errorf("%s: fixed-tree evaluation not monotone: %+v -> %+v", plat.Name, base, fast)
		}
	}
}

// TestUniformExplicitLinksBitIdentical: writing the platform-wide B
// explicitly into every node's LinkBandwidth must not change planning —
// same tree (names, roles, structure), same predicted throughput — even
// though the plan flows through the per-node override code path end to
// end.
func TestUniformExplicitLinksBitIdentical(t *testing.T) {
	for _, spec := range scenario.Corpus(99, 5, 24) {
		if spec.Family == scenario.ClusterGrid || spec.Family == scenario.FatTree {
			continue // already heterogeneous; the implicit form differs by design
		}
		plat, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		explicit := plat.Clone()
		for i := range explicit.Nodes {
			explicit.Nodes[i].LinkBandwidth = explicit.Bandwidth
		}
		req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: workload.DGEMM{N: 310}.MFlop()}
		reqExp := req
		reqExp.Platform = explicit

		for _, pl := range []core.Planner{core.NewHeuristic(), &core.SwapRefiner{Inner: core.NewHeuristic()}} {
			a, err := pl.Plan(req)
			if err != nil {
				t.Fatal(err)
			}
			b, err := pl.Plan(reqExp)
			if err != nil {
				t.Fatal(err)
			}
			if a.Eval.Rho != b.Eval.Rho || a.Eval.Sched != b.Eval.Sched || a.Eval.Service != b.Eval.Service {
				t.Errorf("%s: %s: explicit-B evaluation diverged: (%v) vs (%v)", plat.Name, pl.Name(), a.Eval, b.Eval)
			}
			if !sameShape(a.Hierarchy, b.Hierarchy) {
				t.Errorf("%s: %s: explicit-B tree diverged:\n%s\nvs\n%s", plat.Name, pl.Name(), a.Hierarchy, b.Hierarchy)
			}
		}
	}
}

// sameShape compares two hierarchies node by node ignoring the link
// bandwidth field (the only field the explicit-B rewrite changes).
func sameShape(a, b *hierarchy.Hierarchy) bool {
	an, bn := a.Nodes(), b.Nodes()
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		if an[i].Name != bn[i].Name || an[i].Role != bn[i].Role ||
			an[i].Power != bn[i].Power || an[i].Parent != bn[i].Parent {
			return false
		}
	}
	return true
}

// TestEvaluateLinksCollapsesToEvaluate pins the heterogeneous model entry
// point to the paper's homogeneous form when no node carries an override.
func TestEvaluateLinksCollapsesToEvaluate(t *testing.T) {
	c := model.DIETDefaults()
	agents := []model.Agent{{Power: 700, Degree: 3}, {Power: 300, Degree: 2}}
	powers := []float64{400, 250, 900}
	servers := make([]model.Server, len(powers))
	for i, w := range powers {
		servers[i] = model.Server{Power: w}
	}
	for _, bw := range []float64{10, 100, 1000} {
		a := model.Evaluate(c, bw, 59.582, agents, powers)
		b := model.EvaluateLinks(c, bw, 59.582, agents, servers)
		if a != b {
			t.Errorf("bw %g: Evaluate %+v != EvaluateLinks %+v", bw, a, b)
		}
	}
	// And the slowest-server-link rule: one slow server drags the service
	// transfer term, never the computation aggregate.
	servers[1].Bandwidth = 5
	slow := model.EvaluateLinks(c, 100, 59.582, agents, servers)
	uni := model.Evaluate(c, 100, 59.582, agents, powers)
	if slow.Service >= uni.Service {
		t.Errorf("slow server link must lower service throughput: %g >= %g", slow.Service, uni.Service)
	}
	if want := model.ServiceThroughputLinks(c, 100, 59.582, servers); slow.Service != want {
		t.Errorf("service %g != ServiceThroughputLinks %g", slow.Service, want)
	}
	if math.Min(slow.Sched, slow.Service) != slow.Rho {
		t.Errorf("rho law violated: %+v", slow)
	}
}
