package core_test

import (
	"math"
	"testing"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

// testRequest builds a planning request on a homogeneous platform with the
// repository's reference calibration (400 MFlop/s nodes, 100 Mb/s links —
// see internal/experiments).
func testRequest(t *testing.T, n int, power float64, dgemmN int) core.Request {
	t.Helper()
	return core.Request{
		Platform: platform.Homogeneous("test", n, power, 100),
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: dgemmN}.MFlop(),
	}
}

func TestHeuristicAgentLimitedDeploysOnePlusOne(t *testing.T) {
	// DGEMM 10x10 is tiny: the agent is the bottleneck and any extra server
	// hurts (Figs. 2–3). The heuristic must deploy one agent + one server.
	req := testRequest(t, 21, 400, 10)
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	s := plan.Hierarchy.ComputeStats()
	if s.Agents != 1 || s.Servers != 1 {
		t.Fatalf("want 1 agent + 1 server, got %d agents + %d servers\n%s", s.Agents, s.Servers, plan.Hierarchy)
	}
	if plan.Eval.Bottleneck != model.BottleneckAgent {
		t.Errorf("bottleneck = %v, want agent", plan.Eval.Bottleneck)
	}
}

func TestHeuristicServiceLimitedDeploysStar(t *testing.T) {
	// DGEMM 1000x1000 is huge: servers are the bottleneck; the heuristic
	// should use every node in a star (Table 4 row 4, Fig. 7).
	req := testRequest(t, 21, 400, 1000)
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	s := plan.Hierarchy.ComputeStats()
	if s.Agents != 1 {
		t.Errorf("want a star (1 agent), got %d agents\n%s", s.Agents, plan.Hierarchy)
	}
	if s.Servers != 20 {
		t.Errorf("want 20 servers, got %d", s.Servers)
	}
	if plan.Eval.Bottleneck != model.BottleneckService {
		t.Errorf("bottleneck = %v, want service", plan.Eval.Bottleneck)
	}
}

func smallHeterogeneousRequest(dgemmN int) core.Request {
	return core.Request{
		Platform: &platform.Platform{
			Name:      "small",
			Bandwidth: 100,
			Nodes: []platform.Node{
				{Name: "n0", Power: 500},
				{Name: "n1", Power: 420},
				{Name: "n2", Power: 380},
				{Name: "n3", Power: 300},
				{Name: "n4", Power: 220},
				{Name: "n5", Power: 150},
			},
		},
		Costs: model.DIETDefaults(),
		Wapp:  workload.DGEMM{N: dgemmN}.MFlop(),
	}
}

func TestHeuristicMatchesExhaustiveOnSmallPools(t *testing.T) {
	// On pools small enough for exhaustive search the heuristic should land
	// within 75% of the true optimum. (The paper reports 89% in its worst
	// case; the faithful algorithm always drafts the most powerful node as
	// root agent, which the true optimum sometimes avoids on heavily
	// service-limited workloads — see TestSwapRefinerClosesTheGap.)
	for _, dgemmN := range []int{10, 60, 100, 200} {
		req := smallHeterogeneousRequest(dgemmN)
		opt, err := (&baseline.Exhaustive{}).Plan(req)
		if err != nil {
			t.Fatalf("dgemm %d: exhaustive: %v", dgemmN, err)
		}
		heur, err := core.NewHeuristic().Plan(req)
		if err != nil {
			t.Fatalf("dgemm %d: heuristic: %v", dgemmN, err)
		}
		ratio := heur.Capped / opt.Capped
		t.Logf("dgemm %4d: heuristic %.2f vs optimal %.2f req/s (%.1f%%)", dgemmN, heur.Capped, opt.Capped, 100*ratio)
		if ratio < 0.75 {
			t.Errorf("dgemm %d: heuristic achieves only %.1f%% of optimal\nheuristic:\n%s\noptimal:\n%s",
				dgemmN, 100*ratio, heur.Hierarchy, opt.Hierarchy)
		}
		if ratio > 1.0000001 {
			t.Errorf("dgemm %d: heuristic (%.4f) beat the exhaustive optimum (%.4f): exhaustive search is broken", dgemmN, heur.Capped, opt.Capped)
		}
	}
}

func TestHeuristicRespectsDemand(t *testing.T) {
	// With a demand far below capacity the heuristic must not over-deploy.
	req := testRequest(t, 45, 400, 310)
	unbounded, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	req.Demand = workload.Demand(unbounded.Eval.Rho / 4)
	bounded, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatalf("Plan with demand: %v", err)
	}
	if bounded.NodesUsed >= unbounded.NodesUsed {
		t.Errorf("demand-capped plan uses %d nodes, unbounded uses %d; want fewer", bounded.NodesUsed, unbounded.NodesUsed)
	}
	if bounded.Capped < float64(req.Demand)*0.95 {
		t.Errorf("demand-capped plan delivers %.2f req/s, demand is %.2f", bounded.Capped, float64(req.Demand))
	}
}

func TestHeuristicBuildsMultiLevelWhenProfitable(t *testing.T) {
	// DGEMM 310x310 on 45 nodes: a pure star is agent-limited; the optimal
	// shape uses intermediate agents (Table 4 row 3). The heuristic should
	// beat the star.
	req := testRequest(t, 45, 400, 310)
	heur, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatalf("heuristic: %v", err)
	}
	star, err := (&baseline.Star{}).Plan(req)
	if err != nil {
		t.Fatalf("star: %v", err)
	}
	t.Logf("heuristic: %s", heur.Summary())
	t.Logf("star:      %s", star.Summary())
	if heur.Capped <= star.Capped {
		t.Errorf("heuristic (%.2f) should beat the star (%.2f) on DGEMM 310 with 45 nodes", heur.Capped, star.Capped)
	}
	if heur.Hierarchy.ComputeStats().Agents < 2 {
		t.Errorf("expected a multi-level hierarchy, got:\n%s", heur.Hierarchy)
	}
}

func TestSwapRefinerClosesTheGap(t *testing.T) {
	// The swap refiner should recover most of the heuristic's gap to the
	// exhaustive optimum on service-limited small pools, and must never
	// make a plan worse.
	for _, dgemmN := range []int{10, 60, 100, 200} {
		req := smallHeterogeneousRequest(dgemmN)
		opt, err := (&baseline.Exhaustive{}).Plan(req)
		if err != nil {
			t.Fatalf("dgemm %d: exhaustive: %v", dgemmN, err)
		}
		heur, err := core.NewHeuristic().Plan(req)
		if err != nil {
			t.Fatalf("dgemm %d: heuristic: %v", dgemmN, err)
		}
		refined, err := (&core.SwapRefiner{Inner: core.NewHeuristic()}).Plan(req)
		if err != nil {
			t.Fatalf("dgemm %d: refiner: %v", dgemmN, err)
		}
		if refined.Capped < heur.Capped {
			t.Errorf("dgemm %d: refiner made the plan worse: %.2f < %.2f", dgemmN, refined.Capped, heur.Capped)
		}
		ratio := refined.Capped / opt.Capped
		t.Logf("dgemm %4d: refined %.2f vs optimal %.2f req/s (%.1f%%)", dgemmN, refined.Capped, opt.Capped, 100*ratio)
		if ratio < 0.9 {
			t.Errorf("dgemm %d: refined plan achieves only %.1f%% of optimal", dgemmN, 100*ratio)
		}
	}
}

func TestHeuristicPlanIsValidAndWithinPlatform(t *testing.T) {
	p, err := platform.Generate(platform.GenSpec{
		Name: "gen", N: 60, Bandwidth: 100, MinPower: 50, MaxPower: 800, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := core.Request{Platform: p, Costs: model.DIETDefaults(), Wapp: workload.DGEMM{N: 310}.MFlop()}
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if err := plan.Hierarchy.Validate(hierarchy.Final); err != nil {
		t.Errorf("invalid final hierarchy: %v", err)
	}
	if err := plan.Hierarchy.CheckAgainstPlatform(p); err != nil {
		t.Errorf("plan inconsistent with platform: %v", err)
	}
	if plan.Eval.Rho <= 0 || math.IsInf(plan.Eval.Rho, 0) {
		t.Errorf("nonsensical throughput %g", plan.Eval.Rho)
	}
}
