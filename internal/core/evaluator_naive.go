package core

import (
	"math"

	"adept/internal/model"
)

// NaiveEvaluator is the reference PlacementEvaluator: it keeps the same
// deployment mirror as the incremental Evaluator but answers every query
// with a full Θ(n) sweep over all nodes, exactly what the planner hot path
// did before the incremental engine existed (per-candidate model rebuilds
// in rhoAfterAdd / cappedRho).
//
// It is retained on purpose, not as dead code:
//
//   - the property/fuzz tests hold Evaluator and NaiveEvaluator to 1e-9
//     agreement on every generated scenario — including heterogeneous
//     per-node link bandwidths — so the incremental bookkeeping can never
//     silently drift from the §3 model;
//   - the BenchmarkHeuristicPlanNaive* benchmarks plan through it to
//     quantify the incremental speedup (the CI bench gate requires ≥10x
//     at 5k nodes).
type NaiveEvaluator struct {
	costs model.Costs
	bw    float64 // default link bandwidth
	wapp  float64
	nodes []evalNode
}

// NewNaiveEvaluator returns an empty reference evaluator; bandwidth is the
// default link bandwidth for nodes without a per-node override.
func NewNaiveEvaluator(c model.Costs, bandwidth, wapp float64) *NaiveEvaluator {
	return &NaiveEvaluator{costs: c, bw: bandwidth, wapp: wapp}
}

// Reset implements PlacementEvaluator.
func (e *NaiveEvaluator) Reset() { e.nodes = e.nodes[:0] }

func (e *NaiveEvaluator) ensure(id int) {
	for len(e.nodes) <= id {
		e.nodes = append(e.nodes, evalNode{})
	}
}

// link resolves a per-node bandwidth override against the default.
func (e *NaiveEvaluator) link(bw float64) float64 {
	if bw > 0 {
		return bw
	}
	return e.bw
}

// AddAgent implements PlacementEvaluator.
func (e *NaiveEvaluator) AddAgent(id, parent int, power, linkBW float64) {
	e.ensure(id)
	e.nodes[id] = evalNode{power: power, bw: e.link(linkBW), role: roleAgent}
	if parent >= 0 {
		e.nodes[parent].degree++
	}
}

// AddServer implements PlacementEvaluator.
func (e *NaiveEvaluator) AddServer(id, parent int, power, linkBW float64) {
	e.ensure(id)
	e.nodes[id] = evalNode{power: power, bw: e.link(linkBW), role: roleServer}
	if parent >= 0 {
		e.nodes[parent].degree++
	}
}

// Promote implements PlacementEvaluator.
func (e *NaiveEvaluator) Promote(id int) {
	e.nodes[id].role = roleAgent
	e.nodes[id].degree = 0
}

// SetBacking implements PlacementEvaluator.
func (e *NaiveEvaluator) SetBacking(id int, power, linkBW float64) {
	e.nodes[id].power = power
	e.nodes[id].bw = e.link(linkBW)
}

// sweep recomputes ρ_sched and ρ_service from scratch. The override hooks
// graft one hypothetical change into the sweep without mutating state:
// agent overrideID evaluates with degree+degreeDelta and (when agentPower
// ≥ 0) that backing power and link; server swapServer evaluates with the
// agent's old power and link; extraServer ≥ 0 adds one unattached server.
type naiveOverride struct {
	agentID     int     // -1 none
	degreeDelta int     // applied to agentID
	agentPower  float64 // <0: keep
	agentBW     float64 // backing link of the agent override (with agentPower)
	serverID    int     // -1 none: server whose backing is replaced
	serverPower float64
	serverBW    float64
	extraServer float64 // <0 none: power of one additional server
	extraBW     float64 // resolved link of the additional server
	dropServer  int     // -1 none: server excluded from the sweep
}

func (e *NaiveEvaluator) sweep(ov naiveOverride) (sched, service float64) {
	sched = math.Inf(1)
	nServers := 0
	sum := 0.0
	minBW := math.Inf(1)
	for id := range e.nodes {
		n := e.nodes[id]
		switch n.role {
		case roleAgent:
			power, bw, degree := n.power, n.bw, n.degree
			if id == ov.agentID {
				degree += ov.degreeDelta
				if ov.agentPower >= 0 {
					power, bw = ov.agentPower, ov.agentBW
				}
			}
			if t := model.AgentThroughput(e.costs, bw, power, degree); t < sched {
				sched = t
			}
		case roleServer:
			if id == ov.dropServer {
				continue
			}
			power, bw := n.power, n.bw
			if id == ov.serverID {
				power, bw = ov.serverPower, ov.serverBW
			}
			nServers++
			//adeptvet:allow floataccum naive reference evaluator; the fuzz harness holds it to the compensated one within 1e-9
			sum += power
			if bw < minBW {
				minBW = bw
			}
			if t := model.ServerPredictionThroughput(e.costs, bw, power); t < sched {
				sched = t
			}
		}
	}
	if ov.extraServer >= 0 {
		nServers++
		//adeptvet:allow floataccum naive reference evaluator; the fuzz harness holds it to the compensated one within 1e-9
		sum += ov.extraServer
		if ov.extraBW < minBW {
			minBW = ov.extraBW
		}
		if t := model.ServerPredictionThroughput(e.costs, ov.extraBW, ov.extraServer); t < sched {
			sched = t
		}
	}
	if nServers == 0 {
		return 0, 0
	}
	service = serviceFromAggregates(e.costs, minBW, e.wapp, nServers, sum)
	return sched, service
}

// noOverride evaluates the mirror as-is.
var noOverride = naiveOverride{agentID: -1, agentPower: -1, serverID: -1, extraServer: -1, dropServer: -1}

// Eval implements PlacementEvaluator.
func (e *NaiveEvaluator) Eval() (sched, service float64) {
	return e.sweep(noOverride)
}

// RhoAfterAttach implements PlacementEvaluator.
func (e *NaiveEvaluator) RhoAfterAttach(parent int, power, linkBW float64) float64 {
	ov := noOverride
	ov.agentID, ov.degreeDelta = parent, 1
	ov.extraServer, ov.extraBW = power, e.link(linkBW)
	sched, service := e.sweep(ov)
	return math.Min(sched, service)
}

// RhoAfterReback implements PlacementEvaluator.
func (e *NaiveEvaluator) RhoAfterReback(agentID int, power, linkBW float64) float64 {
	ov := noOverride
	ov.agentID, ov.agentPower, ov.agentBW = agentID, power, e.link(linkBW)
	sched, service := e.sweep(ov)
	return math.Min(sched, service)
}

// RhoAfterSwap implements PlacementEvaluator.
func (e *NaiveEvaluator) RhoAfterSwap(agentID, serverID int) float64 {
	ov := noOverride
	ov.agentID, ov.agentPower, ov.agentBW = agentID, e.nodes[serverID].power, e.nodes[serverID].bw
	ov.serverID, ov.serverPower, ov.serverBW = serverID, e.nodes[agentID].power, e.nodes[agentID].bw
	sched, service := e.sweep(ov)
	return math.Min(sched, service)
}

// RhoAfterDrop implements PlacementEvaluator.
func (e *NaiveEvaluator) RhoAfterDrop(serverID, parentID int) float64 {
	ov := noOverride
	ov.agentID, ov.degreeDelta = parentID, -1
	ov.dropServer = serverID
	sched, service := e.sweep(ov)
	return math.Min(sched, service)
}
