package core

import (
	"context"
	"math"
	"sort"

	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/obs"
	"adept/internal/platform"
)

// This file is the class-collapsed twin of the node-space planner in
// heuristic.go. It keeps PlanContext's macro structure exactly — seed
// shortcut, target computation, gated growth, snapshot scans (full star,
// star-over-every-root, one-agent/one-server pair), best-prefix replay —
// but every Θ(n) scan over node *specs* runs over the ClassIndex's Θ(C)
// classes instead. The growth loop itself is shared verbatim (growth.run):
// it consumes the sorted pool one node at a time through a poolSource, and
// the class path's classPool materialises those nodes lazily, spending each
// class's members in ascending name order.
//
// Equivalence contract, enforced by the differential battery in
// classdiff_test.go and the fuzz invariants:
//
//   - On any platform, the class-collapsed plan's predicted throughput
//     matches the node-space plan's to 1e-9. Spec-scan minima/maxima are
//     exact per class; only the order of long floating-point power
//     accumulations can differ (class-block order vs node-sort order).
//   - When the pool is homogeneous or duplicated-spec — distinct classes
//     have distinct sort keys, so the node-space sort is exactly "class
//     blocks, names ascending" — the two planners are bit-identical, XML
//     included.
//   - A sort-key collision between distinct classes (the one case where
//     class blocks cannot reproduce the node-space interleaving) is
//     detected in newClassSort and falls back to node-space planning.

// classSort ranks the classes of a ClassIndex by the node-space sort key
// (scheduling power at d = n-1 children, each class at its own link),
// descending, ties by smallest member name — the class-space image of
// sortNodes. start[j] is the position of class j's first member in the
// sorted expansion; start[C] = n.
type classSort struct {
	ix    *ClassIndex
	order []int
	start []int
}

// newClassSort builds the class ranking. ok is false when two distinct
// classes share a sort key bit for bit: node-space sorting would interleave
// their members by name, which class blocks cannot reproduce, so the caller
// must plan in node space.
func newClassSort(c model.Costs, bandwidth float64, ix *ClassIndex) (*classSort, bool) {
	d := ix.total - 1
	if d < 1 {
		d = 1
	}
	nc := ix.NumClasses()
	keys := make([]float64, nc)
	for i := 0; i < nc; i++ {
		cl := ix.Class(i)
		keys[i] = calcSchPow(c, cl.link(bandwidth), cl.Power, d)
	}
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] > keys[order[b]]
		}
		return ix.Class(order[a]).minName < ix.Class(order[b]).minName
	})
	for j := 1; j < nc; j++ {
		if keys[order[j]] == keys[order[j-1]] {
			return nil, false
		}
	}
	start := make([]int, nc+1)
	for j, k := range order {
		start[j+1] = start[j] + ix.Class(k).Count()
	}
	return &classSort{ix: ix, order: order, start: start}, true
}

// class returns the j-th class in sort order.
//
//adeptvet:hotpath
func (cs *classSort) class(j int) *NodeClass { return &cs.ix.classes[cs.order[j]] }

// numClasses returns the class count.
func (cs *classSort) numClasses() int { return len(cs.order) }

// poolCount returns how many members of sorted class j are in the non-root
// pool (the root consumes one member of class 0).
//
//adeptvet:hotpath
func (cs *classSort) poolCount(j int) int {
	n := cs.class(j).Count()
	if j == 0 {
		n--
	}
	return n
}

// uniformLinks is Platform.HasUniformLinks computed over classes.
func (cs *classSort) uniformLinks(def float64) bool {
	for j := range cs.order {
		cl := cs.class(j)
		if cl.LinkBandwidth > 0 && cl.LinkBandwidth != def {
			return false
		}
	}
	return true
}

// fillPoolPowers writes the pool's power vector in sorted-expansion order
// (class blocks). In the bit-identity regimes this is exactly the node-sort
// order, so downstream sequential accumulations match bit for bit.
func (cs *classSort) fillPoolPowers(dst []float64) {
	pos := 0
	for j := range cs.order {
		w := cs.class(j).Power
		for k := cs.poolCount(j); k > 0; k-- {
			dst[pos] = w
			pos++
		}
	}
}

// nameHeap is a binary min-heap of node names. classPool drains one per
// class: heap construction is O(count) with no upfront sort, so consuming
// k nodes of a huge class costs O(count + k log count) string comparisons
// instead of an O(count log count) full sort.
type nameHeap []string

func (h nameHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func heapifyNames(h nameHeap) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// classPool lazily materialises the sorted expansion of a classSort:
// classes in sort order, members in ascending name order. at(i) is the
// i-th node of the expansion; only the consumed prefix is ever built, so a
// plan that deploys a few hundred of a million nodes never names the rest.
type classPool struct {
	cs    *classSort
	nodes []platform.Node
	cls   int // position in cs.order currently draining; -1 before the first
	heap  nameHeap
}

func newClassPool(cs *classSort) *classPool {
	return &classPool{cs: cs, cls: -1}
}

func (cp *classPool) at(i int) platform.Node {
	for i >= len(cp.nodes) {
		cp.materializeOne()
	}
	return cp.nodes[i]
}

func (cp *classPool) materializeOne() {
	for len(cp.heap) == 0 {
		cp.cls++
		cl := cp.cs.class(cp.cls)
		cp.heap = append(cp.heap[:0], cl.names...)
		heapifyNames(cp.heap)
	}
	name := cp.heap[0]
	last := len(cp.heap) - 1
	cp.heap[0] = cp.heap[last]
	cp.heap = cp.heap[:last]
	cp.heap.siftDown(0)
	cp.nodes = append(cp.nodes, cp.cs.class(cp.cls).node(name))
}

// classPoolView adapts a classPool to the growth loop's poolSource: the
// non-root pool is the sorted expansion shifted by one (the root is
// expansion position 0).
type classPoolView struct {
	cp *classPool
	n  int
}

func (v classPoolView) at(i int) platform.Node { return v.cp.at(i + 1) }
func (v classPoolView) size() int              { return v.n }

// classRef addresses one concrete node in class space: the member-th
// smallest name of sorted class j. Only members 0 and 1 are ever needed
// (best/runner-up selections), so materialisation uses minNames2.
type classRef struct {
	j, member int
}

func (cs *classSort) refNode(r classRef) platform.Node {
	cl := cs.class(r.j)
	n1, n2 := cl.minNames2()
	if r.member == 0 {
		return cl.node(n1)
	}
	return cl.node(n2)
}

// classFold folds a per-class value into a min2 as if each of the class's
// cnt members had been folded at the class's block position: the first
// fold records the value (and the class position as the tie-break index),
// the second collapses v2 onto v1 so that exclusion of any single member
// of a multi-member class leaves the value in place.
//
//adeptvet:hotpath
func classFold(m *min2, v float64, j, cnt int) {
	m.fold(v, j)
	if cnt > 1 {
		m.fold(v, j)
	}
}

// bestPairClassed is bestPair over classes: the top-two server candidates
// (by the root-independent server score) scored against every candidate
// root class in O(C). Member indices replicate the node-space scan's
// earliest-index tie-breaks: a class's first member is its block's first
// sorted index, and only the best-server class ever needs its second
// member as a distinct candidate. Returns concrete nodes.
func (cs *classSort) bestPairClassed(c model.Costs, req Request, bw, floor float64) (rootNd, servNd platform.Node, ok bool) {
	wapp := req.Wapp
	score := func(cl *NodeClass) float64 {
		nbw := cl.link(bw)
		return math.Min(model.ServerPredictionThroughput(c, nbw, cl.Power),
			calcHierSerPow(c, nbw, wapp, []float64{cl.Power}))
	}
	// Best and runner-up server, with the node-space fold replicated per
	// member candidate: member 1 of a class is only a distinct candidate
	// for the runner-up slot (equal score, later index).
	s1, s2 := classRef{j: -1}, classRef{j: -1}
	var v1, v2 float64
	fold := func(j, member int, sc float64) {
		switch {
		case s1.j < 0 || sc > v1:
			s2, v2 = s1, v1
			s1, v1 = classRef{j, member}, sc
		case s2.j < 0 || sc > v2:
			s2, v2 = classRef{j, member}, sc
		}
	}
	for j := range cs.order {
		sc := score(cs.class(j))
		fold(j, 0, sc)
		if cs.class(j).Count() > 1 {
			fold(j, 1, sc)
		}
	}
	best := floor
	br, bs := classRef{j: -1}, classRef{j: -1}
	for j := range cs.order {
		cl := cs.class(j)
		rootSch := calcSchPow(c, cl.link(bw), cl.Power, 1)
		eval := func(member int) {
			srv, sv := s1, v1
			if s1.j == j && s1.member == member {
				srv, sv = s2, v2
			}
			if srv.j < 0 {
				return
			}
			rho := math.Min(rootSch, sv)
			if capped := req.Demand.Cap(rho); capped > best {
				best, br, bs = capped, classRef{j, member}, srv
			}
		}
		eval(0)
		// Members past the first share the best server as partner; they
		// are distinct candidates only when member 0 was the best server
		// itself (node-space: the i == s1 exclusion).
		if s1.j == j && s1.member == 0 && cl.Count() > 1 {
			eval(1)
		}
	}
	if br.j < 0 {
		return platform.Node{}, platform.Node{}, false
	}
	return cs.refNode(br), cs.refNode(bs), true
}

// bestStarRoot is the star-over-every-root snapshot over classes: the
// aggregate minima (prediction throughput, link bandwidth) fold per class,
// exclusion of a candidate root is O(1) via min2, and every member of a
// class scores identically — so the first member of the first improving
// class is the node-space argmax. Returns the (possibly improved) capped
// score and the star root's position in the sorted expansion.
func (cs *classSort) bestStarRoot(c model.Costs, req Request, bw, wapp float64, allPowers []float64, starCapped float64) (float64, int) {
	n := cs.ix.total
	totalPow := cs.class(0).Power
	for _, w := range allPowers {
		//adeptvet:allow floataccum fixed left-to-right fold mirroring the node-space twin term for term; classdiff proves bit-identity
		totalPow += w
	}
	pred, link := newMin2(), newMin2()
	for j := range cs.order {
		cl := cs.class(j)
		cnt := cl.Count()
		nbw := cl.link(bw)
		classFold(&pred, model.ServerPredictionThroughput(c, nbw, cl.Power), j, cnt)
		classFold(&link, nbw, j, cnt)
	}
	best, bestPos := starCapped, 0
	for j := range cs.order {
		cl := cs.class(j)
		sched := math.Min(calcSchPow(c, cl.link(bw), cl.Power, n-1), pred.excl(j))
		service := serviceFromAggregates(c, link.excl(j), wapp, n-1, totalPow-cl.Power)
		if capped := req.Demand.Cap(math.Min(sched, service)); capped > best {
			best, bestPos = capped, cs.start[j]
		}
	}
	return best, bestPos
}

// planClassed is PlanContext in class space. See the file comment for the
// equivalence contract; every step annotates which node-space computation
// it collapses.
func (p *Heuristic) planClassed(ctx context.Context, req Request, cs *classSort) (*Plan, error) {
	c := req.Costs
	bw := req.Platform.Bandwidth
	wapp := req.Wapp
	n := cs.ix.total
	tr := obs.TraceFrom(ctx)
	tr.Count("pool_nodes", int64(n))
	tr.Count("pool_classes", int64(cs.numClasses()))

	// sortNodes collapsed: the classes are already ranked; materialise only
	// the head of the expansion.
	endSort := tr.Phase("sort_nodes")
	cp := newClassPool(cs)
	root := cp.at(0)
	endSort()
	rootBW := root.Link(bw)
	pool := classPoolView{cp: cp, n: n - 1}
	uniform := cs.uniformLinks(bw)

	h := hierarchy.New(deploymentName(req))
	rootID, err := h.AddRoot(root.Name, root.Power, root.LinkBandwidth)
	if err != nil {
		return nil, err
	}

	// Steps 3–5, exactly as the node path computes them.
	pool0 := pool.at(0)
	virMaxSchPow := calcSchPow(c, rootBW, root.Power, 1)
	virMaxSerPow := calcHierSerPow(c, pool0.Link(bw), wapp, []float64{pool0.Power})
	minSerCV := virMaxSerPow
	if req.Demand.Bounded() && float64(req.Demand) < minSerCV {
		minSerCV = float64(req.Demand)
	}

	firstServerID, err := h.AddServer(rootID, pool0.Name, pool0.Power, pool0.LinkBandwidth)
	if err != nil {
		return nil, err
	}

	// Step 6: agent-limited shortcut, with the heterogeneous-links pair
	// scan collapsed to classes.
	if virMaxSchPow < minSerCV {
		if !uniform {
			floor := req.Demand.Cap(h.Evaluate(c, bw, wapp).Rho)
			if rootNd, servNd, ok := cs.bestPairClassed(c, req, bw, floor); ok {
				tr.Set("snapshot_win", "pair")
				return buildPairNodes(p.Name(), req, rootNd, servNd)
			}
		}
		tr.Set("snapshot_win", "seed")
		return Finalize(p.Name(), req, h)
	}

	// The supported_children target: same calcHierSerPow call as the node
	// path, over the pool's power vector written in class-block order (the
	// node-sort order whenever bit-identity is claimed). The O(n) fill is
	// plain stores; the O(C) part is the spec minima.
	allPowers := make([]float64, n-1)
	cs.fillPoolPowers(allPowers)
	minPoolBW := math.Inf(1)
	for j := range cs.order {
		if cs.poolCount(j) == 0 {
			continue
		}
		if nbw := cs.class(j).link(bw); nbw < minPoolBW {
			minPoolBW = nbw
		}
	}
	target := calcHierSerPow(c, minPoolBW, wapp, allPowers)
	if req.Demand.Bounded() && float64(req.Demand) < target {
		target = float64(req.Demand)
	}
	if target > virMaxSchPow {
		target = calcSchPow(c, rootBW, root.Power, 2)
	}

	// Shared growth loop over the lazily materialised pool.
	g := p.seedGrowth(req, h, target, pool, rootID, root, firstServerID)
	best, err := g.run(ctx, p.Name())
	if err != nil {
		return nil, err
	}

	endSnapshots := tr.Phase("snapshots")
	// Full-star snapshot: the pool-wide prediction minimum is exact per
	// class; the service power reuses the class-ordered power vector.
	starSched := calcSchPow(c, rootBW, root.Power, n-1)
	for j := range cs.order {
		if cs.poolCount(j) == 0 {
			continue
		}
		cl := cs.class(j)
		if t := model.ServerPredictionThroughput(c, cl.link(bw), cl.Power); t < starSched {
			starSched = t
		}
	}
	starService := calcHierSerPow(c, minPoolBW, wapp, allPowers)
	starCapped := req.Demand.Cap(math.Min(starSched, starService))
	starRootPos := 0

	if !uniform {
		starCapped, starRootPos = cs.bestStarRoot(c, req, bw, wapp, allPowers, starCapped)
	}
	if !uniform {
		if rootNd, servNd, ok := cs.bestPairClassed(c, req, bw, math.Max(best.capped, starCapped)); ok {
			endSnapshots()
			tr.Set("snapshot_win", "pair")
			return buildPairNodes(p.Name(), req, rootNd, servNd)
		}
	}
	endSnapshots()

	if starCapped > best.capped {
		tr.Set("snapshot_win", "star")
		star := hierarchy.New(deploymentName(req))
		rootNd := cp.at(starRootPos)
		starRoot, err := star.AddRoot(rootNd.Name, rootNd.Power, rootNd.LinkBandwidth)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if i == starRootPos {
				continue
			}
			nd := cp.at(i)
			if _, err := star.AddServer(starRoot, nd.Name, nd.Power, nd.LinkBandwidth); err != nil {
				return nil, err
			}
		}
		return Finalize(p.Name(), req, star)
	}

	tr.Set("snapshot_win", "grown")
	return p.finishGrown(ctx, req, g, best, root, pool0)
}
