package core_test

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/scenario"
	"adept/internal/workload"
)

// This file is the correctness battery for class-collapsed planning and the
// parallel candidate scans: differential tests pinning the class-space
// planner to the node-space planner over the whole scenario corpus,
// determinism tests across GOMAXPROCS settings, and a concurrency stress
// test racing PlanContext calls through the parallel scan path.
//
// ADEPT_CLASS_BATTERY=full (the CI race job) widens the corpus to
// thousand-node pools; the default keeps tier-1 `go test ./...` fast.

// classBatteryFull reports whether the heavy battery mode is enabled.
func classBatteryFull() bool { return os.Getenv("ADEPT_CLASS_BATTERY") == "full" }

func mustXML(t *testing.T, p *core.Plan) string {
	t.Helper()
	x, err := p.XML()
	if err != nil {
		t.Fatalf("xml: %v", err)
	}
	return x
}

// classVsNode plans req in forced node space and forced class space and
// asserts the differential contract: throughput equal to 1e-9 always, and
// bit-identical XML whenever the pool is homogeneous/duplicated-spec or the
// class path actually engaged (the implementation is exact, not
// approximate: class planning only proceeds when it can reproduce
// node-space decisions, so XML equality is asserted in every regime it
// claims).
func classVsNode(t *testing.T, req core.Request, label string) {
	t.Helper()
	np, err := core.NewHeuristicNodeSpace().Plan(req)
	if err != nil {
		t.Fatalf("%s: node-space: %v", label, err)
	}
	cp, err := core.NewHeuristicClassSpace().Plan(req)
	if err != nil {
		t.Fatalf("%s: class-space: %v", label, err)
	}
	if np.ClassPlanned {
		t.Fatalf("%s: node-space planner reported ClassPlanned", label)
	}
	if !relClose(cp.Eval.Rho, np.Eval.Rho, 1e-9) {
		t.Errorf("%s: class rho %.12g != node rho %.12g", label, cp.Eval.Rho, np.Eval.Rho)
	}
	if !relClose(cp.Capped, np.Capped, 1e-9) {
		t.Errorf("%s: class capped %.12g != node capped %.12g", label, cp.Capped, np.Capped)
	}
	distinct := platform.DistinctSpecs(req.Platform.Nodes)
	wantBits := cp.ClassPlanned || distinct < len(req.Platform.Nodes)
	if cp.ClassPlanned && cp.PoolClasses != distinct {
		t.Errorf("%s: PoolClasses %d != DistinctSpecs %d", label, cp.PoolClasses, distinct)
	}
	if wantBits {
		if nx, cx := mustXML(t, np), mustXML(t, cp); nx != cx {
			t.Errorf("%s: class-space XML differs from node-space (classes=%d, classPlanned=%v)\nnode:\n%s\nclass:\n%s",
				label, distinct, cp.ClassPlanned, nx, cx)
		}
	}
}

// corpusVariants returns the spec plus its duplicated-spec (quantised) and
// homogeneous (single-level) variants — the three pool shapes the
// differential contract names.
func corpusVariants(spec scenario.Spec) []scenario.Spec {
	quant := spec
	quant.PowerLevels = 6
	quant.Name = fmt.Sprintf("%s-q6", spec.Family)
	homog := spec
	homog.PowerLevels = 1
	homog.Name = fmt.Sprintf("%s-q1", spec.Family)
	return []scenario.Spec{spec, quant, homog}
}

// TestClassVsNodeAcrossCorpus runs the class-vs-node differential over
// every scenario corpus family: the raw (usually all-distinct) pool, a
// 6-level quantised duplicated-spec pool, and a power-homogeneous pool.
func TestClassVsNodeAcrossCorpus(t *testing.T) {
	sizes := []int{4, 12, 40, 120}
	if classBatteryFull() {
		sizes = append(sizes, 600, 5000)
	}
	for _, spec := range scenario.Corpus(23, sizes...) {
		for _, v := range corpusVariants(spec) {
			plat, err := v.Generate()
			if err != nil {
				t.Fatal(err)
			}
			req := core.Request{
				Platform: plat,
				Costs:    model.DIETDefaults(),
				Wapp:     workload.DGEMM{N: 1000}.MFlop(),
			}
			label := fmt.Sprintf("%s/n%d/L%d", v.Family, v.N, v.PowerLevels)
			classVsNode(t, req, label)
		}
	}
}

// TestClassVsNodeUnderDemand repeats the differential with a binding client
// demand, which flips the planner into its demand-capped regimes (early
// stop, fewest-nodes preference, pair shortcut).
func TestClassVsNodeUnderDemand(t *testing.T) {
	for _, fam := range scenario.Families() {
		spec := scenario.Spec{Family: fam, N: 64, Seed: 91, PowerLevels: 4}
		plat, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, demand := range []float64{2, 50, 1e6} {
			req := core.Request{
				Platform: plat,
				Costs:    model.DIETDefaults(),
				Wapp:     workload.DGEMM{N: 600}.MFlop(),
				Demand:   workload.Demand(demand),
			}
			classVsNode(t, req, fmt.Sprintf("%s/demand%g", fam, demand))
		}
	}
}

// TestClassAutoThreshold pins the auto-mode engagement rule: large
// spec-repetitive pools plan in class space, small or incompressible pools
// stay in node space.
func TestClassAutoThreshold(t *testing.T) {
	costs := model.DIETDefaults()
	wapp := workload.DGEMM{N: 1000}.MFlop()

	bigQuant, err := scenario.Spec{Family: scenario.ClusterGrid, N: 5000, Seed: 7, PowerLevels: 8}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewHeuristic().Plan(core.Request{Platform: bigQuant, Costs: costs, Wapp: wapp})
	if err != nil {
		t.Fatal(err)
	}
	if !p.ClassPlanned {
		t.Errorf("5000-node quantised pool (distinct=%d) did not engage class planning",
			platform.DistinctSpecs(bigQuant.Nodes))
	}
	if p.PoolClasses == 0 || p.PoolClasses > 5000/8 {
		t.Errorf("unexpected PoolClasses %d for quantised pool", p.PoolClasses)
	}

	bigDistinct, err := scenario.Spec{Family: scenario.PowerLaw, N: 5000, Seed: 7}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	p, err = core.NewHeuristic().Plan(core.Request{Platform: bigDistinct, Costs: costs, Wapp: wapp})
	if err != nil {
		t.Fatal(err)
	}
	if p.ClassPlanned {
		t.Errorf("all-distinct pool (distinct=%d) engaged class planning", platform.DistinctSpecs(bigDistinct.Nodes))
	}

	smallQuant, err := scenario.Spec{Family: scenario.ClusterGrid, N: 120, Seed: 7, PowerLevels: 8}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	p, err = core.NewHeuristic().Plan(core.Request{Platform: smallQuant, Costs: costs, Wapp: wapp})
	if err != nil {
		t.Fatal(err)
	}
	if p.ClassPlanned {
		t.Error("120-node pool engaged class planning below the node floor")
	}
}

// TestClassSortKeyCollisionFallsBack crafts two distinct spec classes with
// identical sort keys — same power, one on the raw platform default link
// and one pinned to it explicitly — and asserts the forced class planner
// degrades to node space (ClassPlanned false) while still planning
// identically.
func TestClassSortKeyCollisionFallsBack(t *testing.T) {
	plat := &platform.Platform{Name: "collide", Bandwidth: 100}
	for i := 0; i < 8; i++ {
		n := platform.Node{Name: fmt.Sprintf("collide-%02d", i), Power: 400}
		if i%2 == 1 {
			n.LinkBandwidth = 100 // explicit override equal to the default
		}
		plat.Nodes = append(plat.Nodes, n)
	}
	if platform.DistinctSpecs(plat.Nodes) != 2 {
		t.Fatalf("expected 2 distinct specs, got %d", platform.DistinctSpecs(plat.Nodes))
	}
	req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: workload.DGEMM{N: 1000}.MFlop()}
	cp, err := core.NewHeuristicClassSpace().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if cp.ClassPlanned {
		t.Error("key-colliding classes did not fall back to node space")
	}
	np, err := core.NewHeuristicNodeSpace().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if mustXML(t, cp) != mustXML(t, np) {
		t.Error("fallback plan differs from node-space plan")
	}
}

// specKey identifies a node spec for multiset comparison.
type specKey struct {
	name string
	p, b uint64
}

func specMultiset(nodes []platform.Node) []specKey {
	out := make([]specKey, len(nodes))
	for i, n := range nodes {
		out[i] = specKey{n.Name, math.Float64bits(n.Power), math.Float64bits(n.LinkBandwidth)}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].name != out[b].name {
			return out[a].name < out[b].name
		}
		if out[a].p != out[b].p {
			return out[a].p < out[b].p
		}
		return out[a].b < out[b].b
	})
	return out
}

// checkClassRoundTrip asserts expand(collapse(pool)) preserves the multiset
// of (name, power, link) specs. Shared with the fuzz battery.
func checkClassRoundTrip(t *testing.T, nodes []platform.Node, label string) {
	t.Helper()
	ix := core.BuildClassIndex(nodes)
	if ix.NumNodes() != len(nodes) {
		t.Errorf("%s: index holds %d nodes, pool has %d", label, ix.NumNodes(), len(nodes))
	}
	if want := platform.DistinctSpecs(nodes); ix.NumClasses() != want {
		t.Errorf("%s: index has %d classes, DistinctSpecs says %d", label, ix.NumClasses(), want)
	}
	expanded := ix.Expand()
	got, want := specMultiset(expanded), specMultiset(nodes)
	if len(got) != len(want) {
		t.Fatalf("%s: expand returned %d nodes, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: expand(collapse(pool)) lost spec %v (got %v)", label, want[i], got[i])
		}
	}
}

// TestClassIndexRoundTrip covers the corpus plus the class-boundary corner
// the fuzz seeds target: near-duplicate powers one ulp apart must land in
// distinct classes.
func TestClassIndexRoundTrip(t *testing.T) {
	for _, spec := range scenario.Corpus(41) {
		for _, v := range corpusVariants(spec) {
			plat, err := v.Generate()
			if err != nil {
				t.Fatal(err)
			}
			checkClassRoundTrip(t, plat.Nodes, fmt.Sprintf("%s/n%d/L%d", v.Family, v.N, v.PowerLevels))
		}
	}

	// ±1 ulp: bit-exact classing must keep the three specs apart.
	w := 400.0
	nodes := []platform.Node{
		{Name: "ulp-0", Power: w},
		{Name: "ulp-1", Power: math.Nextafter(w, math.Inf(1))},
		{Name: "ulp-2", Power: math.Nextafter(w, math.Inf(-1))},
		{Name: "ulp-3", Power: w},
	}
	checkClassRoundTrip(t, nodes, "ulp")
	if got := core.BuildClassIndex(nodes).NumClasses(); got != 3 {
		t.Errorf("ulp-apart powers collapsed to %d classes, want 3", got)
	}
}

// planFixed plans req at a fixed GOMAXPROCS setting and returns the XML.
func planFixed(t *testing.T, p core.Planner, req core.Request, procs int) string {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	plan, err := p.Plan(req)
	if err != nil {
		t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
	}
	return mustXML(t, plan)
}

// TestDeterminismUnderGOMAXPROCS plans pools large enough to shard the
// candidate scans (n >= 4096) at GOMAXPROCS 1, 2 and 8 and asserts
// byte-identical XML — the index-tie-broken merges must make parallelism
// invisible. Covers the node-space path (all-distinct, heterogeneous links:
// sort fill, best-star and pair scans all shard) and the class path.
func TestDeterminismUnderGOMAXPROCS(t *testing.T) {
	specs := []scenario.Spec{
		{Family: scenario.ClusterGrid, N: 5000, Seed: 11},                 // node space, het links
		{Family: scenario.PowerLaw, N: 4500, Seed: 12},                    // node space, uniform links
		{Family: scenario.ClusterGrid, N: 5000, Seed: 11, PowerLevels: 8}, // class space
	}
	for _, spec := range specs {
		plat, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: workload.DGEMM{N: 1000}.MFlop()}
		ref := planFixed(t, core.NewHeuristic(), req, 1)
		for _, procs := range []int{2, 8} {
			if got := planFixed(t, core.NewHeuristic(), req, procs); got != ref {
				t.Errorf("%s/n%d/L%d: GOMAXPROCS=%d XML differs from GOMAXPROCS=1",
					spec.Family, spec.N, spec.PowerLevels, procs)
			}
		}
	}
}

// TestConcurrentPlanContextStress races concurrent PlanContext calls over
// shared request state through the parallel scan path: every plan must be
// byte-identical to the sequential reference. Run under -race in the CI
// battery job, this is the data-race probe for the scan sharding.
func TestConcurrentPlanContextStress(t *testing.T) {
	workers, rounds := 8, 2
	if classBatteryFull() {
		rounds = 6
	}
	specs := []scenario.Spec{
		{Family: scenario.ClusterGrid, N: 4500, Seed: 17},
		{Family: scenario.ClusterGrid, N: 4500, Seed: 17, PowerLevels: 10},
	}
	for _, spec := range specs {
		plat, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: workload.DGEMM{N: 1000}.MFlop()}
		refPlan, err := core.NewHeuristic().Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		ref := mustXML(t, refPlan)
		var wg sync.WaitGroup
		errs := make(chan error, workers*rounds)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					plan, err := core.NewHeuristic().Plan(req)
					if err != nil {
						errs <- err
						return
					}
					x, err := plan.XML()
					if err != nil {
						errs <- err
						return
					}
					if x != ref {
						errs <- fmt.Errorf("concurrent plan XML diverged from reference")
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Errorf("%s/L%d: %v", spec.Family, spec.PowerLevels, err)
		}
	}
}
