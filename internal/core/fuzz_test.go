package core_test

import (
	"math"
	"testing"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/scenario"
	"adept/internal/workload"
)

// relClose reports |a-b| <= tol relative to max(|a|,|b|,1).
func relClose(a, b, tol float64) bool {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) <= tol*scale
}

// planInvariants runs the full invariant battery on one generated request.
// It is shared by the fuzz target and the corpus property test.
func planInvariants(t *testing.T, req core.Request, label string) {
	t.Helper()
	hp, err := core.NewHeuristic().Plan(req)
	if err != nil {
		t.Fatalf("%s: heuristic: %v", label, err)
	}

	// 1. The plan satisfies the paper's shape invariants and maps onto the
	// platform pool.
	if err := hp.Hierarchy.Validate(hierarchy.Final); err != nil {
		t.Errorf("%s: invalid plan: %v\n%s", label, err, hp.Hierarchy)
	}
	if err := hp.Hierarchy.CheckAgainstPlatform(req.Platform); err != nil {
		t.Errorf("%s: plan outside platform: %v", label, err)
	}

	// 2. ρ = min(ρ_sched, ρ_service), and the demand cap holds.
	if want := math.Min(hp.Eval.Sched, hp.Eval.Service); hp.Eval.Rho != want {
		t.Errorf("%s: rho %g != min(sched %g, service %g)", label, hp.Eval.Rho, hp.Eval.Sched, hp.Eval.Service)
	}
	if req.Demand.Bounded() && hp.Capped > float64(req.Demand) {
		t.Errorf("%s: capped %g exceeds demand %g", label, hp.Capped, float64(req.Demand))
	}

	// 3. The heuristic never predicts below the intuitive star baseline
	// (on demand-capped requests the comparison is on useful throughput:
	// the planner deliberately trades surplus ρ for fewer nodes).
	sp, err := (&baseline.Star{}).Plan(req)
	if err != nil {
		t.Fatalf("%s: star: %v", label, err)
	}
	if hp.Capped < sp.Capped && !relClose(hp.Capped, sp.Capped, 1e-9) {
		t.Errorf("%s: heuristic capped %.9g below star %.9g\nplatform: %s", label, hp.Capped, sp.Capped, platformJSON(t, req.Platform))
	}
	if !req.Demand.Bounded() && hp.Eval.Rho < sp.Eval.Rho && !relClose(hp.Eval.Rho, sp.Eval.Rho, 1e-9) {
		t.Errorf("%s: heuristic rho %.9g below star rho %.9g\nplatform: %s", label, hp.Eval.Rho, sp.Eval.Rho, platformJSON(t, req.Platform))
	}

	// 4. The incremental evaluator agrees with the naive reference on the
	// finished deployment and on a speculative what-if.
	inc := core.NewEvaluator(req.Costs, req.Platform.Bandwidth, req.Wapp)
	naive := core.NewNaiveEvaluator(req.Costs, req.Platform.Bandwidth, req.Wapp)
	core.LoadHierarchy(inc, hp.Hierarchy)
	core.LoadHierarchy(naive, hp.Hierarchy)
	is, iv := inc.Eval()
	ns, nv := naive.Eval()
	if !relClose(is, ns, 1e-9) || !relClose(iv, nv, 1e-9) {
		t.Errorf("%s: evaluators disagree: incremental (%.12g, %.12g) vs naive (%.12g, %.12g)", label, is, iv, ns, nv)
	}
	if !relClose(is, hp.Eval.Sched, 1e-9) || !relClose(iv, hp.Eval.Service, 1e-9) {
		t.Errorf("%s: evaluator (%.12g, %.12g) disagrees with model (%.12g, %.12g)", label, is, iv, hp.Eval.Sched, hp.Eval.Service)
	}
	root := hp.Hierarchy.Root()
	probeNode := req.Platform.Nodes[len(req.Platform.Nodes)/2]
	probe, probeBW := probeNode.Power, probeNode.LinkBandwidth
	if !relClose(inc.RhoAfterAttach(root, probe, probeBW), naive.RhoAfterAttach(root, probe, probeBW), 1e-9) {
		t.Errorf("%s: RhoAfterAttach disagrees: %.12g vs %.12g", label, inc.RhoAfterAttach(root, probe, probeBW), naive.RhoAfterAttach(root, probe, probeBW))
	}

	// 5. Planning through the naive evaluator yields the same throughput.
	np, err := core.NewHeuristicNaive().Plan(req)
	if err != nil {
		t.Fatalf("%s: naive heuristic: %v", label, err)
	}
	if !relClose(np.Eval.Rho, hp.Eval.Rho, 1e-9) {
		t.Errorf("%s: naive-evaluator plan rho %.12g != incremental %.12g", label, np.Eval.Rho, hp.Eval.Rho)
	}

	// 6. The swap refiner never loses throughput.
	rp, err := (&core.SwapRefiner{Inner: core.NewHeuristic()}).Plan(req)
	if err != nil {
		t.Fatalf("%s: swap: %v", label, err)
	}
	if rp.Capped < hp.Capped {
		t.Errorf("%s: swap-refined capped %.9g below plain %.9g", label, rp.Capped, hp.Capped)
	}

	// 7. Class-collapse invariants: expand(collapse(pool)) preserves the
	// spec multiset, and the forced class-space planner agrees with the
	// node-space planner (1e-9 on throughput; bit-identical XML whenever
	// class planning engages or the pool repeats specs).
	checkClassRoundTrip(t, req.Platform.Nodes, label)
	classVsNode(t, req, label)
}

func platformJSON(t *testing.T, p *platform.Platform) string {
	t.Helper()
	data, err := p.MarshalIndent()
	if err != nil {
		return err.Error()
	}
	return string(data)
}

// applyLinkPattern mutates the platform's per-node link bandwidths by one
// of four deterministic patterns, so the fuzz battery covers heterogeneous
// links without a second generation pass:
//
//	0: untouched (whatever the scenario family generated — the two
//	   heterogeneous-link families arrive with links already set);
//	1: every other node dropped to B/8 (a half-slow pool);
//	2: three link classes round-robin (default, B/2, B/16);
//	3: every node explicitly pinned to B — semantically uniform, but
//	   through the explicit-override code path.
func applyLinkPattern(plat *platform.Platform, linkSel uint8) {
	b := plat.Bandwidth
	switch linkSel % 4 {
	case 0:
	case 1:
		for i := range plat.Nodes {
			if i%2 == 1 {
				plat.Nodes[i].LinkBandwidth = b / 8
			}
		}
	case 2:
		classes := []float64{0, b / 2, b / 16}
		for i := range plat.Nodes {
			plat.Nodes[i].LinkBandwidth = classes[i%3]
		}
	case 3:
		for i := range plat.Nodes {
			plat.Nodes[i].LinkBandwidth = b
		}
	}
}

// applyPowerPattern mutates node powers by one of four deterministic
// patterns, so the fuzz battery exercises the class-collapse boundaries
// (spec bucketing is exact on float64 bits — see core.ClassIndex):
//
//	0: untouched (continuous draws — usually all-distinct specs);
//	1: homogenised — every node gets node 0's power (a single class);
//	2: snapped to at most 6 evenly spaced levels (duplicated specs);
//	3: near-duplicates — each odd node one ulp above its even
//	   predecessor (distinct classes a single bit apart).
func applyPowerPattern(plat *platform.Platform, powSel uint8) {
	switch powSel % 4 {
	case 0:
	case 1:
		w := plat.Nodes[0].Power
		for i := range plat.Nodes {
			plat.Nodes[i].Power = w
		}
	case 2:
		lo, hi := plat.Nodes[0].Power, plat.Nodes[0].Power
		for _, n := range plat.Nodes {
			lo, hi = math.Min(lo, n.Power), math.Max(hi, n.Power)
		}
		if lo == hi {
			return
		}
		step := (hi - lo) / 5
		for i := range plat.Nodes {
			plat.Nodes[i].Power = lo + math.Round((plat.Nodes[i].Power-lo)/step)*step
		}
	case 3:
		for i := 1; i < len(plat.Nodes); i += 2 {
			plat.Nodes[i].Power = math.Nextafter(plat.Nodes[i-1].Power, math.Inf(1))
		}
	}
}

// fuzzRequest decodes raw fuzz inputs into a planning request over a
// scenario-family platform. ok is false for inputs outside the model's
// domain (they are skipped, not failures). linkSel's low two bits select
// the per-node link-bandwidth mutation (applyLinkPattern); its next two
// bits select the power mutation (applyPowerPattern), so the checked-in
// corpus keeps its meaning while new seeds reach the class boundaries.
func fuzzRequest(familyIdx, nRaw uint8, seed, wappMilli, demandMilli int64, bwSel, linkSel uint8) (core.Request, bool) {
	families := scenario.Families()
	spec := scenario.Spec{
		Family:    families[int(familyIdx)%len(families)],
		N:         2 + int(nRaw)%63,
		Bandwidth: []float64{10, 100, 1000}[int(bwSel)%3],
		Seed:      seed,
	}
	plat, err := spec.Generate()
	if err != nil {
		return core.Request{}, false
	}
	applyPowerPattern(plat, linkSel>>2)
	applyLinkPattern(plat, linkSel)
	wapp := float64(wappMilli) / 1000
	if wapp < 0 {
		wapp = -wapp
	}
	if wapp < 0.05 || wapp > 1e5 {
		return core.Request{}, false
	}
	var demand workload.Demand
	if demandMilli > 0 {
		demand = workload.Demand(float64(demandMilli) / 1000)
		if float64(demand) > 1e7 {
			return core.Request{}, false
		}
	}
	req := core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     wapp,
		Demand:   demand,
	}
	return req, req.Validate() == nil
}

// FuzzPlanInvariants fuzzes the planner over every scenario family: any
// input that produces a valid request must satisfy the full invariant
// battery (plan validity, ρ = min law, star dominance, incremental-vs-
// naive evaluator agreement to 1e-9, swap-refiner monotonicity). The
// linkSel input mutates per-node link bandwidths, so the battery holds
// under heterogeneous links too.
func FuzzPlanInvariants(f *testing.F) {
	// One seed per family plus demand/bandwidth/Wapp/link corners; the
	// checked-in corpus under testdata/fuzz extends these.
	f.Add(uint8(0), uint8(10), int64(1), int64(59582), int64(0), uint8(1), uint8(0))
	f.Add(uint8(1), uint8(30), int64(2), int64(2000000), int64(0), uint8(0), uint8(1))
	f.Add(uint8(2), uint8(61), int64(3), int64(59582), int64(150000), uint8(2), uint8(2))
	f.Add(uint8(3), uint8(5), int64(4), int64(1333330), int64(0), uint8(1), uint8(3))
	f.Add(uint8(4), uint8(0), int64(5), int64(59582), int64(25000), uint8(1), uint8(0))
	f.Add(uint8(5), uint8(24), int64(6), int64(59582), int64(0), uint8(1), uint8(0))
	f.Add(uint8(6), uint8(40), int64(7), int64(1333330), int64(0), uint8(1), uint8(0))
	// Class-boundary seeds: homogenised, level-snapped (duplicated-spec),
	// and ±1-ulp near-duplicate power patterns (linkSel bits 2–3).
	f.Add(uint8(3), uint8(50), int64(8), int64(59582), int64(0), uint8(1), uint8(1<<2))
	f.Add(uint8(5), uint8(60), int64(9), int64(1333330), int64(0), uint8(0), uint8(2<<2|2))
	f.Add(uint8(2), uint8(33), int64(10), int64(59582), int64(40000), uint8(1), uint8(3<<2))
	f.Fuzz(func(t *testing.T, familyIdx, nRaw uint8, seed, wappMilli, demandMilli int64, bwSel, linkSel uint8) {
		req, ok := fuzzRequest(familyIdx, nRaw, seed, wappMilli, demandMilli, bwSel, linkSel)
		if !ok {
			t.Skip()
		}
		planInvariants(t, req, "fuzz")
	})
}

// TestPlanInvariantsAcrossCorpus is the deterministic table-driven twin of
// the fuzz target: the full scenario corpus at two workload sizes.
func TestPlanInvariantsAcrossCorpus(t *testing.T) {
	for _, spec := range scenario.Corpus(23) {
		plat, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, dgemm := range []int{100, 1000} {
			req := core.Request{
				Platform: plat,
				Costs:    model.DIETDefaults(),
				Wapp:     workload.DGEMM{N: dgemm}.MFlop(),
			}
			planInvariants(t, req, string(spec.Family))
		}
	}
}
