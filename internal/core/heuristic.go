package core

import (
	"context"
	"fmt"
	"math"

	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/obs"
	"adept/internal/platform"
)

// Heuristic implements Algorithm 1 of the paper: middleware deployment
// planning for heterogeneous nodes — generalised here to heterogeneous
// links as well. Every scheduling/servicing power is computed at the
// node's own link bandwidth (platform.Node.LinkBandwidth, defaulting to
// the platform-wide B), so on multi-cluster grids the sort of Steps 1–2
// drafts agents from nodes with fast local links instead of powerful
// nodes stranded behind slow WAN uplinks. With uniform links every
// computation collapses to the paper's original form, bit for bit.
//
// The pseudo-code in the paper is informal; this implementation keeps its
// macro structure and procedure vocabulary (see procedures.go) and documents
// every interpretation decision:
//
//  1. Nodes are sorted by scheduling power computed against the whole pool
//     (sort_nodes, Steps 1–2). The head of the list becomes the root agent.
//  2. Steps 3–7: if even with a single child the root's scheduling power is
//     below min(single-server servicing power, client demand), the
//     deployment is one agent and one server — any further server would only
//     lower scheduling power.
//  3. Otherwise the hierarchy grows greedily, taking nodes from the sorted
//     list one at a time (Steps 10–38). Each new node is attached as a
//     server under the agent that maximises the resulting demand-capped
//     throughput. When no attachment improves throughput but scheduling
//     power still exceeds servicing power, the most powerful leaf server
//     whose supported_children count exceeds one is converted into an agent
//     (shift_nodes, Steps 16–17) so that growth can continue one level
//     deeper.
//  4. Growth stops when the pool is exhausted, the client demand is met, or
//     throughput starts decreasing (outer while, Step 10). The best
//     deployment snapshot seen is returned (the paper's Steps 28–34 remove
//     the overshooting child; reverting to the best snapshot generalises
//     that trim).
//
// The returned deployment always satisfies the paper's shape invariants
// (hierarchy.Final) and uses the fewest nodes among the snapshots achieving
// the best capped throughput.
//
// Scaling: the growth loop plans through a PlacementEvaluator, so one
// placement step costs O(log n) instead of the Θ(n) model sweep of a naive
// implementation, and the best deployment is recorded as a growth-op count
// and replayed at the end instead of being cloned per improvement. The three
// placement passes are driven by lazy heaps (gated slack, promotion power)
// that reproduce the paper's linear scans bit-for-bit, including their
// tie-breaking towards lower node IDs.
//
// Two further levers make million-node pools plannable in under a second:
// the O(n) candidate scans (sort keys, best-star, one-agent/one-server)
// shard across GOMAXPROCS with index-tie-broken merges (parscan.go), and
// pools whose nodes repeat a small set of (power, link) specs collapse to
// spec equivalence classes and plan in class space (classindex.go,
// heuristic_class.go). Both are bit-transparent: parallel scans merge to
// the sequential result exactly, and class planning engages only when it
// can reproduce node-space decisions (falling back on sort-key collisions).
type Heuristic struct {
	// naive, when set, plans through the Θ(n)-per-query NaiveEvaluator.
	// Kept for benchmarks and the property tests that pin the incremental
	// evaluator to the reference; NewHeuristic always builds the fast one.
	naive bool
	// mode selects between node-space and class-collapsed planning.
	mode poolMode
}

// poolMode selects how PlanContext treats the node pool.
type poolMode int

const (
	// poolAuto plans in class space when the pool is large and compresses
	// well (see classMinNodes, classMinCompression), node space otherwise.
	poolAuto poolMode = iota
	// poolNodesOnly always plans over concrete nodes.
	poolNodesOnly
	// poolClassesOnly always plans over spec classes (still falling back to
	// node space on a sort-key collision between distinct classes).
	poolClassesOnly
)

// Auto-mode thresholds: class planning engages at classMinNodes nodes when
// the pool has at most n/classMinCompression distinct specs. Below the node
// floor the node-space planner finishes in microseconds anyway; above it,
// the capped index build keeps the probe O(n/classMinCompression) on
// incompressible pools.
const (
	classMinNodes       = 4096
	classMinCompression = 8
)

// NewHeuristic returns the Algorithm 1 planner backed by the incremental
// evaluator, collapsing large spec-repetitive pools to equivalence classes
// automatically.
func NewHeuristic() *Heuristic { return &Heuristic{} }

// NewHeuristicNaive returns the Algorithm 1 planner backed by the
// full-recompute NaiveEvaluator: the pre-incremental cost profile, retained
// as the benchmark and property-test reference. It produces the same
// deployments as NewHeuristic. Plans in node space only.
func NewHeuristicNaive() *Heuristic { return &Heuristic{naive: true, mode: poolNodesOnly} }

// NewHeuristicNodeSpace returns the planner pinned to node-space planning:
// the class collapse never engages. The differential battery uses it as the
// reference side.
func NewHeuristicNodeSpace() *Heuristic { return &Heuristic{mode: poolNodesOnly} }

// NewHeuristicClassSpace returns the planner pinned to class-collapsed
// planning regardless of pool size or compressibility (it still degrades to
// node space when distinct classes share a sort key, which class blocks
// cannot represent). The differential battery uses it as the subject side.
func NewHeuristicClassSpace() *Heuristic { return &Heuristic{mode: poolClassesOnly} }

// Name implements Planner.
func (*Heuristic) Name() string { return "heuristic" }

// Plan implements Planner.
//
//adeptvet:allow ctxflow context-free convenience wrapper; callers that want cancellation use PlanContext
func (p *Heuristic) Plan(req Request) (*Plan, error) {
	return p.PlanContext(context.Background(), req)
}

// newEvaluator builds the placement evaluator this planner variant uses.
func (p *Heuristic) newEvaluator(req Request) PlacementEvaluator {
	if p.naive {
		return NewNaiveEvaluator(req.Costs, req.Platform.Bandwidth, req.Wapp)
	}
	return NewEvaluator(req.Costs, req.Platform.Bandwidth, req.Wapp)
}

// classIndexFor decides whether this plan runs in class space and, if so,
// builds the index. nil means node space.
func (p *Heuristic) classIndexFor(req Request) *ClassIndex {
	nodes := req.Platform.Nodes
	switch p.mode {
	case poolNodesOnly:
		return nil
	case poolClassesOnly:
		return BuildClassIndex(nodes)
	default:
		if len(nodes) < classMinNodes {
			return nil
		}
		return buildClassIndexCapped(nodes, len(nodes)/classMinCompression)
	}
}

// poolSource is the growth loop's view of the sorted non-root pool: node i
// in sort order, on demand. The node path wraps the sorted slice; the class
// path materialises nodes lazily from the class expansion.
type poolSource interface {
	at(i int) platform.Node
	size() int
}

// slicePool adapts a sorted node slice to poolSource.
type slicePool []platform.Node

func (s slicePool) at(i int) platform.Node { return s[i] }
func (s slicePool) size() int              { return len(s) }

// growthOp is one recorded growth decision: attach pool node poolIdx under
// agent parent, or promote node id to an agent. The best deployment is a
// prefix of the op log, replayed after growth ends.
type growthOp struct {
	promote bool
	parent  int // attach: parent agent hierarchy ID
	poolIdx int // attach: index into the sorted pool
	id      int // promote: hierarchy ID of the promoted server
}

// growth is the planner's working state: the hierarchy under construction,
// its evaluator mirror, and the heap-backed placement indexes.
type growth struct {
	req      Request
	h        *hierarchy.Hierarchy
	ev       PlacementEvaluator
	target   float64
	pool     poolSource // sorted non-root pool
	poolSize int

	nodes    []evalNode // driver mirror: role/degree/power/stamp per hierarchy ID
	gateCap  []int      // per-ID supported_children at the target rate (agents)
	agentIDs []int      // live agent IDs, ascending (pass-3 scan order)

	// deficient counts non-root agents with fewer than two children: zero
	// means the current tree satisfies hierarchy.Final without an O(n) walk.
	deficient int

	open  lazyHeap // max-heap: gated agents by scheduling slack with one more child
	promo lazyHeap // max-heap: promotable servers by power

	ops []growthOp

	// stats counts the work done, flushed into the plan trace (when one
	// is attached) after growth ends. Plain ints: growth runs on one
	// goroutine, and counting must cost nothing when tracing is off.
	stats struct {
		iterations     int64 // growth-loop passes
		candidateScans int64 // agents examined by ungated pass-3 scans
		evaluatorOps   int64 // evaluator queries (Eval, RhoAfterAttach)
		promotions     int64 // servers converted to agents (shift_nodes)
	}
}

// bestMark is the op-log prefix of the best valid deployment seen during
// growth; the seed deployment (zero ops) is always valid.
type bestMark struct {
	ops    int
	capped float64
	nodes  int
}

func (g *growth) ensure(id int) {
	for len(g.nodes) <= id {
		g.nodes = append(g.nodes, evalNode{})
		g.gateCap = append(g.gateCap, 0)
	}
}

// registerAgent indexes a (root or promoted) agent for gated placement.
// Call only after g.target is set. The agent's own link bandwidth governs
// its supported_children count.
func (g *growth) registerAgent(id int) {
	n := &g.nodes[id]
	g.gateCap[id] = supportedChildren(g.req.Costs, n.bw, n.power, g.target, g.poolSize)
	g.pushOpen(id)
	// Binary-insert to keep pass 3 scanning agents in ascending ID order,
	// matching the hierarchy.Agents() order of the reference algorithm.
	lo, hi := 0, len(g.agentIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.agentIDs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	g.agentIDs = append(g.agentIDs, 0)
	copy(g.agentIDs[lo+1:], g.agentIDs[lo:])
	g.agentIDs[lo] = id
}

// pushOpen refreshes the agent's gated-placement heap entry when it still
// has gated capacity. The heap key is the scheduling power the agent would
// retain with one more child — the "slack" the reference scan maximised.
func (g *growth) pushOpen(id int) {
	n := &g.nodes[id]
	if n.degree >= g.gateCap[id] {
		return
	}
	slack := calcSchPow(g.req.Costs, n.bw, n.power, n.degree+1)
	g.open.push(heapEnt{val: slack, id: id, stamp: n.stamp})
}

// attach places pool node poolIdx as a server under parent, updating the
// hierarchy, the evaluator, and every placement index.
func (g *growth) attach(parent, poolIdx int) error {
	node := g.pool.at(poolIdx)
	id, err := g.h.AddServer(parent, node.Name, node.Power, node.LinkBandwidth)
	if err != nil {
		return err
	}
	g.ev.AddServer(id, parent, node.Power, node.LinkBandwidth)
	g.ensure(id)
	nodeBW := node.Link(g.req.Platform.Bandwidth)
	g.nodes[id] = evalNode{power: node.Power, bw: nodeBW, role: roleServer, stamp: 1}
	if g.promotable(node.Power, nodeBW) {
		g.promo.push(heapEnt{val: node.Power, id: id, stamp: 1})
	}
	p := &g.nodes[parent]
	p.degree++
	p.stamp++
	if parent != g.h.Root() && p.degree == 2 {
		g.deficient--
	}
	g.pushOpen(parent)
	g.ops = append(g.ops, growthOp{parent: parent, poolIdx: poolIdx})
	return nil
}

// promote converts server id into an agent (shift_nodes).
func (g *growth) promote(id int) error {
	if err := g.h.PromoteToAgent(id); err != nil {
		return err
	}
	g.stats.promotions++
	g.ev.Promote(id)
	n := &g.nodes[id]
	n.role, n.degree = roleAgent, 0
	n.stamp++
	g.deficient++ // zero children until the growth loop feeds it two
	g.registerAgent(id)
	g.ops = append(g.ops, growthOp{promote: true, id: id})
	return nil
}

// promotable reports whether a server of power w on a link of bandwidth bw
// can support more than one child at the target rate — the static
// eligibility test of shift_nodes (Steps 16–17). calcSchPow is monotone in
// power and bandwidth, so eligibility is a static per-node test and the
// promotion heap only ever holds candidates.
func (g *growth) promotable(w, bw float64) bool {
	if g.target <= 0 || math.IsInf(g.target, -1) {
		return true
	}
	return calcSchPow(g.req.Costs, bw, w, 2) >= g.target
}

// seedGrowth mirrors the seed deployment (root + strongest server) into a
// fresh growth state and indexes the root for gated placement. Both
// placement heaps are max-heaps: pass 1 takes the most slack, pass 2 the
// most power. Shared by the node-space and class-space paths.
func (p *Heuristic) seedGrowth(req Request, h *hierarchy.Hierarchy, target float64, pool poolSource, rootID int, root platform.Node, firstServerID int) *growth {
	bw := req.Platform.Bandwidth
	g := &growth{
		req: req, h: h, ev: p.newEvaluator(req), target: target,
		pool: pool, poolSize: pool.size(),
		open:  lazyHeap{max: true},
		promo: lazyHeap{max: true},
	}
	g.ev.AddAgent(rootID, -1, root.Power, root.LinkBandwidth)
	g.ensure(rootID)
	g.nodes[rootID] = evalNode{power: root.Power, bw: root.Link(bw), role: roleAgent, stamp: 1}
	first := pool.at(0)
	g.ev.AddServer(firstServerID, rootID, first.Power, first.LinkBandwidth)
	g.ensure(firstServerID)
	firstBW := first.Link(bw)
	g.nodes[firstServerID] = evalNode{power: first.Power, bw: firstBW, role: roleServer, stamp: 1}
	g.nodes[rootID].degree = 1
	if g.promotable(first.Power, firstBW) {
		g.promo.push(heapEnt{val: first.Power, id: firstServerID, stamp: 1})
	}
	g.registerAgent(rootID)
	return g
}

// run executes the greedy growth loop (Steps 10–38) over the seeded state,
// returning the best op-log mark seen. The context is polled once per
// iteration, so cancellation latency is one placement step. Shared by the
// node-space and class-space paths.
func (g *growth) run(ctx context.Context, name string) (bestMark, error) {
	req := g.req
	h := g.h
	tr := obs.TraceFrom(ctx)
	evalCapped := func() float64 {
		g.stats.evaluatorOps++
		sched, service := g.ev.Eval()
		return req.Demand.Cap(math.Min(sched, service))
	}
	best := bestMark{ops: 0, capped: evalCapped(), nodes: h.Len()}

	next := 1 // index of the next unused node in the pool
	endGrow := tr.Phase("grow")
	for next < g.poolSize {
		if err := CheckContext(ctx, name); err != nil {
			return best, err
		}
		g.stats.iterations++
		g.stats.evaluatorOps++
		sched, service := g.ev.Eval()
		// Demand met by both phases: stop, preferring fewer resources.
		if req.Demand.Bounded() && service >= float64(req.Demand) && sched >= float64(req.Demand) {
			break
		}
		// Balance reached: servicing power has caught up with scheduling
		// power, so additional servers cannot raise ρ.
		if service >= sched {
			break
		}

		parent, promoted, err := g.placeNext(g.poolSize - next)
		if err != nil {
			return best, err
		}
		if parent < 0 {
			break
		}
		if err := g.attach(parent, next); err != nil {
			return best, err
		}
		next++

		// A promoted agent must end with at least two children to satisfy
		// the paper's shape invariant; feed it a second server immediately
		// when available (inner while of Steps 18–24).
		if promoted && next < g.poolSize {
			if err := g.attach(parent, next); err != nil {
				return best, err
			}
			next++
		}

		if g.deficient == 0 {
			if cur := evalCapped(); cur > best.capped || (cur == best.capped && h.Len() < best.nodes) {
				best = bestMark{ops: len(g.ops), capped: cur, nodes: h.Len()}
			}
		}
	}
	endGrow()
	tr.Count("iterations", g.stats.iterations)
	tr.Count("candidate_scans", g.stats.candidateScans)
	tr.Count("evaluator_ops", g.stats.evaluatorOps)
	tr.Count("promotions", g.stats.promotions)
	return best, nil
}

// finishGrown materialises the best growth snapshot: the live hierarchy
// when it is the best, otherwise a replay of the op-log prefix (Steps 28–34
// generalised — IDs are assigned sequentially, so the replay reproduces the
// original hierarchy exactly). root and first are the seed deployment's two
// nodes. Shared by the node-space and class-space paths.
func (p *Heuristic) finishGrown(ctx context.Context, req Request, g *growth, best bestMark, root, first platform.Node) (*Plan, error) {
	if best.ops == len(g.ops) {
		return Finalize(p.Name(), req, g.h)
	}
	endReplay := obs.TraceFrom(ctx).Phase("replay")
	replay := hierarchy.New(deploymentName(req))
	replayRoot, err := replay.AddRoot(root.Name, root.Power, root.LinkBandwidth)
	if err != nil {
		return nil, err
	}
	if _, err := replay.AddServer(replayRoot, first.Name, first.Power, first.LinkBandwidth); err != nil {
		return nil, err
	}
	for _, op := range g.ops[:best.ops] {
		if op.promote {
			if err := replay.PromoteToAgent(op.id); err != nil {
				return nil, err
			}
			continue
		}
		nd := g.pool.at(op.poolIdx)
		if _, err := replay.AddServer(op.parent, nd.Name, nd.Power, nd.LinkBandwidth); err != nil {
			return nil, err
		}
	}
	endReplay()
	return Finalize(p.Name(), req, replay)
}

// PlanContext implements Planner; the context is polled once per growth
// iteration, so cancellation latency is one placement step.
func (p *Heuristic) PlanContext(ctx context.Context, req Request) (*Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Checked before the agent-limited shortcut too, so a dead context
	// never produces a plan.
	if err := CheckContext(ctx, p.Name()); err != nil {
		return nil, err
	}
	// Class-collapsed path: when the pool compresses to few spec classes
	// (or the mode forces it) and the class ranking is collision-free, plan
	// in class space. Otherwise fall through to node space.
	if ix := p.classIndexFor(req); ix != nil {
		if cs, ok := newClassSort(req.Costs, req.Platform.Bandwidth, ix); ok {
			plan, err := p.planClassed(ctx, req, cs)
			if plan != nil {
				plan.ClassPlanned = true
				plan.PoolClasses = ix.NumClasses()
			}
			return plan, err
		}
	}
	c := req.Costs
	bw := req.Platform.Bandwidth
	wapp := req.Wapp
	tr := obs.TraceFrom(ctx)
	tr.Count("pool_nodes", int64(len(req.Platform.Nodes)))
	uniform := req.Platform.HasUniformLinks()

	endSort := tr.Phase("sort_nodes")
	sorted := sortNodes(c, bw, req.Platform.Nodes)
	endSort()
	root := sorted[0]
	rootBW := root.Link(bw)
	pool := sorted[1:]

	h := hierarchy.New(deploymentName(req))
	rootID, err := h.AddRoot(root.Name, root.Power, root.LinkBandwidth)
	if err != nil {
		return nil, err
	}

	// Steps 3–5: virtual maximum scheduling power of the best node with one
	// child versus the servicing power of the best prospective server. Each
	// node's own link bandwidth enters its term.
	virMaxSchPow := calcSchPow(c, rootBW, root.Power, 1)
	virMaxSerPow := calcHierSerPow(c, pool[0].Link(bw), wapp, []float64{pool[0].Power})
	minSerCV := virMaxSerPow
	if req.Demand.Bounded() && float64(req.Demand) < minSerCV {
		minSerCV = float64(req.Demand)
	}

	firstServerID, err := h.AddServer(rootID, pool[0].Name, pool[0].Power, pool[0].LinkBandwidth)
	if err != nil {
		return nil, err
	}

	// Step 6: agent-limited shortcut — one agent, one server. Under
	// heterogeneous links the sorted head is no longer the best pair root
	// (the d = n−1 ranking punishes slow links far harder than degree 1
	// does), so the shortcut considers every pair before committing.
	if virMaxSchPow < minSerCV {
		if !uniform {
			floor := req.Demand.Cap(h.Evaluate(c, bw, wapp).Rho)
			if pr, ps, ok := bestPair(c, req, sorted, bw, floor); ok {
				tr.Set("snapshot_win", "pair")
				return buildPairNodes(p.Name(), req, sorted[pr], sorted[ps])
			}
		}
		tr.Set("snapshot_win", "seed")
		return Finalize(p.Name(), req, h)
	}

	// The target rate used for supported_children: the best servicing power
	// the pool could possibly deliver (every non-root node serving, the
	// transfer charged at the pool's slowest link), capped by the client
	// demand. Agents that cannot schedule at this rate should not be given
	// more children.
	allPowers := make([]float64, len(pool))
	parFill(len(pool), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			allPowers[i] = pool[i].Power
		}
	})
	minPoolBW := parReduce(len(pool),
		func() float64 { return math.Inf(1) },
		func(m *float64, lo, hi int) {
			for i := lo; i < hi; i++ {
				if nbw := pool[i].Link(bw); nbw < *m {
					*m = nbw
				}
			}
		},
		func(dst *float64, src float64) {
			if src < *dst {
				*dst = src
			}
		})
	target := calcHierSerPow(c, minPoolBW, wapp, allPowers)
	if req.Demand.Bounded() && float64(req.Demand) < target {
		target = float64(req.Demand)
	}
	// Service-rich regime: when even the best node cannot schedule at the
	// pool's full service rate, the target is unattainable and would block
	// all gated growth. Algorithm 1's Step 12 recomputes the virtual
	// maximum scheduling power with supported_children equal to 2; we
	// pivot the target to the root's two-child scheduling power, which
	// steers construction towards the deep low-degree trees that are
	// optimal in this regime (cf. Table 4's degree-2 row).
	if target > virMaxSchPow {
		target = calcSchPow(c, rootBW, root.Power, 2)
	}

	g := p.seedGrowth(req, h, target, slicePool(pool), rootID, root, firstServerID)
	best, err := g.run(ctx, p.Name())
	if err != nil {
		return nil, err
	}

	endSnapshots := tr.Phase("snapshots")
	// Gated growth and promotion shape deep trees and never revisit the
	// flat star; on hub-dominated platforms (one very strong node, weak
	// leaves) that star is the better deployment — promotion caps ρ_sched
	// at a weak agent's throughput long before the hub's own capacity is
	// spent. Score the full star as one more candidate snapshot (O(n),
	// computed exactly as baseline.Star's evaluation would) and take it on
	// strict improvement. This keeps the planner's predicted ρ at or above
	// the star baseline on every platform, which the fuzz harness asserts.
	starSched := calcSchPow(c, rootBW, root.Power, len(pool))
	// Under heterogeneous links the sorted pool's tail is no longer
	// guaranteed to carry the prediction minimum (the sort key mixes power
	// and link), so scan all pool nodes; on uniform platforms the loop's
	// minimum is exactly the old tail value. (Float min is associative, so
	// the sharded reduction is exact.)
	poolPredMin := parReduce(len(pool),
		func() float64 { return math.Inf(1) },
		func(m *float64, lo, hi int) {
			for i := lo; i < hi; i++ {
				if t := model.ServerPredictionThroughput(c, pool[i].Link(bw), pool[i].Power); t < *m {
					*m = t
				}
			}
		},
		func(dst *float64, src float64) {
			if src < *dst {
				*dst = src
			}
		})
	if poolPredMin < starSched {
		starSched = poolPredMin
	}
	starService := calcHierSerPow(c, minPoolBW, wapp, allPowers)
	starCapped := req.Demand.Cap(math.Min(starSched, starService))
	starRootIdx := 0 // index into sorted; 0 is the default (paper) root

	// Under heterogeneous links the best star does not necessarily root at
	// the sorted head: when service-limited, the ideal star root is the
	// node whose removal from the serving set costs least — often a weak
	// node on a fast link, freeing every strong node to serve. Score the
	// star over every root in O(n) total (power sum, then min/second-min
	// of the prediction throughputs and link bandwidths for O(1)
	// exclusion). Gated to non-uniform platforms: uniform planning keeps
	// the paper's sorted-head star bit for bit.
	if !uniform {
		totalPow := root.Power
		for _, nd := range pool {
			//adeptvet:allow floataccum fixed left-to-right fold over the sorted pool; the class twin mirrors it term for term
			totalPow += nd.Power
		}
		type starAgg struct{ pred, link min2 }
		agg := parReduce(len(sorted),
			func() starAgg { return starAgg{pred: newMin2(), link: newMin2()} },
			func(s *starAgg, lo, hi int) {
				for i := lo; i < hi; i++ {
					nbw := sorted[i].Link(bw)
					s.pred.fold(model.ServerPredictionThroughput(c, nbw, sorted[i].Power), i)
					s.link.fold(nbw, i)
				}
			},
			func(dst *starAgg, src starAgg) {
				dst.pred.mergeAfter(src.pred)
				dst.link.mergeAfter(src.link)
			})
		am := parReduce(len(sorted),
			func() argMax { return argMax{v: starCapped, i: -1} },
			func(m *argMax, lo, hi int) {
				for i := lo; i < hi; i++ {
					nd := sorted[i]
					sched := math.Min(calcSchPow(c, nd.Link(bw), nd.Power, len(sorted)-1), agg.pred.excl(i))
					service := serviceFromAggregates(c, agg.link.excl(i), wapp, len(sorted)-1, totalPow-nd.Power)
					m.fold(req.Demand.Cap(math.Min(sched, service)), i)
				}
			},
			func(dst *argMax, src argMax) { dst.mergeAfter(src) })
		if am.i >= 0 {
			starCapped, starRootIdx = am.v, am.i
		}
	}

	// Heterogeneous-links fallback: the best one-agent/one-server pair.
	// Steps 3–7's shortcut builds (sorted[0], pool[0]), which under uniform
	// links is the optimal pair (both rankings are power rankings). With
	// per-node links the optimal pair decouples — the best root is a node
	// whose *link* sustains degree 1 (agent link terms scale with degree,
	// so a modest node on the fast LAN beats a giant behind the WAN), while
	// the best server maximises min(prediction, single-server service),
	// which barely depends on its link (server messages are tiny). Both
	// rankings are root-independent, so scoring the top-two servers against
	// every root costs O(n) and recovers exactly the deployments the
	// exhaustive optimum picks on small multi-cluster pools. Taken only on
	// strict improvement over both the grown tree and the star snapshot,
	// and gated to non-uniform platforms: uniform planning stays
	// bit-identical.
	if !uniform {
		if pr, ps, ok := bestPair(c, req, sorted, bw, math.Max(best.capped, starCapped)); ok {
			endSnapshots()
			tr.Set("snapshot_win", "pair")
			return buildPairNodes(p.Name(), req, sorted[pr], sorted[ps])
		}
	}
	endSnapshots()

	if starCapped > best.capped {
		tr.Set("snapshot_win", "star")
		star := hierarchy.New(deploymentName(req))
		rootNd := sorted[starRootIdx]
		starRoot, err := star.AddRoot(rootNd.Name, rootNd.Power, rootNd.LinkBandwidth)
		if err != nil {
			return nil, err
		}
		for i, nd := range sorted {
			if i == starRootIdx {
				continue
			}
			if _, err := star.AddServer(starRoot, nd.Name, nd.Power, nd.LinkBandwidth); err != nil {
				return nil, err
			}
		}
		return Finalize(p.Name(), req, star)
	}

	tr.Set("snapshot_win", "grown")
	return p.finishGrown(ctx, req, g, best, root, pool[0])
}

// placeNext decides where the next pool node goes. It returns the parent
// agent ID and whether that parent was just promoted from a server.
// A negative parent means growth must stop.
//
// Three passes, in the spirit of Steps 15–26:
//
//  1. Gated attachment: attach under an agent whose scheduling power stays
//     at or above the target rate with one more child (supported_children).
//     Such a move never lowers the demand-capped throughput while the
//     hierarchy is scheduling-rich, and it preserves the scheduling headroom
//     a deep tree needs. The gated agents live in a max-heap keyed by that
//     retained scheduling power, so the pick is O(log n).
//  2. Promotion (shift_nodes): every agent is full at the target rate —
//     convert the most powerful leaf server that can itself support more
//     than one child into an agent and grow under it, one level deeper.
//     Eligibility is a static power threshold, so the candidates live in a
//     max-heap by power.
//  3. Ungated attachment: no agent has gated capacity and no promotion is
//     possible (the target is out of reach for every node, which happens on
//     small pools whose aggregate service power exceeds what any agent can
//     schedule). Trade scheduling power down for service power as long as
//     the move strictly improves the demand-capped throughput, evaluated
//     with one evaluator what-if per agent. (The what-ifs pop lazy-heap
//     state, so this scan must stay sequential.)
func (g *growth) placeNext(remaining int) (parent int, promoted bool, err error) {
	// Pass 1: gated attachment under the agent that keeps the most slack.
	if e, ok := g.open.peek(g.nodes, roleAgent); ok {
		return e.id, false, nil
	}

	// Pass 2 (Steps 16–17): promotion. Needs at least two pool nodes so the
	// new agent can reach the two-children invariant.
	if remaining >= 2 {
		if e, ok := g.promo.peek(g.nodes, roleServer); ok {
			if err := g.promote(e.id); err != nil {
				return -1, false, err
			}
			return e.id, true, nil
		}
	}

	// Pass 3: ungated attachment, accepted only on strict improvement. The
	// pool is sorted by scheduling power (computed at each node's own
	// link), so the next unused pool node is the strongest candidate
	// remaining under that ranking.
	g.stats.evaluatorOps++
	sched, service := g.ev.Eval()
	cur := g.req.Demand.Cap(math.Min(sched, service))
	nextNode := g.pool.at(g.poolSize - remaining)
	bestParent := -1
	bestRho := cur
	g.stats.candidateScans += int64(len(g.agentIDs))
	g.stats.evaluatorOps += int64(len(g.agentIDs))
	for _, id := range g.agentIDs {
		if rho := g.req.Demand.Cap(g.ev.RhoAfterAttach(id, nextNode.Power, nextNode.LinkBandwidth)); rho > bestRho {
			bestParent, bestRho = id, rho
		}
	}
	return bestParent, false, nil
}

func deploymentName(req Request) string {
	return fmt.Sprintf("%s-wapp%.3g", req.Platform.Name, req.Wapp)
}

// bestPair scans every one-agent/one-server pair over the sorted node
// slice and returns the (root, server) indices of the best one whose
// demand-capped ρ strictly exceeds floor. The best root is the node whose
// own link sustains degree 1 best; the best server maximises
// min(prediction throughput, lone-server servicing power) — a ranking
// independent of the root choice, so the top-two servers scored against
// every root cover all candidate pairs in O(n). Both scans shard across
// cores with index-tie-broken merges, reproducing the sequential pick
// exactly.
func bestPair(c model.Costs, req Request, sorted []platform.Node, bw float64, floor float64) (rootIdx, servIdx int, ok bool) {
	wapp := req.Wapp
	serverScore := func(nd platform.Node) float64 {
		nbw := nd.Link(bw)
		return math.Min(model.ServerPredictionThroughput(c, nbw, nd.Power),
			calcHierSerPow(c, nbw, wapp, []float64{nd.Power}))
	}
	top := parReduce(len(sorted), newTop2,
		func(m *top2, lo, hi int) {
			for i := lo; i < hi; i++ {
				m.fold(serverScore(sorted[i]), i)
			}
		},
		func(dst *top2, src top2) { dst.mergeAfter(src) })
	s1, s2 := top.i1, top.i2
	am := parReduce(len(sorted),
		func() argMax { return argMax{v: floor, i: -1} },
		func(m *argMax, lo, hi int) {
			for i := lo; i < hi; i++ {
				srv, sv := s1, top.v1
				if i == s1 {
					srv, sv = s2, top.v2
				}
				if srv < 0 {
					continue
				}
				nd := sorted[i]
				rho := math.Min(calcSchPow(c, nd.Link(bw), nd.Power, 1), sv)
				m.fold(req.Demand.Cap(rho), i)
			}
		},
		func(dst *argMax, src argMax) { dst.mergeAfter(src) })
	if am.i < 0 {
		return -1, -1, false
	}
	servIdx = s1
	if am.i == s1 {
		servIdx = s2
	}
	return am.i, servIdx, true
}

// buildPairNodes materialises and finalises a one-agent/one-server
// deployment from concrete nodes. Shared by the node-space and class-space
// pair scans.
func buildPairNodes(name string, req Request, root, serv platform.Node) (*Plan, error) {
	pair := hierarchy.New(deploymentName(req))
	pairRoot, err := pair.AddRoot(root.Name, root.Power, root.LinkBandwidth)
	if err != nil {
		return nil, err
	}
	if _, err := pair.AddServer(pairRoot, serv.Name, serv.Power, serv.LinkBandwidth); err != nil {
		return nil, err
	}
	return Finalize(name, req, pair)
}
