package core

import (
	"context"
	"fmt"
	"math"

	"adept/internal/hierarchy"
	"adept/internal/model"
)

// Heuristic implements Algorithm 1 of the paper: middleware deployment
// planning for heterogeneous nodes with homogeneous links.
//
// The pseudo-code in the paper is informal; this implementation keeps its
// macro structure and procedure vocabulary (see procedures.go) and documents
// every interpretation decision:
//
//  1. Nodes are sorted by scheduling power computed against the whole pool
//     (sort_nodes, Steps 1–2). The head of the list becomes the root agent.
//  2. Steps 3–7: if even with a single child the root's scheduling power is
//     below min(single-server servicing power, client demand), the
//     deployment is one agent and one server — any further server would only
//     lower scheduling power.
//  3. Otherwise the hierarchy grows greedily, taking nodes from the sorted
//     list one at a time (Steps 10–38). Each new node is attached as a
//     server under the agent that maximises the resulting demand-capped
//     throughput. When no attachment improves throughput but scheduling
//     power still exceeds servicing power, the most powerful leaf server
//     whose supported_children count exceeds one is converted into an agent
//     (shift_nodes, Steps 16–17) so that growth can continue one level
//     deeper.
//  4. Growth stops when the pool is exhausted, the client demand is met, or
//     throughput starts decreasing (outer while, Step 10). The best
//     deployment snapshot seen is returned (the paper's Steps 28–34 remove
//     the overshooting child; reverting to the best snapshot generalises
//     that trim).
//
// The returned deployment always satisfies the paper's shape invariants
// (hierarchy.Final) and uses the fewest nodes among the snapshots achieving
// the best capped throughput.
type Heuristic struct{}

// NewHeuristic returns the Algorithm 1 planner.
func NewHeuristic() *Heuristic { return &Heuristic{} }

// Name implements Planner.
func (*Heuristic) Name() string { return "heuristic" }

// snapshot captures the best deployment seen during growth.
type snapshot struct {
	hier   *hierarchy.Hierarchy
	capped float64
	nodes  int
}

// Plan implements Planner.
func (p *Heuristic) Plan(req Request) (*Plan, error) {
	return p.PlanContext(context.Background(), req)
}

// PlanContext implements Planner; the context is polled once per growth
// iteration, so cancellation latency is one placement step.
func (p *Heuristic) PlanContext(ctx context.Context, req Request) (*Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Checked before the agent-limited shortcut too, so a dead context
	// never produces a plan.
	if err := CheckContext(ctx, p.Name()); err != nil {
		return nil, err
	}
	c := req.Costs
	bw := req.Platform.Bandwidth
	wapp := req.Wapp

	sorted := sortNodes(c, bw, req.Platform.Nodes)
	root := sorted[0]
	pool := sorted[1:]

	h := hierarchy.New(deploymentName(req))
	rootID, err := h.AddRoot(root.Name, root.Power)
	if err != nil {
		return nil, err
	}

	// Steps 3–5: virtual maximum scheduling power of the best node with one
	// child versus the servicing power of the best prospective server.
	virMaxSchPow := calcSchPow(c, bw, root.Power, 1)
	virMaxSerPow := calcHierSerPow(c, bw, wapp, []float64{pool[0].Power})
	minSerCV := virMaxSerPow
	if req.Demand.Bounded() && float64(req.Demand) < minSerCV {
		minSerCV = float64(req.Demand)
	}

	if _, err := h.AddServer(rootID, pool[0].Name, pool[0].Power); err != nil {
		return nil, err
	}
	next := 1 // index of the next unused node in pool

	// Step 6: agent-limited shortcut — one agent, one server.
	if virMaxSchPow < minSerCV {
		return Finalize(p.Name(), req, h)
	}

	// The target rate used for supported_children: the best servicing power
	// the pool could possibly deliver (every non-root node serving), capped
	// by the client demand. Agents that cannot schedule at this rate should
	// not be given more children.
	allPowers := make([]float64, len(pool))
	for i, n := range pool {
		allPowers[i] = n.Power
	}
	target := calcHierSerPow(c, bw, wapp, allPowers)
	if req.Demand.Bounded() && float64(req.Demand) < target {
		target = float64(req.Demand)
	}
	// Service-rich regime: when even the best node cannot schedule at the
	// pool's full service rate, the target is unattainable and would block
	// all gated growth. Algorithm 1's Step 12 recomputes the virtual
	// maximum scheduling power with supported_children equal to 2; we
	// pivot the target to the root's two-child scheduling power, which
	// steers construction towards the deep low-degree trees that are
	// optimal in this regime (cf. Table 4's degree-2 row).
	if target > virMaxSchPow {
		target = calcSchPow(c, bw, root.Power, 2)
	}

	best := snapshot{hier: h.Clone(), capped: cappedRho(req, h), nodes: h.Len()}

	for next < len(pool) {
		if err := CheckContext(ctx, p.Name()); err != nil {
			return nil, err
		}
		ev := h.Evaluate(c, bw, wapp)
		// Demand met by both phases: stop, preferring fewer resources.
		if req.Demand.Bounded() && ev.Service >= float64(req.Demand) && ev.Sched >= float64(req.Demand) {
			break
		}
		// Balance reached: servicing power has caught up with scheduling
		// power, so additional servers cannot raise ρ.
		if ev.Service >= ev.Sched {
			break
		}

		node := pool[next]
		parent, promoted := p.placeNext(req, h, target, len(pool)-next)
		if parent < 0 {
			break
		}
		if _, err := h.AddServer(parent, node.Name, node.Power); err != nil {
			return nil, err
		}
		next++

		// A promoted agent must end with at least two children to satisfy
		// the paper's shape invariant; feed it a second server immediately
		// when available (inner while of Steps 18–24).
		if promoted && next < len(pool) {
			n2 := pool[next]
			if _, err := h.AddServer(parent, n2.Name, n2.Power); err != nil {
				return nil, err
			}
			next++
		}

		if cur := cappedRho(req, h); h.Validate(hierarchy.Final) == nil {
			if cur > best.capped || (cur == best.capped && h.Len() < best.nodes) {
				best = snapshot{hier: h.Clone(), capped: cur, nodes: h.Len()}
			}
		}
	}

	// Steps 28–34 generalised: revert to the best deployment seen.
	return Finalize(p.Name(), req, best.hier)
}

// placeNext decides where the next pool node goes. It returns the parent
// agent ID and whether that parent was just promoted from a server.
// A negative parent means growth must stop.
//
// Three passes, in the spirit of Steps 15–26:
//
//  1. Gated attachment: attach under an agent whose scheduling power stays
//     at or above the target rate with one more child (supported_children).
//     Such a move never lowers the demand-capped throughput while the
//     hierarchy is scheduling-rich, and it preserves the scheduling headroom
//     a deep tree needs.
//  2. Promotion (shift_nodes): every agent is full at the target rate —
//     convert the most powerful leaf server that can itself support more
//     than one child into an agent and grow under it, one level deeper.
//  3. Ungated attachment: no agent has gated capacity and no promotion is
//     possible (the target is out of reach for every node, which happens on
//     small pools whose aggregate service power exceeds what any agent can
//     schedule). Trade scheduling power down for service power as long as
//     the move strictly improves the demand-capped throughput.
func (p *Heuristic) placeNext(req Request, h *hierarchy.Hierarchy, target float64, remaining int) (parent int, promoted bool) {
	c, bw := req.Costs, req.Platform.Bandwidth
	cur := cappedRho(req, h)

	// Pass 1: gated attachment under the agent that keeps the most slack.
	bestParent := -1
	bestSlack := math.Inf(-1)
	for _, id := range h.Agents() {
		a := h.MustNode(id)
		d := len(a.Children)
		if supportedChildren(c, bw, a.Power, target, remaining+d) <= d {
			continue // one more child would sink this agent below target
		}
		slack := calcSchPow(c, bw, a.Power, d+1)
		if slack > bestSlack {
			bestParent, bestSlack = id, slack
		}
	}
	if bestParent >= 0 {
		return bestParent, false
	}

	// Pass 2 (Steps 16–17): promotion. Needs at least two pool nodes so the
	// new agent can reach the two-children invariant.
	if remaining >= 2 {
		promoteID := -1
		var promotePower float64
		for _, id := range h.Servers() {
			s := h.MustNode(id)
			if supportedChildren(c, bw, s.Power, target, remaining) > 1 && s.Power > promotePower {
				promoteID, promotePower = id, s.Power
			}
		}
		if promoteID >= 0 {
			if err := h.PromoteToAgent(promoteID); err == nil {
				return promoteID, true
			}
		}
	}

	// Pass 3: ungated attachment, accepted only on strict improvement.
	bestParent = -1
	bestRho := cur
	for _, id := range h.Agents() {
		if rho := rhoAfterAdd(req, h, id); rho > bestRho {
			bestParent, bestRho = id, rho
		}
	}
	return bestParent, false
}

// rhoAfterAdd evaluates the demand-capped throughput the hierarchy would
// have after attaching one more (not yet chosen) server of the next pool
// node's power under agent id. The server's own power matters only through
// the service term and its prediction throughput; both are evaluated on a
// cheap copy of the model inputs rather than by mutating the hierarchy.
func rhoAfterAdd(req Request, h *hierarchy.Hierarchy, agentID int) float64 {
	c, bw, wapp := req.Costs, req.Platform.Bandwidth, req.Wapp
	agents := h.ModelAgents()
	// Agents() and ModelAgents() enumerate in the same (ID) order.
	for i, id := range h.Agents() {
		if id == agentID {
			agents[i].Degree++
			break
		}
	}
	powers := h.ServerPowers()
	powers = append(powers, nextPoolPower(req, h))
	ev := model.Evaluate(c, bw, wapp, agents, powers)
	return req.Demand.Cap(ev.Rho)
}

// nextPoolPower returns the power of the strongest platform node not yet
// deployed, which is exactly the node the growth loop will attach next
// (pool order is sorted by scheduling power, which is monotone in power).
func nextPoolPower(req Request, h *hierarchy.Hierarchy) float64 {
	used := make(map[string]bool, h.Len())
	for _, n := range h.Nodes() {
		used[n.Name] = true
	}
	best := 0.0
	for _, n := range req.Platform.Nodes {
		if !used[n.Name] && n.Power > best {
			best = n.Power
		}
	}
	return best
}

// cappedRho evaluates the hierarchy and caps ρ by the client demand.
func cappedRho(req Request, h *hierarchy.Hierarchy) float64 {
	ev := h.Evaluate(req.Costs, req.Platform.Bandwidth, req.Wapp)
	return req.Demand.Cap(ev.Rho)
}

func deploymentName(req Request) string {
	return fmt.Sprintf("%s-wapp%.3g", req.Platform.Name, req.Wapp)
}
