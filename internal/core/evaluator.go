package core

import (
	"math"

	"adept/internal/hierarchy"
	"adept/internal/model"
)

// PlacementEvaluator is the throughput-evaluation engine a planner drives
// while it grows or mutates a deployment. It mirrors the deployment state
// (who is an agent, who is a server, degrees, backing powers) and answers
// the two question families every planner hot loop asks:
//
//   - Eval: the current ρ_sched / ρ_service of the mirrored deployment;
//   - what-ifs (RhoAfter*): the demand-uncapped ρ the deployment would have
//     after a speculative placement or node swap, WITHOUT mutating state.
//
// Node ids are the caller's dense identifiers (hierarchy node IDs for the
// growth planners, pool indices for enumerators). Two implementations
// exist: the incremental Evaluator (O(1)–O(log n) per operation, the
// production engine) and the NaiveEvaluator reference (full recompute per
// query, the pre-refactor cost profile) retained for property/fuzz tests
// and benchmarks.
// Per-node link bandwidths: every placement primitive carries the backing
// node's link bandwidth alongside its power (zero = the platform default
// handed to the constructor), so deployments over multi-cluster platforms
// evaluate each node's communication terms at its own link speed.
type PlacementEvaluator interface {
	// AddAgent registers node id as an agent with no children yet. parent
	// is the agent's parent id, or -1 for the root; the parent's degree is
	// incremented.
	AddAgent(id, parent int, power, linkBW float64)
	// AddServer registers node id as a server leaf under parent, whose
	// degree is incremented.
	AddServer(id, parent int, power, linkBW float64)
	// Promote converts server id into a childless agent (shift_nodes).
	Promote(id int)
	// SetBacking re-backs node id with a different physical node (the swap
	// refiner's primitive), keeping its role and degree.
	SetBacking(id int, power, linkBW float64)
	// Eval returns the current ρ_sched and ρ_service (Eqs. 14–15);
	// ρ = min of the two. A deployment with no servers evaluates to (0, 0),
	// matching model.Evaluate.
	Eval() (sched, service float64)
	// RhoAfterAttach returns the ρ the deployment would have with one more
	// server of the given power and link attached under agent parent.
	RhoAfterAttach(parent int, power, linkBW float64) float64
	// RhoAfterReback returns the ρ the deployment would have with agent id
	// re-backed by a node of the given power and link (the old backing
	// leaves).
	RhoAfterReback(agentID int, power, linkBW float64) float64
	// RhoAfterSwap returns the ρ the deployment would have after agent and
	// server exchange backing nodes (powers and links travel together).
	RhoAfterSwap(agentID, serverID int) float64
	// RhoAfterDrop returns the ρ the deployment would have with server id
	// removed from under parent (weak servers can lower ρ: each one pays
	// the Wpre prediction cost and may carry the prediction bottleneck).
	RhoAfterDrop(serverID, parentID int) float64
	// Reset clears all state, retaining capacity for reuse.
	Reset()
}

// roleNone/roleAgent/roleServer track what each id currently is.
const (
	roleNone int8 = iota
	roleAgent
	roleServer
)

// evalNode is the per-id state shared by both evaluator implementations.
// bw is the node's *resolved* link bandwidth (the zero override already
// replaced by the platform default at registration).
type evalNode struct {
	power  float64
	bw     float64
	degree int
	role   int8
	stamp  uint32 // bumped on every change; stale heap entries self-invalidate
}

// serviceFromAggregates computes ρ_service (Eq. 15) from the server count
// and power sum alone — the aggregate form of model.ServiceThroughput:
//
//	1 / (Srx + Stx + (1 + n·Wpre/Wapp) / (Σw/Wapp))
//
// This is what makes the service term O(1) under incremental maintenance.
// bandwidth is the link the service transfer is charged at: under
// heterogeneous links, the *minimum* server link bandwidth of the set
// (matching model.ServiceThroughputLinks).
//
//adeptvet:hotpath
func serviceFromAggregates(c model.Costs, bandwidth, wapp float64, n int, sum float64) float64 {
	if n == 0 {
		return 0
	}
	comp := (1 + float64(n)*(c.ServerWpre/wapp)) / (sum / wapp)
	t := model.ServerReceiveTime(c, bandwidth) + model.ServerSendTime(c, bandwidth) + comp
	return 1 / t
}

// heapEnt is one lazy heap entry: a cached key for node id, valid only
// while the node's stamp still matches.
type heapEnt struct {
	val   float64
	id    int
	stamp uint32
}

// lazyHeap is a binary heap of heapEnt with lazy invalidation: mutators
// push fresh entries instead of updating in place, and queries discard
// entries whose stamp no longer matches the node table. max selects
// max-heap order; ties always break towards the smaller id so heap-driven
// planners reproduce the tie-breaking of the linear scans they replace.
type lazyHeap struct {
	ents []heapEnt
	max  bool
}

func (h *lazyHeap) less(a, b heapEnt) bool {
	if a.val != b.val {
		if h.max {
			return a.val > b.val
		}
		return a.val < b.val
	}
	return a.id < b.id
}

//adeptvet:hotpath
func (h *lazyHeap) push(e heapEnt) {
	h.ents = append(h.ents, e)
	i := len(h.ents) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.ents[i], h.ents[p]) {
			break
		}
		h.ents[i], h.ents[p] = h.ents[p], h.ents[i]
		i = p
	}
}

//adeptvet:hotpath
func (h *lazyHeap) pop() heapEnt {
	top := h.ents[0]
	last := len(h.ents) - 1
	h.ents[0] = h.ents[last]
	h.ents = h.ents[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(h.ents[l], h.ents[small]) {
			small = l
		}
		if r < last && h.less(h.ents[r], h.ents[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.ents[i], h.ents[small] = h.ents[small], h.ents[i]
		i = small
	}
	return top
}

// peek returns the best live entry, permanently discarding stale ones.
// ok is false when the heap holds no live entry.
//
//adeptvet:hotpath
func (h *lazyHeap) peek(nodes []evalNode, role int8) (heapEnt, bool) {
	for len(h.ents) > 0 {
		e := h.ents[0]
		if nodes[e.id].stamp == e.stamp && nodes[e.id].role == role {
			return e, true
		}
		h.pop()
	}
	return heapEnt{}, false
}

// peekExcluding returns the best live entry whose id differs from skip.
//
//adeptvet:hotpath
func (h *lazyHeap) peekExcluding(nodes []evalNode, role int8, skip int) (heapEnt, bool) {
	e, ok := h.peek(nodes, role)
	if !ok || e.id != skip {
		return e, ok
	}
	top := h.pop()
	e2, ok2 := h.peek(nodes, role)
	h.push(top)
	return e2, ok2
}

func (h *lazyHeap) reset() { h.ents = h.ents[:0] }

// Evaluator is the incremental PlacementEvaluator: it maintains
//
//   - a compensated running sum and count of server powers, making the
//     computation part of the service term (Eq. 15) O(1);
//   - a lazy min-heap over agent scheduling throughputs, a lazy min-heap
//     over per-server effective prediction throughputs (each server's
//     Eq. 14 term evaluated at its own power *and* link bandwidth), and a
//     lazy min-heap over server link bandwidths (the slowest server link
//     carries the service phase's transfer term), keeping the scheduling
//     and service terms O(log n) amortised under heterogeneous links;
//
// so each candidate evaluation a planner issues costs O(1)–O(log n)
// instead of the Θ(n) full-model sweep the naive path performs. Stale heap
// entries are invalidated by per-node stamps and discarded on contact.
//
// On uniform-link platforms the prediction heap orders exactly like the
// old power heap (prediction throughput is monotone in power at fixed
// bandwidth) and the bandwidth heap is constant, so results are
// bit-identical to the pre-heterogeneous evaluator.
//
// An Evaluator mirrors exactly the mutations the owning planner applies to
// its hierarchy; use LoadHierarchy to mirror an existing tree wholesale.
type Evaluator struct {
	costs model.Costs
	bw    float64 // default link bandwidth (platform B)
	wapp  float64

	nodes []evalNode

	nServers int
	sumPow   float64 // Neumaier-compensated Σ server power
	sumComp  float64

	agentThr lazyHeap // min over agent scheduling throughput
	servPred lazyHeap // min over server prediction throughput (Eq. 14 term)
	servBW   lazyHeap // min over server link bandwidth (service transfer)
}

// NewEvaluator returns an empty incremental evaluator for the given model
// calibration; bandwidth is the default link bandwidth for nodes without a
// per-node override.
func NewEvaluator(c model.Costs, bandwidth, wapp float64) *Evaluator {
	return &Evaluator{costs: c, bw: bandwidth, wapp: wapp}
}

// link resolves a per-node bandwidth override against the default.
func (e *Evaluator) link(bw float64) float64 {
	if bw > 0 {
		return bw
	}
	return e.bw
}

// Reset implements PlacementEvaluator.
func (e *Evaluator) Reset() {
	e.nodes = e.nodes[:0]
	e.nServers = 0
	e.sumPow, e.sumComp = 0, 0
	e.agentThr.reset()
	e.servPred.reset()
	e.servBW.reset()
}

// ensure grows the node table to cover id.
func (e *Evaluator) ensure(id int) {
	for len(e.nodes) <= id {
		e.nodes = append(e.nodes, evalNode{})
	}
}

// sumAdd adds v to the server power sum with Neumaier compensation, so
// promote/swap subtractions do not accumulate drift relative to a fresh
// summation (the fuzz harness holds the two evaluators to 1e-9).
//
//adeptvet:allow floataccum this IS the compensated-sum implementation the analyzer points everyone else at
//adeptvet:hotpath
func (e *Evaluator) sumAdd(v float64) {
	t := e.sumPow + v
	if math.Abs(e.sumPow) >= math.Abs(v) {
		e.sumComp += (e.sumPow - t) + v
	} else {
		e.sumComp += (v - t) + e.sumPow
	}
	e.sumPow = t
}

// serverSum returns the compensated Σ server power.
func (e *Evaluator) serverSum() float64 { return e.sumPow + e.sumComp }

func (e *Evaluator) bumpParent(parent int) {
	if parent < 0 {
		return
	}
	p := &e.nodes[parent]
	p.degree++
	p.stamp++
	e.agentThr.push(heapEnt{val: model.AgentThroughput(e.costs, p.bw, p.power, p.degree), id: parent, stamp: p.stamp})
}

// AddAgent implements PlacementEvaluator.
func (e *Evaluator) AddAgent(id, parent int, power, linkBW float64) {
	e.ensure(id)
	bw := e.link(linkBW)
	n := &e.nodes[id]
	n.power, n.bw, n.degree, n.role = power, bw, 0, roleAgent
	n.stamp++
	e.agentThr.push(heapEnt{val: model.AgentThroughput(e.costs, bw, power, 0), id: id, stamp: n.stamp})
	e.bumpParent(parent)
}

// AddServer implements PlacementEvaluator.
func (e *Evaluator) AddServer(id, parent int, power, linkBW float64) {
	e.ensure(id)
	bw := e.link(linkBW)
	n := &e.nodes[id]
	n.power, n.bw, n.degree, n.role = power, bw, 0, roleServer
	n.stamp++
	e.nServers++
	e.sumAdd(power)
	e.servPred.push(heapEnt{val: model.ServerPredictionThroughput(e.costs, bw, power), id: id, stamp: n.stamp})
	e.servBW.push(heapEnt{val: bw, id: id, stamp: n.stamp})
	e.bumpParent(parent)
}

// Promote implements PlacementEvaluator. The node's degree restarts at
// zero; its parent's degree is unchanged (the node keeps its slot).
func (e *Evaluator) Promote(id int) {
	n := &e.nodes[id]
	e.nServers--
	e.sumAdd(-n.power)
	n.role, n.degree = roleAgent, 0
	n.stamp++
	e.agentThr.push(heapEnt{val: model.AgentThroughput(e.costs, n.bw, n.power, 0), id: id, stamp: n.stamp})
}

// SetBacking implements PlacementEvaluator.
func (e *Evaluator) SetBacking(id int, power, linkBW float64) {
	bw := e.link(linkBW)
	n := &e.nodes[id]
	if n.role == roleServer {
		e.sumAdd(power - n.power)
	}
	n.power, n.bw = power, bw
	n.stamp++
	switch n.role {
	case roleAgent:
		e.agentThr.push(heapEnt{val: model.AgentThroughput(e.costs, bw, power, n.degree), id: id, stamp: n.stamp})
	case roleServer:
		e.servPred.push(heapEnt{val: model.ServerPredictionThroughput(e.costs, bw, power), id: id, stamp: n.stamp})
		e.servBW.push(heapEnt{val: bw, id: id, stamp: n.stamp})
	}
}

// schedWith returns ρ_sched with the candidate agent term and server
// prediction floor folded in: agentOverride is (id, its hypothetical
// throughput); pass id -1 for none. minPred is the hypothetical weakest
// server prediction throughput (math.Inf(1) for "no servers").
func (e *Evaluator) schedWith(overrideID int, overrideThr, minPred float64) float64 {
	sched := overrideThr
	var ent heapEnt
	var ok bool
	if overrideID >= 0 {
		ent, ok = e.agentThr.peekExcluding(e.nodes, roleAgent, overrideID)
	} else {
		sched = math.Inf(1)
		ent, ok = e.agentThr.peek(e.nodes, roleAgent)
	}
	if ok && ent.val < sched {
		sched = ent.val
	}
	if minPred < sched {
		sched = minPred
	}
	return sched
}

// minServerPred returns the current weakest server prediction throughput,
// optionally excluding one id (pass -1 for none); +Inf when no server
// qualifies.
func (e *Evaluator) minServerPred(skip int) float64 {
	var ent heapEnt
	var ok bool
	if skip >= 0 {
		ent, ok = e.servPred.peekExcluding(e.nodes, roleServer, skip)
	} else {
		ent, ok = e.servPred.peek(e.nodes, roleServer)
	}
	if !ok {
		return math.Inf(1)
	}
	return ent.val
}

// minServerBW returns the current slowest server link bandwidth, optionally
// excluding one id; +Inf when no server qualifies.
func (e *Evaluator) minServerBW(skip int) float64 {
	var ent heapEnt
	var ok bool
	if skip >= 0 {
		ent, ok = e.servBW.peekExcluding(e.nodes, roleServer, skip)
	} else {
		ent, ok = e.servBW.peek(e.nodes, roleServer)
	}
	if !ok {
		return math.Inf(1)
	}
	return ent.val
}

// Eval implements PlacementEvaluator.
func (e *Evaluator) Eval() (sched, service float64) {
	if e.nServers == 0 {
		return 0, 0
	}
	sched = e.schedWith(-1, 0, e.minServerPred(-1))
	service = serviceFromAggregates(e.costs, e.minServerBW(-1), e.wapp, e.nServers, e.serverSum())
	return sched, service
}

// RhoAfterAttach implements PlacementEvaluator.
func (e *Evaluator) RhoAfterAttach(parent int, power, linkBW float64) float64 {
	bw := e.link(linkBW)
	p := e.nodes[parent]
	thr := model.AgentThroughput(e.costs, p.bw, p.power, p.degree+1)
	minPred := math.Min(e.minServerPred(-1), model.ServerPredictionThroughput(e.costs, bw, power))
	sched := e.schedWith(parent, thr, minPred)
	minBW := math.Min(e.minServerBW(-1), bw)
	service := serviceFromAggregates(e.costs, minBW, e.wapp, e.nServers+1, e.serverSum()+power)
	return math.Min(sched, service)
}

// RhoAfterReback implements PlacementEvaluator.
func (e *Evaluator) RhoAfterReback(agentID int, power, linkBW float64) float64 {
	bw := e.link(linkBW)
	a := e.nodes[agentID]
	thr := model.AgentThroughput(e.costs, bw, power, a.degree)
	sched := e.schedWith(agentID, thr, e.minServerPred(-1))
	service := serviceFromAggregates(e.costs, e.minServerBW(-1), e.wapp, e.nServers, e.serverSum())
	return math.Min(sched, service)
}

// RhoAfterSwap implements PlacementEvaluator.
func (e *Evaluator) RhoAfterSwap(agentID, serverID int) float64 {
	a, s := e.nodes[agentID], e.nodes[serverID]
	thr := model.AgentThroughput(e.costs, s.bw, s.power, a.degree)
	minPred := math.Min(e.minServerPred(serverID), model.ServerPredictionThroughput(e.costs, a.bw, a.power))
	sched := e.schedWith(agentID, thr, minPred)
	minBW := math.Min(e.minServerBW(serverID), a.bw)
	service := serviceFromAggregates(e.costs, minBW, e.wapp, e.nServers, e.serverSum()-s.power+a.power)
	return math.Min(sched, service)
}

// RhoAfterDrop implements PlacementEvaluator.
func (e *Evaluator) RhoAfterDrop(serverID, parentID int) float64 {
	if e.nServers <= 1 {
		return 0
	}
	p, s := e.nodes[parentID], e.nodes[serverID]
	thr := model.AgentThroughput(e.costs, p.bw, p.power, p.degree-1)
	sched := e.schedWith(parentID, thr, e.minServerPred(serverID))
	service := serviceFromAggregates(e.costs, e.minServerBW(serverID), e.wapp, e.nServers-1, e.serverSum()-s.power)
	return math.Min(sched, service)
}

// LoadHierarchy mirrors an existing hierarchy into an evaluator (nodes fed
// in ID order, so parents always precede children). Planners that refine a
// finished plan (the swap refiner) start here instead of replaying growth.
func LoadHierarchy(ev PlacementEvaluator, h *hierarchy.Hierarchy) {
	for _, n := range h.Nodes() {
		if n.Role == hierarchy.RoleAgent {
			ev.AddAgent(n.ID, n.Parent, n.Power, n.Bandwidth)
		} else {
			ev.AddServer(n.ID, n.Parent, n.Power, n.Bandwidth)
		}
	}
}
