package core

import (
	"math"
	"runtime"
	"sync"
)

// This file provides the deterministic parallel-scan helpers behind the
// planner's O(n) candidate scans (sort-key computation, the best-star and
// one-agent/one-server snapshot scans). They shard a scan across
// GOMAXPROCS workers and merge the per-shard results left to right, with
// every tie broken by element index — so the outcome is bit-identical to
// the sequential scan regardless of the shard count, the scheduler, or
// GOMAXPROCS. The determinism-under-parallelism tests plan the same
// platform at GOMAXPROCS 1/2/8 and assert byte-identical XML.
//
// Only order-independent reductions go through here: pure per-element maps
// (parFill) and min/max selections whose merge is associative once ties
// carry indices (min2, top2, argMax). Floating-point *accumulations*
// (power sums, compensated service sums) are deliberately kept sequential
// in the planner — reassociating them would change low-order bits — and
// they are O(n) additions, never the scan bottleneck.

// parScanMin is the element count below which scans stay sequential: the
// fan-out costs more than the scan itself, and small pools are planned in
// microseconds anyway.
const parScanMin = 4096

// parShards picks the shard count for an n-element scan. The choice only
// affects speed, never results (merges are index-tie-broken), so it is free
// to consult GOMAXPROCS.
func parShards(n int) int {
	p := runtime.GOMAXPROCS(0)
	if n < parScanMin || p <= 1 {
		return 1
	}
	if lim := n / 1024; p > lim {
		p = lim
	}
	if p < 1 {
		p = 1
	}
	return p
}

// parFill invokes fn over disjoint contiguous spans covering [0, n),
// concurrently when the scan is large enough. fn must be a pure
// per-element map (each index written independently).
func parFill(n int, fn func(lo, hi int)) {
	shards := parShards(n)
	if shards == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := n*s/shards, n*(s+1)/shards
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// parReduce folds scan over [0, n) in contiguous shards and merges the
// per-shard states left to right (merge's src always covers strictly later
// indices than dst). With an index-tie-broken merge the result is
// bit-identical to scan(&init(), 0, n).
func parReduce[S any](n int, init func() S, scan func(s *S, lo, hi int), merge func(dst *S, src S)) S {
	shards := parShards(n)
	out := init()
	if shards == 1 {
		scan(&out, 0, n)
		return out
	}
	parts := make([]S, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := n*s/shards, n*(s+1)/shards
		parts[s] = init()
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			scan(&parts[s], lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	for s := 0; s < shards; s++ {
		merge(&out, parts[s])
	}
	return out
}

// min2 tracks the two smallest values of a scan plus the index of the
// first element attaining the minimum. fold uses strict <, so ties keep
// the earliest index — the exact semantics of the sequential snapshot
// scans it replaces.
type min2 struct {
	v1, v2 float64
	i1     int
}

func newMin2() min2 { return min2{v1: math.Inf(1), v2: math.Inf(1), i1: -1} }

//adeptvet:hotpath
func (m *min2) fold(v float64, i int) {
	if v < m.v1 {
		m.v2, m.v1, m.i1 = m.v1, v, i
	} else if v < m.v2 {
		m.v2 = v
	}
}

// mergeAfter folds in o, which scanned strictly later indices than m. The
// two smallest values of the union are kept; on an exact value tie the
// earlier shard's index wins, matching the sequential fold.
func (m *min2) mergeAfter(o min2) {
	if o.v1 < m.v1 {
		v2 := m.v1
		if o.v2 < v2 {
			v2 = o.v2
		}
		m.v1, m.v2, m.i1 = o.v1, v2, o.i1
		return
	}
	if o.v1 < m.v2 {
		m.v2 = o.v1
	}
}

// excl returns the scan minimum with element i excluded: the second
// minimum when i carried the minimum, the minimum otherwise. (When the
// minimum value occurs more than once, v2 equals v1 and both branches
// agree.)
//
//adeptvet:hotpath
func (m min2) excl(i int) float64 {
	if m.i1 == i {
		return m.v2
	}
	return m.v1
}

// top2 tracks the two largest values of a scan with their indices. fold
// uses strict >, so ties keep the earliest index; the merge preserves
// that, reproducing the sequential best/runner-up selection exactly.
type top2 struct {
	v1, v2 float64
	i1, i2 int
}

func newTop2() top2 { return top2{i1: -1, i2: -1} }

//adeptvet:hotpath
func (m *top2) fold(v float64, i int) {
	switch {
	case m.i1 < 0 || v > m.v1:
		m.v2, m.i2 = m.v1, m.i1
		m.v1, m.i1 = v, i
	case m.i2 < 0 || v > m.v2:
		m.v2, m.i2 = v, i
	}
}

// mergeAfter folds in o, which scanned strictly later indices than m.
// Re-folding o's retained (value, index) pairs in o's own order is exact:
// within a shard equal values keep ascending indices, and any element o
// dropped was beaten by two elements of its own shard, hence by two of the
// union.
func (m *top2) mergeAfter(o top2) {
	if o.i1 >= 0 {
		m.fold(o.v1, o.i1)
	}
	if o.i2 >= 0 {
		m.fold(o.v2, o.i2)
	}
}

// argMax tracks the largest value strictly above an initial floor and the
// first index attaining it (strict >, earliest index on ties). i stays -1
// while nothing beat the floor.
type argMax struct {
	v float64
	i int
}

//adeptvet:hotpath
func (m *argMax) fold(v float64, i int) {
	if v > m.v {
		m.v, m.i = v, i
	}
}

func (m *argMax) mergeAfter(o argMax) {
	if o.i >= 0 && o.v > m.v {
		m.v, m.i = o.v, o.i
	}
}
