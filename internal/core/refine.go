package core

import (
	"context"

	"adept/internal/hierarchy"
)

// SwapRefiner is a post-planning local-search extension (beyond the paper's
// Algorithm 1, in the direction its future-work section sketches): it takes
// a finished plan and repeatedly tries to swap the physical node backing an
// agent with a weaker node — either a deployed server or an unused pool
// node — keeping the tree shape fixed. On service-limited deployments this
// releases powerful nodes from scheduling duty back into serving, which
// Algorithm 1 cannot do because it always drafts the most powerful nodes as
// agents first.
//
// The refiner only ever improves the demand-capped throughput; when no swap
// improves it the input plan is returned unchanged.
type SwapRefiner struct {
	// Inner produces the plan to refine.
	Inner Planner
	// MaxRounds bounds the improvement loop (0 means a generous default).
	MaxRounds int
}

// Name implements Planner.
func (r *SwapRefiner) Name() string { return r.Inner.Name() + "+swap" }

// Plan implements Planner.
func (r *SwapRefiner) Plan(req Request) (*Plan, error) {
	return r.PlanContext(context.Background(), req)
}

// PlanContext implements Planner: the context is forwarded to the inner
// planner and polled once per refinement round.
func (r *SwapRefiner) PlanContext(ctx context.Context, req Request) (*Plan, error) {
	plan, err := r.Inner.PlanContext(ctx, req)
	if err != nil {
		return nil, err
	}
	rounds := r.MaxRounds
	if rounds <= 0 {
		rounds = 2 * len(req.Platform.Nodes)
	}
	h := plan.Hierarchy.Clone()
	bestCapped := plan.Capped

	for round := 0; round < rounds; round++ {
		if err := CheckContext(ctx, r.Name()); err != nil {
			return nil, err
		}
		swapped, newCapped := r.bestSwap(req, h, bestCapped)
		if swapped == nil {
			break
		}
		h = swapped
		bestCapped = newCapped
	}
	if bestCapped <= plan.Capped {
		return plan, nil
	}
	refined, err := Finalize(r.Name(), req, h)
	if err != nil {
		return nil, err
	}
	return refined, nil
}

// bestSwap tries every (agent, replacement) pair and returns the hierarchy
// after the single best strictly improving swap, or nil when none improves.
func (r *SwapRefiner) bestSwap(req Request, h *hierarchy.Hierarchy, cur float64) (*hierarchy.Hierarchy, float64) {
	deployed := make(map[string]int, h.Len()) // name -> node ID
	for _, n := range h.Nodes() {
		deployed[n.Name] = n.ID
	}

	type cand struct {
		name  string
		power float64
		id    int // deployed server ID, or -1 for an unused pool node
	}
	var cands []cand
	for _, pn := range req.Platform.Nodes {
		if id, ok := deployed[pn.Name]; ok {
			if h.MustNode(id).Role == hierarchy.RoleServer {
				cands = append(cands, cand{pn.Name, pn.Power, id})
			}
			continue
		}
		cands = append(cands, cand{pn.Name, pn.Power, -1})
	}

	var best *hierarchy.Hierarchy
	bestRho := cur
	for _, aid := range h.Agents() {
		agent := h.MustNode(aid)
		for _, cd := range cands {
			if cd.power >= agent.Power {
				continue // only release power, never hoard more of it
			}
			trial := h.Clone()
			swapNodeBacking(trial, aid, cd.id, cd.name, cd.power, agent.Name, agent.Power)
			if trial.Validate(hierarchy.Final) != nil {
				continue
			}
			if rho := cappedRho(req, trial); rho > bestRho {
				best, bestRho = trial, rho
			}
		}
	}
	return best, bestRho
}

// swapNodeBacking re-backs agent aid with the candidate physical node; when
// the candidate is a deployed server (sid >= 0) the two nodes exchange
// backings, otherwise the agent's old backing simply leaves the deployment.
func swapNodeBacking(h *hierarchy.Hierarchy, aid, sid int, candName string, candPower float64, agentName string, agentPower float64) {
	// IDs and node data come from the live hierarchy, so SetBacking cannot
	// fail here.
	_ = h.SetBacking(aid, candName, candPower)
	if sid >= 0 {
		_ = h.SetBacking(sid, agentName, agentPower)
	}
}
