package core

import (
	"context"

	"adept/internal/hierarchy"
	"adept/internal/obs"
)

// SwapRefiner is a post-planning local-search extension (beyond the paper's
// Algorithm 1, in the direction its future-work section sketches): it takes
// a finished plan and repeatedly applies the best strictly improving move
// from two families, keeping the tree shape otherwise fixed:
//
//   - swap: re-back an agent with a weaker node (a deployed server — the
//     two exchange backings — or an unused pool node). On service-limited
//     deployments this releases powerful nodes from scheduling duty back
//     into serving, which Algorithm 1 cannot do because it always drafts
//     the most powerful nodes as agents first.
//   - drop: remove a weak leaf server. Every server pays the Wpre
//     prediction cost on every request and the weakest server can carry
//     the prediction bottleneck (Eq. 14), so on hub-dominated pools
//     shedding a weak server raises both phases at once — the exhaustive
//     optimum on such pools visibly leaves nodes unused.
//   - attach: deploy an unused pool node as a new server leaf (the
//     inverse of drop). Swaps change which nodes fill the current shape
//     and drops shrink it, but neither can re-grow a deployment after a
//     swap opened service headroom — on heterogeneous-link platforms the
//     planner's small seed shapes (e.g. its one-agent/one-server pair
//     fallback) stay optimal only until a swap frees a fast-linked
//     agent, after which attaching freed pool nodes is the move that
//     escapes the small-deployment basin.
//
// The refiner only ever improves the demand-capped throughput; when no
// move improves it the input plan is returned unchanged.
//
// Every candidate move is scored with one O(log n) evaluator what-if
// (RhoAfterSwap / RhoAfterReback / RhoAfterDrop) instead of the clone +
// full-model evaluation of the naive formulation; swaps never change the
// tree shape and drops are validated by a degree check, so no
// per-candidate validation pass is needed either.
type SwapRefiner struct {
	// Inner produces the plan to refine.
	Inner Planner
	// MaxRounds bounds the improvement loop (0 means a generous default).
	MaxRounds int
}

// Name implements Planner.
func (r *SwapRefiner) Name() string { return r.Inner.Name() + "+swap" }

// Plan implements Planner.
//
//adeptvet:allow ctxflow context-free convenience wrapper; callers that want cancellation use PlanContext
func (r *SwapRefiner) Plan(req Request) (*Plan, error) {
	return r.PlanContext(context.Background(), req)
}

// PlanContext implements Planner: the context is forwarded to the inner
// planner and polled once per refinement round.
func (r *SwapRefiner) PlanContext(ctx context.Context, req Request) (*Plan, error) {
	tr := obs.TraceFrom(ctx)
	endInner := tr.Phase("inner_plan")
	plan, err := r.Inner.PlanContext(ctx, req)
	endInner()
	if err != nil {
		return nil, err
	}
	rounds := r.MaxRounds
	if rounds <= 0 {
		rounds = 2 * len(req.Platform.Nodes)
	}
	h := plan.Hierarchy.Clone()
	ev := NewEvaluator(req.Costs, req.Platform.Bandwidth, req.Wapp)
	LoadHierarchy(ev, h)
	bestCapped := plan.Capped

	improved := false
	moves := int64(0)
	endRefine := tr.Phase("refine")
	round := 0
	for ; round < rounds; round++ {
		if err := CheckContext(ctx, r.Name()); err != nil {
			return nil, err
		}
		newH, newCapped, ok := r.bestMove(req, h, ev, bestCapped)
		if !ok {
			break
		}
		h = newH
		bestCapped = newCapped
		improved = true
		moves++
	}
	endRefine()
	tr.Count("refine_rounds", int64(round))
	tr.Count("refine_moves", moves)
	if !improved || bestCapped <= plan.Capped {
		return plan, nil
	}
	refined, err := Finalize(r.Name(), req, h)
	if err != nil {
		return nil, err
	}
	return refined, nil
}

// bestMove scores every swap and drop candidate with an evaluator what-if
// and applies the single best strictly improving one, returning the
// (possibly replaced) hierarchy. ok is false when nothing improves.
func (r *SwapRefiner) bestMove(req Request, h *hierarchy.Hierarchy, ev *Evaluator, cur float64) (*hierarchy.Hierarchy, float64, bool) {
	deployed := make(map[string]int, h.Len()) // name -> node ID
	for _, n := range h.Nodes() {
		deployed[n.Name] = n.ID
	}

	type cand struct {
		name  string
		power float64
		bw    float64 // raw link override (0 = platform default)
		id    int     // deployed server ID, or -1 for an unused pool node
	}
	var cands []cand
	for _, pn := range req.Platform.Nodes {
		if id, ok := deployed[pn.Name]; ok {
			if h.MustNode(id).Role == hierarchy.RoleServer {
				cands = append(cands, cand{pn.Name, pn.Power, pn.LinkBandwidth, id})
			}
			continue
		}
		cands = append(cands, cand{pn.Name, pn.Power, pn.LinkBandwidth, -1})
	}

	bestAgent := -1
	var bestCand cand
	dropID := -1
	bestRho := cur
	for _, aid := range h.Agents() {
		agent := h.MustNode(aid)
		for _, cd := range cands {
			if cd.power >= agent.Power {
				continue // only release power, never hoard more of it
			}
			var rho float64
			if cd.id >= 0 {
				rho = ev.RhoAfterSwap(aid, cd.id)
			} else {
				rho = ev.RhoAfterReback(aid, cd.power, cd.bw)
			}
			if capped := req.Demand.Cap(rho); capped > bestRho {
				bestAgent, bestCand, dropID, bestRho = aid, cd, -1, capped
			}
		}
	}
	for _, sid := range h.Servers() {
		s := h.MustNode(sid)
		pdeg := h.Degree(s.Parent)
		// The parent must stay shape-valid: one child for the root, two
		// for any other agent.
		min := 2
		if s.Parent == h.Root() {
			min = 1
		}
		if pdeg-1 < min {
			continue
		}
		if capped := req.Demand.Cap(ev.RhoAfterDrop(sid, s.Parent)); capped > bestRho {
			bestAgent, dropID, bestRho = -1, sid, capped
		}
	}
	attachAgent, attachCand := -1, cand{}
	for _, cd := range cands {
		if cd.id >= 0 {
			continue // deployed; only unused pool nodes can be attached
		}
		for _, aid := range h.Agents() {
			if capped := req.Demand.Cap(ev.RhoAfterAttach(aid, cd.power, cd.bw)); capped > bestRho {
				bestAgent, dropID, bestRho = -1, -1, capped
				attachAgent, attachCand = aid, cd
			}
		}
	}

	switch {
	case attachAgent >= 0:
		// Grow: deploy the unused pool node as a server leaf.
		id, err := h.AddServer(attachAgent, attachCand.name, attachCand.power, attachCand.bw)
		if err != nil {
			return h, cur, false // cannot happen on validated trees; stop refining
		}
		ev.AddServer(id, attachAgent, attachCand.power, attachCand.bw)
		return h, bestRho, true
	case dropID >= 0:
		// Rebuild without the dropped leaf; IDs shift, so the evaluator
		// mirror is reloaded from scratch (drops are rare and O(n)).
		newH := rebuildWithout(h, dropID)
		ev.Reset()
		LoadHierarchy(ev, newH)
		return newH, bestRho, true
	case bestAgent >= 0:
		// Apply the winning swap: re-back the agent with the candidate
		// node; when the candidate is a deployed server the two exchange
		// backings (powers and links travel together), otherwise the
		// agent's old backing leaves the deployment. IDs and node data
		// come from the live hierarchy, so SetBacking cannot fail here.
		agent := h.MustNode(bestAgent)
		_ = h.SetBacking(bestAgent, bestCand.name, bestCand.power, bestCand.bw)
		ev.SetBacking(bestAgent, bestCand.power, bestCand.bw)
		if bestCand.id >= 0 {
			_ = h.SetBacking(bestCand.id, agent.Name, agent.Power, agent.Bandwidth)
			ev.SetBacking(bestCand.id, agent.Power, agent.Bandwidth)
		}
		return h, bestRho, true
	}
	return h, cur, false
}

// rebuildWithout returns a copy of h with leaf node drop removed.
func rebuildWithout(h *hierarchy.Hierarchy, drop int) *hierarchy.Hierarchy {
	out := hierarchy.New(h.Name)
	var rec func(id, parent int)
	rec = func(id, parent int) {
		if id == drop {
			return
		}
		n := h.MustNode(id)
		var nid int
		if parent < 0 {
			nid, _ = out.AddRoot(n.Name, n.Power, n.Bandwidth)
		} else if n.Role == hierarchy.RoleAgent {
			nid, _ = out.AddAgent(parent, n.Name, n.Power, n.Bandwidth)
		} else {
			nid, _ = out.AddServer(parent, n.Name, n.Power, n.Bandwidth)
		}
		for _, c := range n.Children {
			rec(c, nid)
		}
	}
	rec(h.Root(), -1)
	return out
}
