package core

import (
	"math"
	"sort"

	"adept/internal/platform"
)

// ClassIndex buckets a node pool into (rated power, link bandwidth)
// equivalence classes with multiplicity counts. It is the foundation of
// class-collapsed planning: every planner quantity that depends only on a
// node's spec — sort keys, scheduling/servicing powers, prediction
// throughputs — is identical across a class's members, so the heuristic's
// Θ(n) spec scans collapse to Θ(C) class scans, and a 1M-node cluster grid
// with ~40 distinct specs plans in class space. Node identity (names) is
// recovered by counted expansion: within a class, members are spent in
// ascending name order, matching the node-space planner's sort tie-break.
//
// Equivalence is exact: two nodes share a class iff their Power and raw
// LinkBandwidth have identical float64 bit patterns. Near-duplicates
// (powers one ulp apart) land in distinct classes — the fuzz corpus
// exercises exactly that boundary.
type ClassIndex struct {
	classes []NodeClass
	total   int
}

// NodeClass is one equivalence class: a spec plus its member names.
type NodeClass struct {
	// Power is the members' computing power in MFlop/s.
	Power float64
	// LinkBandwidth is the members' raw per-node link override, exactly as
	// platform.Node carries it (0 = platform default). Classing on the raw
	// value keeps expansion rendering-faithful: an explicit override equal
	// to the platform default is a different class from "no override".
	LinkBandwidth float64

	names   []string // member names, in platform order
	minName string   // smallest member name (class sort tie-break)
}

// Count returns the class's multiplicity.
func (cl *NodeClass) Count() int { return len(cl.names) }

// link resolves the class's effective bandwidth against the platform
// default, mirroring platform.Node.Link.
func (cl *NodeClass) link(def float64) float64 {
	if cl.LinkBandwidth > 0 {
		return cl.LinkBandwidth
	}
	return def
}

// minNames2 returns the two smallest member names ("" for the second when
// the class is a singleton) without sorting the member list.
func (cl *NodeClass) minNames2() (string, string) {
	n1, n2 := "", ""
	for _, name := range cl.names {
		switch {
		case n1 == "" || name < n1:
			n1, n2 = name, n1
		case n2 == "" || name < n2:
			n2 = name
		}
	}
	return n1, n2
}

// node materialises a platform.Node of this class with the given name.
func (cl *NodeClass) node(name string) platform.Node {
	return platform.Node{Name: name, Power: cl.Power, LinkBandwidth: cl.LinkBandwidth}
}

// BuildClassIndex buckets nodes into spec equivalence classes. Classes are
// ordered by first appearance in the pool, so the index is deterministic
// in the input order.
func BuildClassIndex(nodes []platform.Node) *ClassIndex {
	ix := buildClassIndexCapped(nodes, len(nodes))
	if ix == nil {
		// cap == len(nodes) can never be exceeded.
		panic("core: BuildClassIndex exceeded its own cap")
	}
	return ix
}

// buildClassIndexCapped buckets nodes into classes, giving up (returning
// nil) as soon as more than maxClasses distinct specs appear. The auto
// planner path uses the cap as a cheap compressibility probe: an
// all-distinct pool costs O(maxClasses) before the probe aborts, not O(n).
func buildClassIndexCapped(nodes []platform.Node, maxClasses int) *ClassIndex {
	if maxClasses < 1 || len(nodes) == 0 {
		return nil
	}
	// Open-addressed table of class indices (+1; 0 = empty), sized for a
	// load factor of at most 1/2. Linear probing with a mixed 128→64-bit
	// spec hash; fully deterministic (first appearance wins the slot walk).
	tableSize := 16
	for tableSize < 2*maxClasses {
		tableSize <<= 1
	}
	table := make([]int32, tableSize)
	mask := uint64(tableSize - 1)
	classes := make([]NodeClass, 0, 16)
	for _, nd := range nodes {
		pb, bb := math.Float64bits(nd.Power), math.Float64bits(nd.LinkBandwidth)
		h := specHash(pb, bb) & mask
		ci := -1
		for {
			slot := table[h]
			if slot == 0 {
				if len(classes) >= maxClasses {
					return nil
				}
				classes = append(classes, NodeClass{Power: nd.Power, LinkBandwidth: nd.LinkBandwidth, minName: nd.Name})
				table[h] = int32(len(classes))
				ci = len(classes) - 1
				break
			}
			k := int(slot) - 1
			if math.Float64bits(classes[k].Power) == pb && math.Float64bits(classes[k].LinkBandwidth) == bb {
				ci = k
				break
			}
			h = (h + 1) & mask
		}
		cl := &classes[ci]
		cl.names = append(cl.names, nd.Name)
		if nd.Name < cl.minName {
			cl.minName = nd.Name
		}
	}
	return &ClassIndex{classes: classes, total: len(nodes)}
}

// specHash mixes the two spec bit patterns into one table hash
// (splitmix64-style finalisation).
func specHash(p, b uint64) uint64 {
	h := p*0x9e3779b97f4a7c15 ^ b
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NumNodes returns the total node count across all classes.
func (ix *ClassIndex) NumNodes() int { return ix.total }

// NumClasses returns the distinct spec count.
func (ix *ClassIndex) NumClasses() int { return len(ix.classes) }

// Class returns the i-th class in first-appearance order.
func (ix *ClassIndex) Class(i int) *NodeClass { return &ix.classes[i] }

// Expand reverses the collapse: every class emits its members (ascending
// names), classes in first-appearance order. The result is a permutation
// of the indexed pool — expand(collapse(pool)) preserves the multiset of
// (name, power, link) specs, a property the fuzz battery asserts.
func (ix *ClassIndex) Expand() []platform.Node {
	out := make([]platform.Node, 0, ix.total)
	for i := range ix.classes {
		cl := &ix.classes[i]
		names := append([]string(nil), cl.names...)
		sort.Strings(names)
		for _, name := range names {
			out = append(out, cl.node(name))
		}
	}
	return out
}
