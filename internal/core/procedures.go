package core

import (
	"math"
	"sort"

	"adept/internal/model"
	"adept/internal/platform"
)

// This file implements the procedures of Table 1 of the paper with their
// original names (Go-cased). Algorithm 1 (heuristic.go) is written in terms
// of these, so the code reads against the paper.

// calcSchPow computes the scheduling power of a node of power w acting as
// an agent with d children: the agent term of Eq. 14.
func calcSchPow(c model.Costs, bandwidth, w float64, d int) float64 {
	return model.AgentThroughput(c, bandwidth, w, d)
}

// calcHierSerPow computes the servicing power provided by the hierarchy
// when the load is equally divided among its servers (Eq. 15, which weights
// each server by its computing power). Under heterogeneous links the
// bandwidth argument is the *minimum* link bandwidth of the server set —
// the link the per-request transfer is charged at (see
// model.ServiceThroughputLinks).
func calcHierSerPow(c model.Costs, bandwidth, wapp float64, serverPowers []float64) float64 {
	return model.ServiceThroughput(c, bandwidth, wapp, serverPowers)
}

// sortNodes sorts the available nodes by decreasing scheduling power
// computed with n_nodes-1 prospective children (Steps 1–2 of Algorithm 1):
// at that point the heuristic does not yet know which node will be the
// agent, so every node is ranked as if it had to schedule for the whole
// remaining pool. Each node is ranked at its *own* link bandwidth
// (defaulting to the platform B), so a powerful node behind a slow WAN
// uplink sorts below a modest node on the fast local LAN — exactly the
// agent-drafting order a multi-cluster grid needs. Ties break by name for
// determinism.
func sortNodes(c model.Costs, bandwidth float64, nodes []platform.Node) []platform.Node {
	sorted := append([]platform.Node(nil), nodes...)
	d := len(nodes) - 1
	if d < 1 {
		d = 1
	}
	// Precompute the sort key once per node instead of twice per
	// comparison: at 10k nodes the repeated model evaluations inside the
	// comparator used to dominate whole-plan latency. The keys are pure
	// per-node maps, so the fill shards across cores on large pools.
	keys := make([]float64, len(sorted))
	parFill(len(sorted), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = calcSchPow(c, sorted[i].Link(bandwidth), sorted[i].Power, d)
		}
	})
	idx := make([]int, len(sorted))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if keys[idx[a]] != keys[idx[b]] {
			return keys[idx[a]] > keys[idx[b]]
		}
		return sorted[idx[a]].Name < sorted[idx[b]].Name
	})
	out := make([]platform.Node, len(sorted))
	for i, j := range idx {
		out[i] = sorted[j]
	}
	return out
}

// supportedChildren returns the largest number of children a node of power
// w can be given while keeping its scheduling power at or above target
// (the paper's supported_children quantity). The count is capped at max.
// A non-positive target means the node is never the constraint; max is
// returned.
func supportedChildren(c model.Costs, bandwidth, w, target float64, max int) int {
	if max < 0 {
		max = 0
	}
	if target <= 0 || math.IsInf(target, -1) {
		return max
	}
	// calcSchPow is strictly decreasing in d, so binary search works; max
	// is small enough in practice that a linear scan would also do, but the
	// planner calls this in inner loops.
	lo, hi := 0, max // invariant: sched(lo) >= target or lo==0
	if calcSchPow(c, bandwidth, w, 1) < target {
		return 0
	}
	lo = 1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if calcSchPow(c, bandwidth, w, mid) >= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Note on the remaining Table 1 procedures:
//   - shift_nodes  -> (*hierarchy.Hierarchy).PromoteToAgent
//   - plot_hierarchy -> (*hierarchy.Hierarchy).AdjacencyMatrix
//   - write_xml -> (*hierarchy.Hierarchy).WriteXML / (*Plan).XML
