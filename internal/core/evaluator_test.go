package core

import (
	"math"
	"math/rand"
	"testing"

	"adept/internal/model"
)

// TestEvaluatorMatchesNaiveUnderRandomOps drives the incremental and the
// naive evaluator through identical randomized mutation sequences
// (attach, promote, re-back, backing change) and checks every query agrees
// to 1e-9 after each step — including the min-excluding what-ifs that
// exercise the lazy-heap invalidation paths. Every node draws a random
// link bandwidth (zero = default included), so the prediction-throughput
// and min-bandwidth heaps are stressed under heterogeneous links, not
// just re-derived from powers.
func TestEvaluatorMatchesNaiveUnderRandomOps(t *testing.T) {
	c := model.DIETDefaults()
	const bw, wapp = 100.0, 59.582
	rng := rand.New(rand.NewSource(17))

	close := func(a, b float64) bool {
		scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
		return math.Abs(a-b) <= 1e-9*scale
	}

	for trial := 0; trial < 50; trial++ {
		inc := NewEvaluator(c, bw, wapp)
		nai := NewNaiveEvaluator(c, bw, wapp)
		type nodeInfo struct {
			id     int
			parent int
			agent  bool
		}
		power := func() float64 { return 50 + rng.Float64()*2000 }
		// Link palette: default (0), the explicit default, a slow WAN hop,
		// a fast LAN. Drawing zeros keeps the uniform path covered too.
		link := func() float64 { return []float64{0, bw, 2, 1000}[rng.Intn(4)] }
		rootPow := power()
		rootBW := link()
		inc.AddAgent(0, -1, rootPow, rootBW)
		nai.AddAgent(0, -1, rootPow, rootBW)
		nodes := []nodeInfo{{id: 0, parent: -1, agent: true}}

		steps := 5 + rng.Intn(60)
		for s := 0; s < steps; s++ {
			switch op := rng.Intn(10); {
			case op < 5 || len(nodes) < 2: // attach a server under a random agent
				var agents []int
				for _, n := range nodes {
					if n.agent {
						agents = append(agents, n.id)
					}
				}
				parent := agents[rng.Intn(len(agents))]
				id := len(nodes)
				w, l := power(), link()
				inc.AddServer(id, parent, w, l)
				nai.AddServer(id, parent, w, l)
				nodes = append(nodes, nodeInfo{id: id, parent: parent})
			case op < 7: // promote a random server
				var servers []int
				for i, n := range nodes {
					if !n.agent {
						servers = append(servers, i)
					}
				}
				if len(servers) == 0 {
					continue
				}
				i := servers[rng.Intn(len(servers))]
				inc.Promote(nodes[i].id)
				nai.Promote(nodes[i].id)
				nodes[i].agent = true
			default: // re-back a random node with a new power and link
				i := rng.Intn(len(nodes))
				w, l := power(), link()
				inc.SetBacking(nodes[i].id, w, l)
				nai.SetBacking(nodes[i].id, w, l)
			}

			is, iv := inc.Eval()
			ns, nv := nai.Eval()
			if !close(is, ns) || !close(iv, nv) {
				t.Fatalf("trial %d step %d: Eval diverged: (%.12g,%.12g) vs (%.12g,%.12g)", trial, s, is, iv, ns, nv)
			}
			// What-ifs against every agent/server exercise peekExcluding.
			probe, probeBW := power(), link()
			for _, n := range nodes {
				if n.agent {
					if a, b := inc.RhoAfterAttach(n.id, probe, probeBW), nai.RhoAfterAttach(n.id, probe, probeBW); !close(a, b) {
						t.Fatalf("trial %d step %d: RhoAfterAttach(%d) %.12g vs %.12g", trial, s, n.id, a, b)
					}
					if a, b := inc.RhoAfterReback(n.id, probe, probeBW), nai.RhoAfterReback(n.id, probe, probeBW); !close(a, b) {
						t.Fatalf("trial %d step %d: RhoAfterReback(%d) %.12g vs %.12g", trial, s, n.id, a, b)
					}
				} else {
					if a, b := inc.RhoAfterDrop(n.id, n.parent), nai.RhoAfterDrop(n.id, n.parent); !close(a, b) {
						t.Fatalf("trial %d step %d: RhoAfterDrop(%d) %.12g vs %.12g", trial, s, n.id, a, b)
					}
				}
			}
			// One agent/server swap what-if per step.
			var agents, servers []int
			for _, n := range nodes {
				if n.agent {
					agents = append(agents, n.id)
				} else {
					servers = append(servers, n.id)
				}
			}
			if len(servers) > 0 {
				a := agents[rng.Intn(len(agents))]
				sv := servers[rng.Intn(len(servers))]
				if x, y := inc.RhoAfterSwap(a, sv), nai.RhoAfterSwap(a, sv); !close(x, y) {
					t.Fatalf("trial %d step %d: RhoAfterSwap(%d,%d) %.12g vs %.12g", trial, s, a, sv, x, y)
				}
			}
		}
	}
}

// TestEvaluatorEmptyAndReset covers the degenerate states.
func TestEvaluatorEmptyAndReset(t *testing.T) {
	c := model.DIETDefaults()
	ev := NewEvaluator(c, 100, 59.582)
	if s, v := ev.Eval(); s != 0 || v != 0 {
		t.Errorf("empty evaluator: (%g,%g), want (0,0)", s, v)
	}
	ev.AddAgent(0, -1, 400, 0)
	if s, v := ev.Eval(); s != 0 || v != 0 {
		t.Errorf("serverless evaluator: (%g,%g), want (0,0) to match model.Evaluate", s, v)
	}
	ev.AddServer(1, 0, 300, 0)
	s1, v1 := ev.Eval()
	if s1 <= 0 || v1 <= 0 {
		t.Fatalf("one-server evaluator: (%g,%g)", s1, v1)
	}
	ev.Reset()
	if s, v := ev.Eval(); s != 0 || v != 0 {
		t.Errorf("reset evaluator: (%g,%g), want (0,0)", s, v)
	}
	// Reuse after reset must reproduce the same numbers.
	ev.AddAgent(0, -1, 400, 0)
	ev.AddServer(1, 0, 300, 0)
	if s2, v2 := ev.Eval(); s2 != s1 || v2 != v1 {
		t.Errorf("reused evaluator diverged: (%g,%g) vs (%g,%g)", s2, v2, s1, v1)
	}
}

// TestServiceFromAggregates pins the aggregate Eq. 15 form to the model's
// slice-based computation.
func TestServiceFromAggregates(t *testing.T) {
	c := model.DIETDefaults()
	powers := []float64{400, 250, 133.7, 980.2}
	sum := 0.0
	for _, w := range powers {
		sum += w
	}
	got := serviceFromAggregates(c, 100, 59.582, len(powers), sum)
	want := model.ServiceThroughput(c, 100, 59.582, powers)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("serviceFromAggregates %.12g, model %.12g", got, want)
	}
	if serviceFromAggregates(c, 100, 59.582, 0, 0) != 0 {
		t.Error("zero servers must yield zero service")
	}
}
