// Package core implements the paper's primary contribution: automatic
// deployment planning for hierarchical NES middleware on heterogeneous
// platforms (Algorithm 1 of §4), plus the planner abstractions shared with
// the baseline planners of internal/baseline.
//
// A planner consumes a platform description (heterogeneous node powers,
// homogeneous link bandwidth), the middleware cost parameters of Table 3,
// the application service cost Wapp, and an optional client demand. It
// produces a deployment hierarchy that maximises the completed-request
// throughput ρ = min(ρ_sched, ρ_service), preferring the deployment using
// the fewest resources when several reach the maximum.
//
// For fleet-scale pools the heuristic collapses the node list into
// (power, link bandwidth) equivalence classes and plans over classes with
// multiplicity counts (classindex.go, heuristic_class.go): million-node
// platforms drawn from a machine catalogue plan in well under a second,
// with the result provably identical to node-space planning — bit for bit
// whenever the class path engages, to 1e-9 in predicted throughput
// otherwise. Pools that do not compress plan in node space as before, and
// the remaining O(n) candidate scans shard across GOMAXPROCS with
// deterministic tie-breaking (parscan.go), bit-identical at any
// parallelism.
package core

import (
	"context"
	"errors"
	"fmt"

	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

// Request bundles everything a planner needs for one planning run.
type Request struct {
	// Platform is the pool of candidate nodes plus the link bandwidth.
	Platform *platform.Platform
	// Costs holds the middleware cost parameters (Table 3).
	Costs model.Costs
	// Wapp is the service cost of one application request in MFlop.
	Wapp float64
	// Demand optionally caps the useful throughput (client volume in
	// requests/second); zero means plan for maximum throughput.
	Demand workload.Demand
}

// Validate checks the request.
func (r *Request) Validate() error {
	if r.Platform == nil {
		return errors.New("core: nil platform")
	}
	if err := r.Platform.Validate(); err != nil {
		return err
	}
	if err := r.Costs.Validate(); err != nil {
		return err
	}
	if r.Wapp <= 0 {
		return fmt.Errorf("core: Wapp must be positive, got %g", r.Wapp)
	}
	if len(r.Platform.Nodes) < 2 {
		return fmt.Errorf("core: need at least 2 nodes (one agent, one server), got %d", len(r.Platform.Nodes))
	}
	return nil
}

// Plan is a planner's output: the deployment plus its predicted performance.
type Plan struct {
	// Hierarchy is the deployment tree.
	Hierarchy *hierarchy.Hierarchy
	// Eval is the §3 model evaluation of the deployment.
	Eval model.Evaluation
	// Capped is min(Eval.Rho, demand): the useful throughput.
	Capped float64
	// NodesUsed counts the physical nodes consumed by the deployment.
	NodesUsed int
	// Planner names the algorithm that produced the plan.
	Planner string
	// ClassPlanned reports that the plan was computed in class-collapsed
	// space (see ClassIndex); false means node-space planning.
	ClassPlanned bool
	// PoolClasses is the number of (power, link) spec equivalence classes
	// in the pool when ClassPlanned is set; zero otherwise.
	PoolClasses int
}

// XML returns the GoDIET-style deployment XML (the write_xml step).
func (p *Plan) XML() (string, error) {
	return p.Hierarchy.MarshalXMLString()
}

// Summary renders a one-line description for reports.
func (p *Plan) Summary() string {
	s := p.Hierarchy.ComputeStats()
	return fmt.Sprintf("%s: ρ=%.2f req/s (sched=%.2f, service=%.2f, bottleneck=%s), %d nodes (%d agents, %d servers), depth %d, degree [%d,%d]",
		p.Planner, p.Eval.Rho, p.Eval.Sched, p.Eval.Service, p.Eval.Bottleneck,
		s.Nodes, s.Agents, s.Servers, s.Depth, s.MinDegree, s.MaxDegree)
}

// Planner is the common planning interface implemented by the heuristic and
// by every baseline.
type Planner interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Plan computes a deployment for the request.
	Plan(req Request) (*Plan, error)
	// PlanContext computes a deployment for the request, honouring the
	// context's cancellation and deadline. Long-running planners (the
	// heuristic's growth loop, the exhaustive enumeration, the d-ary degree
	// sweep) poll the context between iterations and return ctx.Err()
	// wrapped in a planner error when it fires; cheap planners may only
	// check once up front. Plan(req) is equivalent to
	// PlanContext(context.Background(), req).
	PlanContext(ctx context.Context, req Request) (*Plan, error)
}

// CheckContext polls ctx and wraps its error for planner error messages.
// Planners call it between iterations of their expensive loops; the nil
// fast path is a single atomic load for contexts that cannot fire.
func CheckContext(ctx context.Context, planner string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s interrupted: %w", planner, err)
	}
	return nil
}

// Finalize evaluates h against the request, validates it with the paper's
// final-deployment invariants, and wraps it in a Plan.
func Finalize(name string, req Request, h *hierarchy.Hierarchy) (*Plan, error) {
	if err := h.Validate(hierarchy.Final); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid deployment: %w", name, err)
	}
	if err := h.CheckAgainstPlatform(req.Platform); err != nil {
		return nil, fmt.Errorf("core: %s deployment inconsistent with platform: %w", name, err)
	}
	eval := h.Evaluate(req.Costs, req.Platform.Bandwidth, req.Wapp)
	return &Plan{
		Hierarchy: h,
		Eval:      eval,
		Capped:    req.Demand.Cap(eval.Rho),
		NodesUsed: h.Len(),
		Planner:   name,
	}, nil
}
