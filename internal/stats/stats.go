// Package stats provides the small set of statistics primitives used across
// the ADePT code base: summary statistics, least-squares linear regression
// (used to fit the agent reply-processing cost Wrep against hierarchy degree,
// as in Table 3 of the paper), and series utilities for the experiment
// harness.
//
// Everything operates on float64 slices and is deterministic; no randomness
// lives here.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator needs more samples than
// were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 when fewer than two samples are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest value in xs. It panics on an empty slice, which
// is always a programming error at call sites in this repository.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest value in xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Median returns the median of xs without modifying the input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank interpolation, without modifying the input. It panics on an
// empty slice or out-of-range p — both are programming errors here.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0,100]")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p == 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// Fit holds the result of a simple least-squares linear regression
// y = Intercept + Slope*x.
type Fit struct {
	Slope     float64
	Intercept float64
	// R is the Pearson correlation coefficient between x and y. The paper
	// reports R = 0.97 for the Wrep-versus-degree fit; we reproduce the
	// same statistic for our calibration data.
	R float64
}

// LinearFit performs an ordinary least-squares fit of y against x.
// It requires len(x) == len(y) >= 2 and at least two distinct x values.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, errors.New("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		return Fit{}, ErrInsufficientData
	}
	n := float64(len(x))
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: LinearFit requires at least two distinct x values")
	}
	slope := sxy / sxx
	fit := Fit{
		Slope:     slope,
		Intercept: my - slope*mx,
	}
	if syy > 0 {
		fit.R = sxy / math.Sqrt(sxx*syy)
	} else {
		// A perfectly flat response is perfectly predicted by a flat line.
		fit.R = 1
	}
	_ = n
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f Fit) Predict(x float64) float64 {
	return f.Intercept + f.Slope*x
}

// Summary bundles the summary statistics the experiment harness reports for
// a measured series.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

// RelativeError returns |got-want| / |want|. A zero want with a nonzero got
// returns +Inf; two zeros return 0.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// WithinTolerance reports whether got is within rel relative error of want.
func WithinTolerance(got, want, rel float64) bool {
	return RelativeError(got, want) <= rel
}
