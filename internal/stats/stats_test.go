package stats_test

import (
	"math"
	"testing"
	"testing/quick"

	"adept/internal/stats"
)

func TestSummaryStatistics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := stats.Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := stats.Min(xs); got != 2 {
		t.Errorf("Min = %g, want 2", got)
	}
	if got := stats.Max(xs); got != 9 {
		t.Errorf("Max = %g, want 9", got)
	}
	if got := stats.Median(xs); got != 4.5 {
		t.Errorf("Median = %g, want 4.5", got)
	}
	if got := stats.StdDev(xs); math.Abs(got-2.138) > 0.001 {
		t.Errorf("StdDev = %g, want ≈2.138", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if stats.Mean(nil) != 0 || stats.Median(nil) != 0 || stats.Variance(nil) != 0 {
		t.Error("empty-slice statistics should be 0")
	}
	s := stats.Summarize(nil)
	if s.N != 0 {
		t.Errorf("Summarize(nil).N = %d", s.N)
	}
	defer func() {
		if recover() == nil {
			t.Error("Min(nil) should panic")
		}
	}()
	stats.Min(nil)
}

func TestMedianOdd(t *testing.T) {
	if got := stats.Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median = %g, want 2", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3 + 2x, perfectly linear: slope 2, intercept 3, R = 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 7, 9, 11, 13}
	fit, err := stats.LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 3", fit)
	}
	if math.Abs(fit.R-1) > 1e-12 {
		t.Errorf("R = %g, want 1", fit.R)
	}
	if got := fit.Predict(10); math.Abs(got-23) > 1e-12 {
		t.Errorf("Predict(10) = %g, want 23", got)
	}
}

func TestLinearFitFlat(t *testing.T) {
	fit, err := stats.LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 4 || fit.R != 1 {
		t.Errorf("flat fit = %+v", fit)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := stats.LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := stats.LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := stats.LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("vertical data accepted")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {90, 46},
	}
	for _, tc := range cases {
		if got := stats.Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 10 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { stats.Percentile(nil, 50) },
		func() { stats.Percentile([]float64{1}, -1) },
		func() { stats.Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := stats.Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestRelativeErrorAndTolerance(t *testing.T) {
	if got := stats.RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %g", got)
	}
	if got := stats.RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %g", got)
	}
	if got := stats.RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(1,0) = %g, want +Inf", got)
	}
	if !stats.WithinTolerance(105, 100, 0.05) {
		t.Error("105 should be within 5% of 100")
	}
	if stats.WithinTolerance(106, 100, 0.05) {
		t.Error("106 should not be within 5% of 100")
	}
}

// Property: the fitted line's residuals are orthogonal to x (the normal
// equation), making the fit a true least-squares solution.
func TestPropertyLeastSquaresNormalEquation(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func() float64 {
			rng = rng*1664525 + 1013904223
			return float64(rng%1000)/100 - 5
		}
		n := 10
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) + next()/10
			y[i] = 2*x[i] + next()
		}
		fit, err := stats.LinearFit(x, y)
		if err != nil {
			return true // degenerate x spacing; nothing to check
		}
		var dot, sum float64
		for i := range x {
			r := y[i] - fit.Predict(x[i])
			dot += r * x[i]
			sum += r
		}
		return math.Abs(dot) < 1e-6 && math.Abs(sum) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mean is bounded by Min and Max.
func TestPropertyMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := stats.Mean(clean)
		return m >= stats.Min(clean)-1e-9*math.Abs(m) && m <= stats.Max(clean)+1e-9*math.Abs(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
