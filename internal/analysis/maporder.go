package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` over maps in packages whose output ordering
// must be deterministic. Map iteration order is randomized per run, so a
// map range that feeds plan output, serialized bytes, float accumulation,
// or any snapshot handed to a caller makes the bit-reproducibility
// guarantee (node-space vs class-space, GOMAXPROCS 1/2/8, cache replay)
// silently false.
//
// The one idiom it recognizes as safe is collect-then-sort: a range body
// that only appends loop variables into a slice which the same function
// later passes to sort.* or slices.Sort*. Everything else needs either a
// sorted-key loop or an //adeptvet:allow maporder <reason> directive.
var MapOrder = &Analyzer{
	Name:             "maporder",
	Doc:              "flag nondeterministic map iteration in order-sensitive packages",
	SkipMainPackages: true,
	Run:              runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !isOrderSensitive(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rng.X]
				if !ok || !isMap(tv.Type) {
					return true
				}
				if isCollectThenSort(pass.TypesInfo, fn.Body, rng) {
					return true
				}
				pass.Reportf(rng.Pos(), "map iteration order is nondeterministic and this package's output ordering is determinism-critical; iterate sorted keys instead (collect, sort.*, then index)")
				return true
			})
		}
	}
	return nil
}

// isCollectThenSort recognizes the canonical safe idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys) // or slices.Sort(keys), sort.Slice(keys, ...)
//
// Every statement of the range body must be an append of loop-derived
// values into slice variables, and each of those slices must flow into a
// sort call later in the same function.
func isCollectThenSort(info *types.Info, funcBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	targets := make(map[types.Object]bool)
	for _, stmt := range rng.Body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return false
		}
		lhs, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return false
		}
		obj := info.ObjectOf(lhs)
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return false
	}

	// Every collected slice must be sorted after the loop.
	sorted := make(map[types.Object]bool)
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.ObjectOf(arg); obj != nil && targets[obj] {
				sorted[obj] = true
			}
		}
		return true
	})
	for obj := range targets {
		if !sorted[obj] {
			return false
		}
	}
	return true
}
