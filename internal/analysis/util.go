package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil for calls through function values, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgCall reports whether call invokes the package-level function
// pkgPath.name.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Signature().Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// hasHotPathDirective reports whether the function's doc comment carries
// //adeptvet:hotpath.
func hasHotPathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == HotPathDirective || strings.HasPrefix(c.Text, HotPathDirective+" ") {
			return true
		}
	}
	return false
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0 && b.Info()&types.IsComplex == 0
}

// isMap reports whether t's core type is a map.
func isMap(t types.Type) bool {
	_, ok := types.Unalias(t).Underlying().(*types.Map)
	return ok
}
