// Package scan is the hotalloc fixture: only functions annotated
// //adeptvet:hotpath are checked.
package scan

import "fmt"

// Label runs once per candidate; every allocation-prone construct in it
// is flagged.
//
//adeptvet:hotpath
func Label(id int, names []string) string {
	out := fmt.Sprintf("node-%d", id) // want hotalloc
	seen := make(map[string]bool)     // want hotalloc
	var grown []string
	for _, n := range names {
		grown = append(grown, n) // want hotalloc
	}
	f := func() int { return id } // want hotalloc
	_, _, _ = seen, grown, f
	return out + names[0] // want hotalloc
}

// ColdLabel is the identical body without the annotation: no findings.
func ColdLabel(id int, names []string) string {
	out := fmt.Sprintf("node-%d", id)
	seen := make(map[string]bool)
	var grown []string
	for _, n := range names {
		grown = append(grown, n)
	}
	f := func() int { return id }
	_, _, _ = seen, grown, f
	return out + names[0]
}

// Tuned is hot and allocation-clean save one audited exception.
//
//adeptvet:hotpath
//adeptvet:allow hotalloc one-time header formatting, amortised across the whole scan
func Tuned(id int) string {
	return fmt.Sprint(id) // want hotalloc suppressed
}
