// Package obs is exempt from nondet by configuration: wall-clock reads
// are its job.
package obs

import "time"

// Stamp is clean here; the "obs" segment is exempt.
func Stamp() time.Time { return time.Now() }
