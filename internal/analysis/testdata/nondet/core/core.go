// Package core is the nondet fixture: not an exempt segment, so all
// three reproducibility leaks are flagged.
package core

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the ambient wall clock.
func Stamp() time.Time {
	return time.Now() // want nondet
}

// Jitter consults the shared global generator.
func Jitter() float64 {
	return rand.Float64() // want nondet
}

// Seeded builds an explicit generator: constructors are fine, and the
// method call goes through a *rand.Rand receiver, not the global.
func Seeded(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}

// Debug reads ambient process state.
func Debug() bool {
	return os.Getenv("VETTEST_DEBUG") != "" // want nondet
}

// Uptime is an observability-only stamp with an audited exception.
func Uptime(start time.Time) float64 {
	//adeptvet:allow nondet observability-only stamp; never an input to planning
	return time.Since(start).Seconds() // want nondet suppressed
}
