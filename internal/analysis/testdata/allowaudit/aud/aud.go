// Package aud exercises the allow-directive audit: malformed directives
// and directives that suppress nothing are findings of their own.
package aud

//adeptvet:allow bogus this analyzer does not exist
// want -1 allowaudit

//adeptvet:allow maporder
// want -1 allowaudit

//adeptvet:allow ctxflow nothing in this package uses a context; reported stale
// want -1 allowaudit

// Nothing anchors the package.
func Nothing() {}
