// Package misc sits outside every order-sensitive scope, so maporder
// stays silent here.
package misc

// Keys iterates a map freely: "misc" is not an order-sensitive segment.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
