// Package core is the maporder fixture: the path segment "core" places
// it in the determinism-critical scope, exactly like adept/internal/core.
package core

import "sort"

// Keys leaks map iteration order into its returned slice.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want maporder
		out = append(out, k)
	}
	return out
}

// SortedKeys is the recognized collect-then-sort idiom: the range body
// only appends, and the collected slice is sorted before use.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum documents a genuinely order-free fold with a directive.
func Sum(m map[string]int) int {
	total := 0
	//adeptvet:allow maporder commutative integer sum; iteration order cannot change the result
	for _, v := range m { // want maporder suppressed
		total += v
	}
	return total
}
