// Package lib is the ctxflow fixture: any non-main package is in scope.
package lib

import "context"

// Detach mints a fresh root where the caller's context belongs.
func Detach() context.Context {
	return context.Background() // want ctxflow
}

// Later leaves a placeholder root behind.
func Later() context.Context {
	return context.TODO() // want ctxflow
}

// DaemonRoot documents its fresh root with a function-scoped directive.
//
//adeptvet:allow ctxflow daemon-lifetime lifecycle root; there is no caller context to inherit
func DaemonRoot() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background()) // want ctxflow suppressed
}
