// Package core is the floataccum fixture: determinism-critical scope,
// where bare float accumulation is flagged everywhere.
package core

// Total accumulates naively.
func Total(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x // want floataccum
	}
	return sum
}

// Count accumulates integers, which are exact; no finding.
func Count(xs []float64) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// Drain documents a reference accumulation with a directive.
func Drain(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		//adeptvet:allow floataccum reference accumulation held to 1e-9 by a fuzz harness
		sum -= x // want floataccum suppressed
	}
	return sum
}
