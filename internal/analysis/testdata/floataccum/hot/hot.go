// Package hot exercises the //adeptvet:hotpath gate for floataccum:
// the segment "hot" is outside the determinism-critical set, so only
// annotated functions are checked.
package hot

// Fold is annotated hot; bare float accumulation is flagged here too.
//
//adeptvet:hotpath
func Fold(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x // want floataccum
	}
	return s
}

// Cold is unannotated; the identical accumulation passes.
func Cold(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
