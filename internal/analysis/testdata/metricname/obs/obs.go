// Package obs is the metricname fixture: a type named Registry in a
// package whose path has an "obs" segment matches the analyzer's
// structural obs.Registry pattern.
package obs

// Registry mimics the production registration surface.
type Registry struct{}

// Counter registers a monotonic series.
func (r *Registry) Counter(name, help string) int { return len(name) + len(help) }

// CounterVec registers a labelled monotonic series.
func (r *Registry) CounterVec(name, help string, labels ...string) int {
	return len(name) + len(help) + len(labels)
}

// Gauge registers an instantaneous series.
func (r *Registry) Gauge(name, help string) int { return len(name) + len(help) }

// Register exercises every naming rule.
func Register(r *Registry, dynamic string) {
	r.Counter("adeptd_plans_total", "well-formed counter")
	r.Gauge("adeptd_queue_depth", "well-formed gauge")
	r.Counter("adeptd_plans", "counter missing _total") // want metricname
	r.Gauge("adeptd_uptime_total", "gauge with _total") // want metricname
	r.Counter("plans_total", "missing adeptd_ prefix")  // want metricname
	r.Counter(dynamic, "name not a constant")           // want metricname
	//adeptvet:allow metricname legacy dashboard name kept until the dashboards migrate
	r.CounterVec("adeptd_Legacy_total", "bad case") // want metricname suppressed
}
