package analysis

import (
	"go/ast"
)

// CtxFlow enforces context propagation in request-scoped code: library
// packages must thread their caller's context.Context rather than minting
// fresh roots. A context.Background() (or context.TODO()) deep in the
// stack silently detaches cancellation and deadlines — the planner pool,
// coalesced flights, and autonomic cycles all rely on ctx plumbing to
// shed abandoned work.
//
// Deliberate detaches are fine when they are visible: the singleflight
// coalescer detaches its planning run from the first caller on purpose,
// and documents it with //adeptvet:allow ctxflow. Package main owns the
// root context and is out of scope.
var CtxFlow = &Analyzer{
	Name:             "ctxflow",
	Doc:              "request-scoped code must propagate context.Context; fresh roots need an explicit allow",
	SkipMainPackages: true,
	Run:              runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgCall(pass.TypesInfo, call, "context", "Background"):
				pass.Reportf(call.Pos(), "context.Background() in library code detaches cancellation from the caller; propagate the request context (or //adeptvet:allow ctxflow <reason> for a deliberate detach)")
			case isPkgCall(pass.TypesInfo, call, "context", "TODO"):
				pass.Reportf(call.Pos(), "context.TODO() is a placeholder; thread the caller's context.Context through this path")
			}
			return true
		})
	}
	return nil
}
