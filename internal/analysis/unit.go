package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// VetConfig is the JSON compilation-unit description `go vet` hands a
// -vettool for each package (the unit-checker protocol): source files,
// plus maps resolving each dependency to the export data the compiler
// already produced. The field set mirrors the one cmd/go emits; fields
// adeptvet has no use for (facts, non-Go files) are accepted and ignored.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetUnit runs the analyzers over the single compilation unit described
// by a `go vet` cfg file and returns its findings (nil in VetxOnly mode,
// where go vet only wants facts — adeptvet produces none, but must still
// write the fact file the build cache expects).
func VetUnit(configFile string, analyzers []*Analyzer, opt RunOptions) ([]Finding, error) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", configFile, err)
	}
	if cfg.VetxOutput != "" {
		// Always write the (empty) facts file first: go vet caches it
		// and feeds it back to future runs via PackageVetx.
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, lookup)
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	u := &Unit{ImportPath: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}
	findings, _, err := RunUnit(u, analyzers, opt)
	return findings, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
