package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixtures live in testdata (module vettest), a directory the go
// tool ignores, so they never leak into the repo's own builds or vet
// runs. Each fixture package marks its expected findings with trailing
// comments:
//
//	expr // want <analyzer>
//	expr // want <analyzer> suppressed
//	// want -1 <analyzer>        (finding expected one line above)
//
// The harness loads the whole fixture module through the same loader
// the standalone adeptvet binary uses, runs the full suite with the
// stale-directive audit on, and demands an exact match: every expected
// finding present with the right suppression state, no finding
// unexpected.

var wantRE = regexp.MustCompile(`^// want(?: ([+-]\d+))? ([a-z]+)( suppressed)?$`)

var testdataUnits = sync.OnceValues(func() ([]*Unit, error) {
	return Load("testdata", []string{"./..."})
})

// expectation is one parsed want comment.
type findingKey struct {
	file     string
	line     int
	analyzer string
}

func collectWants(t *testing.T, u *Unit) map[findingKey]bool {
	t.Helper()
	wants := make(map[findingKey]bool)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				offset := 0
				if m[1] != "" {
					var err error
					if offset, err = strconv.Atoi(m[1]); err != nil {
						t.Fatalf("%s: bad want offset %q", pos, m[1])
					}
				}
				key := findingKey{file: pos.Filename, line: pos.Line + offset, analyzer: m[2]}
				if _, dup := wants[key]; dup {
					t.Fatalf("%s: duplicate want for %s", pos, key.analyzer)
				}
				wants[key] = m[3] != ""
			}
		}
	}
	return wants
}

// checkFixture runs the full suite over every fixture package under
// vettest/<name>/ and compares findings against the want comments.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	units, err := testdataUnits()
	if err != nil {
		t.Fatalf("loading testdata module: %v", err)
	}
	prefix := "vettest/" + name + "/"
	ran := 0
	for _, u := range units {
		if !strings.HasPrefix(u.ImportPath, prefix) {
			continue
		}
		ran++
		findings, _, err := RunUnit(u, All(), RunOptions{ReportStale: true})
		if err != nil {
			t.Fatalf("%s: %v", u.ImportPath, err)
		}
		wants := collectWants(t, u)
		for _, f := range findings {
			key := findingKey{file: f.Pos.Filename, line: f.Pos.Line, analyzer: f.Analyzer}
			wantSuppressed, ok := wants[key]
			if !ok {
				t.Errorf("%s: unexpected %s finding: %s", f.Pos, f.Analyzer, f.Message)
				continue
			}
			delete(wants, key)
			if f.Suppressed != wantSuppressed {
				t.Errorf("%s: %s finding suppressed=%v, want %v", f.Pos, f.Analyzer, f.Suppressed, wantSuppressed)
			}
			if f.Suppressed && f.Reason == "" {
				t.Errorf("%s: suppressed %s finding lost its //adeptvet:allow reason", f.Pos, f.Analyzer)
			}
		}
		for key := range wants {
			t.Errorf("%s:%d: expected %s finding never reported", key.file, key.line, key.analyzer)
		}
	}
	if ran == 0 {
		t.Fatalf("no fixture packages under %s", prefix)
	}
}

func TestMapOrderFixture(t *testing.T)   { checkFixture(t, "maporder") }
func TestNonDetFixture(t *testing.T)     { checkFixture(t, "nondet") }
func TestFloatAccumFixture(t *testing.T) { checkFixture(t, "floataccum") }
func TestCtxFlowFixture(t *testing.T)    { checkFixture(t, "ctxflow") }
func TestMetricNameFixture(t *testing.T) { checkFixture(t, "metricname") }
func TestHotAllocFixture(t *testing.T)   { checkFixture(t, "hotalloc") }
func TestAllowAuditFixture(t *testing.T) { checkFixture(t, "allowaudit") }

// TestFixtureWantsExercised guards the harness itself: a fixture whose
// want comments silently stop matching would otherwise pass vacuously.
func TestFixtureWantsExercised(t *testing.T) {
	units, err := testdataUnits()
	if err != nil {
		t.Fatalf("loading testdata module: %v", err)
	}
	perAnalyzer := make(map[string]int)
	suppressedPer := make(map[string]int)
	for _, u := range units {
		for key, suppressed := range collectWants(t, u) {
			perAnalyzer[key.analyzer]++
			if suppressed {
				suppressedPer[key.analyzer]++
			}
		}
	}
	for _, a := range All() {
		if perAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s has no positive fixture case", a.Name)
		}
		if suppressedPer[a.Name] == 0 {
			t.Errorf("analyzer %s has no suppressed fixture case", a.Name)
		}
	}
	if perAnalyzer[StaleName] == 0 {
		t.Errorf("the %s audit has no fixture case", StaleName)
	}
}

// TestStaleDirectiveSkippedOnPartialRun checks that a subset run does
// not misreport in-use directives as stale: only the full suite can
// tell stale from not-yet-exercised.
func TestStaleDirectiveSkippedOnPartialRun(t *testing.T) {
	units, err := testdataUnits()
	if err != nil {
		t.Fatalf("loading testdata module: %v", err)
	}
	for _, u := range units {
		if u.ImportPath != "vettest/maporder/core" {
			continue
		}
		findings, _, err := RunUnit(u, []*Analyzer{NonDet}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("partial nondet run over maporder fixture reported %s: %s", f.Analyzer, f.Message)
		}
		return
	}
	t.Fatal("fixture package vettest/maporder/core not loaded")
}

// TestRepoSelfScan is the acceptance gate: the full suite over the
// repository itself must report zero unsuppressed findings — every
// invariant holds, and every exception carries an audited
// //adeptvet:allow directive (none of them stale).
func TestRepoSelfScan(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check in -short mode")
	}
	units, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(units) < 10 {
		t.Fatalf("self-scan loaded only %d packages; pattern resolution broke", len(units))
	}
	var allows int
	var suppressed int
	for _, u := range units {
		findings, records, err := RunUnit(u, All(), RunOptions{ReportStale: true})
		if err != nil {
			t.Fatalf("%s: %v", u.ImportPath, err)
		}
		allows += len(records)
		for _, f := range findings {
			if f.Suppressed {
				suppressed++
				continue
			}
			t.Errorf("unsuppressed finding: %s", f)
		}
	}
	if allows == 0 {
		t.Error("self-scan saw no //adeptvet:allow directives; directive collection broke")
	}
	if suppressed == 0 {
		t.Error("self-scan saw no suppressed findings; suppression matching broke")
	}
}

// position formatting sanity for Finding.String, used verbatim in vet
// output.
func TestFindingString(t *testing.T) {
	f := Finding{
		Analyzer: "maporder",
		Message:  "msg",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 2},
	}
	if got, want := f.String(), "x.go:3:2: maporder: msg"; got != want {
		t.Fatalf("Finding.String() = %q, want %q", got, want)
	}
}

func ExampleByName() {
	fmt.Println(ByName("maporder").Name, ByName("nope") == nil)
	// Output: maporder true
}
