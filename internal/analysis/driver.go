package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Unit is one loaded, type-checked package ready for analysis: the
// common currency between the standalone loader (load.go) and the
// `go vet -vettool` protocol (unit.go).
type Unit struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// A Finding is one diagnostic after suppression matching, positioned and
// ready to print.
type Finding struct {
	Analyzer   string         `json:"analyzer"`
	Message    string         `json:"message"`
	Pos        token.Position `json:"pos"`
	Suppressed bool           `json:"suppressed,omitempty"`
	// Reason carries the //adeptvet:allow justification when Suppressed.
	Reason string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	return f.Pos.String() + ": " + f.Analyzer + ": " + f.Message
}

// RunOptions controls a driver run.
type RunOptions struct {
	// ReportStale audits unused and malformed //adeptvet:allow
	// directives. Enable only when the full analyzer suite runs —
	// a partial run cannot tell stale from not-yet-exercised.
	ReportStale bool
}

// RunUnit applies the analyzers to one package, matches findings against
// //adeptvet:allow directives, and returns every finding (suppressed ones
// included, flagged) in stable position order, plus the allow audit.
func RunUnit(u *Unit, analyzers []*Analyzer, opt RunOptions) ([]Finding, []AllowRecord, error) {
	allows := collectAllows(u.Fset, u.Files)

	var diags []Diagnostic
	for _, a := range analyzers {
		if a.SkipMainPackages && u.Pkg.Name() == "main" {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, err
		}
	}

	var findings []Finding
	for _, d := range diags {
		if isTestFile(u.Fset, d.Pos) {
			// go vet hands us test variants of each package; the
			// invariants govern production code only.
			continue
		}
		f := Finding{Analyzer: d.Analyzer, Message: d.Message, Pos: u.Fset.Position(d.Pos)}
		f.Reason, f.Suppressed = allows.suppresses(d)
		findings = append(findings, f)
	}
	if opt.ReportStale {
		for _, d := range append(allows.malformed, allows.stale()...) {
			findings = append(findings, Finding{Analyzer: d.Analyzer, Message: d.Message, Pos: u.Fset.Position(d.Pos)})
		}
	}
	sortFindings(findings)
	return findings, allows.records(), nil
}

// Unsuppressed filters to the findings that fail a run.
func Unsuppressed(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
