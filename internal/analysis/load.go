package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Load resolves the patterns (e.g. "./...") against the module rooted at
// dir, type-checks every matched package from source, and returns one
// Unit per package in import-path order.
//
// It shells out to `go list -deps -export -json`, which makes the build
// cache produce export data for every dependency; the matched packages
// themselves are then parsed with comments (the directives live there)
// and type-checked against that export data — the same separate-
// compilation scheme `go vet` uses, with no network and no module
// dependencies.
func Load(dir string, patterns []string) ([]*Unit, error) {
	type listModule struct {
		GoVersion string
	}
	type listPackage struct {
		ImportPath string
		Dir        string
		GoFiles    []string
		Export     string
		DepOnly    bool
		Module     *listModule
	}

	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var units []*Unit
	for _, p := range targets {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		pkg, info, err := typecheck(fset, p.ImportPath, files, exports, goVersion)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		units = append(units, &Unit{
			ImportPath: p.ImportPath,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return units, nil
}

// typecheck checks one package's parsed files against export data for its
// dependencies.
func typecheck(fset *token.FileSet, path string, files []*ast.File, exports map[string]string, goVersion string) (*types.Package, *types.Info, error) {
	lookup := func(pkgPath string) (io.ReadCloser, error) {
		file, ok := exports[pkgPath]
		if !ok {
			// The gc toolchain records vendored standard-library
			// dependencies under a vendor/ prefix.
			if file, ok = exports["vendor/"+pkgPath]; !ok {
				return nil, fmt.Errorf("no export data for %q", pkgPath)
			}
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	info := newTypesInfo()
	pkg, err := conf.Check(path, fset, files, info)
	return pkg, info, err
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}
