package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// HotAlloc guards the planner's allocation budget: inside any function
// whose doc comment carries //adeptvet:hotpath, it flags the constructs
// that quietly allocate per call — fmt formatting, string concatenation,
// closures, unsized map/slice makes, and append-growth of slices that
// were declared without capacity inside a loop. The 5k-node plan costs
// 940 allocs/op after the slab-arena work; one stray fmt.Sprintf in an
// O(n) candidate scan is a per-candidate allocation that erases it.
//
// The directive is opt-in per function, so the check costs nothing
// elsewhere; annotate the evaluator ops and scan kernels, not their
// callers.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-prone constructs inside //adeptvet:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotPathDirective(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	unsized := unsizedSlices(info, fn.Body)

	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			for _, child := range loopChildren(n) {
				ast.Inspect(child, walk)
			}
			loopDepth--
			return false
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal in a hot path allocates a closure per call; hoist it to a named function or method")
			return false // the literal's body is a different (cold) frame
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && isString(tv.Type) {
					pass.Reportf(n.Pos(), "string concatenation in a hot path allocates; compare pieces or reuse a buffer")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, unsized, loopDepth > 0)
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

func checkHotCall(pass *Pass, call *ast.CallExpr, unsized map[types.Object]bool, inLoop bool) {
	info := pass.TypesInfo
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in a hot path allocates for formatting; precompute the string or use strconv on a reused buffer", fn.Name())
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	switch id.Name {
	case "make":
		tv, ok := info.Types[call.Args[0]]
		if !ok {
			return
		}
		switch types.Unalias(tv.Type).Underlying().(type) {
		case *types.Map:
			if len(call.Args) == 1 {
				pass.Reportf(call.Pos(), "make(map) without a size hint in a hot path rehashes as it grows; pass the expected element count")
			}
		case *types.Slice:
			if len(call.Args) == 2 && isConstZero(info, call.Args[1]) {
				pass.Reportf(call.Pos(), "make of a zero-length slice without capacity in a hot path grows by reallocation; pass the expected capacity")
			}
		}
	case "append":
		if !inLoop || len(call.Args) == 0 {
			return
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.ObjectOf(arg); obj != nil && unsized[obj] {
				pass.Reportf(call.Pos(), "append to %s inside a loop reallocates as it grows; declare it with make(..., 0, n)", arg.Name)
			}
		}
	}
}

// unsizedSlices collects slice variables declared in the function without
// any capacity: `var s []T`, `s := []T{}`, or `s := []T(nil)`.
func unsizedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			if _, ok := types.Unalias(obj.Type()).Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gen, ok := n.Decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				return true
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isEmptySliceExpr(info, n.Rhs[i]) {
					continue
				}
				mark(id)
			}
		}
		return true
	})
	return out
}

// isEmptySliceExpr matches `[]T{}` and `[]T(nil)`.
func isEmptySliceExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr: // conversion []T(nil)
		if len(e.Args) != 1 {
			return false
		}
		if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
			tv, ok := info.Types[e.Fun]
			return ok && tv.IsType()
		}
	}
	return false
}

func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 0
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// loopChildren returns the sub-nodes of a loop statement to walk while
// tracking loop depth.
func loopChildren(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.ForStmt:
		if n.Init != nil {
			out = append(out, n.Init)
		}
		if n.Cond != nil {
			out = append(out, n.Cond)
		}
		if n.Post != nil {
			out = append(out, n.Post)
		}
		out = append(out, n.Body)
	case *ast.RangeStmt:
		if n.Key != nil {
			out = append(out, n.Key)
		}
		if n.Value != nil {
			out = append(out, n.Value)
		}
		out = append(out, n.X, n.Body)
	}
	return out
}
