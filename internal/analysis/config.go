package analysis

import "strings"

// Package scoping. Analyzers decide applicability from the import path's
// final segments, not from a hard-coded module prefix, so the same rules
// govern adept/internal/core and the analysistest fixtures under
// testdata (module vettest, packages like vettest/maporder/core).

// determinismCritical names the packages whose behaviour must be
// bit-reproducible: anything here can reach plan output, serialized bytes,
// or float accumulation order. maporder, nondet, and floataccum treat
// these as hard scope.
var determinismCritical = map[string]bool{
	"core":      true,
	"hierarchy": true,
	"platform":  true,
	"scenario":  true,
	"portfolio": true,
}

// orderSensitive extends the determinism-critical set with packages whose
// *output ordering* must be stable even though they may read the wall
// clock: status snapshots, experiment tables, transport stats. maporder
// scopes these too; nondet does not.
var orderSensitive = map[string]bool{
	"autonomic":   true,
	"experiments": true,
	"runtime":     true,
	"model":       true,
	"sim":         true,
	"deploy":      true,
	"slo":         true,
	"forecast":    true,
	"stats":       true,
	"workload":    true,
	"baseline":    true,
}

// nondetExempt names packages where wall-clock reads, environment access,
// and unseeded randomness are part of the job: metrics timestamping,
// live-runtime deadlines, calibration benchmarks, and this framework
// itself.
var nondetExempt = map[string]bool{
	"obs":      true,
	"runtime":  true,
	"service":  false, // service *is* scoped: its wall-clock stamps carry //adeptvet:allow
	"linpack":  true,
	"blas":     true,
	"calib":    true,
	"analysis": true,
}

// pkgSegment reports whether the import path contains seg as a path
// segment (e.g. "adept/internal/core" has segment "core").
func pkgSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

func inSet(path string, set map[string]bool) bool {
	for _, s := range strings.Split(path, "/") {
		if set[s] {
			return true
		}
	}
	return false
}

// isDeterminismCritical reports whether the package's plans/bytes must be
// bit-reproducible.
func isDeterminismCritical(path string) bool { return inSet(path, determinismCritical) }

// isOrderSensitive reports whether map-iteration order can leak into the
// package's outputs.
func isOrderSensitive(path string) bool {
	return isDeterminismCritical(path) || inSet(path, orderSensitive)
}

// isNonDetScoped reports whether the nondet analyzer applies.
func isNonDetScoped(path string) bool { return !inSet(path, nondetExempt) }
