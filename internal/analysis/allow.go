package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix is the suppression directive. A comment of the form
//
//	//adeptvet:allow <analyzer> <reason>
//
// suppresses findings of <analyzer> on the directive's own line or the
// line immediately below it. Placed in a function's doc comment, it
// suppresses findings of <analyzer> anywhere in that function. The reason
// is mandatory: suppressions are an audited part of the codebase, not an
// escape hatch (`adeptvet -allows` lists them all; directives that no
// longer suppress anything are reported as stale).
const AllowPrefix = "//adeptvet:allow "

// HotPathDirective marks a function as allocation-sensitive for the
// hotalloc analyzer when it appears in the function's doc comment.
const HotPathDirective = "//adeptvet:hotpath"

// StaleName is the pseudo-analyzer name under which malformed and stale
// allow directives are reported.
const StaleName = "allowaudit"

// An allow is one parsed //adeptvet:allow directive.
type allow struct {
	analyzer string
	reason   string
	pos      token.Pos
	file     string
	line     int
	// Function-doc directives scope to the whole declaration.
	scopeStart, scopeEnd token.Pos
	used                 bool
}

// An AllowRecord is the audit view of a directive.
type AllowRecord struct {
	Analyzer string
	Reason   string
	Pos      token.Position
}

// An allowSet holds every directive in a package, plus diagnostics for
// directives that could not be parsed.
type allowSet struct {
	fset      *token.FileSet
	allows    []*allow
	malformed []Diagnostic
}

// collectAllows parses every //adeptvet:allow directive in the files.
// Files named *_test.go are skipped: the invariants govern production
// code, and go vet analyzes test variants of each package.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{fset: fset}
	for _, f := range files {
		if isTestFile(fset, f.Pos()) {
			continue
		}
		// Directives inside a declaration's doc comment scope to the
		// whole declaration; remember each doc group's extent.
		type docScope struct{ start, end token.Pos }
		docs := make(map[*ast.CommentGroup]docScope)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				docs[fn.Doc] = docScope{fn.Pos(), fn.End()}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimRight(AllowPrefix, " ")) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, strings.TrimRight(AllowPrefix, " "))
				fields := strings.Fields(rest)
				if len(fields) == 0 || ByName(fields[0]) == nil {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: StaleName,
						Message:  "malformed //adeptvet:allow directive: first word must name an analyzer (maporder, nondet, floataccum, ctxflow, metricname, hotalloc)",
					})
					continue
				}
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: StaleName,
						Message:  "//adeptvet:allow " + fields[0] + " needs a reason: suppressions are audited, state why the exception is intentional",
					})
					continue
				}
				p := fset.Position(c.Pos())
				a := &allow{
					analyzer: fields[0],
					reason:   strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
					pos:      c.Pos(),
					file:     p.Filename,
					line:     p.Line,
				}
				if sc, ok := docs[cg]; ok {
					a.scopeStart, a.scopeEnd = sc.start, sc.end
				}
				s.allows = append(s.allows, a)
			}
		}
	}
	return s
}

// suppresses reports whether some directive covers the diagnostic, and
// marks that directive used.
func (s *allowSet) suppresses(d Diagnostic) (reason string, ok bool) {
	p := s.fset.Position(d.Pos)
	for _, a := range s.allows {
		if a.analyzer != d.Analyzer {
			continue
		}
		if a.scopeStart.IsValid() {
			if d.Pos >= a.scopeStart && d.Pos < a.scopeEnd {
				a.used = true
				return a.reason, true
			}
			continue
		}
		if a.file == p.Filename && (a.line == p.Line || a.line == p.Line-1) {
			a.used = true
			return a.reason, true
		}
	}
	return "", false
}

// stale reports directives that suppressed nothing. Only meaningful after
// the full analyzer suite ran (a partial run would see false positives).
func (s *allowSet) stale() []Diagnostic {
	var out []Diagnostic
	for _, a := range s.allows {
		if !a.used {
			out = append(out, Diagnostic{
				Pos:      a.pos,
				Analyzer: StaleName,
				Message:  "stale //adeptvet:allow " + a.analyzer + " directive suppresses nothing; remove it",
			})
		}
	}
	return out
}

// records returns the audit view of every directive.
func (s *allowSet) records() []AllowRecord {
	out := make([]AllowRecord, 0, len(s.allows))
	for _, a := range s.allows {
		out = append(out, AllowRecord{Analyzer: a.analyzer, Reason: a.reason, Pos: s.fset.Position(a.pos)})
	}
	return out
}
