package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricName enforces the observability naming convention at every
// obs.Registry registration site: metric names must be compile-time
// constants matching adeptd_<snake_case>, counters must end in _total
// (Prometheus convention for monotonic series), and non-counters must
// not. Dashboards, PromQL recording rules, and the CI smoke job's
// exposition greps all key on these names, so a misnamed metric is a
// silent observability outage.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs metric names must be constant, adeptd_*-prefixed, with _total reserved for counters",
	Run:  runMetricName,
}

var metricNameRE = regexp.MustCompile(`^adeptd(_[a-z0-9]+)+$`)

// counterMethods and otherMethods are the obs.Registry registration
// methods whose first argument is the metric name.
var (
	counterMethods = map[string]bool{"Counter": true, "CounterVec": true, "CounterFunc": true}
	otherMethods   = map[string]bool{
		"Gauge": true, "GaugeVec": true, "GaugeFunc": true,
		"Histogram": true, "HistogramVec": true,
	}
)

func runMetricName(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			method, isCounter, ok := registryMethod(pass.TypesInfo, call)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(), "metric name passed to Registry.%s must be a compile-time constant so it is auditable and greppable", method)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q does not match the adeptd_<snake_case> convention", name)
				return true
			}
			hasTotal := strings.HasSuffix(name, "_total")
			if isCounter && !hasTotal {
				pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total (Prometheus convention for monotonic series)", name)
			}
			if !isCounter && hasTotal {
				pass.Reportf(call.Args[0].Pos(), "%q ends in _total but is registered as a %s; the suffix is reserved for counters", name, strings.ToLower(strings.TrimSuffix(strings.TrimSuffix(method, "Vec"), "Func")))
			}
			return true
		})
	}
	return nil
}

// registryMethod reports whether call is a metric registration on an
// obs.Registry (matched structurally: a type named Registry in a package
// whose path ends in "obs", so the analysistest fixture package
// qualifies too).
func registryMethod(info *types.Info, call *ast.CallExpr) (method string, isCounter bool, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", false, false
	}
	name := sel.Sel.Name
	if !counterMethods[name] && !otherMethods[name] {
		return "", false, false
	}
	fn, okFn := info.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Signature().Recv() == nil {
		return "", false, false
	}
	recv := fn.Signature().Recv().Type()
	if ptr, okPtr := types.Unalias(recv).(*types.Pointer); okPtr {
		recv = ptr.Elem()
	}
	named, okNamed := types.Unalias(recv).(*types.Named)
	if !okNamed || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return "", false, false
	}
	if !pkgSegment(named.Obj().Pkg().Path(), "obs") {
		return "", false, false
	}
	return name, counterMethods[name], true
}
