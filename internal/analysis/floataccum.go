package analysis

import (
	"go/ast"
	"go/token"
)

// FloatAccum flags bare `+=` / `-=` accumulation on floating-point values
// in determinism-critical packages and in //adeptvet:hotpath functions.
// Naive float accumulation drifts with evaluation order, which is exactly
// what the incremental evaluator's op-log replay and the parallel
// candidate scans reorder; the planner's 1e-9 evaluator-agreement and
// bit-identical-plan guarantees rest on the Neumaier compensated-sum
// helpers (core.Evaluator.sumAdd) instead. The helpers' own
// implementation is the one legitimate bare accumulation and carries a
// function-scoped //adeptvet:allow floataccum directive.
var FloatAccum = &Analyzer{
	Name:             "floataccum",
	Doc:              "flag bare float += / -= accumulation in evaluator and heuristic hot paths",
	SkipMainPackages: true,
	Run:              runFloatAccum,
}

func runFloatAccum(pass *Pass) error {
	critical := isDeterminismCritical(pass.Pkg.Path())
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !critical && !hasHotPathDirective(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				assign, ok := n.(*ast.AssignStmt)
				if !ok || (assign.Tok != token.ADD_ASSIGN && assign.Tok != token.SUB_ASSIGN) {
					return true
				}
				tv, ok := pass.TypesInfo.Types[assign.Lhs[0]]
				if !ok || !isFloat(tv.Type) {
					return true
				}
				pass.Reportf(assign.Pos(), "bare float accumulation drifts with evaluation order; use a compensated sum (cf. core.Evaluator.sumAdd) so reordered scans stay bit-identical")
				return true
			})
		}
	}
	return nil
}
