// Package analysis is adeptvet's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// model (Analyzer, Pass, Diagnostic) plus the project-specific analyzers
// that machine-enforce the planner's determinism, hot-path, and
// observability invariants.
//
// The repo's headline guarantee — plans bit-identical across node-space vs
// class-space planning, GOMAXPROCS 1/2/8, and cache replay — is otherwise
// enforced only by tests that sample the input space. One unsorted map
// range or stray time.Now in internal/core silently breaks it until a
// differential test happens to catch it. The analyzers here turn those
// tribal-knowledge invariants into lint rules:
//
//	maporder    map iteration order must not reach output in
//	            determinism-critical packages
//	nondet      no wall clock, global math/rand, or environment reads in
//	            planner packages
//	floataccum  no bare float += / -= accumulation in evaluator hot paths
//	            (use the compensated-sum helpers)
//	ctxflow     request-scoped code must propagate context.Context;
//	            context.Background() needs an explicit allow
//	metricname  obs metric names must follow the adeptd_* convention,
//	            counters ending in _total
//	hotalloc    no allocation-prone constructs inside functions annotated
//	            //adeptvet:hotpath
//
// Intentional exceptions are annotated in source with
//
//	//adeptvet:allow <analyzer> <reason>
//
// which suppresses findings on the same or the following line (or, when
// placed in a function's doc comment, in the whole function). Every
// suppression carries a human-readable reason and is auditable via
// `adeptvet -allows`; stale directives that no longer suppress anything
// are themselves reported.
//
// The framework would normally be golang.org/x/tools/go/analysis +
// analysistest, but this module is deliberately dependency-free (see the
// note in go.mod), so the loader speaks `go list -export` and the driver
// speaks the `go vet -vettool` unit-checker protocol using only the
// standard library.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis: its name, documentation, and logic.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //adeptvet:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks,
	// shown by `adeptvet help`.
	Doc string

	// SkipMainPackages excludes package main from the analysis (command
	// entry points legitimately read flags, the environment, and the
	// wall clock, and own the root context).
	SkipMainPackages bool

	// Run applies the analyzer to a package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the type-checked syntax of a single
// package and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding from one analyzer, positioned in the fileset
// of the pass that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// All returns the full adeptvet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		NonDet,
		FloatAccum,
		CtxFlow,
		MetricName,
		HotAlloc,
	}
}

// ByName resolves an analyzer from the suite, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
