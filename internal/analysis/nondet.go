package analysis

import (
	"go/ast"
)

// NonDet forbids the three classic reproducibility leaks inside planner
// packages: wall-clock reads (time.Now/Since/Until), the global math/rand
// generator, and environment reads (os.Getenv and friends). Planner code
// must take explicit *rand.Rand values seeded by the caller and explicit
// timestamps, so the same inputs always produce the same plan bytes.
//
// Seeded generator construction (rand.New(rand.NewSource(seed))) is fine;
// it is the shared global source and ambient clock/environment that break
// replay. Packages whose job is wall-clock measurement (obs, runtime,
// calib, linpack, blas) are exempt by configuration; service and
// autonomic wall-clock stamps carry //adeptvet:allow nondet annotations
// so each one is individually justified.
var NonDet = &Analyzer{
	Name:             "nondet",
	Doc:              "forbid wall clock, global math/rand, and environment reads in planner packages",
	SkipMainPackages: true,
	Run:              runNonDet,
}

// randConstructors are the package-level math/rand functions that build
// explicitly-seeded generators rather than consulting the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runNonDet(pass *Pass) error {
	if !isNonDetScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgCall(pass.TypesInfo, call, "time", "Now", "Since", "Until"):
				pass.Reportf(call.Pos(), "wall-clock read in a planner package breaks plan replay; take the timestamp from the caller (or //adeptvet:allow nondet <reason> for observability-only stamps)")
			case isGlobalRandCall(pass, call):
				pass.Reportf(call.Pos(), "global math/rand generator is shared, unseeded process state; thread an explicit *rand.Rand seeded by the caller")
			case isPkgCall(pass.TypesInfo, call, "os", "Getenv", "LookupEnv", "Environ", "ExpandEnv"):
				pass.Reportf(call.Pos(), "environment read in a planner package makes plans depend on ambient process state; plumb configuration through explicit parameters")
			}
			return true
		})
	}
	return nil
}

func isGlobalRandCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	return !randConstructors[fn.Name()]
}
