// Package linpack implements the Linpack-style mini-benchmark the paper
// uses to measure node computing power in MFlop/s (§5.1 and §5.3): LU
// factorisation with partial pivoting of a dense random system, a
// triangular solve, and a residual check, timed and converted to MFlop/s
// with the standard Linpack operation count 2n³/3 + 2n².
package linpack

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ErrSingular is returned when factorisation meets a zero pivot.
var ErrSingular = errors.New("linpack: matrix is singular")

// Factor holds an LU factorisation (in-place, Doolittle with partial
// pivoting): L has unit diagonal and shares storage with U.
type Factor struct {
	N    int
	LU   []float64 // n×n row-major
	Piv  []int     // pivot row chosen at each step
	sign float64
}

// Factorize computes the LU factorisation of the n×n row-major matrix a.
// The input slice is not modified.
func Factorize(a []float64, n int) (*Factor, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("linpack: matrix has %d elements, want %d", len(a), n*n)
	}
	lu := append([]float64(nil), a...)
	piv := make([]int, n)
	f := &Factor{N: n, LU: lu, Piv: piv, sign: 1}
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k.
		p := k
		max := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > max {
				max, p = v, i
			}
		}
		piv[k] = p
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			row1 := lu[k*n : (k+1)*n]
			row2 := lu[p*n : (p+1)*n]
			for j := range row1 {
				row1[j], row2[j] = row2[j], row1[j]
			}
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			irow := lu[i*n : (i+1)*n]
			krow := lu[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				irow[j] -= m * krow[j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b using the factorisation; b is not modified.
func (f *Factor) Solve(b []float64) ([]float64, error) {
	n := f.N
	if len(b) != n {
		return nil, fmt.Errorf("linpack: rhs has %d elements, want %d", len(b), n)
	}
	x := append([]float64(nil), b...)
	// Apply pivots.
	for k := 0; k < n; k++ {
		if p := f.Piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution (unit lower).
	for i := 1; i < n; i++ {
		sum := x[i]
		row := f.LU[i*n : (i+1)*n]
		for j := 0; j < i; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum
	}
	// Back substitution (upper).
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		row := f.LU[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum / row[i]
	}
	return x, nil
}

// Result is one mini-benchmark measurement.
type Result struct {
	// N is the problem size.
	N int
	// MFlops is the measured computing power in MFlop/s.
	MFlops float64
	// Residual is the normalised residual ‖Ax−b‖∞ / (n·‖A‖∞·ε); values
	// below ~10 indicate a correct solve, as in standard Linpack reports.
	Residual float64
	// Elapsed is the wall-clock factor+solve time.
	Elapsed time.Duration
}

// Ops returns the Linpack flop count for size n: 2n³/3 + 2n².
func Ops(n int) float64 {
	fn := float64(n)
	return 2*fn*fn*fn/3 + 2*fn*fn
}

// Benchmark runs the mini-benchmark at size n with a deterministic system
// and returns the measured node power. Typical calibration uses n ≈ 200–500:
// large enough to exceed timer resolution, small enough to finish fast.
func Benchmark(n int, seed int64) (Result, error) {
	if n < 2 {
		return Result{}, fmt.Errorf("linpack: size %d too small", n)
	}
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	for i := range a {
		a[i] = 2*rng.Float64() - 1
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}

	start := time.Now()
	f, err := Factorize(a, n)
	if err != nil {
		return Result{}, err
	}
	x, err := f.Solve(b)
	if err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)

	res := Result{N: n, Elapsed: elapsed, Residual: residual(a, x, b, n)}
	if secs := elapsed.Seconds(); secs > 0 {
		res.MFlops = Ops(n) / secs / 1e6
	}
	return res, nil
}

// residual computes ‖Ax−b‖∞ / (n·‖A‖∞·ε).
func residual(a, x, b []float64, n int) float64 {
	var rmax, amax float64
	for i := 0; i < n; i++ {
		sum := -b[i]
		row := a[i*n : (i+1)*n]
		var rowsum float64
		for j := 0; j < n; j++ {
			sum += row[j] * x[j]
			rowsum += math.Abs(row[j])
		}
		rmax = math.Max(rmax, math.Abs(sum))
		amax = math.Max(amax, rowsum)
	}
	eps := math.Nextafter(1, 2) - 1
	den := float64(n) * amax * eps
	if den == 0 {
		return math.Inf(1)
	}
	return rmax / den
}
