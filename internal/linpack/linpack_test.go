package linpack_test

import (
	"math"
	"testing"
	"testing/quick"

	"adept/internal/linpack"
)

func TestFactorizeSolveKnownSystem(t *testing.T) {
	// A = [[2, 1], [1, 3]], b = [3, 5] → x = [4/5, 7/5].
	a := []float64{2, 1, 1, 3}
	f, err := linpack.Factorize(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Errorf("x = %v, want [0.8, 1.4]", x)
	}
}

func TestFactorizeSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4} // rank 1
	if _, err := linpack.Factorize(a, 2); err != linpack.ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestFactorizeBadShape(t *testing.T) {
	if _, err := linpack.Factorize([]float64{1, 2, 3}, 2); err == nil {
		t.Error("wrong-size matrix accepted")
	}
}

func TestSolveBadRHS(t *testing.T) {
	f, err := linpack.Factorize([]float64{2, 0, 0, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("wrong-size rhs accepted")
	}
}

func TestOps(t *testing.T) {
	// 2n³/3 + 2n² at n = 3: 18 + 18 = 36.
	if got := linpack.Ops(3); got != 36 {
		t.Errorf("Ops(3) = %g, want 36", got)
	}
}

func TestBenchmarkProducesSaneMeasurement(t *testing.T) {
	res, err := linpack.Benchmark(128, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.MFlops <= 0 {
		t.Errorf("MFlops = %g, want > 0", res.MFlops)
	}
	if res.Residual > 50 {
		t.Errorf("residual = %g, want < 50 (solution is wrong)", res.Residual)
	}
	if res.N != 128 {
		t.Errorf("N = %d", res.N)
	}
}

func TestBenchmarkRejectsTinySizes(t *testing.T) {
	if _, err := linpack.Benchmark(1, 1); err == nil {
		t.Error("size 1 accepted")
	}
}

// Property: for random diagonally-dominant systems (always non-singular),
// factorise+solve reproduces b within numerical tolerance.
func TestPropertySolveResidual(t *testing.T) {
	f := func(seed uint32) bool {
		n := 8
		rng := seed
		next := func() float64 {
			rng = rng*1664525 + 1013904223
			return float64(rng%2000)/1000 - 1
		}
		a := make([]float64, n*n)
		for i := range a {
			a[i] = next()
		}
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = next()
		}
		fac, err := linpack.Factorize(a, n)
		if err != nil {
			return false
		}
		x, err := fac.Solve(b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLinpack256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := linpack.Benchmark(256, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
