package experiments_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adept/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current outputs")

// goldenParams pins the exact calibration the golden files were generated
// with; any drift in defaults would otherwise masquerade as planner drift.
func goldenParams() experiments.Params {
	p := experiments.Defaults()
	p.Quick = true
	return p
}

// maskTable3 blanks the wall-clock-measured cells of the calibration
// table: Table 3 is produced by timing the running middleware, so its
// measured column and sample-count note vary run to run. The structure,
// the parameter names, and the configured reference values are exact.
func maskTable3(rep experiments.Report) experiments.Report {
	masked := rep
	masked.Rows = make([][]string, len(rep.Rows))
	for i, row := range rep.Rows {
		r := append([]string(nil), row...)
		if len(r) > 2 {
			r[2] = "(measured)"
		}
		masked.Rows[i] = r
	}
	masked.Notes = append([]string(nil), rep.Notes...)
	if len(masked.Notes) > 0 {
		masked.Notes[0] = "(measurement statistics vary run to run)"
	}
	return masked
}

// TestGoldenReports locks every paper-reproduction table and figure to a
// committed golden render: a planner or model refactor that silently
// shifts any reproduced number fails here, with a diffable artifact.
// Regenerate with:
//
//	go test ./internal/experiments -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, entry := range experiments.Registry() {
		entry := entry
		t.Run(entry.ID, func(t *testing.T) {
			rep, err := entry.Run(goldenParams())
			if err != nil {
				t.Fatalf("%s: %v", entry.ID, err)
			}
			if entry.ID == "table3" {
				rep = maskTable3(rep)
			}
			got := rep.Render()
			path := filepath.Join("testdata", entry.ID+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s\n--- first differing line ---\n%s",
					entry.ID, got, want, firstDiffLine(got, string(want)))
			}
		})
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "got:  " + al[i] + "\nwant: " + bl[i]
		}
	}
	return "(length differs)"
}
