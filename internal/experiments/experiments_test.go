package experiments_test

import (
	"strings"
	"testing"

	"adept/internal/experiments"
)

func quickParams() experiments.Params {
	p := experiments.Defaults()
	p.Quick = true
	return p
}

// TestAllExperimentsRunAndReproduceShapes runs the full registry in quick
// mode and asserts that every report carries its REPRODUCED shape verdict
// where one is computed.
func TestAllExperimentsRunAndReproduceShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, entry := range experiments.Registry() {
		entry := entry
		t.Run(entry.ID, func(t *testing.T) {
			rep, err := entry.Run(quickParams())
			if err != nil {
				t.Fatalf("%s: %v", entry.ID, err)
			}
			if rep.ID != entry.ID {
				t.Errorf("report ID %q, want %q", rep.ID, entry.ID)
			}
			if len(rep.Rows) == 0 {
				t.Errorf("%s: empty report", entry.ID)
			}
			text := rep.Render()
			if strings.Contains(text, "NOT reproduced") {
				t.Errorf("%s: shape not reproduced:\n%s", entry.ID, text)
			}
			t.Logf("\n%s", text)
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := experiments.Lookup("table4"); !ok {
		t.Error("table4 not registered")
	}
	if _, ok := experiments.Lookup("bogus"); ok {
		t.Error("bogus experiment found")
	}
	if got := len(experiments.IDs()); got != 8 {
		t.Errorf("%d experiments registered, want 8 (Tables 3-4, Figs 2-7)", got)
	}
}

func TestReportRenderAligned(t *testing.T) {
	rep := experiments.Report{
		ID:      "x",
		Title:   "t",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	out := rep.Render()
	for _, want := range []string{"X — t", "a", "bbbb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}
