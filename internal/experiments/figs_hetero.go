package experiments

import (
	"fmt"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/sim"
	"adept/internal/workload"
)

// heteroDeployments plans the three §5.3 deployments on the heterogenised
// cluster: the intuitive star, the intuitive balanced two-level tree
// (degree 14, as in the paper), and the heuristic's automatic deployment.
func heteroDeployments(p Params, nodes, dgemmN int) (star, balanced, automatic *core.Plan, err error) {
	plat, err := heterogenizedPlatform(p, "orsay", nodes)
	if err != nil {
		return nil, nil, nil, err
	}
	req := core.Request{
		Platform: plat,
		Costs:    p.Costs,
		Wapp:     workload.DGEMM{N: dgemmN}.MFlop(),
	}
	if star, err = (&baseline.Star{}).Plan(req); err != nil {
		return nil, nil, nil, fmt.Errorf("star: %w", err)
	}
	if balanced, err = (&baseline.Balanced{Degree: 14}).Plan(req); err != nil {
		return nil, nil, nil, fmt.Errorf("balanced: %w", err)
	}
	if automatic, err = core.NewHeuristic().Plan(req); err != nil {
		return nil, nil, nil, fmt.Errorf("heuristic: %w", err)
	}
	return star, balanced, automatic, nil
}

// heteroFigure runs the Figs. 6/7 comparison: measured load curves for each
// deployment on the heterogenised 200-node cluster.
func heteroFigure(p Params, id, title string, dgemmN int, levels []int) (Report, error) {
	nodes := 200
	quickFactor := 1.0
	if p.Quick {
		nodes = 60
		quickFactor = 0.4
		if len(levels) > 4 {
			levels = []int{levels[0], levels[1], levels[2], levels[len(levels)-1]}
		}
	}
	star, balanced, automatic, err := heteroDeployments(p, nodes, dgemmN)
	if err != nil {
		return Report{}, fmt.Errorf("%s: %w", id, err)
	}
	wapp := workload.DGEMM{N: dgemmN}.MFlop()

	// One service request takes wapp/power seconds, and k closed-loop
	// clients cycle with period ≈ k/ρ (Little's law, ρ estimated from the
	// model). Saturated deployments complete requests in waves of that
	// period, so the warmup must cover the initial fill (two cycles) and
	// the window must span several cycles to average the waves out.
	serviceTime := wapp / p.NodePower
	timing := func(plan *core.Plan, clients int) (warmup, window float64) {
		cycle := float64(clients) / maxf(plan.Eval.Rho, 1)
		warmup = (maxf(2, 3*serviceTime) + 2*cycle) * quickFactor
		window = maxf(maxf(4, 6*serviceTime), 3*cycle) * quickFactor
		return warmup, window
	}

	series := make([][]sim.Point, 3)
	for i, plan := range []*core.Plan{star, balanced, automatic} {
		pts := make([]sim.Point, 0, len(levels))
		for _, k := range levels {
			warmup, window := timing(plan, k)
			res, err := sim.Measure(plan.Hierarchy, p.Costs, p.Bandwidth, wapp,
				sim.Config{Clients: k, Warmup: warmup, Window: window})
			if err != nil {
				return Report{}, fmt.Errorf("%s: %s: %w", id, plan.Planner, err)
			}
			pts = append(pts, sim.Point{Clients: k, Throughput: res.Throughput})
		}
		series[i] = pts
	}

	rep := Report{
		ID:      id,
		Title:   title,
		Columns: []string{"clients", "star (req/s)", "balanced (req/s)", "automatic (req/s)"},
	}
	maxes := make([]float64, 3)
	for i := range levels {
		row := []string{fmt.Sprintf("%d", levels[i])}
		for j := range series {
			row = append(row, fmtF(series[j][i].Throughput))
			if series[j][i].Throughput > maxes[j] {
				maxes[j] = series[j][i].Throughput
			}
		}
		rep.Rows = append(rep.Rows, row)
	}

	autoStats := automatic.Hierarchy.ComputeStats()
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"automatic deployment uses %d of %d nodes (%d agents, %d servers, depth %d); star/balanced use the whole pool",
		autoStats.Nodes, nodes, autoStats.Agents, autoStats.Servers, autoStats.Depth))
	verdict := "REPRODUCED"
	if !(maxes[2] >= maxes[0] && maxes[2] >= maxes[1]) {
		verdict = "NOT reproduced"
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"paper shape: automatic ≥ star and automatic ≥ balanced — %s (max star %.1f, balanced %.1f, automatic %.1f)",
		verdict, maxes[0], maxes[1], maxes[2]))
	return rep, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Fig6 — heterogeneous cluster, DGEMM 310x310: the automatically planned
// hierarchy beats both intuitive deployments.
func Fig6(p Params) (Report, error) {
	levels := []int{1, 10, 50, 100, 200, 400, 700}
	return heteroFigure(p, "fig6",
		"Heterogenised 200-node cluster, DGEMM 310x310: star vs balanced vs automatic", 310, levels)
}

// Fig7 — heterogeneous cluster, DGEMM 1000x1000: the heuristic degenerates
// to a star, which beats the balanced deployment.
func Fig7(p Params) (Report, error) {
	levels := []int{1, 5, 10, 25, 50, 100, 250, 500}
	rep, err := heteroFigure(p, "fig7",
		"Heterogenised 200-node cluster, DGEMM 1000x1000: automatic (≈star) vs balanced", 1000, levels)
	if err != nil {
		return rep, err
	}
	return rep, nil
}
