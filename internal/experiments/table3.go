package experiments

import (
	"fmt"
	"time"

	"adept/internal/calib"
	"adept/internal/runtime"
	"adept/internal/workload"
)

// Table3 regenerates the middleware parameter calibration of Table 3 by
// measurement against the running middleware: message sizes from metered
// transport capture, Wrep(d) from a linear fit of timed reply treatment,
// with the configured DIET values shown alongside for comparison.
func Table3(p Params) (Report, error) {
	opts := runtime.Options{
		Costs:        p.Costs,
		Bandwidth:    p.Bandwidth,
		Wapp:         workload.DGEMM{N: 100}.MFlop(),
		TimeScale:    0.02,
		ReplyTimeout: 2 * time.Second,
	}
	capture := 500 * time.Millisecond
	perDegree := 1200 * time.Millisecond
	degrees := []int{1, 2, 4, 8, 12, 16}
	if p.Quick {
		capture = 150 * time.Millisecond
		perDegree = 250 * time.Millisecond
		degrees = []int{1, 4, 8}
	}

	sizes, err := calib.MeasureMessageSizes(p.NodePower, p.NodePower, opts, 1, capture)
	if err != nil {
		return Report{}, fmt.Errorf("table3: %w", err)
	}
	// The Wrep timing measurement needs a coarser time scale: at the
	// throughput-measurement scale the Wrep(d) sleeps are sub-microsecond
	// and drown in OS timer noise (±~1ms), exactly as a too-fine stopwatch
	// would on the real testbed. Scale 50 puts the per-child slope at
	// ~0.7ms/child, an order of magnitude above the noise floor.
	wrepOpts := opts
	wrepOpts.TimeScale = 50.0
	wrep, err := calib.MeasureWrep(p.NodePower, p.NodePower, wrepOpts, degrees, perDegree)
	if err != nil {
		return Report{}, fmt.Errorf("table3: %w", err)
	}

	c := p.Costs
	rep := Report{
		ID:      "table3",
		Title:   "Measured middleware parameters (paper Table 3 methodology)",
		Columns: []string{"element", "parameter", "measured", "configured (Table 3)"},
		Rows: [][]string{
			{"agent", "Sreq (Mb)", fmtF(sizes.SchedRequest), fmtF(c.AgentSreq)},
			{"agent", "Srep (Mb)", fmtF(sizes.SchedReply), fmtF(c.AgentSrep)},
			{"agent", "Wfix (MFlop)", fmtF(wrep.WfixMFlop), fmtF(c.AgentWfix)},
			{"agent", "Wsel (MFlop/child)", fmtF(wrep.WselMFlop), fmtF(c.AgentWsel)},
			{"server", "Sreq (Mb)", fmtF(sizes.ServiceRequest), fmtF(c.ServerSreq)},
			{"server", "Srep (Mb)", fmtF(sizes.ServiceReply), fmtF(c.ServerSrep)},
		},
		Notes: []string{
			fmt.Sprintf("captured %d messages; Wrep fit over %d samples, correlation R = %.3f (paper: 0.97)",
				sizes.Messages, wrep.Samples, wrep.Fit.R),
			"measured message sizes are gob wire bytes (paper: tcpdump+Ethereal captures, CORBA encoding), so absolute values differ; the agent/server asymmetry and the linear Wrep(d) law are the reproduced results",
		},
	}
	return rep, nil
}
