package experiments

import (
	"fmt"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/workload"
)

// table4Case is one row of Table 4: a DGEMM size and the node pool the
// paper reserved for it.
type table4Case struct {
	DgemmN int
	Nodes  int
}

// table4Cases mirrors the paper's rows.
func table4Cases() []table4Case {
	return []table4Case{
		{10, 21},
		{100, 25},
		{310, 45},
		{1000, 21},
	}
}

// Table4 regenerates the heuristic-vs-optimal comparison on homogeneous
// clusters: for each DGEMM size, the best-known deployment (the complete
// spanning d-ary search of [10], improved by the swap-refined heuristic
// when it finds something better), the plain d-ary optimum's degree, the
// heuristic's degree, and the percentage of best-known throughput the
// heuristic achieves.
func Table4(p Params) (Report, error) {
	rep := Report{
		ID:    "table4",
		Title: "Heuristic vs optimal deployment on homogeneous clusters (paper Table 4)",
		Columns: []string{
			"DGEMM size", "total nodes", "best ρ (req/s)", "homo. deg.", "heur. deg.", "heur. perf.",
		},
	}
	for _, tc := range table4Cases() {
		req := core.Request{
			Platform: homogeneousPlatform(p, fmt.Sprintf("homo-%d", tc.DgemmN), tc.Nodes),
			Costs:    p.Costs,
			Wapp:     workload.DGEMM{N: tc.DgemmN}.MFlop(),
		}
		dary, err := (&baseline.OptimalDAry{}).Plan(req)
		if err != nil {
			return Report{}, fmt.Errorf("table4: dary: %w", err)
		}
		heur, err := core.NewHeuristic().Plan(req)
		if err != nil {
			return Report{}, fmt.Errorf("table4: heuristic: %w", err)
		}
		refined, err := (&core.SwapRefiner{Inner: core.NewHeuristic()}).Plan(req)
		if err != nil {
			return Report{}, fmt.Errorf("table4: refined: %w", err)
		}
		best := dary
		if refined.Capped > best.Capped {
			best = refined
		}
		perf := 100 * heur.Capped / best.Capped
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", tc.DgemmN),
			fmt.Sprintf("%d", tc.Nodes),
			fmtF(best.Capped),
			fmt.Sprintf("%d", rootDegree(dary.Hierarchy)),
			fmt.Sprintf("%d", rootDegree(heur.Hierarchy)),
			fmt.Sprintf("%.1f%%", perf),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper shape: the heuristic matches the optimum at the extremes (tiny and huge problems) and stays near 90% in the mid-range",
		"'homo. deg.' is the degree selected by the complete-spanning-d-ary-tree algorithm of [10]; 'best' additionally considers the swap-refined heuristic (mixed trees can beat pure d-ary trees)")
	return rep, nil
}

// rootDegree returns the root agent's child count, the paper's "degree"
// statistic for a deployment.
func rootDegree(h *hierarchy.Hierarchy) int {
	return h.Degree(h.Root())
}
