package experiments

import (
	"fmt"

	"adept/internal/hierarchy"
	"adept/internal/sim"
	"adept/internal/workload"
)

// starHierarchy builds the 1-agent star used by Figs. 2–5.
func starHierarchy(p Params, servers int) (*hierarchy.Hierarchy, error) {
	h := hierarchy.New(fmt.Sprintf("star-%d", servers))
	root, err := h.AddRoot("agent", p.NodePower)
	if err != nil {
		return nil, err
	}
	for i := 0; i < servers; i++ {
		if _, err := h.AddServer(root, fmt.Sprintf("sed-%d", i), p.NodePower); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// starLoadFigure produces the Figs. 2/4 measured-throughput-vs-clients
// series for one- and two-server stars on the given DGEMM size.
func starLoadFigure(p Params, id, title string, dgemmN int, levels []int, expectSecondServerHelps bool) (Report, error) {
	wapp := workload.DGEMM{N: dgemmN}.MFlop()
	warmup, window := 2.0, 10.0
	if p.Quick {
		warmup, window = 1.0, 4.0
		if len(levels) > 4 {
			levels = levels[:4]
		}
	}
	h1, err := starHierarchy(p, 1)
	if err != nil {
		return Report{}, err
	}
	h2, err := starHierarchy(p, 2)
	if err != nil {
		return Report{}, err
	}
	s1, err := sim.LoadSeries(h1, p.Costs, p.Bandwidth, wapp, levels, warmup, window)
	if err != nil {
		return Report{}, err
	}
	s2, err := sim.LoadSeries(h2, p.Costs, p.Bandwidth, wapp, levels, warmup, window)
	if err != nil {
		return Report{}, err
	}

	rep := Report{
		ID:      id,
		Title:   title,
		Columns: []string{"clients", "1 SeD (req/s)", "2 SeDs (req/s)"},
	}
	var max1, max2 float64
	for i := range levels {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", levels[i]), fmtF(s1[i].Throughput), fmtF(s2[i].Throughput),
		})
		if s1[i].Throughput > max1 {
			max1 = s1[i].Throughput
		}
		if s2[i].Throughput > max2 {
			max2 = s2[i].Throughput
		}
	}
	shape := "2 SeDs > 1 SeD (server-limited: second server helps)"
	holds := max2 > max1
	if !expectSecondServerHelps {
		shape = "1 SeD > 2 SeDs (agent-limited: second server hurts)"
		holds = max1 > max2
	}
	verdict := "REPRODUCED"
	if !holds {
		verdict = "NOT reproduced"
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("paper shape: %s — %s (max 1 SeD %.1f, max 2 SeDs %.1f)",
		shape, verdict, max1, max2))
	return rep, nil
}

// Fig2 — star hierarchies, DGEMM 10x10: measured throughput under
// increasing load; the agent is the bottleneck, so the second server hurts.
func Fig2(p Params) (Report, error) {
	levels := []int{1, 2, 5, 10, 20, 50, 100, 150, 200}
	return starLoadFigure(p, "fig2",
		"Star with 1 vs 2 servers, DGEMM 10x10: measured throughput vs load",
		10, levels, false)
}

// Fig4 — star hierarchies, DGEMM 200x200: the servers are the bottleneck,
// so the second server roughly doubles throughput.
func Fig4(p Params) (Report, error) {
	levels := []int{1, 2, 5, 10, 25, 50, 100, 200, 300}
	return starLoadFigure(p, "fig4",
		"Star with 1 vs 2 servers, DGEMM 200x200: measured throughput vs load",
		200, levels, true)
}

// predictedVsMeasured produces the Figs. 3/5 comparison: the model's ρ
// against the simulator's saturated throughput for one- and two-server
// stars.
func predictedVsMeasured(p Params, id, title string, dgemmN int) (Report, error) {
	wapp := workload.DGEMM{N: dgemmN}.MFlop()
	warmup, window, maxClients := 2.0, 10.0, 512
	if p.Quick {
		warmup, window, maxClients = 1.0, 4.0, 64
	}
	rep := Report{
		ID:      id,
		Title:   title,
		Columns: []string{"deployment", "predicted (req/s)", "measured (req/s)", "error"},
	}
	for _, servers := range []int{1, 2} {
		h, err := starHierarchy(p, servers)
		if err != nil {
			return Report{}, err
		}
		pred := h.Evaluate(p.Costs, p.Bandwidth, wapp)
		meas, err := sim.Plateau(h, p.Costs, p.Bandwidth, wapp, warmup, window, maxClients, 0.01)
		if err != nil {
			return Report{}, err
		}
		errPct := 100 * (meas.Throughput - pred.Rho) / pred.Rho
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d SeD(s)", servers),
			fmtF(pred.Rho),
			fmtF(meas.Throughput),
			fmt.Sprintf("%+.1f%%", errPct),
		})
	}
	rep.Notes = append(rep.Notes,
		"the paper's claim is that the model correctly ranks the deployments, not that absolute values match")
	return rep, nil
}

// Fig3 — predicted vs measured maximum throughput, DGEMM 10x10.
func Fig3(p Params) (Report, error) {
	return predictedVsMeasured(p, "fig3",
		"Predicted vs measured maximum throughput, DGEMM 10x10 stars", 10)
}

// Fig5 — predicted vs measured maximum throughput, DGEMM 200x200.
func Fig5(p Params) (Report, error) {
	return predictedVsMeasured(p, "fig5",
		"Predicted vs measured maximum throughput, DGEMM 200x200 stars", 200)
}
