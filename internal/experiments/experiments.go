// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the substituted substrate: the discrete-event
// simulator plays the Grid'5000 testbed, the goroutine runtime plays DIET +
// GoDIET, and synthetic calibrated platforms play the Lyon/Orsay clusters.
//
// Each experiment is a function returning a Report whose rows mirror the
// series/rows the paper presents; EXPERIMENTS.md records the paper-vs-
// measured comparison for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"adept/internal/model"
	"adept/internal/platform"
)

// Params holds the reference calibration shared by all experiments.
// The absolute values substitute for the paper's testbed: ~400 MFlop/s
// nodes (Linpack-class measurements for the 2005-era Grid'5000 Opterons)
// and 100 Mb/s effective TCP bandwidth. Every experiment's *shape*
// conclusions are insensitive to these within wide margins.
type Params struct {
	// Costs are the middleware cost parameters (Table 3 values by default).
	Costs model.Costs
	// Bandwidth is the homogeneous link bandwidth in Mb/s.
	Bandwidth float64
	// NodePower is the reference homogeneous node power in MFlop/s.
	NodePower float64
	// Seed drives all synthetic randomness.
	Seed int64
	// Quick shrinks simulation windows and load levels so the whole suite
	// runs in seconds (used by tests; benchmarks and the CLI use full runs).
	Quick bool
}

// Defaults returns the reference calibration.
func Defaults() Params {
	return Params{
		Costs:     model.DIETDefaults(),
		Bandwidth: 100,
		NodePower: 400,
		Seed:      20080601, // the paper's publication month
	}
}

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier (e.g. "table4", "fig6").
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the data, already formatted.
	Rows [][]string
	// Notes carry shape conclusions checked against the paper.
	Notes []string
}

// Render formats the report as an aligned text table.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(r.ID), r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(Params) (Report, error)

// Registry maps experiment IDs to runners, in paper order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table3", Table3},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"table4", Table4},
		{"fig6", Fig6},
		{"fig7", Fig7},
	}
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs lists the registered experiment IDs in order.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// homogeneousPlatform builds the reference homogeneous pool.
func homogeneousPlatform(p Params, name string, n int) *platform.Platform {
	return platform.Homogeneous(name, n, p.NodePower, p.Bandwidth)
}

// heterogenizedPlatform reproduces §5.3: a homogeneous cluster whose nodes
// partially run background matrix-multiplication jobs, leaving 1/4, 1/2 or
// 3/4 of their power to the middleware.
func heterogenizedPlatform(p Params, name string, n int) (*platform.Platform, error) {
	base := platform.Homogeneous(name, n, p.NodePower, p.Bandwidth)
	return platform.Heterogenize(base, platform.BackgroundLoad{
		Fraction:    0.6,
		LoadFactors: []float64{0.25, 0.5, 0.75},
		Seed:        p.Seed,
	})
}

// fmtF renders a float with sensible precision for tables.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
